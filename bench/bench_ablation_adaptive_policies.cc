// Ablation A6: adaptive policies beyond the paper's four. The paper notes
// that "additional (non-static) adaptive scheduling policies are in the
// process of being integrated" (Sec. 3.4); hiway-cpp ships one — online
// minimum-completion-time — which combines provenance-driven placement
// with dynamic (non-pinned) dispatch and therefore also supports
// iterative workflows. This harness compares fcfs / heft / online-mct on
// the Fig. 9 heterogeneous cluster across consecutive runs.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"

namespace hiway {
namespace {

constexpr int kWorkers = 11;

Result<std::unique_ptr<Deployment>> MakeDeployment(uint64_t seed) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", kWorkers + 1));
  karamel.SetAttribute("cluster/cores", "2");
  karamel.SetAttribute("cluster/memory_mb", "7680");
  karamel.SetAttribute("cluster/disk_mbps", "100");
  karamel.SetAttribute("cluster/nic_mbps", "62");
  karamel.SetAttribute("cluster/switch_mbps", "2000");
  karamel.SetAttribute("dfs/first_datanode", "1");
  karamel.SetAttribute("montage/images", "11");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(MontageWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  const int levels[5] = {1, 4, 16, 64, 256};
  for (int i = 0; i < 5; ++i) {
    d->load->StressCpu(static_cast<NodeId>(1 + i), levels[i]);
    d->load->StressDisk(static_cast<NodeId>(6 + i), levels[i]);
  }
  HIWAY_ASSIGN_OR_RETURN(
      ApplicationId blocker,
      d->rm->RegisterApplication("masters", nullptr, 1, 5000, 0));
  (void)blocker;
  return d;
}

Result<double> RunOnce(Deployment* d, const std::string& policy,
                       uint64_t seed) {
  const StagedWorkflow& staged = d->workflows.at("montage");
  std::set<std::string> inputs;
  for (const auto& [path, size] : staged.inputs) inputs.insert(path);
  for (const std::string& path : d->dfs->ListFiles()) {
    if (inputs.find(path) == inputs.end()) (void)d->dfs->Delete(path);
  }
  d->tools.ResetInvocationCounts();
  HiWayClient client(d);
  HiWayOptions options;
  options.container_vcores = 2;
  options.container_memory_mb = 5000;
  options.am_node = 0;
  options.am_vcores = 1;
  options.am_memory_mb = 1024;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("montage", policy, options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

int Main(int argc, char** argv) {
  const int reps = bench::QuickMode(argc, argv) ? 6 : 20;
  const int runs = 12;
  bench::PrintHeader(
      "Ablation A6: adaptive policies on the heterogeneous Fig. 9 cluster "
      "(median over repetitions, seconds)");
  std::printf(
      "%d repetitions of %d consecutive runs; provenance accumulates "
      "within each repetition.\n\n",
      reps, runs);
  std::printf("%12s %10s %10s %12s\n", "run #", "fcfs", "heft",
              "online-mct");
  bench::PrintRule(48);
  std::map<std::string, std::vector<std::vector<double>>> results;
  for (const char* policy : {"fcfs", "heft", "online-mct"}) {
    results[policy].resize(static_cast<size_t>(runs));
    for (int rep = 0; rep < reps; ++rep) {
      uint64_t seed = 16000 + static_cast<uint64_t>(rep) * 53;
      auto d = MakeDeployment(seed);
      if (!d.ok()) {
        std::fprintf(stderr, "deploy failed\n");
        return 1;
      }
      for (int k = 0; k < runs; ++k) {
        auto rt = RunOnce(d->get(), policy, seed + static_cast<uint64_t>(k));
        if (!rt.ok()) {
          std::fprintf(stderr, "%s run failed: %s\n", policy,
                       rt.status().ToString().c_str());
          return 1;
        }
        results[policy][static_cast<size_t>(k)].push_back(*rt);
      }
    }
  }
  for (int k = 0; k < runs; ++k) {
    std::printf("%12d %10.1f %10.1f %12.1f\n", k,
                bench::Median(results["fcfs"][static_cast<size_t>(k)]),
                bench::Median(results["heft"][static_cast<size_t>(k)]),
                bench::Median(results["online-mct"][static_cast<size_t>(k)]));
  }
  bench::PrintRule(48);
  double fcfs_last = bench::Median(results["fcfs"].back());
  double heft_last = bench::Median(results["heft"].back());
  double mct_last = bench::Median(results["online-mct"].back());
  std::printf(
      "Converged medians — fcfs %.0fs, heft %.0fs, online-mct %.0fs.\n"
      "online-mct adapts without static pinning (and unlike HEFT it also "
      "accepts iterative workflows).\n",
      fcfs_last, heft_last, mct_last);
  return (mct_last < fcfs_last) ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
