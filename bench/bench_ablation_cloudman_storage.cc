// Ablation A7: CloudMan storage backends (the paper's footnote 4 — "a
// recent update has introduced support for using transient storage
// instead" of EBS). Re-runs the Fig. 8 comparison with three storage
// configurations: CloudMan on the shared EBS volume (the paper's
// default), CloudMan on node-local transient storage, and Hi-WAY on
// HDFS + local SSD. Transient storage should close most — but not all —
// of the gap (Hi-WAY keeps locality-aware placement).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/cloudman.h"
#include "src/core/client.h"
#include "src/lang/galaxy_source.h"

namespace hiway {
namespace {

Result<std::unique_ptr<Deployment>> MakeDeployment(int nodes,
                                                   uint64_t seed) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", nodes));
  karamel.SetAttribute("cluster/cores", "8");
  karamel.SetAttribute("cluster/memory_mb", "15360");
  karamel.SetAttribute("cluster/disk_mbps", "150");
  karamel.SetAttribute("cluster/nic_mbps", "125");
  karamel.SetAttribute("cluster/switch_mbps", "1250");
  karamel.SetAttribute("cluster/ebs_mbps", "160");
  karamel.SetAttribute("dfs/replication", "6");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(TraplineWorkflowRecipe());
  return karamel.Converge();
}

Result<double> RunCloudMan(int nodes, bool transient, uint64_t seed) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(nodes, seed));
  const StagedWorkflow& staged = d->workflows.at("trapline");
  HIWAY_ASSIGN_OR_RETURN(
      std::unique_ptr<GalaxySource> source,
      GalaxySource::Parse(staged.document, staged.galaxy_inputs));
  CloudManOptions options;
  options.slots_per_node = 1;
  options.transient_storage = transient;
  options.seed = seed;
  CloudManEngine engine(d->cluster.get(), &d->tools, options);
  for (const auto& [path, size] : staged.inputs) {
    engine.StageInput(path, size);
  }
  HIWAY_RETURN_IF_ERROR(engine.Submit(source.get()));
  HIWAY_ASSIGN_OR_RETURN(CloudManReport report, engine.RunToCompletion());
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

Result<double> RunHiWay(int nodes, uint64_t seed) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(nodes, seed));
  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 8;
  options.container_memory_mb = 14000;
  options.am_vcores = 0;
  options.am_memory_mb = 512;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("trapline", "data-aware", options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  bench::PrintHeader(
      "Ablation A7: CloudMan storage backends on the Fig. 8 workload "
      "(minutes)");
  std::printf(
      "TRAPLINE RNA-seq; 'transient' is the footnote-4 local-storage "
      "update.\n\n");
  std::printf("%6s %16s %20s %14s\n", "nodes", "CloudMan (EBS)",
              "CloudMan (transient)", "Hi-WAY");
  bench::PrintRule(62);
  bool ordered = true;
  for (int nodes : {1, 3, 6}) {
    uint64_t seed = 17000 + static_cast<uint64_t>(nodes);
    auto ebs = RunCloudMan(nodes, false, seed);
    auto transient = RunCloudMan(nodes, true, seed);
    auto hiway = RunHiWay(nodes, seed);
    if (!ebs.ok() || !transient.ok() || !hiway.ok()) {
      std::fprintf(stderr, "run failed: %s / %s / %s\n",
                   ebs.status().ToString().c_str(),
                   transient.status().ToString().c_str(),
                   hiway.status().ToString().c_str());
      return 1;
    }
    std::printf("%6d %16.1f %20.1f %14.1f\n", nodes, *ebs / 60.0,
                *transient / 60.0, *hiway / 60.0);
    ordered = ordered && (*hiway <= *transient + 1.0) &&
              (*transient <= *ebs + 1.0);
  }
  bench::PrintRule(62);
  std::printf(
      "Expected ordering Hi-WAY <= transient <= EBS at every size: %s.\n"
      "Transient storage removes the shared-volume bottleneck; Hi-WAY's "
      "remaining edge is data-aware placement and HDFS locality.\n",
      ordered ? "OK" : "MISS");
  return ordered ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
