// Ablation A5: container sizing (the paper's future-work discussion,
// Sec. 5: identical containers "can lead to under-utilization of
// resources"). Runs the SNV workload with k containers of 24/k cores per
// 24-core node: many thin containers maximise task parallelism but starve
// multithreaded tools; one fat container per node wastes cores on
// single-threaded stages.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"

namespace hiway {
namespace {

Result<double> RunConfig(int containers_per_node, int chunks, uint64_t seed,
                         bool tailor = false) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "8");
  karamel.SetAttribute("cluster/cores", "24");
  karamel.SetAttribute("cluster/memory_mb", "49152");
  karamel.SetAttribute("cluster/disk_mbps", "300");
  karamel.SetAttribute("cluster/switch_mbps", "1250");
  karamel.SetAttribute("snv/chunks", StrFormat("%d", chunks));
  karamel.SetAttribute("snv/chunk_mb", "256");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 24 / containers_per_node;
  options.container_memory_mb = 49152.0 / containers_per_node - 256;
  options.am_vcores = 0;
  options.seed = seed;
  options.tailor_containers = tailor;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("snv-calling", "data-aware", options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan() / 60.0;
}

int Main(int argc, char** argv) {
  const int chunks = bench::QuickMode(argc, argv) ? 64 : 128;
  bench::PrintHeader(
      "Ablation A5: containers per node (identical-container policy, "
      "8 x 24-core nodes, SNV workload)");
  std::printf("%d chunks x 256 MB; data-aware scheduling.\n\n", chunks);
  std::printf("%18s %14s %18s\n", "containers/node", "vcores each",
              "makespan (min)");
  bench::PrintRule(54);
  double best = 1e18, worst = 0.0;
  for (int per_node : {1, 2, 4, 8, 24}) {
    auto m = RunConfig(per_node, chunks, 15000);
    if (!m.ok()) {
      std::fprintf(stderr, "config failed: %s\n",
                   m.status().ToString().c_str());
      return 1;
    }
    std::printf("%18d %14d %18.1f\n", per_node, 24 / per_node, *m);
    best = std::min(best, *m);
    worst = std::max(worst, *m);
  }
  // The paper's Sec. 5 future work, implemented here: per-task tailored
  // containers starting from the fattest configuration.
  auto tailored = RunConfig(1, chunks, 15000, /*tailor=*/true);
  if (!tailored.ok()) {
    std::fprintf(stderr, "tailored config failed\n");
    return 1;
  }
  std::printf("%18s %14s %18.1f\n", "tailored", "per-tool", *tailored);
  bench::PrintRule(54);
  std::printf(
      "Identical containers leave up to %.0f%% on the table across "
      "sizings — the paper's Sec. 5 motivation for per-task container "
      "tailoring. Thread-cap tailoring recovers %.0f%% over the fat "
      "1-container baseline it starts from; closing the rest needs "
      "bin-packing-aware sizing (future work there too).\n",
      100.0 * (1.0 - best / worst),
      100.0 * (1.0 - *tailored / worst));
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
