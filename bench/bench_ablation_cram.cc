// Ablation A3: CRAM referential compression of intermediate alignments
// (the Sec. 4.1 weak-scaling experiment enables it to cut network load).
// Measures runtime and bytes written at a fixed scale with and without
// compression.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"

namespace hiway {
namespace {

struct Outcome {
  double makespan_min;
  double written_gb;
};

Result<Outcome> RunConfig(bool cram, int workers, uint64_t seed) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", workers + 2));
  karamel.SetAttribute("cluster/cores", "2");
  karamel.SetAttribute("cluster/memory_mb", "7680");
  karamel.SetAttribute("cluster/disk_mbps", "150");
  karamel.SetAttribute("cluster/nic_mbps", "62");
  karamel.SetAttribute("cluster/switch_mbps", "20000");
  karamel.SetAttribute("cluster/s3_mbps", "20000");
  karamel.SetAttribute("dfs/first_datanode", "2");
  karamel.SetAttribute("snv/chunks", StrFormat("%d", workers * 8));
  karamel.SetAttribute("snv/chunk_mb", "1024");
  karamel.SetAttribute("snv/cram", cram ? "1" : "0");
  karamel.SetAttribute("snv/ingest", "s3");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 2;
  options.container_memory_mb = 7000;
  options.am_node = 1;
  options.am_vcores = 2;
  options.am_memory_mb = 7000;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(
      ApplicationId blocker,
      d->rm->RegisterApplication("hadoop-masters", nullptr, 2, 7000, 0));
  (void)blocker;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("snv-calling", "fcfs", options));
  HIWAY_RETURN_IF_ERROR(report.status);
  Outcome out;
  out.makespan_min = report.Makespan() / 60.0;
  out.written_gb =
      static_cast<double>(d->dfs->counters().bytes_written) / (1 << 30);
  return out;
}

int Main(int argc, char** argv) {
  const int workers = bench::QuickMode(argc, argv) ? 8 : 16;
  bench::PrintHeader(
      "Ablation A3: CRAM referential compression of intermediate "
      "alignments (weak-scaling workload)");
  std::printf("%d workers x 8 GB of reads, inputs from S3.\n\n", workers);
  std::printf("%-18s %16s %18s\n", "intermediates", "makespan (min)",
              "HDFS written (GB)");
  bench::PrintRule(56);
  auto bam = RunConfig(false, workers, 13000);
  auto cram = RunConfig(true, workers, 13000);
  if (!bam.ok() || !cram.ok()) {
    std::fprintf(stderr, "run failed\n");
    return 1;
  }
  std::printf("%-18s %16.1f %18.2f\n", "BAM (0.35x)", bam->makespan_min,
              bam->written_gb);
  std::printf("%-18s %16.1f %18.2f\n", "CRAM (0.12x)", cram->makespan_min,
              cram->written_gb);
  bench::PrintRule(56);
  std::printf(
      "CRAM cut HDFS write volume by %.0f%% (and runtime by %.1f%%): the\n"
      "compression is what keeps the 128-worker run off the network.\n",
      100.0 * (1.0 - cram->written_gb / bam->written_gb),
      100.0 * (1.0 - cram->makespan_min / bam->makespan_min));
  return cram->written_gb < bam->written_gb ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
