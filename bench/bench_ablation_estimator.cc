// Ablation A4: runtime-estimation strategy for HEFT. The paper uses the
// latest observed runtime with an optimistic zero default ("to encourage
// trying out new assignments"); this ablation compares that against a
// running mean and a signature-mean fallback on the Fig. 9 setup.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"

namespace hiway {
namespace {

constexpr int kWorkers = 11;

Result<std::unique_ptr<Deployment>> MakeDeployment(
    EstimationStrategy strategy, uint64_t seed) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", kWorkers + 1));
  karamel.SetAttribute("cluster/cores", "2");
  karamel.SetAttribute("cluster/memory_mb", "7680");
  karamel.SetAttribute("cluster/disk_mbps", "100");
  karamel.SetAttribute("cluster/nic_mbps", "62");
  karamel.SetAttribute("cluster/switch_mbps", "2000");
  karamel.SetAttribute("dfs/first_datanode", "1");
  karamel.SetAttribute("montage/images", "11");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(MontageWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  d->estimator = RuntimeEstimator(strategy);
  const int levels[5] = {1, 4, 16, 64, 256};
  for (int i = 0; i < 5; ++i) {
    d->load->StressCpu(static_cast<NodeId>(1 + i), levels[i]);
    d->load->StressDisk(static_cast<NodeId>(6 + i), levels[i]);
  }
  HIWAY_ASSIGN_OR_RETURN(
      ApplicationId blocker,
      d->rm->RegisterApplication("masters", nullptr, 1, 5000, 0));
  (void)blocker;
  return d;
}

Result<double> RunOnce(Deployment* d, uint64_t seed) {
  const StagedWorkflow& staged = d->workflows.at("montage");
  std::set<std::string> inputs;
  for (const auto& [path, size] : staged.inputs) inputs.insert(path);
  for (const std::string& path : d->dfs->ListFiles()) {
    if (inputs.find(path) == inputs.end()) (void)d->dfs->Delete(path);
  }
  d->tools.ResetInvocationCounts();
  HiWayClient client(d);
  HiWayOptions options;
  options.container_vcores = 2;
  options.container_memory_mb = 5000;
  options.am_node = 0;
  options.am_vcores = 1;
  options.am_memory_mb = 1024;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("montage", "heft", options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

int Main(int argc, char** argv) {
  const int reps = bench::QuickMode(argc, argv) ? 6 : 20;
  const int heft_runs = 15;
  bench::PrintHeader(
      "Ablation A4: estimation strategy for adaptive HEFT (Fig. 9 setup)");
  std::printf(
      "%d repetitions of %d consecutive HEFT runs per strategy; median "
      "runtimes in seconds.\n\n",
      reps, heft_runs);
  struct Strategy {
    EstimationStrategy strategy;
    const char* name;
  };
  const Strategy strategies[] = {
      {EstimationStrategy::kLatestObserved, "latest-observed (paper)"},
      {EstimationStrategy::kRunningMean, "running-mean"},
      {EstimationStrategy::kLatestWithSignatureFallback,
       "latest+signature-fallback"},
  };
  std::printf("%-28s %10s %10s %10s %12s\n", "strategy", "run 1", "run 5",
              "run 14", "mean 0..14");
  bench::PrintRule(76);
  for (const Strategy& s : strategies) {
    std::vector<std::vector<double>> runtimes(
        static_cast<size_t>(heft_runs));
    double total = 0.0;
    int count = 0;
    for (int rep = 0; rep < reps; ++rep) {
      uint64_t seed = 14000 + static_cast<uint64_t>(rep) * 31;
      auto d = MakeDeployment(s.strategy, seed);
      if (!d.ok()) {
        std::fprintf(stderr, "deploy failed: %s\n",
                     d.status().ToString().c_str());
        return 1;
      }
      for (int k = 0; k < heft_runs; ++k) {
        auto rt = RunOnce(d->get(), seed + static_cast<uint64_t>(k));
        if (!rt.ok()) {
          std::fprintf(stderr, "run failed: %s\n",
                       rt.status().ToString().c_str());
          return 1;
        }
        runtimes[static_cast<size_t>(k)].push_back(*rt);
        total += *rt;
        ++count;
      }
    }
    std::printf("%-28s %10.1f %10.1f %10.1f %12.1f\n", s.name,
                bench::Median(runtimes[1]), bench::Median(runtimes[5]),
                bench::Median(runtimes[14]), total / count);
  }
  bench::PrintRule(76);
  std::printf(
      "The optimistic zero default explores aggressively (worse early "
      "runs, best converged placement);\nthe signature fallback explores "
      "less and can lock in on stale observations.\n");
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
