// Ablation A1: how much of Fig. 4's win comes from data-aware task
// selection? Runs the SNV workload (scaled down from Fig. 4's setup) under
// fcfs / round-robin / data-aware on the same bandwidth-constrained
// cluster and reports makespan plus local/remote read volumes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"

namespace hiway {
namespace {

struct Outcome {
  double makespan_min;
  double local_gb;
  double remote_gb;
};

Result<Outcome> RunPolicy(const std::string& policy, int chunks,
                          uint64_t seed) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "12");
  karamel.SetAttribute("cluster/cores", "8");
  karamel.SetAttribute("cluster/memory_mb", "24576");
  karamel.SetAttribute("cluster/disk_mbps", "300");
  karamel.SetAttribute("cluster/switch_mbps", "250");
  karamel.SetAttribute("dfs/replication", "2");
  karamel.SetAttribute("snv/chunks", StrFormat("%d", chunks));
  karamel.SetAttribute("snv/chunk_mb", "128");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 1;
  options.container_memory_mb = 1024;
  options.am_vcores = 0;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("snv-calling", policy, options));
  HIWAY_RETURN_IF_ERROR(report.status);
  Outcome out;
  out.makespan_min = report.Makespan() / 60.0;
  out.local_gb = static_cast<double>(d->dfs->counters().bytes_read_local) /
                 (1 << 30);
  out.remote_gb =
      static_cast<double>(d->dfs->counters().bytes_read_remote) / (1 << 30);
  return out;
}

int Main(int argc, char** argv) {
  const int chunks = bench::QuickMode(argc, argv) ? 192 : 384;
  bench::PrintHeader(
      "Ablation A1: scheduling policy vs data locality (SNV workload, "
      "constrained switch)");
  std::printf("%d chunks x 128 MB, 12 nodes x 8 containers.\n\n", chunks);
  std::printf("%-12s %16s %14s %14s %12s\n", "policy", "makespan (min)",
              "local (GB)", "remote (GB)", "local %");
  bench::PrintRule(74);
  double fcfs_makespan = 0.0;
  double aware_makespan = 0.0;
  double aware_remote = 1.0, fcfs_remote = 1.0;
  // (round-robin is static and therefore rejected for this iterative
  // Cuneiform workload, exactly as the paper prescribes — the comparison
  // is FCFS vs data-aware.)
  for (const char* policy : {"fcfs", "data-aware"}) {
    auto out = RunPolicy(policy, chunks, 11000);
    if (!out.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", policy,
                   out.status().ToString().c_str());
      return 1;
    }
    double frac = out->local_gb / (out->local_gb + out->remote_gb) * 100.0;
    std::printf("%-12s %16.1f %14.2f %14.2f %11.1f%%\n", policy,
                out->makespan_min, out->local_gb, out->remote_gb, frac);
    if (std::string(policy) == "fcfs") {
      fcfs_makespan = out->makespan_min;
      fcfs_remote = out->remote_gb;
    }
    if (std::string(policy) == "data-aware") {
      aware_makespan = out->makespan_min;
      aware_remote = out->remote_gb;
    }
  }
  bench::PrintRule(74);
  std::printf(
      "data-aware cut remote reads by %.0f%% and the makespan by %.0f%% "
      "vs FCFS.\n",
      100.0 * (1.0 - aware_remote / fcfs_remote),
      100.0 * (1.0 - aware_makespan / fcfs_makespan));
  return aware_remote < fcfs_remote ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
