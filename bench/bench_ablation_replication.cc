// Ablation A2: HDFS replication factor x scheduling policy. Higher
// replication widens the data-aware scheduler's placement choice space
// (more nodes hold a local copy) at the price of heavier write pipelines.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"

namespace hiway {
namespace {

Result<double> RunConfig(int replication, const std::string& policy,
                         int chunks, uint64_t seed) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "12");
  karamel.SetAttribute("cluster/cores", "8");
  karamel.SetAttribute("cluster/memory_mb", "24576");
  karamel.SetAttribute("cluster/disk_mbps", "300");
  karamel.SetAttribute("cluster/switch_mbps", "250");
  karamel.SetAttribute("dfs/replication", StrFormat("%d", replication));
  karamel.SetAttribute("snv/chunks", StrFormat("%d", chunks));
  karamel.SetAttribute("snv/chunk_mb", "128");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 1;
  options.container_memory_mb = 1024;
  options.am_vcores = 0;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("snv-calling", policy, options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan() / 60.0;
}

int Main(int argc, char** argv) {
  const int chunks = bench::QuickMode(argc, argv) ? 96 : 192;
  bench::PrintHeader(
      "Ablation A2: HDFS replication factor x scheduling policy "
      "(SNV workload, minutes)");
  std::printf("%d chunks x 128 MB.\n\n", chunks);
  std::printf("%13s %12s %12s %12s\n", "policy \\ rep", "1", "2", "3");
  bench::PrintRule(54);
  double aware_r1 = 0.0, aware_r3 = 0.0;
  for (const char* policy : {"fcfs", "data-aware"}) {
    std::printf("%13s", policy);
    for (int replication : {1, 2, 3}) {
      auto m = RunConfig(replication, policy, chunks, 12000);
      if (!m.ok()) {
        std::fprintf(stderr, "config failed: %s\n",
                     m.status().ToString().c_str());
        return 1;
      }
      std::printf(" %12.1f", *m);
      if (std::string(policy) == "data-aware") {
        if (replication == 1) aware_r1 = *m;
        if (replication == 3) aware_r3 = *m;
      }
    }
    std::printf("\n");
  }
  bench::PrintRule(54);
  std::printf(
      "Replication trades write bandwidth for placement freedom; the\n"
      "data-aware scheduler ran %.0f%% %s at replication 3 than at 1.\n",
      100.0 * std::abs(1.0 - aware_r3 / aware_r1),
      aware_r3 < aware_r1 ? "faster" : "slower");
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
