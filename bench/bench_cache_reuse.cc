// Cache-reuse benchmark: repeated SNV submission waves against the
// cluster-wide result cache and per-node staging cache
// (docs/data-cache.md).
//
// The workload is the paper's daily re-run pattern: the same SNV-calling
// pipeline is submitted over and over on a slot-limited cluster, with at
// most one input chunk re-ingested (content changed, path and size kept)
// between waves. Wave 0 is the cold run; wave 1 is a byte-identical
// repeat; later waves each mutate one chunk, so exactly that chunk's
// four-task chain must recompute while every untouched chain is served
// from the cache. The interesting numbers and gates:
//
//   repeat speedup    — cold makespan / identical-repeat makespan. The
//                       repeat resolves every task from the cache without
//                       containers; must be >= 5x (it is usually far
//                       higher), with byte-identical DFS contents.
//   mutated waves     — per-wave makespan and hit counts. Each wave must
//                       beat the cold run and cache exactly
//                       total - chain_length tasks.
//   twin-tenant audit — the same document submitted by a second tenant
//                       gets ZERO hits (tenant_denied grows instead);
//                       the cache never leaks one tenant's bytes.
//   eviction sweep    — fresh deployments with descending
//                       hiway/cache_max_entries budgets. Warm makespan
//                       must degrade monotonically toward — and never
//                       meaningfully past — the cold makespan.
//
// All waves in a phase share one deployment (and therefore one seed
// schedule), so makespans are comparable. `--json` emits a single JSON
// object for CI artifact collection; `--quick` shrinks the inputs.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/result_cache.h"
#include "src/cache/staging_cache.h"
#include "src/common/strings.h"
#include "src/infra/karamel.h"
#include "src/service/workflow_service.h"

namespace hiway {
namespace {

bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

struct BenchConfig {
  int chunks = 30;
  int64_t chunk_mb = 32;
  int mutated_waves = 3;
  /// align -> sort -> call -> annotate.
  int chain_length = 4;
  int total_tasks() const { return chunks * chain_length; }
};

BenchConfig MakeConfig(bool quick) {
  BenchConfig c;
  if (quick) {
    c.chunks = 18;
    c.chunk_mb = 16;
    c.mutated_waves = 2;
  }
  return c;
}

/// Slot-limited cluster (3 workers x 2 cores): the cold run queues ~5
/// chains per slot, so cached waves have real contention to beat.
Result<std::unique_ptr<Deployment>> CacheDeployment(
    const BenchConfig& config, const ChefAttributes& extra) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "3");
  karamel.SetAttribute("cluster/cores", "2");
  karamel.SetAttribute("snv/chunks", StrFormat("%d", config.chunks));
  karamel.SetAttribute("snv/chunk_mb", StrFormat("%lld",
                       static_cast<long long>(config.chunk_mb)));
  karamel.SetAttribute("hiway/cache_results", "on");
  karamel.SetAttribute("hiway/cache_staging_mb", "0");  // unbounded
  for (const auto& [k, v] : extra) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  return karamel.Converge();
}

struct WaveStats {
  std::string name;
  double makespan_s = 0.0;
  int tasks_completed = 0;
  int tasks_cached = 0;
  bool succeeded = false;
};

Result<WaveStats> RunWave(WorkflowService* service, const std::string& name,
                          const std::string& queue) {
  SubmissionOptions options;
  if (!queue.empty()) options.queue = queue;
  HIWAY_ASSIGN_OR_RETURN(SubmissionId id,
                         service->SubmitStaged("snv-calling", options));
  HIWAY_RETURN_IF_ERROR(service->RunToCompletion());
  const SubmissionRecord* rec = service->record(id);
  if (rec == nullptr) return Status::RuntimeError("no record for " + name);
  WaveStats w;
  w.name = name;
  w.makespan_s = rec->report.Makespan();
  w.tasks_completed = rec->report.tasks_completed;
  w.tasks_cached = rec->report.tasks_cached;
  w.succeeded = rec->state == SubmissionState::kSucceeded;
  return w;
}

std::map<std::string, int64_t> DfsSnapshot(Dfs* dfs) {
  std::map<std::string, int64_t> files;
  for (const std::string& path : dfs->ListFiles()) {
    auto info = dfs->Stat(path);
    if (info.ok()) files[path] = info->size_bytes;
  }
  return files;
}

/// Re-ingests one input chunk in place: same path and size, new bytes
/// (the DFS bumps the file's content fingerprint), invalidating exactly
/// that chunk's downstream cone in the result cache.
Status MutateChunk(Dfs* dfs, const BenchConfig& config, int wave) {
  std::string path = StrFormat("/in/1000genomes/chunk%04d.fq.gz",
                               wave % config.chunks);
  HIWAY_RETURN_IF_ERROR(dfs->Delete(path));
  return dfs->IngestFile(path, config.chunk_mb << 20);
}

struct SweepLevel {
  int64_t max_entries = 0;  // 0 = unbounded
  double cold_makespan_s = 0.0;
  double warm_makespan_s = 0.0;
  int warm_cached = 0;
};

/// One eviction-pressure level: fresh deployment, cold run, identical
/// warm run under the given entry budget.
Result<SweepLevel> RunSweepLevel(const BenchConfig& config,
                                 int64_t max_entries) {
  ChefAttributes extra;
  if (max_entries > 0) {
    extra["hiway/cache_max_entries"] =
        StrFormat("%lld", static_cast<long long>(max_entries));
  }
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         CacheDeployment(config, extra));
  HIWAY_ASSIGN_OR_RETURN(
      std::unique_ptr<WorkflowService> service,
      WorkflowService::Create(d.get(), WorkflowServiceOptions{}));
  HIWAY_ASSIGN_OR_RETURN(WaveStats cold,
                         RunWave(service.get(), "cold", ""));
  HIWAY_ASSIGN_OR_RETURN(WaveStats warm,
                         RunWave(service.get(), "warm", ""));
  if (!cold.succeeded || !warm.succeeded) {
    return Status::RuntimeError("sweep level run failed");
  }
  SweepLevel level;
  level.max_entries = max_entries;
  level.cold_makespan_s = cold.makespan_s;
  level.warm_makespan_s = warm.makespan_s;
  level.warm_cached = warm.tasks_cached;
  return level;
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bool json = JsonMode(argc, argv);
  BenchConfig config = MakeConfig(quick);

  // -------------------------------------------------- reuse waves ----
  auto d = CacheDeployment(config, {});
  if (!d.ok()) {
    std::fprintf(stderr, "converge: %s\n", d.status().ToString().c_str());
    return 1;
  }
  WorkflowServiceOptions service_options;
  for (const char* name : {"prod", "twin"}) {
    ServiceQueueOptions q;
    q.rm.name = name;
    service_options.queues.push_back(std::move(q));
  }
  auto service = WorkflowService::Create(d->get(), service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  std::vector<WaveStats> waves;
  auto run = [&](const std::string& name,
                 const std::string& queue) -> bool {
    auto w = RunWave(service->get(), name, queue);
    if (!w.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   w.status().ToString().c_str());
      return false;
    }
    waves.push_back(*w);
    return true;
  };

  if (!run("cold", "prod")) return 1;
  std::map<std::string, int64_t> cold_files =
      DfsSnapshot((*d)->dfs.get());
  if (!run("repeat", "prod")) return 1;
  bool outputs_identical = DfsSnapshot((*d)->dfs.get()) == cold_files;
  for (int i = 0; i < config.mutated_waves; ++i) {
    Status st = MutateChunk((*d)->dfs.get(), config, i);
    if (!st.ok()) {
      std::fprintf(stderr, "mutate: %s\n", st.ToString().c_str());
      return 1;
    }
    if (!run(StrFormat("mutate-%d", i), "prod")) return 1;
  }

  // Twin-tenant audit: the same document under another queue (= tenant)
  // must recompute everything; its lookups land in tenant_denied.
  int64_t denied_before = (*d)->result_cache->stats().tenant_denied;
  if (!run("twin", "twin")) return 1;
  WaveStats twin = waves.back();
  waves.pop_back();
  int64_t twin_denied =
      (*d)->result_cache->stats().tenant_denied - denied_before;

  const WaveStats& cold = waves[0];
  const WaveStats& repeat = waves[1];
  // A fully-cached repeat can resolve in zero simulated time; clamp so
  // the ratio stays finite and printable.
  auto speedup_vs_cold = [&](double makespan_s) {
    return std::min(cold.makespan_s / std::max(makespan_s, 1e-3), 9999.0);
  };
  double repeat_speedup = speedup_vs_cold(repeat.makespan_s);
  int64_t dangling = (*d)->result_cache->AuditAgainstDfs();
  StagingCacheStats staging = (*d)->staging_cache->stats();

  bool all_ok = twin.succeeded;
  for (const WaveStats& w : waves) all_ok = all_ok && w.succeeded;
  bool repeat_ok = repeat.tasks_cached == repeat.tasks_completed &&
                   outputs_identical &&
                   repeat.makespan_s * 5.0 <= cold.makespan_s;
  bool mutated_ok = true;
  for (size_t i = 2; i < waves.size(); ++i) {
    const WaveStats& w = waves[i];
    // Exactly one chunk changed: its chain recomputes, the rest hit.
    mutated_ok = mutated_ok && w.makespan_s < cold.makespan_s &&
                 w.tasks_cached == w.tasks_completed - config.chain_length;
  }
  bool twin_ok = twin.tasks_cached == 0 && twin_denied > 0;

  // --------------------------------------------- eviction sweep ------
  // Identical cold+warm pair per level; only the entry budget shrinks.
  // The cold run publishes stage by stage (every align before every
  // sort, ...), so the LRU sheds the oldest entries — the aligns — first,
  // and a chain whose align is gone recomputes end to end (the re-written
  // align output stales its downstream entries). Budgets therefore step
  // through "a quarter of the chains lost", "half lost", "all lost":
  // warm makespan climbs toward the cold makespan and settles there.
  int total = config.total_tasks();
  std::vector<int64_t> budgets = {0, total - config.chunks / 4,
                                  total - config.chunks / 2,
                                  total - config.chunks, 1};
  std::vector<SweepLevel> sweep;
  for (int64_t budget : budgets) {
    auto level = RunSweepLevel(config, budget);
    if (!level.ok()) {
      std::fprintf(stderr, "sweep(%lld): %s\n",
                   static_cast<long long>(budget),
                   level.status().ToString().c_str());
      return 1;
    }
    sweep.push_back(*level);
  }
  bool sweep_ok = true;
  for (size_t i = 0; i < sweep.size(); ++i) {
    // Never meaningfully below cold (1.10x covers warm-seed noise)...
    sweep_ok = sweep_ok &&
               sweep[i].warm_makespan_s <= sweep[i].cold_makespan_s * 1.10;
    // ...and monotonically degrading as the budget shrinks.
    if (i > 0) {
      sweep_ok = sweep_ok && sweep[i].warm_makespan_s >=
                                 sweep[i - 1].warm_makespan_s * 0.98;
    }
  }

  bool pass = all_ok && repeat_ok && mutated_ok && twin_ok && sweep_ok &&
              dangling == 0;

  if (json) {
    std::printf("{\"cold_makespan_s\": %.3f, \"repeat_makespan_s\": %.3f, "
                "\"repeat_speedup\": %.2f, \"outputs_identical\": %s, "
                "\"total_tasks\": %d, \"waves\": [",
                cold.makespan_s, repeat.makespan_s, repeat_speedup,
                outputs_identical ? "true" : "false",
                config.total_tasks());
    for (size_t i = 0; i < waves.size(); ++i) {
      const WaveStats& w = waves[i];
      std::printf("%s{\"name\": \"%s\", \"makespan_s\": %.3f, "
                  "\"tasks_cached\": %d, \"tasks_completed\": %d}",
                  i > 0 ? ", " : "", w.name.c_str(), w.makespan_s,
                  w.tasks_cached, w.tasks_completed);
    }
    std::printf("], \"twin\": {\"tasks_cached\": %d, \"tenant_denied\": "
                "%lld}, \"staging\": {\"hits\": %lld, \"bytes_served\": "
                "%lld}, \"dangling_entries\": %lld, \"eviction_sweep\": [",
                twin.tasks_cached, static_cast<long long>(twin_denied),
                static_cast<long long>(staging.hits),
                static_cast<long long>(staging.bytes_served),
                static_cast<long long>(dangling));
    for (size_t i = 0; i < sweep.size(); ++i) {
      const SweepLevel& s = sweep[i];
      std::printf("%s{\"max_entries\": %lld, \"cold_makespan_s\": %.3f, "
                  "\"warm_makespan_s\": %.3f, \"warm_cached\": %d}",
                  i > 0 ? ", " : "",
                  static_cast<long long>(s.max_entries), s.cold_makespan_s,
                  s.warm_makespan_s, s.warm_cached);
    }
    std::printf("], \"pass\": %s}\n", pass ? "true" : "false");
    return pass ? 0 : 1;
  }

  bench::PrintHeader("Result-cache reuse: repeated SNV submission waves");
  std::printf("snv %d chunks x %lld MiB (%d tasks) on 3 workers x 2 "
              "cores; result cache on, staging cache unbounded%s\n\n",
              config.chunks, static_cast<long long>(config.chunk_mb),
              config.total_tasks(), quick ? "  [quick]" : "");
  std::printf("%-10s %12s %8s %8s %9s\n", "wave", "makespan", "cached",
              "total", "speedup");
  bench::PrintRule(52);
  for (const WaveStats& w : waves) {
    std::printf("%-10s %12s %8d %8d %8.1fx\n", w.name.c_str(),
                HumanDuration(w.makespan_s).c_str(), w.tasks_cached,
                w.tasks_completed, speedup_vs_cold(w.makespan_s));
  }
  std::printf("\nrepeat outputs byte-identical: %s; staging hits %lld "
              "(%s served); dangling entries %lld\n",
              outputs_identical ? "yes" : "NO",
              static_cast<long long>(staging.hits),
              HumanBytes(static_cast<double>(staging.bytes_served)).c_str(),
              static_cast<long long>(dangling));
  std::printf("twin tenant: %d cached (want 0), %lld lookups denied\n",
              twin.tasks_cached, static_cast<long long>(twin_denied));

  std::printf("\neviction-pressure sweep (identical cold+warm pair per "
              "budget)\n");
  std::printf("%-12s %12s %12s %8s %9s\n", "max_entries", "cold", "warm",
              "cached", "speedup");
  bench::PrintRule(58);
  for (const SweepLevel& s : sweep) {
    std::printf("%-12s %12s %12s %8d %8.1fx\n",
                s.max_entries == 0
                    ? "unbounded"
                    : StrFormat("%lld",
                                static_cast<long long>(s.max_entries))
                          .c_str(),
                HumanDuration(s.cold_makespan_s).c_str(),
                HumanDuration(s.warm_makespan_s).c_str(), s.warm_cached,
                std::min(s.cold_makespan_s /
                             std::max(s.warm_makespan_s, 1e-3),
                         9999.0));
  }

  if (!all_ok) {
    std::fprintf(stderr, "\nFAIL: not every submission succeeded\n");
    return 1;
  }
  if (!repeat_ok) {
    std::fprintf(stderr,
                 "\nFAIL: identical repeat must be fully cached, "
                 "byte-identical, and >= 5x faster (got %.1fx, %d/%d "
                 "cached)\n",
                 repeat_speedup, repeat.tasks_cached,
                 repeat.tasks_completed);
    return 1;
  }
  if (!mutated_ok) {
    std::fprintf(stderr, "\nFAIL: a mutated wave missed its hit budget "
                         "or ran slower than cold\n");
    return 1;
  }
  if (!twin_ok) {
    std::fprintf(stderr, "\nFAIL: twin tenant saw cache hits (%d) or no "
                         "denials (%lld)\n",
                 twin.tasks_cached, static_cast<long long>(twin_denied));
    return 1;
  }
  if (!sweep_ok) {
    std::fprintf(stderr, "\nFAIL: eviction sweep not monotone toward "
                         "cold (or warm fell past cold)\n");
    return 1;
  }
  if (dangling != 0) {
    std::fprintf(stderr, "\nFAIL: %lld dangling cache entries\n",
                 static_cast<long long>(dangling));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
