// Elastic-membership benchmark (docs/elastic-cluster.md): three legs
// over the same 4-workflow burst (2x SNV + 2x iterative k-means, a mix
// of wide fan-out and narrow sequential tails).
//
//   drain gate    — two node losses at the same virtual times, once as
//                   warned spot revocations (120 s notice, graceful
//                   drain) and once as unwarned kills. Metric: wasted
//                   container-seconds (drained_work_s + lost_work_s).
//                   GATE: warned waste <= 1/2 of unwarned waste.
//   frontier      — autoscaler policies starting from 4 workers vs a
//                   fixed 12-worker fleet, on the node-hours (cost) vs
//                   makespan (speed) plane. GATE: at least one policy
//                   dominates the fixed fleet — strictly fewer
//                   node-hours at a makespan within 10%.
//   storm         — a reactive fleet riding out four warned revocations
//                   while the autoscaler back-fills capacity.
//                   GATE: the /out namespace is byte-identical (same
//                   paths, same sizes) to the calm fixed-fleet run.
//
// `--json` emits one JSON object for CI artifact collection; the exit
// code is non-zero when any submission fails or any gate is missed.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/elastic/elastic_cluster.h"
#include "src/service/workflow_service.h"
#include "src/sim/fault_injector.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

struct BurstEntry {
  std::string name;
  StagedWorkflow staged;
};

std::vector<BurstEntry> MakeBurst(bool quick) {
  std::vector<BurstEntry> burst;
  for (int i = 0; i < 2; ++i) {
    SnvWorkloadOptions snv;
    snv.num_chunks = 8;
    snv.chunk_bytes = (quick ? 16LL : 48LL) << 20;
    snv.input_dir = StrFormat("/in/snv%d", i);
    snv.output_dir = StrFormat("/out/snv%d", i);
    GeneratedWorkload w = MakeSnvCallingWorkflow(snv);
    BurstEntry e;
    e.name = StrFormat("snv-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  for (int i = 0; i < 2; ++i) {
    KmeansWorkloadOptions kmeans;
    // The iterative tail is the frontier's idle phase: long enough that
    // scale-in policies can observe sustained empty workers and retire
    // them while the k-means AMs grind on alone.
    kmeans.points_bytes = (quick ? 12LL : 32LL) << 20;
    kmeans.converge_after = 4;
    kmeans.input_path = StrFormat("/in/kmeans%d/points.csv", i);
    GeneratedWorkload w = MakeKmeansWorkflow(kmeans);
    BurstEntry e;
    e.name = StrFormat("kmeans-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  return burst;
}

struct FleetConfig {
  std::string label;
  std::string autoscaler = "off";
  int workers = 12;
  int min_nodes = 4;
  int max_nodes = 12;
  std::string faults;
};

struct RunResult {
  double makespan_s = 0.0;
  double node_hours = 0.0;
  int succeeded = 0;
  int total = 0;
  int tasks_completed = 0;
  double drained_work_s = 0.0;
  double lost_work_s = 0.0;
  ElasticStats elastic;
  FaultCounters faults;
  /// (path, size) of every /out file — the byte-identity fingerprint.
  std::map<std::string, int64_t> outputs;
};

Result<RunResult> RunBurst(const FleetConfig& config, bool quick) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", config.workers));
  karamel.SetAttribute("cluster/cores", "3");
  karamel.SetAttribute("cluster/memory_mb", "4096");
  karamel.SetAttribute("elastic/autoscaler", config.autoscaler);
  karamel.SetAttribute("elastic/min_nodes",
                       StrFormat("%d", config.min_nodes));
  karamel.SetAttribute("elastic/max_nodes",
                       StrFormat("%d", config.max_nodes));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(ElasticInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  std::vector<BurstEntry> burst = MakeBurst(quick);
  for (const BurstEntry& e : burst) {
    for (const auto& [path, size] : e.staged.inputs) {
      if (!d->dfs->Exists(path)) {
        HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
      }
    }
  }

  WorkflowServiceOptions service_options;
  service_options.rm_scheduler = "fair";
  ServiceQueueOptions queue;
  queue.rm.name = "default";
  queue.max_concurrent_ams = 8;
  service_options.queues = {queue};
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowService> service,
                         WorkflowService::Create(d.get(), service_options));

  FaultInjector injector(&d->engine, /*seed=*/20170321);
  if (!config.faults.empty()) {
    service->InstallFaultHandlers(&injector);
    HIWAY_RETURN_IF_ERROR(injector.ArmSpec(config.faults));
  }

  for (const BurstEntry& e : burst) {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                           HiWayClient(d.get()).MakeSource(e.staged));
    SubmissionOptions sub;
    sub.source_factory = [dep = d.get(), staged = e.staged] {
      return HiWayClient(dep).MakeSource(staged);
    };
    HIWAY_RETURN_IF_ERROR(
        service->Submit(e.name, std::move(source), sub).status());
  }
  HIWAY_RETURN_IF_ERROR(service->RunToCompletion());

  RunResult result;
  result.total = static_cast<int>(burst.size());
  result.faults = injector.counters();
  result.elastic = d->elastic->stats();  // Accrues up to now
  result.node_hours = result.elastic.node_seconds / 3600.0;
  result.drained_work_s = d->rm->counters().drained_work_s;
  result.lost_work_s = d->rm->counters().lost_work_s;
  for (const SubmissionRecord& rec : service->Records()) {
    if (rec.state == SubmissionState::kSucceeded) ++result.succeeded;
    result.makespan_s = std::max(result.makespan_s, rec.finished_at);
    result.tasks_completed += rec.report.tasks_completed;
  }
  for (const std::string& path : d->dfs->ListFiles()) {
    if (path.rfind("/out", 0) != 0) continue;
    auto info = d->dfs->Stat(path);
    if (info.ok()) result.outputs[path] = info->size_bytes;
  }
  return result;
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bool json = JsonMode(argc, argv);

  // ---- Calm fixed-fleet baseline (also the storm's reference). ----
  FleetConfig fixed;
  fixed.label = "fixed-12";
  auto baseline = RunBurst(fixed, quick);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }
  double m = baseline->makespan_s;

  // ---- Leg 1: warned drain vs unwarned kill, same nodes, same times. --
  // A tighter 6-worker fleet keeps every node busy mid-run, so the
  // struck nodes actually hold in-flight work (AMs land on the low ids;
  // the victims are pure task nodes).
  FleetConfig tight;
  tight.label = "fixed-6";
  tight.workers = 6;
  tight.min_nodes = 6;
  tight.max_nodes = 6;
  auto tight_run = RunBurst(tight, quick);
  if (!tight_run.ok()) {
    std::fprintf(stderr, "fixed-6: %s\n",
                 tight_run.status().ToString().c_str());
    return 1;
  }
  double m6 = tight_run->makespan_s;
  FleetConfig warned = tight;
  warned.label = "warned";
  warned.faults = StrFormat(
      "spot-revoke@%.1f:node=5:warn=120, spot-revoke@%.1f:node=4:warn=120",
      0.30 * m6, 0.55 * m6);
  FleetConfig unwarned = tight;
  unwarned.label = "unwarned";
  unwarned.faults = StrFormat("kill-node@%.1f:node=5, kill-node@%.1f:node=4",
                              0.30 * m6, 0.55 * m6);
  auto warned_run = RunBurst(warned, quick);
  auto unwarned_run = RunBurst(unwarned, quick);
  if (!warned_run.ok() || !unwarned_run.ok()) {
    std::fprintf(stderr, "drain legs failed: %s / %s\n",
                 warned_run.status().ToString().c_str(),
                 unwarned_run.status().ToString().c_str());
    return 1;
  }
  double warned_waste =
      warned_run->drained_work_s + warned_run->lost_work_s;
  double unwarned_waste = unwarned_run->lost_work_s;
  bool drain_gate =
      unwarned_waste <= 0.0 || warned_waste <= 0.5 * unwarned_waste;

  // ---- Leg 2: autoscaler frontier vs the fixed fleet. ----
  std::vector<FleetConfig> policies;
  // Two families: scale-out policies that start small and chase the
  // burst, and scale-in policies that start at the fixed fleet's size
  // and retire workers through the k-means tail.
  for (const char* name : {"reactive", "aggressive", "conservative"}) {
    FleetConfig c;
    c.label = name;
    c.autoscaler = name;
    c.workers = 6;
    c.min_nodes = 4;
    c.max_nodes = 12;
    policies.push_back(std::move(c));
  }
  for (const char* name : {"reactive", "aggressive"}) {
    FleetConfig c;
    c.label = StrFormat("%s-12", name);
    c.autoscaler = name;
    c.workers = 12;
    c.min_nodes = 6;
    c.max_nodes = 12;
    policies.push_back(std::move(c));
  }
  std::vector<std::pair<FleetConfig, RunResult>> frontier;
  for (const FleetConfig& c : policies) {
    auto r = RunBurst(c, quick);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", c.label.c_str(),
                   r.status().ToString().c_str());
      return 1;
    }
    frontier.emplace_back(c, *r);
  }
  std::string dominator;
  for (const auto& [c, r] : frontier) {
    if (r.succeeded == r.total && r.node_hours < baseline->node_hours &&
        r.makespan_s <= 1.10 * baseline->makespan_s) {
      dominator = c.label;
      break;
    }
  }
  bool frontier_gate = !dominator.empty();

  // ---- Leg 3: revocation storm with autoscaled back-fill. ----
  FleetConfig storm;
  storm.label = "storm";
  storm.autoscaler = "reactive";
  storm.workers = 12;
  storm.min_nodes = 6;
  storm.max_nodes = 14;
  storm.faults = StrFormat(
      "spot-revoke@%.1f:warn=60, spot-revoke@%.1f:warn=60, "
      "spot-revoke@%.1f:warn=60, spot-revoke@%.1f:warn=60",
      0.20 * m, 0.35 * m, 0.50 * m, 0.65 * m);
  auto storm_run = RunBurst(storm, quick);
  if (!storm_run.ok()) {
    std::fprintf(stderr, "storm: %s\n", storm_run.status().ToString().c_str());
    return 1;
  }
  bool storm_gate = storm_run->succeeded == storm_run->total &&
                    storm_run->outputs == baseline->outputs;

  bool all_ok = baseline->succeeded == baseline->total &&
                warned_run->succeeded == warned_run->total &&
                unwarned_run->succeeded == unwarned_run->total &&
                drain_gate && frontier_gate && storm_gate;

  if (json) {
    std::printf(
        "{\"baseline\": {\"makespan_s\": %.3f, \"node_hours\": %.4f, "
        "\"succeeded\": %d, \"total\": %d}, "
        "\"drain\": {\"warned_waste_s\": %.3f, \"unwarned_waste_s\": %.3f, "
        "\"warned_makespan_s\": %.3f, \"unwarned_makespan_s\": %.3f, "
        "\"gate\": %s}, "
        "\"frontier\": {",
        baseline->makespan_s, baseline->node_hours, baseline->succeeded,
        baseline->total, warned_waste, unwarned_waste,
        warned_run->makespan_s, unwarned_run->makespan_s,
        drain_gate ? "true" : "false");
    for (size_t i = 0; i < frontier.size(); ++i) {
      const auto& [c, r] = frontier[i];
      std::printf(
          "%s\"%s\": {\"makespan_s\": %.3f, \"node_hours\": %.4f, "
          "\"nodes_added\": %d, \"nodes_decommissioned\": %d}",
          i == 0 ? "" : ", ", c.label.c_str(), r.makespan_s, r.node_hours,
          r.elastic.nodes_added, r.elastic.nodes_decommissioned);
    }
    std::printf(
        ", \"dominator\": \"%s\", \"gate\": %s}, "
        "\"storm\": {\"makespan_s\": %.3f, \"node_hours\": %.4f, "
        "\"revocations\": %d, \"nodes_added\": %d, "
        "\"outputs_identical\": %s, \"gate\": %s}}\n",
        dominator.c_str(), frontier_gate ? "true" : "false",
        storm_run->makespan_s, storm_run->node_hours,
        storm_run->elastic.nodes_revoked, storm_run->elastic.nodes_added,
        storm_run->outputs == baseline->outputs ? "true" : "false",
        storm_gate ? "true" : "false");
    return all_ok ? 0 : 1;
  }

  bench::PrintHeader("elastic membership: drain, frontier, storm");
  std::printf("burst: 2x SNV + 2x k-means%s; baseline fixed fleet of 12\n\n",
              quick ? "  [quick]" : "");

  std::printf("[drain] 6-worker fleet, node losses at t=%.0fs and t=%.0fs\n",
              0.30 * m6, 0.55 * m6);
  std::printf("  %-10s wasted=%8.1fs makespan=%s\n", "warned", warned_waste,
              HumanDuration(warned_run->makespan_s).c_str());
  std::printf("  %-10s wasted=%8.1fs makespan=%s\n", "unwarned",
              unwarned_waste,
              HumanDuration(unwarned_run->makespan_s).c_str());
  std::printf("  gate (warned <= unwarned/2): %s\n\n",
              drain_gate ? "PASS" : "FAIL");

  std::printf("[frontier] policies from 6 workers (max 12) vs fixed 12\n");
  std::printf("  %-14s %12s %12s %8s %8s\n", "fleet", "makespan",
              "node-hours", "joined", "retired");
  bench::PrintRule(60);
  std::printf("  %-14s %12s %12.4f %8s %8s\n", "fixed-12",
              HumanDuration(baseline->makespan_s).c_str(),
              baseline->node_hours, "-", "-");
  for (const auto& [c, r] : frontier) {
    std::printf("  %-14s %12s %12.4f %8d %8d\n", c.label.c_str(),
                HumanDuration(r.makespan_s).c_str(), r.node_hours,
                r.elastic.nodes_added, r.elastic.nodes_decommissioned);
  }
  std::printf("  gate (some policy dominates): %s%s%s\n\n",
              frontier_gate ? "PASS (" : "FAIL", dominator.c_str(),
              frontier_gate ? ")" : "");

  std::printf("[storm] 4 warned revocations, reactive back-fill\n");
  std::printf("  makespan=%s node-hours=%.4f revoked=%d joined=%d\n",
              HumanDuration(storm_run->makespan_s).c_str(),
              storm_run->node_hours, storm_run->elastic.nodes_revoked,
              storm_run->elastic.nodes_added);
  std::printf("  gate (outputs byte-identical to calm run): %s\n",
              storm_gate ? "PASS" : "FAIL");

  if (!all_ok) {
    std::fprintf(stderr, "\nFAIL: a gate was missed or a submission died\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
