// Failover benchmark: an 8-workflow burst submitted through the
// WorkflowService, run once undisturbed (baseline) and once with AM-node
// kills injected mid-flight. Every submission must still complete;
// the interesting numbers are what the failures cost:
//
//   recovery latency  — AM declared dead -> replacement AM registered
//                       (p50 / p95 / max across all failovers)
//   wasted-work ratio — tasks that had completed before a failure but
//                       were NOT memoised by the replacement attempt,
//                       as a fraction of the completed-at-failure work
//                       (provenance replay should keep this < 0.3)
//   makespan overhead — faulted burst makespan / baseline makespan
//
// The fault schedule is derived from the measured baseline makespan
// (strikes at 25% and 55%), so the kills land while AMs are genuinely
// mid-workflow at any scale. `--json` emits the results as a single
// JSON object for CI artifact collection.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/metrics.h"
#include "src/service/workflow_service.h"
#include "src/sim/fault_injector.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

struct BurstEntry {
  std::string name;
  StagedWorkflow staged;
};

/// Eight workflows: four SNV-calling pipelines and four k-means runs,
/// enough concurrent AMs that a node kill reliably hits one.
std::vector<BurstEntry> MakeBurst(bool quick) {
  std::vector<BurstEntry> burst;
  for (int i = 0; i < 4; ++i) {
    SnvWorkloadOptions snv;
    snv.num_chunks = 4;
    snv.chunk_bytes = (quick ? 16LL : 48LL) << 20;
    snv.input_dir = StrFormat("/in/snv%d", i);
    snv.output_dir = StrFormat("/out/snv%d", i);
    GeneratedWorkload w = MakeSnvCallingWorkflow(snv);
    BurstEntry e;
    e.name = StrFormat("snv-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  for (int i = 0; i < 4; ++i) {
    KmeansWorkloadOptions kmeans;
    kmeans.points_bytes = (quick ? 8LL : 24LL) << 20;
    kmeans.converge_after = 3;
    kmeans.input_path = StrFormat("/in/kmeans%d/points.csv", i);
    GeneratedWorkload w = MakeKmeansWorkflow(kmeans);
    BurstEntry e;
    e.name = StrFormat("kmeans-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  return burst;
}

struct RunStats {
  double makespan_s = 0.0;
  int succeeded = 0;
  int total = 0;
  int tasks_completed = 0;
  int am_failures = 0;
  std::vector<double> recovery_latency_s;
  int completed_at_failure = 0;  // sum over failovers
  int memoised = 0;              // sum of tasks_memoised on failed-over subs
  FaultCounters faults;
};

/// One burst run; `fault_spec` empty means the undisturbed baseline.
Result<RunStats> RunBurst(const std::string& fault_spec, bool quick) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "10");
  karamel.SetAttribute("cluster/cores", "3");
  karamel.SetAttribute("cluster/memory_mb", "4096");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  std::vector<BurstEntry> burst = MakeBurst(quick);
  for (const BurstEntry& e : burst) {
    for (const auto& [path, size] : e.staged.inputs) {
      if (!d->dfs->Exists(path)) {
        HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
      }
    }
  }

  WorkflowServiceOptions service_options;
  service_options.rm_scheduler = "fair";
  ServiceQueueOptions queue;
  queue.rm.name = "default";
  queue.max_concurrent_ams = 8;
  service_options.queues = {queue};
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowService> service,
                         WorkflowService::Create(d.get(), service_options));

  FaultInjector injector(&d->engine, /*seed=*/20170321);
  if (!fault_spec.empty()) {
    service->InstallFaultHandlers(&injector);
    HIWAY_RETURN_IF_ERROR(injector.ArmSpec(fault_spec));
  }

  for (const BurstEntry& e : burst) {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                           HiWayClient(d.get()).MakeSource(e.staged));
    SubmissionOptions sub;
    sub.source_factory = [dep = d.get(), staged = e.staged] {
      return HiWayClient(dep).MakeSource(staged);
    };
    HIWAY_RETURN_IF_ERROR(
        service->Submit(e.name, std::move(source), sub).status());
  }
  HIWAY_RETURN_IF_ERROR(service->RunToCompletion());

  RunStats stats;
  stats.total = static_cast<int>(burst.size());
  stats.faults = injector.counters();
  for (const SubmissionRecord& rec : service->Records()) {
    if (rec.state == SubmissionState::kSucceeded) ++stats.succeeded;
    stats.makespan_s = std::max(stats.makespan_s, rec.finished_at);
    stats.tasks_completed += rec.report.tasks_completed;
    stats.am_failures += rec.am_failures;
    stats.recovery_latency_s.insert(stats.recovery_latency_s.end(),
                                    rec.recovery_latency_s.begin(),
                                    rec.recovery_latency_s.end());
    if (rec.am_failures > 0) {
      stats.completed_at_failure += rec.completed_at_last_failure;
      stats.memoised += rec.report.tasks_memoised;
    }
  }
  return stats;
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bool json = JsonMode(argc, argv);

  auto baseline = RunBurst("", quick);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 1;
  }

  // Strike while the burst is mid-flight: two AM-node kills at 25% and
  // 55% of the measured baseline makespan.
  std::string spec =
      StrFormat("kill-am-node@%.1f,kill-am-node@%.1f",
                0.25 * baseline->makespan_s, 0.55 * baseline->makespan_s);
  auto faulted = RunBurst(spec, quick);
  if (!faulted.ok()) {
    std::fprintf(stderr, "faulted: %s\n", faulted.status().ToString().c_str());
    return 1;
  }

  int wasted = faulted->completed_at_failure - faulted->memoised;
  double wasted_ratio =
      faulted->completed_at_failure > 0
          ? static_cast<double>(wasted) /
                static_cast<double>(faulted->completed_at_failure)
          : 0.0;
  double overhead = baseline->makespan_s > 0.0
                        ? faulted->makespan_s / baseline->makespan_s
                        : 0.0;
  double p50 = Percentile(faulted->recovery_latency_s, 50.0);
  double p95 = Percentile(faulted->recovery_latency_s, 95.0);
  double max_latency = 0.0;
  for (double r : faulted->recovery_latency_s) {
    max_latency = std::max(max_latency, r);
  }

  if (json) {
    std::printf(
        "{\"baseline\": {\"makespan_s\": %.3f, \"tasks_completed\": %d, "
        "\"succeeded\": %d, \"total\": %d}, "
        "\"faulted\": {\"makespan_s\": %.3f, \"tasks_completed\": %d, "
        "\"succeeded\": %d, \"total\": %d, \"am_failures\": %d, "
        "\"node_kills\": %d, "
        "\"recovery_latency_s\": {\"p50\": %.3f, \"p95\": %.3f, "
        "\"max\": %.3f}, "
        "\"completed_at_failure\": %d, \"memoised\": %d, "
        "\"wasted_tasks\": %d, \"wasted_work_ratio\": %.4f, "
        "\"makespan_overhead\": %.4f}}\n",
        baseline->makespan_s, baseline->tasks_completed, baseline->succeeded,
        baseline->total, faulted->makespan_s, faulted->tasks_completed,
        faulted->succeeded, faulted->total, faulted->am_failures,
        faulted->faults.node_kills, p50, p95, max_latency,
        faulted->completed_at_failure, faulted->memoised, wasted, wasted_ratio,
        overhead);
    return faulted->succeeded == faulted->total ? 0 : 1;
  }

  bench::PrintHeader("AM failover: 8-workflow burst vs AM-node kills");
  std::printf("burst: 4x SNV + 4x k-means, 10 workers x 3 cores, fair RM "
              "scheduler%s\nfaults: %s\n\n",
              quick ? "  [quick]" : "", spec.c_str());
  std::printf("%-10s %12s %8s %6s %12s\n", "run", "makespan", "tasks", "ok",
              "am-failures");
  bench::PrintRule(54);
  std::printf("%-10s %12s %8d %3d/%d %12s\n", "baseline",
              HumanDuration(baseline->makespan_s).c_str(),
              baseline->tasks_completed, baseline->succeeded, baseline->total,
              "-");
  std::printf("%-10s %12s %8d %3d/%d %12d\n", "faulted",
              HumanDuration(faulted->makespan_s).c_str(),
              faulted->tasks_completed, faulted->succeeded, faulted->total,
              faulted->am_failures);
  std::printf("\nrecovery latency: p50=%s p95=%s max=%s (%zu failover(s))\n",
              HumanDuration(p50).c_str(), HumanDuration(p95).c_str(),
              HumanDuration(max_latency).c_str(),
              faulted->recovery_latency_s.size());
  std::printf("wasted work: %d of %d completed-at-failure task(s) "
              "re-executed (ratio %.3f, memoised %d)\n",
              wasted, faulted->completed_at_failure, wasted_ratio,
              faulted->memoised);
  std::printf("makespan overhead: %.2fx baseline\n", overhead);
  if (faulted->succeeded != faulted->total) {
    std::fprintf(stderr, "\nFAIL: %d/%d submissions survived the faults\n",
                 faulted->succeeded, faulted->total);
    return 1;
  }
  if (wasted_ratio >= 0.3) {
    std::fprintf(stderr,
                 "\nWARN: wasted-work ratio %.3f exceeds the 0.3 target\n",
                 wasted_ratio);
  }
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
