// Reproduces Fig. 4 (Sec. 4.1, first experiment): mean runtime of the SNV
// calling workflow on Hi-WAY (Cuneiform, data-aware scheduling) vs Apache
// Tez, on a local 24-node cluster (2x Xeon E5-2620, 24 GB) behind a
// single one-gigabit switch, scaling the number of one-core/1 GB
// containers through 72 / 144 / 288 / 576.
//
// Paper's claims: (i) Hi-WAY performs comparably to Tez while network
// resources are sufficient (<= ~96 containers); (ii) beyond that the
// switch saturates and Hi-WAY scales favourably thanks to data-aware
// placement of the data-intensive alignment tasks onto nodes holding a
// replica of their input chunk; (iii) both runtime axes are log-scale,
// runtimes dropping from ~160 min to tens of minutes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/tez_am.h"
#include "src/core/client.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

constexpr int kNodes = 24;
constexpr int kChunks = 1152;
constexpr int kChunkMb = 128;

Result<std::unique_ptr<Deployment>> MakeDeployment(int containers,
                                                   uint64_t seed) {
  Karamel karamel;
  int cores_per_node = containers / kNodes;  // YARN offers this many slots
  karamel.SetAttribute("cluster/workers", StrFormat("%d", kNodes));
  karamel.SetAttribute("cluster/cores", StrFormat("%d", cores_per_node));
  karamel.SetAttribute("cluster/memory_mb",
                       StrFormat("%d", cores_per_node * 1024 + 1024));
  karamel.SetAttribute("cluster/disk_mbps", "300");  // local RAID
  karamel.SetAttribute("cluster/nic_mbps", "125");   // 1 GbE per port
  // Oversubscribed backplane of the single commodity gigabit switch: the
  // experiment's stated bottleneck beyond 96 concurrent containers.
  karamel.SetAttribute("cluster/switch_mbps", "250");
  // Scratch-heavy intermediate data is kept at replication 2 on this
  // cluster (inputs and finals still land on multiple nodes).
  karamel.SetAttribute("dfs/replication", "2");
  karamel.SetAttribute("snv/chunks", StrFormat("%d", kChunks));
  karamel.SetAttribute("snv/chunk_mb", StrFormat("%d", kChunkMb));
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  return karamel.Converge();
}

Result<double> RunHiWay(int containers, uint64_t seed) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(containers, seed));
  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 1;
  options.container_memory_mb = 1024;
  options.am_vcores = 0;  // AM co-located, negligible next to 24 cores
  options.am_memory_mb = 1024;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("snv-calling", "data-aware", options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

/// The hand-coded Tez DAG equivalent of the Cuneiform workflow (the paper
/// notes this implementation "took several weeks and a lot of code").
std::unique_ptr<StaticWorkflowSource> BuildSnvDagForTez(
    const StagedWorkflow& staged) {
  std::vector<TaskSpec> tasks;
  TaskId next = 1;
  for (const auto& [chunk, size] : staged.inputs) {
    std::string stem = StrFormat("/tez/snv/%lld", static_cast<long long>(next));
    TaskSpec align;
    align.id = next++;
    align.signature = "bowtie2";
    align.tool = "bowtie2";
    align.command = "bowtie2-wrapped " + chunk;
    align.input_files = {chunk};
    align.outputs.push_back(OutputSpec{"out", stem + ".sam", {}, false});
    TaskSpec sort;
    sort.id = next++;
    sort.signature = "samtools-sort";
    sort.tool = "samtools-sort";
    sort.command = "samtools-sort-wrapped";
    sort.input_files = {stem + ".sam"};
    sort.outputs.push_back(OutputSpec{"out", stem + ".bam", {}, false});
    TaskSpec call;
    call.id = next++;
    call.signature = "varscan";
    call.tool = "varscan";
    call.command = "varscan-wrapped";
    call.input_files = {stem + ".bam"};
    call.outputs.push_back(OutputSpec{"out", stem + ".vcf", {}, false});
    TaskSpec annotate;
    annotate.id = next++;
    annotate.signature = "annovar";
    annotate.tool = "annovar";
    annotate.command = "annovar-wrapped";
    annotate.input_files = {stem + ".vcf"};
    annotate.outputs.push_back(OutputSpec{"out", stem + ".csv", {}, false});
    tasks.push_back(std::move(align));
    tasks.push_back(std::move(sort));
    tasks.push_back(std::move(call));
    tasks.push_back(std::move(annotate));
  }
  return std::make_unique<StaticWorkflowSource>("snv-tez", std::move(tasks));
}

Result<double> RunTez(int containers, uint64_t seed) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(containers, seed));
  auto source = BuildSnvDagForTez(d->workflows.at("snv-calling"));
  TezOptions options;
  options.container_vcores = 1;
  options.container_memory_mb = 1024;
  options.seed = seed;
  TezAm am(d->cluster.get(), d->rm.get(), d->dfs.get(), &d->tools, options);
  HIWAY_RETURN_IF_ERROR(am.Submit(source.get()));
  HIWAY_ASSIGN_OR_RETURN(TezReport report, am.RunToCompletion());
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

int Main(int argc, char** argv) {
  const int runs = bench::QuickMode(argc, argv) ? 1 : 3;
  bench::PrintHeader(
      "Figure 4: SNV calling, Hi-WAY (Cuneiform, data-aware) vs Tez "
      "(24 nodes, 1 GbE switch)");
  std::printf(
      "%d run(s) per configuration; %d chunks x %d MB input; runtimes in "
      "minutes (log-log in the paper).\n\n",
      runs, kChunks, kChunkMb);
  std::printf("%11s  %14s  %14s  %14s\n", "containers", "Hi-WAY (min)",
              "Tez (min)", "Tez/Hi-WAY");
  bench::PrintRule(60);
  double ratio_small = 0.0;
  double ratio_large = 0.0;
  for (int containers : {72, 144, 288, 576}) {
    std::vector<double> hiway;
    std::vector<double> tez;
    for (int run = 0; run < runs; ++run) {
      uint64_t seed = 4000 + static_cast<uint64_t>(containers + run);
      auto h = RunHiWay(containers, seed);
      auto t = RunTez(containers, seed);
      if (!h.ok() || !t.ok()) {
        std::fprintf(stderr, "run failed: %s / %s\n",
                     h.status().ToString().c_str(),
                     t.status().ToString().c_str());
        return 1;
      }
      hiway.push_back(*h / 60.0);
      tez.push_back(*t / 60.0);
    }
    double ratio = bench::Mean(tez) / bench::Mean(hiway);
    if (containers == 72) ratio_small = ratio;
    if (containers == 576) ratio_large = ratio;
    std::printf("%11d  %8.1f ±%4.1f  %8.1f ±%4.1f  %13.2fx\n", containers,
                bench::Mean(hiway), bench::StdDev(hiway), bench::Mean(tez),
                bench::StdDev(tez), ratio);
  }
  bench::PrintRule(60);
  bool comparable_small = ratio_small < 1.15;
  bool favourable_large = ratio_large > 1.3;
  std::printf(
      "Paper's claims: comparable at low concurrency (ratio %.2fx -> %s), "
      "Hi-WAY scales favourably once the switch saturates "
      "(ratio %.2fx at 576 -> %s).\n",
      ratio_small, comparable_small ? "OK" : "MISS", ratio_large,
      favourable_large ? "OK" : "MISS");
  return (comparable_small && favourable_large) ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
