// Reproduces Fig. 6 (Sec. 4.1): resource utilisation (CPU load, I/O
// utilisation, network throughput) of the VMs hosting the Hadoop master
// processes, the Hi-WAY AM, and a representative worker, across the weak
// scaling experiment of Table 2 / Fig. 5.
//
// Paper's claims: master-process load grows steadily with cluster size but
// stays below 5 % of capacity even at 128 workers / 1 TB; the Hi-WAY AM's
// load is of the same order of magnitude as the Hadoop masters'; workers
// run at CPU saturation (load ~2.0 of 2 cores) with disk and NIC
// under-utilised — i.e. the cluster is compute-bound and the masters are
// nowhere near collapse.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/metrics.h"

namespace hiway {
namespace {

struct UtilRow {
  int workers;
  RoleUtilization hadoop_master;
  RoleUtilization hiway_am;
  RoleUtilization worker;
};

Result<UtilRow> RunScale(int workers, uint64_t seed) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", workers + 2));
  karamel.SetAttribute("cluster/cores", "2");
  karamel.SetAttribute("cluster/memory_mb", "7680");
  karamel.SetAttribute("cluster/disk_mbps", "150");
  karamel.SetAttribute("cluster/nic_mbps", "62");
  karamel.SetAttribute("cluster/switch_mbps", "20000");
  karamel.SetAttribute("cluster/s3_mbps", "20000");
  karamel.SetAttribute("dfs/first_datanode", "2");
  karamel.SetAttribute("snv/chunks", StrFormat("%d", workers * 8));
  karamel.SetAttribute("snv/chunk_mb", "1024");
  karamel.SetAttribute("snv/cram", "1");
  karamel.SetAttribute("snv/ingest", "s3");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 2;
  options.container_memory_mb = 7000;
  options.am_node = 1;
  options.am_vcores = 2;
  options.am_memory_mb = 7000;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(
      ApplicationId blocker,
      d->rm->RegisterApplication("hadoop-masters", nullptr, 2, 7000, 0));
  (void)blocker;
  size_t prov_before = d->provenance->size();
  d->net.ResetStats();
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("snv-calling", "fcfs", options));
  HIWAY_RETURN_IF_ERROR(report.status);

  UtilRow row;
  row.workers = workers;
  // Worker-side utilisation straight from the flow network (node 2 is the
  // first worker; average across all workers).
  row.worker = MeanWorkerUtilization(d->net, *d->cluster, 2,
                                     static_cast<NodeId>(workers + 1));
  // Master-side utilisation from the control-plane cost model.
  MasterLoadInputs inputs;
  inputs.duration_s = report.Makespan();
  inputs.num_workers = workers;
  inputs.rm = d->rm->counters();
  inputs.dfs = d->dfs->counters();
  inputs.am_decisions = report.scheduler_invocations;
  inputs.provenance_events =
      static_cast<int64_t>(d->provenance->size() - prov_before);
  inputs.mean_running_containers = workers;  // 1 container/worker, saturated
  MasterLoad load = ComputeMasterLoad(inputs);
  row.hadoop_master = load.hadoop_master;
  row.hiway_am = load.hiway_am;
  return row;
}

int Main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  bench::PrintHeader(
      "Figure 6: resource utilisation of master and worker VMs across the "
      "weak-scaling experiment");
  std::printf(
      "CPU load in cores (peak 2.0), I/O utilisation in %% of device, "
      "network in MB/s.\n\n");
  std::printf(
      "%8s | %9s %7s %9s | %9s %7s %9s | %9s %7s %9s\n", "workers",
      "mstr cpu", "io%", "net MB/s", "am cpu", "io%", "net MB/s", "wrkr cpu",
      "io%", "net MB/s");
  bench::PrintRule(104);

  std::vector<int> scales = quick ? std::vector<int>{1, 8, 32, 128}
                                  : std::vector<int>{1, 2, 4, 8, 16, 32,
                                                     64, 128};
  std::vector<UtilRow> rows;
  for (int workers : scales) {
    auto row = RunScale(workers, 6000 + static_cast<uint64_t>(workers));
    if (!row.ok()) {
      std::fprintf(stderr, "scale %d failed: %s\n", workers,
                   row.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%8d | %9.4f %7.2f %9.3f | %9.4f %7.2f %9.3f | %9.2f %7.1f %9.2f\n",
        workers, row->hadoop_master.cpu_load,
        row->hadoop_master.io_utilization * 100.0,
        row->hadoop_master.net_mbps, row->hiway_am.cpu_load,
        row->hiway_am.io_utilization * 100.0, row->hiway_am.net_mbps,
        row->worker.cpu_load, row->worker.io_utilization * 100.0,
        row->worker.net_mbps);
    rows.push_back(std::move(row).value());
  }
  bench::PrintRule(104);

  const UtilRow& largest = rows.back();
  bool masters_grow =
      rows.size() >= 2 &&
      largest.hadoop_master.cpu_load > rows.front().hadoop_master.cpu_load;
  bool masters_low = largest.hadoop_master.cpu_load < 0.10 &&  // < 5% of 2.0
                     largest.hiway_am.cpu_load < 0.10;
  bool same_magnitude =
      largest.hiway_am.cpu_load < 10.0 * largest.hadoop_master.cpu_load &&
      largest.hadoop_master.cpu_load < 10.0 * largest.hiway_am.cpu_load;
  bool workers_saturated = largest.worker.cpu_load > 1.6;  // of 2.0
  std::printf(
      "Master load grows with scale: %s; stays under 5%% of capacity at "
      "128 workers: %s;\nAM within one order of magnitude of Hadoop "
      "masters: %s; workers CPU-saturated (load %.2f / 2.0): %s\n",
      masters_grow ? "OK" : "MISS", masters_low ? "OK" : "MISS",
      same_magnitude ? "OK" : "MISS", largest.worker.cpu_load,
      workers_saturated ? "OK" : "MISS");
  return (masters_grow && masters_low && same_magnitude && workers_saturated)
             ? 0
             : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
