// Reproduces Fig. 8 (Sec. 4.2): average runtime of the TRAPLINE RNA-seq
// Galaxy workflow on Hi-WAY vs Galaxy CloudMan, on EC2 c3.2xlarge
// clusters of 1..6 nodes, five runs per configuration, one task per node.
//
// Paper numbers for reference (minutes):
//   Hi-WAY:   232.41  120.89  87.76  74.09  56.88   (sizes 1,2,3,4,6)
//   CloudMan: 300.15  152.84  116.84  95.08  74.10
// Claim under test: Hi-WAY outperforms CloudMan by >= 25 % at every
// cluster size, attributable to local transient SSD storage vs the shared
// EBS volume.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/cloudman.h"
#include "src/core/client.h"
#include "src/lang/galaxy_source.h"

namespace hiway {
namespace {

/// c3.2xlarge: 8 vCPU, 15 GB, 2x80 GB local SSD, "high" network.
ChefAttributes C3ClusterAttributes(int nodes, uint64_t seed) {
  ChefAttributes attrs;
  attrs["cluster/workers"] = StrFormat("%d", nodes);
  attrs["cluster/cores"] = "8";
  attrs["cluster/memory_mb"] = "15360";
  attrs["cluster/disk_mbps"] = "150";
  attrs["cluster/nic_mbps"] = "125";
  attrs["cluster/switch_mbps"] = "1250";
  attrs["cluster/ebs_mbps"] = "160";  // shared volume aggregate
  // The workflow's input data is "made locally available on all nodes" by
  // the setup recipes (Sec. 3.6) — full replication on these small
  // clusters (the DFS clamps to the cluster size).
  attrs["dfs/replication"] = "6";
  attrs["seed"] = StrFormat("%llu", static_cast<unsigned long long>(seed));
  return attrs;
}

Result<std::unique_ptr<Deployment>> MakeDeployment(int nodes, uint64_t seed) {
  Karamel karamel;
  for (const auto& [k, v] : C3ClusterAttributes(nodes, seed)) {
    karamel.SetAttribute(k, v);
  }
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(TraplineWorkflowRecipe());
  return karamel.Converge();
}

Result<double> RunHiWay(int nodes, uint64_t seed) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(nodes, seed));
  HiWayClient client(d.get());
  HiWayOptions options;
  // "we configured both Hi-WAY as well as ... Slurm to only allow
  // execution of a single task per worker node at any time."
  options.container_vcores = 8;
  options.container_memory_mb = 14000;
  options.am_vcores = 0;
  options.am_memory_mb = 512;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("trapline", "data-aware", options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

Result<double> RunCloudMan(int nodes, uint64_t seed) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(nodes, seed));
  const StagedWorkflow& staged = d->workflows.at("trapline");
  HIWAY_ASSIGN_OR_RETURN(
      std::unique_ptr<GalaxySource> source,
      GalaxySource::Parse(staged.document, staged.galaxy_inputs));
  CloudManOptions options;
  options.slots_per_node = 1;
  options.seed = seed;
  CloudManEngine engine(d->cluster.get(), &d->tools, options);
  for (const auto& [path, size] : staged.inputs) {
    engine.StageInput(path, size);
  }
  HIWAY_RETURN_IF_ERROR(engine.Submit(source.get()));
  HIWAY_ASSIGN_OR_RETURN(CloudManReport report, engine.RunToCompletion());
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

int Main(int argc, char** argv) {
  const int runs = bench::QuickMode(argc, argv) ? 2 : 5;
  bench::PrintHeader(
      "Figure 8: TRAPLINE RNA-seq on Hi-WAY vs Galaxy CloudMan "
      "(c3.2xlarge, 1 task/node)");
  std::printf("%d run(s) per configuration; runtimes in minutes.\n\n", runs);
  std::printf("%6s  %14s  %14s  %10s  %8s\n", "nodes", "Hi-WAY (min)",
              "CloudMan (min)", "speedup", "t-stat");
  bench::PrintRule(62);
  bool all_over_25 = true;
  for (int nodes : {1, 2, 3, 4, 6}) {
    std::vector<double> hiway;
    std::vector<double> cloudman;
    for (int run = 0; run < runs; ++run) {
      uint64_t seed = 1000 + static_cast<uint64_t>(nodes * 100 + run);
      auto h = RunHiWay(nodes, seed);
      auto c = RunCloudMan(nodes, seed);
      if (!h.ok() || !c.ok()) {
        std::fprintf(stderr, "run failed: %s %s\n",
                     h.status().ToString().c_str(),
                     c.status().ToString().c_str());
        return 1;
      }
      hiway.push_back(*h / 60.0);
      cloudman.push_back(*c / 60.0);
    }
    double speedup = bench::Mean(cloudman) / bench::Mean(hiway);
    all_over_25 = all_over_25 && speedup >= 1.25;
    std::printf("%6d  %8.2f ±%4.1f  %8.2f ±%4.1f  %9.2fx  %8.2f\n", nodes,
                bench::Mean(hiway), bench::StdDev(hiway),
                bench::Mean(cloudman), bench::StdDev(cloudman), speedup,
                bench::WelchT(cloudman, hiway));
  }
  bench::PrintRule(62);
  std::printf(
      "Paper's claim: Hi-WAY outperforms CloudMan by at least 25%% at\n"
      "every cluster size (1..6). Reproduced: %s\n",
      all_over_25 ? "YES" : "NO");
  return all_over_25 ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
