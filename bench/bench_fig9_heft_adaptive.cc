// Reproduces Fig. 9 (Sec. 4.3): adaptive HEFT scheduling of the Montage
// 0.25° DAX workflow on a deliberately heterogeneous EC2 cluster.
//
// Setup per the paper: 1 master + 11 m3.large workers (matching the
// workflow's degree of parallelism); synthetic load via `stress` — one
// worker unperturbed, five workers taxed with 1/4/16/64/256 CPU-bound
// processes, five others with 1/4/16/64/256 disk writers. Each of 80
// repetitions runs the workflow once under FCFS (baseline), then 20
// consecutive times under HEFT, whose runtime estimates come from the
// provenance accumulated *within* the repetition (wiped between reps).
//
// Paper's claims: (i) HEFT with no provenance is *worse* than FCFS (static
// placements onto stressed nodes); (ii) one prior run already makes HEFT
// significantly faster than FCFS; (iii) a second significant gain appears
// once every task signature has been observed on all 11 workers (after
// ~10-11 runs), along with a collapse of the runtime's std-dev.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/obs/trace_analyzer.h"
#include "src/obs/tracer.h"

namespace hiway {
namespace {

constexpr int kWorkers = 11;

Result<std::unique_ptr<Deployment>> MakeDeployment(uint64_t seed) {
  Karamel karamel;
  // Node 0 is the dedicated master VM; workers are nodes 1..11.
  karamel.SetAttribute("cluster/workers", StrFormat("%d", kWorkers + 1));
  karamel.SetAttribute("cluster/cores", "2");  // m3.large
  karamel.SetAttribute("cluster/memory_mb", "7680");
  karamel.SetAttribute("cluster/disk_mbps", "100");
  karamel.SetAttribute("cluster/nic_mbps", "62");
  karamel.SetAttribute("cluster/switch_mbps", "2000");
  karamel.SetAttribute("dfs/first_datanode", "1");
  karamel.SetAttribute("montage/images", "11");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(MontageWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  // Synthetic heterogeneity via `stress`: workers 1..5 CPU-taxed, workers
  // 6..10 disk-taxed with 1/4/16/64/256 processes; worker 11 unperturbed.
  const int levels[5] = {1, 4, 16, 64, 256};
  for (int i = 0; i < 5; ++i) {
    d->load->StressCpu(static_cast<NodeId>(1 + i), levels[i]);
    d->load->StressDisk(static_cast<NodeId>(6 + i), levels[i]);
  }
  // Master VM hosts only the AM.
  HIWAY_ASSIGN_OR_RETURN(
      ApplicationId blocker,
      d->rm->RegisterApplication("hadoop-masters", nullptr, 1, 5000, 0));
  (void)blocker;
  return d;
}

/// One workflow execution on an existing deployment. Output files from
/// prior executions are cleared first (consecutive runs of the paper
/// overwrite their workspace).
Result<double> RunOnce(Deployment* d, const std::string& policy,
                       uint64_t seed) {
  // Remove previous run's intermediate/output files from DFS.
  const StagedWorkflow& staged = d->workflows.at("montage");
  std::set<std::string> inputs;
  for (const auto& [path, size] : staged.inputs) inputs.insert(path);
  for (const std::string& path : d->dfs->ListFiles()) {
    if (inputs.find(path) == inputs.end()) {
      (void)d->dfs->Delete(path);
    }
  }
  d->tools.ResetInvocationCounts();
  HiWayClient client(d);
  HiWayOptions options;
  // One container per worker (identical container configuration across
  // the run, Sec. 5): the workflow's degree of parallelism matches the
  // eleven workers.
  options.container_vcores = 2;
  options.container_memory_mb = 5000;
  options.am_node = 0;
  options.am_vcores = 1;
  options.am_memory_mb = 1024;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("montage", policy, options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

int Main(int argc, char** argv) {
  const int reps = bench::QuickMode(argc, argv) ? 10 : 80;
  const int heft_runs = 20;
  bench::PrintHeader(
      "Figure 9: Montage under HEFT vs FCFS on a stressed, heterogeneous "
      "cluster (11 m3.large workers)");
  std::printf(
      "%d repetitions; each runs FCFS once, then %d consecutive HEFT runs "
      "with intra-repetition provenance.\n\n",
      reps, heft_runs);

  std::vector<double> fcfs_runtimes;
  // heft_runtimes[k] = runtimes of the k-th consecutive HEFT run (k prior
  // executions' provenance available).
  std::vector<std::vector<double>> heft_runtimes(
      static_cast<size_t>(heft_runs));

  for (int rep = 0; rep < reps; ++rep) {
    uint64_t seed = 9000 + static_cast<uint64_t>(rep) * 97;
    auto d = MakeDeployment(seed);
    if (!d.ok()) {
      std::fprintf(stderr, "deployment failed: %s\n",
                   d.status().ToString().c_str());
      return 1;
    }
    auto fcfs = RunOnce(d->get(), "fcfs", seed);
    if (!fcfs.ok()) {
      std::fprintf(stderr, "fcfs run failed: %s\n",
                   fcfs.status().ToString().c_str());
      return 1;
    }
    fcfs_runtimes.push_back(*fcfs);
    // Wipe provenance between the FCFS baseline and the HEFT series
    // ("between iterations however, all provenance data was removed").
    (*d)->provenance->Clear();
    (*d)->estimator.Clear();
    for (int k = 0; k < heft_runs; ++k) {
      auto heft = RunOnce(d->get(), "heft", seed + static_cast<uint64_t>(k));
      if (!heft.ok()) {
        std::fprintf(stderr, "heft run %d failed: %s\n", k,
                     heft.status().ToString().c_str());
        return 1;
      }
      heft_runtimes[static_cast<size_t>(k)].push_back(*heft);
    }
  }

  std::printf("%12s  %18s  %12s\n", "prior runs", "HEFT median (s)",
              "std dev (s)");
  bench::PrintRule(50);
  std::printf("%12s  %18.1f  %12.1f   <- FCFS ('greedy') baseline\n", "fcfs",
              bench::Median(fcfs_runtimes), bench::StdDev(fcfs_runtimes));
  for (int k = 0; k < heft_runs; ++k) {
    std::printf("%12d  %18.1f  %12.1f\n", k,
                bench::Median(heft_runtimes[static_cast<size_t>(k)]),
                bench::StdDev(heft_runtimes[static_cast<size_t>(k)]));
  }
  bench::PrintRule(50);

  // Critical-path attribution (execution tracing, non-gating): one extra
  // deployment, traced. Where does the HEFT-vs-FCFS gap come from? The
  // breakdown splits each makespan into scheduler-queue wait, data
  // movement, and compute along the longest dependent chain. Cold HEFT
  // loses on *compute* (static placements land on stressed nodes slow the
  // chain down); converged HEFT wins it back once the estimator has seen
  // every (task, node) pair and routes the chain around the stress.
  {
    uint64_t seed = 31337;
    auto d = MakeDeployment(seed);
    if (d.ok()) {
      (*d)->tracer.set_enabled(true);
      auto trace_one = [&](const std::string& policy,
                           uint64_t s) -> Result<CriticalPathReport> {
        (*d)->tracer.Clear();
        HIWAY_RETURN_IF_ERROR(RunOnce(d->get(), policy, s).status());
        TraceAnalyzer analyzer((*d)->tracer.Drain());
        return analyzer.CriticalPath();
      };
      auto fcfs_path = trace_one("fcfs", seed);
      (*d)->provenance->Clear();
      (*d)->estimator.Clear();
      auto heft_cold_path = trace_one("heft", seed);
      // Warm the estimator (untraced) until every task signature has
      // been observed everywhere, then trace the converged run.
      (*d)->tracer.set_enabled(false);
      for (int k = 1; k < 12; ++k) {
        (void)RunOnce(d->get(), "heft", seed + static_cast<uint64_t>(k));
      }
      (*d)->tracer.set_enabled(true);
      auto heft_warm_path = trace_one("heft", seed + 12);
      if (fcfs_path.ok() && heft_cold_path.ok() && heft_warm_path.ok()) {
        std::printf("\nCritical-path attribution (traced run, seed %llu):\n",
                    static_cast<unsigned long long>(seed));
        std::printf("  fcfs:           %s\n", fcfs_path->Summary().c_str());
        std::printf("  heft cold:      %s\n",
                    heft_cold_path->Summary().c_str());
        std::printf("  heft converged: %s\n",
                    heft_warm_path->Summary().c_str());
      }
    }
  }

  double fcfs_median = bench::Median(fcfs_runtimes);
  double heft0 = bench::Median(heft_runtimes[0]);
  double heft1 = bench::Median(heft_runtimes[1]);
  double heft_converged = bench::Median(heft_runtimes[heft_runs - 1]);
  double early_sd = bench::StdDev(heft_runtimes[2]);
  double late_sd = bench::StdDev(heft_runtimes[heft_runs - 1]);
  double t_one_run = bench::WelchT(fcfs_runtimes, heft_runtimes[1]);
  bool cold_worse = heft0 > fcfs_median;
  bool one_run_better = heft1 < fcfs_median && t_one_run > 1.7;
  bool converges = heft_converged < 0.8 * fcfs_median;
  bool stddev_collapses = late_sd < 0.6 * early_sd;
  std::printf(
      "HEFT without provenance worse than FCFS (%.0fs vs %.0fs): %s\n"
      "HEFT with 1 prior run significantly better (t=%.2f): %s\n"
      "Converged HEFT at least 20%% under FCFS (%.0fs vs %.0fs): %s\n"
      "Std-dev collapses once estimates are complete (%.1fs -> %.1fs): %s\n",
      heft0, fcfs_median, cold_worse ? "OK" : "MISS", t_one_run,
      one_run_better ? "OK" : "MISS", heft_converged, fcfs_median,
      converges ? "OK" : "MISS", early_sd, late_sd,
      stddev_collapses ? "OK" : "MISS");
  return (cold_worse && one_run_better && converges) ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
