// Storage-footprint benchmark: intermediate-data GC and the footprint
// estimator against a capacity-limited DFS (docs/storage-model.md).
//
// Workload: chains of N stages (each stage consumes its predecessor's
// output and produces one equally-sized file), run as concurrent
// submissions through the WorkflowService, every instance under its own
// path prefix. Without GC a chain keeps all N outputs on disk; with GC
// only the input, the freshly-produced file, and its not-yet-consumed
// predecessor are ever live, so far more chains fit into the same
// capacity.
//
// Three gates:
//   1. scale: the largest burst where every workflow succeeds at a fixed
//      DFS capacity is >= 2x larger with GC on than off;
//   2. estimate accuracy: the static footprint estimate
//      (src/gc/footprint.h) is within 25% of the traced actual peak
//      (WorkflowReport::peak_footprint_bytes) for a chain and a diamond;
//   3. byte-identical: target files (size and content fingerprint) match
//      between a GC-on and a GC-off run of the same workflows.
//
// `--quick` trims the scale probe for CI; `--json` emits one JSON object
// for artifact collection. Exit code 1 when a gate fails.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/gc/footprint.h"
#include "src/infra/karamel.h"
#include "src/service/workflow_service.h"

namespace hiway {
namespace {

constexpr int kChainStages = 8;
constexpr int64_t kStageBytes = 4LL << 20;  // 4 MiB per produced file
constexpr int64_t kCapacityMb = 64;         // scale-gate DFS capacity

bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

/// Linear chain under `prefix`: in -> mid0 -> ... -> out.
std::vector<TaskSpec> MakeChainTasks(const std::string& prefix) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < kChainStages; ++i) {
    TaskSpec t;
    t.id = i;
    t.signature = "chainstep";
    t.command = StrFormat("chainstep --stage %d", i);
    t.input_files = {i == 0 ? prefix + "/in"
                            : StrFormat("%s/mid%d", prefix.c_str(), i - 1)};
    OutputSpec out;
    out.param = "out";
    out.path = i == kChainStages - 1
                   ? prefix + "/out"
                   : StrFormat("%s/mid%d", prefix.c_str(), i);
    out.size_bytes = kStageBytes;
    t.outputs.push_back(std::move(out));
    tasks.push_back(std::move(t));
  }
  return tasks;
}

/// Diamond under `prefix`: in -> split -> {a, b} -> join (the smallest
/// graph where a file (split's output) has two consumers and fan-in
/// retirement matters).
std::vector<TaskSpec> MakeDiamondTasks(const std::string& prefix) {
  auto task = [&](TaskId id, std::vector<std::string> inputs,
                  const std::string& out_name) {
    TaskSpec t;
    t.id = id;
    t.signature = "chainstep";
    t.command = "chainstep --diamond " + out_name;
    t.input_files = std::move(inputs);
    OutputSpec out;
    out.param = "out";
    out.path = prefix + "/" + out_name;
    out.size_bytes = kStageBytes;
    t.outputs.push_back(std::move(out));
    return t;
  };
  return {task(0, {prefix + "/in"}, "split"),
          task(1, {prefix + "/split"}, "a"),
          task(2, {prefix + "/split"}, "b"),
          task(3, {prefix + "/a", prefix + "/b"}, "out")};
}

Result<std::unique_ptr<Deployment>> MakeDeployment(bool gc,
                                                   int64_t capacity_mb) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "8");
  // Replication 1 keeps raw == logical bytes, so the gate arithmetic in
  // the header comment reads off directly.
  karamel.SetAttribute("dfs/replication", "1");
  if (capacity_mb > 0) {
    karamel.SetAttribute("dfs/capacity_mb", StrFormat("%lld", (long long)capacity_mb));
  }
  if (gc) karamel.SetAttribute("hiway/gc", "on");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  ToolProfile chainstep;
  chainstep.name = "chainstep";
  chainstep.cpu_seconds_per_mb = 0.05;
  chainstep.fixed_cpu_seconds = 0.5;
  chainstep.runtime_noise_sigma = 0.0;
  d->tools.Register(std::move(chainstep));
  return d;
}

/// Runs `k` concurrent chains at the scale-gate capacity; true when every
/// submission succeeded.
Result<bool> RunBurst(int k, bool gc) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(gc, kCapacityMb));
  for (int i = 0; i < k; ++i) {
    HIWAY_RETURN_IF_ERROR(
        d->dfs->IngestFile(StrFormat("/wf%03d/in", i), kStageBytes));
  }
  WorkflowServiceOptions options;
  ServiceQueueOptions queue;
  queue.rm.name = "default";
  queue.max_concurrent_ams = k;
  queue.max_backlog = k + 1;
  options.queues.push_back(queue);
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowService> service,
                         WorkflowService::Create(d.get(), options));
  for (int i = 0; i < k; ++i) {
    std::string prefix = StrFormat("/wf%03d", i);
    auto source = std::make_unique<StaticWorkflowSource>(
        "chain-" + prefix, MakeChainTasks(prefix),
        std::vector<std::string>{prefix + "/out"});
    HIWAY_RETURN_IF_ERROR(
        service->Submit(prefix, std::move(source), {}).status());
  }
  HIWAY_RETURN_IF_ERROR(service->RunToCompletion());
  for (const SubmissionRecord& rec : service->Records()) {
    if (rec.state != SubmissionState::kSucceeded) return false;
  }
  return true;
}

/// Largest burst (up to `limit`) where every chain succeeds.
Result<int> MaxScale(bool gc, int limit) {
  int best = 0;
  for (int k = 1; k <= limit; ++k) {
    HIWAY_ASSIGN_OR_RETURN(bool ok, RunBurst(k, gc));
    if (!ok) break;
    best = k;
  }
  return best;
}

struct SingleRun {
  int64_t estimate_bytes = 0;      // static estimate, logical
  int64_t actual_peak_bytes = 0;   // traced by the collector, logical
  int64_t gc_bytes_collected = 0;
  std::vector<std::pair<int64_t, uint64_t>> targets;  // (size, content id)
};

/// One workflow on an uncapped deployment; with GC on the report carries
/// the traced peak, with GC off only the target fingerprints matter.
Result<SingleRun> RunSingle(const std::vector<TaskSpec>& tasks,
                            const std::vector<std::string>& targets,
                            const std::string& input, bool gc) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(gc, /*capacity_mb=*/0));
  HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(input, kStageBytes));
  SingleRun run;
  FootprintEstimate est = EstimateFootprint(tasks, targets, d->dfs.get());
  run.estimate_bytes = est.peak_bytes;
  StaticWorkflowSource source("bench", tasks, targets);
  HiWayClient client(d.get());
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.RunSource(&source, "data-aware", {}));
  HIWAY_RETURN_IF_ERROR(report.status);
  run.actual_peak_bytes = report.peak_footprint_bytes;
  run.gc_bytes_collected = report.gc_bytes_collected;
  for (const std::string& target : targets) {
    HIWAY_ASSIGN_OR_RETURN(DfsFileInfo info, d->dfs->Stat(target));
    run.targets.emplace_back(info.size_bytes, info.content_id);
  }
  return run;
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bool json = JsonMode(argc, argv);
  int limit = quick ? 8 : 16;

  auto scale_off = MaxScale(/*gc=*/false, limit);
  auto scale_on = MaxScale(/*gc=*/true, limit);
  if (!scale_off.ok() || !scale_on.ok()) {
    std::fprintf(stderr, "scale probe failed: %s\n",
                 (scale_off.ok() ? scale_on : scale_off)
                     .status()
                     .ToString()
                     .c_str());
    return 1;
  }
  double scale_ratio = *scale_off > 0
                           ? static_cast<double>(*scale_on) /
                                 static_cast<double>(*scale_off)
                           : 0.0;
  bool scale_ok = *scale_off > 0 && scale_ratio >= 2.0;

  struct Shape {
    const char* name;
    std::vector<TaskSpec> tasks;
    std::vector<std::string> targets;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"chain", MakeChainTasks("/single"), {"/single/out"}});
  shapes.push_back(
      {"diamond", MakeDiamondTasks("/single"), {"/single/out"}});

  bool estimate_ok = true;
  bool identical_ok = true;
  struct ShapeResult {
    std::string name;
    int64_t estimate = 0;
    int64_t actual = 0;
    double error = 0.0;
  };
  std::vector<ShapeResult> shape_results;
  for (const Shape& shape : shapes) {
    auto on = RunSingle(shape.tasks, shape.targets, "/single/in", true);
    auto off = RunSingle(shape.tasks, shape.targets, "/single/in", false);
    if (!on.ok() || !off.ok()) {
      std::fprintf(stderr, "%s run failed: %s\n", shape.name,
                   (on.ok() ? off : on).status().ToString().c_str());
      return 1;
    }
    ShapeResult r;
    r.name = shape.name;
    r.estimate = on->estimate_bytes;
    r.actual = on->actual_peak_bytes;
    r.error = r.actual > 0
                  ? std::fabs(static_cast<double>(r.estimate - r.actual)) /
                        static_cast<double>(r.actual)
                  : 1.0;
    if (r.error > 0.25) estimate_ok = false;
    if (on->targets != off->targets) identical_ok = false;
    shape_results.push_back(std::move(r));
  }

  bool ok = scale_ok && estimate_ok && identical_ok;
  if (json) {
    std::printf("{\"bench\":\"footprint\",\"quick\":%s,"
                "\"capacity_mb\":%lld,\"chain_stages\":%d,"
                "\"stage_bytes\":%lld,"
                "\"max_scale_gc_off\":%d,\"max_scale_gc_on\":%d,"
                "\"scale_ratio\":%.2f,\"shapes\":[",
                quick ? "true" : "false",
                static_cast<long long>(kCapacityMb), kChainStages,
                static_cast<long long>(kStageBytes), *scale_off, *scale_on,
                scale_ratio);
    for (size_t i = 0; i < shape_results.size(); ++i) {
      const ShapeResult& r = shape_results[i];
      std::printf("%s{\"shape\":\"%s\",\"estimate_bytes\":%lld,"
                  "\"actual_peak_bytes\":%lld,\"error\":%.4f}",
                  i == 0 ? "" : ",", r.name.c_str(),
                  static_cast<long long>(r.estimate),
                  static_cast<long long>(r.actual), r.error);
    }
    std::printf("],\"gates\":{\"scale_2x\":%s,\"estimate_25pct\":%s,"
                "\"byte_identical\":%s}}\n",
                scale_ok ? "true" : "false", estimate_ok ? "true" : "false",
                identical_ok ? "true" : "false");
  } else {
    bench::PrintHeader("Intermediate-data GC: scale and estimate accuracy");
    std::printf("workload: %d-stage chains, %lld MiB/stage, %lld MiB DFS "
                "capacity, replication 1%s\n\n",
                kChainStages, static_cast<long long>(kStageBytes >> 20),
                static_cast<long long>(kCapacityMb),
                quick ? "  [quick]" : "");
    std::printf("max concurrent chains, all succeeding: gc-off=%d "
                "gc-on=%d (%.1fx)\n",
                *scale_off, *scale_on, scale_ratio);
    for (const ShapeResult& r : shape_results) {
      std::printf("%-8s estimate=%lld actual-peak=%lld error=%.1f%%\n",
                  r.name.c_str(), static_cast<long long>(r.estimate),
                  static_cast<long long>(r.actual), r.error * 100.0);
    }
    std::printf("\ngates:\n");
    std::printf("  gc-on scale >= 2x gc-off: %s\n",
                scale_ok ? "PASS" : "FAIL");
    std::printf("  estimate within 25%% of traced peak: %s\n",
                estimate_ok ? "PASS" : "FAIL");
    std::printf("  targets byte-identical gc on/off: %s\n",
                identical_ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
