// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and the AM: event-queue throughput, fair-share rebalancing, JSON
// parsing, HDFS locality queries, scheduler decisions, and the Cuneiform
// sweep.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/strings.h"
#include "src/core/scheduler.h"
#include "src/hdfs/dfs.h"
#include "src/lang/cuneiform.h"
#include "src/sim/engine.h"
#include "src/sim/flow.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int64_t events = state.range(0);
  for (auto _ : state) {
    SimEngine engine;
    int64_t fired = 0;
    for (int64_t i = 0; i < events; ++i) {
      engine.ScheduleAt(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    engine.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_FlowRebalance(benchmark::State& state) {
  const int64_t flows = state.range(0);
  SimEngine engine;
  FlowNetwork net(&engine);
  std::vector<ResourceId> resources;
  for (int i = 0; i < 50; ++i) {
    resources.push_back(net.AddResource("r", 100.0));
  }
  for (int64_t i = 0; i < flows; ++i) {
    FlowSpec spec;
    spec.resources = {resources[static_cast<size_t>(i) % resources.size()],
                      resources[(static_cast<size_t>(i) + 7) %
                                resources.size()]};
    spec.demand = kInfiniteDemand;
    net.StartFlow(std::move(spec));
  }
  ResourceId churn = net.AddResource("churn", 10.0);
  for (auto _ : state) {
    // Each StartFlow triggers a full rebalance over all active flows.
    FlowId id = net.StartFlow({{churn}, kInfiniteDemand, kNoRateCap, 1.0, {}});
    net.CancelFlow(id);
  }
  state.SetItemsProcessed(state.iterations() * 2);  // two rebalances each
}
BENCHMARK(BM_FlowRebalance)->Arg(100)->Arg(600);

void BM_JsonParseTrapline(benchmark::State& state) {
  GeneratedWorkload workload = MakeTraplineWorkflow(RnaSeqWorkloadOptions{});
  for (auto _ : state) {
    auto doc = Json::Parse(workload.document);
    benchmark::DoNotOptimize(doc);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(workload.document.size()));
}
BENCHMARK(BM_JsonParseTrapline);

void BM_DfsLocalityQuery(benchmark::State& state) {
  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(24, node, 1000.0));
  Dfs dfs(&cluster, DfsOptions{});
  std::vector<std::string> paths;
  for (int i = 0; i < 512; ++i) {
    std::string path = StrFormat("/f%04d", i);
    (void)dfs.IngestFile(path, 128 << 20);
    paths.push_back(std::move(path));
  }
  size_t i = 0;
  for (auto _ : state) {
    int64_t local = dfs.LocalBytes(paths[i % paths.size()],
                                   static_cast<NodeId>(i % 24));
    benchmark::DoNotOptimize(local);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DfsLocalityQuery);

void BM_DataAwareSelect(benchmark::State& state) {
  const int64_t queued = state.range(0);
  SimEngine engine;
  FlowNetwork net(&engine);
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(24, NodeSpec{}, 1000.0));
  Dfs dfs(&cluster, DfsOptions{});
  for (int64_t i = 0; i < queued; ++i) {
    (void)dfs.IngestFile(StrFormat("/in%04lld", static_cast<long long>(i)),
                         64 << 20);
  }
  for (auto _ : state) {
    state.PauseTiming();
    DataAwareScheduler scheduler(&dfs);
    for (int64_t i = 0; i < queued; ++i) {
      TaskSpec t;
      t.id = i + 1;
      t.signature = "t";
      t.input_files = {StrFormat("/in%04lld", static_cast<long long>(i))};
      scheduler.EnqueueReady(t);
    }
    state.ResumeTiming();
    auto picked = scheduler.SelectTask(7);
    benchmark::DoNotOptimize(picked);
  }
  state.SetItemsProcessed(state.iterations() * queued);
}
BENCHMARK(BM_DataAwareSelect)->Arg(64)->Arg(512);

void BM_CuneiformSweep(benchmark::State& state) {
  SnvWorkloadOptions options;
  options.num_chunks = static_cast<int>(state.range(0));
  GeneratedWorkload workload = MakeSnvCallingWorkflow(options);
  for (auto _ : state) {
    auto source = CuneiformSource::Parse(workload.document);
    auto tasks = (*source)->Init();
    benchmark::DoNotOptimize(tasks);
  }
  state.SetItemsProcessed(state.iterations() * options.num_chunks);
}
BENCHMARK(BM_CuneiformSweep)->Arg(64)->Arg(512);

void BM_HeftScheduleBuild(benchmark::State& state) {
  const int tasks_n = static_cast<int>(state.range(0));
  RuntimeEstimator estimator;
  for (int n = 0; n < 24; ++n) estimator.Observe("t", n, 10.0 + n);
  std::vector<TaskSpec> tasks;
  TaskDependencies deps;
  for (TaskId id = 1; id <= tasks_n; ++id) {
    TaskSpec t;
    t.id = id;
    t.signature = "t";
    tasks.push_back(std::move(t));
    if (id > 1) deps[id] = {id / 2};  // binary-tree DAG
  }
  std::vector<NodeId> nodes;
  for (NodeId n = 0; n < 24; ++n) nodes.push_back(n);
  for (auto _ : state) {
    HeftScheduler scheduler(&estimator);
    Status st = scheduler.BuildStaticSchedule(tasks, deps, nodes);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * tasks_n);
}
BENCHMARK(BM_HeftScheduleBuild)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace hiway

// Custom main: tolerate the harness-wide "--quick" flag (google-benchmark
// rejects flags it does not know).
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") continue;
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
