// Preemption benchmark: guarantee-restoration latency with container
// preemption on vs. off (docs/scheduling-model.md).
//
// An 8-workflow mixed burst on a capacity-scheduled RM with two queues:
// four batch SNV pipelines (low priority, queue 'batch', guarantee 0.25)
// saturate the cluster at t=0; four production workflows (two SNV, two
// k-means; high priority, queue 'prod', guarantee 0.6) arrive at 25% of
// the measured batch-phase makespan. The interesting numbers:
//
//   restoration latency — how long 'prod' stays starved (backlogged
//                         below its guarantee) per episode; p50/p95/max
//                         over all episodes. Preemption must beat the
//                         wait-for-voluntary-release baseline at p95.
//   wasted-work ratio   — container-seconds killed by preemption over
//                         total task container-seconds (< 0.3 target;
//                         victim selection prefers young containers).
//   makespan overhead   — preemption-on burst makespan / preemption-off
//                         (the price batch pays for prod's guarantee).
//
// Both comparison runs use the identical submission schedule and seed;
// only the preemption switch differs. `--json` emits a single JSON
// object for CI artifact collection; `--quick` shrinks the inputs.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/metrics.h"
#include "src/service/workflow_service.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

struct BurstEntry {
  std::string name;
  StagedWorkflow staged;
};

/// Four long-running SNV pipelines: the batch load that soaks up every
/// core while the production queue is idle.
std::vector<BurstEntry> MakeBatchBurst(bool quick) {
  std::vector<BurstEntry> burst;
  for (int i = 0; i < 4; ++i) {
    SnvWorkloadOptions snv;
    snv.num_chunks = 8;
    snv.chunk_bytes = (quick ? 16LL : 48LL) << 20;
    snv.input_dir = StrFormat("/in/batch%d", i);
    snv.output_dir = StrFormat("/out/batch%d", i);
    GeneratedWorkload w = MakeSnvCallingWorkflow(snv);
    BurstEntry e;
    e.name = StrFormat("batch-snv-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  return burst;
}

/// The production arrivals whose guarantee the RM must restore: two SNV
/// pipelines and two k-means runs (sustained parallel demand above the
/// prod queue's guaranteed share).
std::vector<BurstEntry> MakeProdBurst(bool quick) {
  std::vector<BurstEntry> burst;
  for (int i = 0; i < 2; ++i) {
    SnvWorkloadOptions snv;
    snv.num_chunks = 8;
    snv.chunk_bytes = (quick ? 16LL : 48LL) << 20;
    snv.input_dir = StrFormat("/in/prod%d", i);
    snv.output_dir = StrFormat("/out/prod%d", i);
    GeneratedWorkload w = MakeSnvCallingWorkflow(snv);
    BurstEntry e;
    e.name = StrFormat("prod-snv-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  for (int i = 0; i < 2; ++i) {
    KmeansWorkloadOptions kmeans;
    kmeans.points_bytes = (quick ? 8LL : 24LL) << 20;
    kmeans.converge_after = 3;
    kmeans.input_path = StrFormat("/in/prodkm%d/points.csv", i);
    GeneratedWorkload w = MakeKmeansWorkflow(kmeans);
    BurstEntry e;
    e.name = StrFormat("prod-kmeans-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  return burst;
}

struct RunStats {
  double makespan_s = 0.0;
  int succeeded = 0;
  int total = 0;
  int tasks_completed = 0;
  int tasks_preempted = 0;
  int64_t preempted_containers = 0;
  double wasted_work_ratio = 0.0;
  double time_under_guarantee_s = 0.0;
  std::vector<double> restoration_s;  // prod queue, per episode
};

/// One full burst run. `prod_at < 0` runs the batch phase alone (to
/// measure the makespan the prod arrival time derives from).
Result<RunStats> RunBurst(bool preemption, double prod_at, bool quick) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "10");
  karamel.SetAttribute("cluster/cores", "3");
  karamel.SetAttribute("cluster/memory_mb", "4096");
  karamel.SetAttribute("yarn/scheduler", "capacity");
  karamel.SetAttribute("yarn/preemption", preemption ? "true" : "false");
  karamel.SetAttribute("yarn/preemption_grace_s", "2");
  karamel.SetAttribute("yarn/max_preempt_per_round", "4");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  std::vector<BurstEntry> batch = MakeBatchBurst(quick);
  std::vector<BurstEntry> prod =
      prod_at < 0.0 ? std::vector<BurstEntry>{} : MakeProdBurst(quick);
  for (const std::vector<BurstEntry>* burst : {&batch, &prod}) {
    for (const BurstEntry& e : *burst) {
      for (const auto& [path, size] : e.staged.inputs) {
        if (!d->dfs->Exists(path)) {
          HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
        }
      }
    }
  }

  WorkflowServiceOptions service_options;
  service_options.rm_scheduler = "capacity";
  ServiceQueueOptions batch_queue;
  // max_share < 1.0 keeps headroom for the prod AM containers even while
  // batch is saturating the task capacity.
  batch_queue.rm = RmQueueConfig{"batch", 0.25, 0.85, 1.0};
  batch_queue.max_concurrent_ams = 4;
  ServiceQueueOptions prod_queue;
  prod_queue.rm = RmQueueConfig{"prod", 0.6, 1.0, 1.0};
  prod_queue.max_concurrent_ams = 4;
  service_options.queues = {batch_queue, prod_queue};
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowService> service,
                         WorkflowService::Create(d.get(), service_options));

  auto submit = [&](const BurstEntry& e, const std::string& queue,
                    int priority) -> Status {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                           HiWayClient(d.get()).MakeSource(e.staged));
    SubmissionOptions sub;
    sub.queue = queue;
    sub.hiway.container_priority = priority;
    sub.source_factory = [dep = d.get(), staged = e.staged] {
      return HiWayClient(dep).MakeSource(staged);
    };
    return service->Submit(e.name, std::move(source), sub).status();
  };
  for (const BurstEntry& e : batch) {
    HIWAY_RETURN_IF_ERROR(submit(e, "batch", /*priority=*/0));
  }
  Status prod_status;
  if (!prod.empty()) {
    d->engine.ScheduleAt(prod_at, [&] {
      for (const BurstEntry& e : prod) {
        Status st = submit(e, "prod", /*priority=*/10);
        if (!st.ok() && prod_status.ok()) prod_status = st;
      }
    });
  }
  HIWAY_RETURN_IF_ERROR(service->RunToCompletion());
  HIWAY_RETURN_IF_ERROR(prod_status);

  RunStats stats;
  stats.total = static_cast<int>(batch.size() + prod.size());
  for (const SubmissionRecord& rec : service->Records()) {
    if (rec.state == SubmissionState::kSucceeded) ++stats.succeeded;
    stats.makespan_s = std::max(stats.makespan_s, rec.finished_at);
    stats.tasks_completed += rec.report.tasks_completed;
    stats.tasks_preempted += rec.report.tasks_preempted;
  }
  const RmCounters& counters = d->rm->counters();
  stats.preempted_containers = counters.preempted_containers;
  if (counters.container_work_s > 0.0) {
    stats.wasted_work_ratio =
        counters.preempted_work_s / counters.container_work_s;
  }
  if (const TenantStats* qs = d->rm->queue_stats("prod")) {
    stats.restoration_s = qs->restoration_latency_s;
    stats.time_under_guarantee_s = qs->time_under_guarantee_s;
  }
  return stats;
}

void PrintRunJson(const char* key, const RunStats& s) {
  std::printf(
      "\"%s\": {\"makespan_s\": %.3f, \"succeeded\": %d, \"total\": %d, "
      "\"tasks_completed\": %d, \"preempted_containers\": %lld, "
      "\"tasks_preempted\": %d, \"wasted_work_ratio\": %.4f, "
      "\"time_under_guarantee_s\": %.3f, \"restoration_s\": "
      "{\"episodes\": %zu, \"p50\": %.3f, \"p95\": %.3f, \"max\": %.3f}}",
      key, s.makespan_s, s.succeeded, s.total, s.tasks_completed,
      static_cast<long long>(s.preempted_containers), s.tasks_preempted,
      s.wasted_work_ratio, s.time_under_guarantee_s, s.restoration_s.size(),
      Percentile(s.restoration_s, 50.0), Percentile(s.restoration_s, 95.0),
      Percentile(s.restoration_s, 100.0));
}

void PrintRunRow(const char* name, const RunStats& s) {
  std::printf("%-12s %10s %4d/%d %9zu %9s %9s %10lld %7.3f\n", name,
              HumanDuration(s.makespan_s).c_str(), s.succeeded, s.total,
              s.restoration_s.size(),
              HumanDuration(Percentile(s.restoration_s, 50.0)).c_str(),
              HumanDuration(Percentile(s.restoration_s, 95.0)).c_str(),
              static_cast<long long>(s.preempted_containers),
              s.wasted_work_ratio);
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bool json = JsonMode(argc, argv);

  // Phase 1: batch alone, to size the arrival point of the prod burst.
  auto scout = RunBurst(/*preemption=*/false, /*prod_at=*/-1.0, quick);
  if (!scout.ok()) {
    std::fprintf(stderr, "batch scout: %s\n",
                 scout.status().ToString().c_str());
    return 1;
  }
  double prod_at = 0.25 * scout->makespan_s;

  // Phase 2: the identical mixed burst, preemption off then on.
  auto off = RunBurst(/*preemption=*/false, prod_at, quick);
  auto on = RunBurst(/*preemption=*/true, prod_at, quick);
  if (!off.ok() || !on.ok()) {
    std::fprintf(stderr, "burst: %s\n",
                 (!off.ok() ? off : on).status().ToString().c_str());
    return 1;
  }

  double p95_off = Percentile(off->restoration_s, 95.0);
  double p95_on = Percentile(on->restoration_s, 95.0);
  double overhead =
      off->makespan_s > 0.0 ? on->makespan_s / off->makespan_s : 0.0;
  bool all_ok = off->succeeded == off->total && on->succeeded == on->total;
  bool pass = all_ok && p95_on < p95_off && on->wasted_work_ratio < 0.3;

  if (json) {
    std::printf("{\"batch_makespan_s\": %.3f, \"prod_submitted_at_s\": %.3f, ",
                scout->makespan_s, prod_at);
    PrintRunJson("off", *off);
    std::printf(", ");
    PrintRunJson("on", *on);
    std::printf(", \"p95_improvement\": %.4f, \"makespan_overhead\": %.4f, "
                "\"pass\": %s}\n",
                p95_off > 0.0 ? 1.0 - p95_on / p95_off : 0.0, overhead,
                pass ? "true" : "false");
    return pass ? 0 : 1;
  }

  bench::PrintHeader("Preemption: guarantee-restoration latency, on vs off");
  std::printf("burst: 4x batch SNV at t=0 + (2x SNV, 2x k-means) prod at "
              "t=%s; 10 workers x 3 cores, capacity RM%s\n"
              "queues: batch guarantee=0.25 max=0.85 prio=0 | prod "
              "guarantee=0.60 max=1.00 prio=10; grace=2s, 4 kills/round\n\n",
              HumanDuration(prod_at).c_str(), quick ? "  [quick]" : "");
  std::printf("%-12s %10s %6s %9s %9s %9s %10s %7s\n", "run", "makespan",
              "ok", "episodes", "p50-rest", "p95-rest", "preempted",
              "wasted");
  bench::PrintRule(80);
  PrintRunRow("preempt-off", *off);
  PrintRunRow("preempt-on", *on);
  std::printf("\nprod p95 restoration: %s -> %s (%.1f%% better), makespan "
              "overhead %.2fx\n",
              HumanDuration(p95_off).c_str(), HumanDuration(p95_on).c_str(),
              p95_off > 0.0 ? 100.0 * (1.0 - p95_on / p95_off) : 0.0,
              overhead);
  if (!all_ok) {
    std::fprintf(stderr, "\nFAIL: not every submission succeeded\n");
    return 1;
  }
  if (p95_on >= p95_off) {
    std::fprintf(stderr, "\nFAIL: preemption did not improve p95 "
                         "restoration latency (%.3fs >= %.3fs)\n",
                 p95_on, p95_off);
    return 1;
  }
  if (on->wasted_work_ratio >= 0.3) {
    std::fprintf(stderr, "\nFAIL: wasted-work ratio %.3f exceeds 0.3\n",
                 on->wasted_work_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
