// Provenance sharding benchmark: what the per-submission split buys.
//
//   append throughput — 8 concurrent writers (one per simulated AM)
//                       running the adaptive-scheduler loop: record a
//                       task end, then look up the latest runtime of a
//                       recently observed signature to place the next
//                       task ("always use the latest observed runtime").
//                       Lookups follow the merge-on-read discipline —
//                       readers snapshot, they never pin a writer's lock
//                       across a scan. Single store: every AM funnels
//                       through one mutex and every lookup snapshots the
//                       combined log of all 8 runs. Sharded: each AM
//                       appends to its own shard and lookups through a
//                       run-scoped view snapshot only that shard. The
//                       acceptance bar is >= 2x.
//   query behaviour   — after the standard 8-workflow service burst,
//                       merge-on-read statistics queries (LatestRuntime
//                       over every observed (signature, node) pair,
//                       RuntimeObservations, full merge + trace export)
//                       timed against the view, with every answer
//                       checked for equivalence against a brute-force
//                       scan of the seq-ordered single-store sequence.
//
// `--json` emits one JSON object for CI artifact collection; `--quick`
// trims the burst input sizes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/metrics.h"
#include "src/core/provenance.h"
#include "src/service/workflow_service.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

ProvenanceEvent MakeTaskEnd(int writer, int i) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kTaskEnd;
  ev.timestamp = static_cast<double>(i);
  ev.task_id = i;
  ev.signature = StrFormat("sig-%d-%d", writer, i % 16);
  ev.command = "bowtie2 -x ref reads.fq";
  ev.node = writer;
  ev.node_name = StrFormat("node-%03d", writer);
  ev.duration = 1.0 + static_cast<double>(i % 7);
  ev.success = true;
  return ev;
}

// ---- append throughput ----------------------------------------------------

constexpr int kWriters = 8;   // the 8-concurrent-AM burst
constexpr int kLookback = 8;  // lookup targets a task ~8 records back

struct AppendResult {
  double single_eps = 0.0;   // events/s, one mutex-guarded store
  double sharded_eps = 0.0;  // events/s, one shard per writer
  double speedup = 0.0;
  size_t events = 0;
};

AppendResult MeasureAppendThroughput(bool quick) {
  const int per_writer = quick ? 400 : 800;
  AppendResult out;
  out.events = static_cast<size_t>(kWriters) * per_writer;

  // Baseline: the pre-sharding architecture — every AM funnels through
  // ONE store behind ONE lock, and every scheduler lookup snapshots the
  // combined log of all concurrent runs.
  {
    InMemoryProvenanceStore store;
    std::mutex mu;
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&store, &mu, w, per_writer] {
        for (int i = 0; i < per_writer; ++i) {
          ProvenanceEvent ev = MakeTaskEnd(w, i);
          ev.run_id = "single-run";
          {
            std::lock_guard<std::mutex> lock(mu);
            store.Append(ev);
          }
          if (i < kLookback) continue;
          const ProvenanceEvent probe = MakeTaskEnd(w, i - kLookback);
          std::vector<ProvenanceEvent> snapshot;
          {
            std::lock_guard<std::mutex> lock(mu);
            snapshot = store.Events();
          }
          bool found = false;
          for (auto it = snapshot.rbegin(); it != snapshot.rend(); ++it) {
            if (it->type == ProvenanceEventType::kTaskEnd && it->success &&
                it->signature == probe.signature && it->node == w) {
              found = true;
              break;
            }
          }
          if (!found) std::abort();  // the observation was just recorded
        }
      });
    }
    for (std::thread& t : threads) t.join();
    out.single_eps = static_cast<double>(out.events) / SecondsSince(start);
  }

  // Sharded: each writer owns its shard; the only shared state is the
  // lock-free sequence counter, and a run-scoped view keeps lookups to
  // the writer's own history.
  {
    ProvenanceManager manager;
    std::vector<std::string> runs;
    for (int w = 0; w < kWriters; ++w) {
      runs.push_back(manager.BeginWorkflow(StrFormat("wf%d", w), 0.0));
    }
    auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&manager, &runs, w, per_writer] {
        ProvenanceShard* shard = manager.shard(runs[static_cast<size_t>(w)]);
        ProvenanceView view =
            manager.ViewOf({runs[static_cast<size_t>(w)]});
        for (int i = 0; i < per_writer; ++i) {
          shard->Append(MakeTaskEnd(w, i));
          if (i < kLookback) continue;
          const ProvenanceEvent probe = MakeTaskEnd(w, i - kLookback);
          if (!view.LatestRuntime(probe.signature, w).ok()) std::abort();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    out.sharded_eps = static_cast<double>(out.events) / SecondsSince(start);
  }
  out.speedup = out.single_eps > 0.0 ? out.sharded_eps / out.single_eps : 0.0;
  return out;
}

// ---- burst + merge-on-read queries ----------------------------------------

struct BurstEntry {
  std::string name;
  StagedWorkflow staged;
};

std::vector<BurstEntry> MakeBurst(bool quick) {
  std::vector<BurstEntry> burst;
  for (int i = 0; i < 4; ++i) {
    SnvWorkloadOptions snv;
    snv.num_chunks = 4;
    snv.chunk_bytes = (quick ? 16LL : 48LL) << 20;
    snv.input_dir = StrFormat("/in/snv%d", i);
    snv.output_dir = StrFormat("/out/snv%d", i);
    GeneratedWorkload w = MakeSnvCallingWorkflow(snv);
    BurstEntry e;
    e.name = StrFormat("snv-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  for (int i = 0; i < 4; ++i) {
    KmeansWorkloadOptions kmeans;
    kmeans.points_bytes = (quick ? 8LL : 24LL) << 20;
    kmeans.converge_after = 3;
    kmeans.input_path = StrFormat("/in/kmeans%d/points.csv", i);
    GeneratedWorkload w = MakeKmeansWorkflow(kmeans);
    BurstEntry e;
    e.name = StrFormat("kmeans-%d", i);
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  return burst;
}

struct QueryStats {
  size_t events = 0;
  size_t shards = 0;
  size_t pairs = 0;          // distinct (signature, node) pairs queried
  double latest_p50_us = 0.0;
  double latest_p95_us = 0.0;
  double obs_p50_us = 0.0;
  double merge_ms = 0.0;       // full View().Events() k-way merge
  double export_ms = 0.0;      // merged JSON-lines trace export
  bool equivalent = true;      // every answer == brute-force single-store
  int mismatches = 0;
};

Result<QueryStats> RunBurstAndQuery(bool quick) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "10");
  karamel.SetAttribute("cluster/cores", "3");
  karamel.SetAttribute("cluster/memory_mb", "4096");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  std::vector<BurstEntry> burst = MakeBurst(quick);
  for (const BurstEntry& e : burst) {
    for (const auto& [path, size] : e.staged.inputs) {
      if (!d->dfs->Exists(path)) {
        HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
      }
    }
  }
  WorkflowServiceOptions service_options;
  service_options.rm_scheduler = "fair";
  ServiceQueueOptions queue;
  queue.rm.name = "default";
  queue.max_concurrent_ams = 8;
  service_options.queues = {queue};
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowService> service,
                         WorkflowService::Create(d.get(), service_options));
  for (const BurstEntry& e : burst) {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                           HiWayClient(d.get()).MakeSource(e.staged));
    HIWAY_RETURN_IF_ERROR(
        service->Submit(e.name, std::move(source)).status());
  }
  HIWAY_RETURN_IF_ERROR(service->RunToCompletion());

  ProvenanceManager* prov = d->provenance.get();
  QueryStats stats;
  stats.shards = prov->shard_count();

  // The single-store baseline sequence: the merged view's own claim is
  // "ascending seq == exactly what one shared store would hold", so the
  // brute-force reference is the shard-concatenated events sorted by
  // seq. Equivalence then checks the merge AND every query against it.
  ProvenanceView view = prov->View();
  auto merge_start = std::chrono::steady_clock::now();
  std::vector<ProvenanceEvent> merged = view.Events();
  stats.merge_ms = SecondsSince(merge_start) * 1e3;
  stats.events = merged.size();

  std::vector<ProvenanceEvent> reference;
  for (const std::string& run : prov->RunIds()) {
    auto shard_events = prov->shard(run)->Events();
    reference.insert(reference.end(), shard_events.begin(),
                     shard_events.end());
  }
  std::sort(reference.begin(), reference.end(),
            [](const ProvenanceEvent& a, const ProvenanceEvent& b) {
              return a.seq < b.seq;
            });
  if (reference.size() != merged.size()) {
    stats.equivalent = false;
    ++stats.mismatches;
  } else {
    for (size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].ToJson().Dump() != reference[i].ToJson().Dump()) {
        stats.equivalent = false;
        ++stats.mismatches;
      }
    }
  }

  // Every (signature, node) pair observed in the burst, queried through
  // the view and cross-checked against a brute-force reference scan.
  std::set<std::pair<std::string, int32_t>> pairs;
  std::set<std::string> signatures;
  for (const ProvenanceEvent& ev : reference) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.success) {
      pairs.insert({ev.signature, ev.node});
      signatures.insert(ev.signature);
    }
  }
  stats.pairs = pairs.size();
  std::vector<double> latest_us;
  for (const auto& [sig, node] : pairs) {
    auto q_start = std::chrono::steady_clock::now();
    auto latest = view.LatestRuntime(sig, node);
    latest_us.push_back(SecondsSince(q_start) * 1e6);
    double brute = -1.0;
    for (const ProvenanceEvent& ev : reference) {
      if (ev.type == ProvenanceEventType::kTaskEnd && ev.success &&
          ev.signature == sig && ev.node == node) {
        brute = ev.duration;
      }
    }
    if (!latest.ok() || *latest != brute) {
      stats.equivalent = false;
      ++stats.mismatches;
    }
  }
  std::vector<double> obs_us;
  for (const std::string& sig : signatures) {
    auto q_start = std::chrono::steady_clock::now();
    auto obs = view.RuntimeObservations(sig);
    obs_us.push_back(SecondsSince(q_start) * 1e6);
    std::vector<std::pair<int32_t, double>> brute;
    for (const ProvenanceEvent& ev : reference) {
      if (ev.type == ProvenanceEventType::kTaskEnd && ev.success &&
          ev.signature == sig) {
        brute.emplace_back(ev.node, ev.duration);
      }
    }
    if (obs != brute) {
      stats.equivalent = false;
      ++stats.mismatches;
    }
  }
  stats.latest_p50_us = Percentile(latest_us, 50.0);
  stats.latest_p95_us = Percentile(latest_us, 95.0);
  stats.obs_p50_us = Percentile(obs_us, 50.0);

  auto export_start = std::chrono::steady_clock::now();
  std::string trace = view.ExportTrace();
  stats.export_ms = SecondsSince(export_start) * 1e3;
  if (trace.empty()) stats.equivalent = false;
  return stats;
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bool json = JsonMode(argc, argv);

  AppendResult append = MeasureAppendThroughput(quick);
  auto query = RunBurstAndQuery(quick);
  if (!query.ok()) {
    std::fprintf(stderr, "burst: %s\n", query.status().ToString().c_str());
    return 1;
  }

  bool pass = append.speedup >= 2.0 && query->equivalent;
  if (json) {
    std::printf(
        "{\"append\": {\"writers\": %d, \"events\": %zu, "
        "\"single_store_eps\": %.0f, \"sharded_eps\": %.0f, "
        "\"speedup\": %.2f}, "
        "\"burst\": {\"events\": %zu, \"shards\": %zu, \"pairs\": %zu, "
        "\"latest_runtime_us\": {\"p50\": %.2f, \"p95\": %.2f}, "
        "\"observations_p50_us\": %.2f, \"merge_ms\": %.3f, "
        "\"export_ms\": %.3f, \"equivalent\": %s, \"mismatches\": %d}, "
        "\"pass\": %s}\n",
        kWriters, append.events, append.single_eps, append.sharded_eps,
        append.speedup, query->events, query->shards, query->pairs,
        query->latest_p50_us, query->latest_p95_us, query->obs_p50_us,
        query->merge_ms, query->export_ms,
        query->equivalent ? "true" : "false", query->mismatches,
        pass ? "true" : "false");
    return pass ? 0 : 1;
  }

  bench::PrintHeader("Provenance sharding: append throughput + merge-on-read");
  std::printf("append: %d writers, %zu events, record + latest-runtime "
              "lookup per event%s\n",
              kWriters, append.events, quick ? "  [quick]" : "");
  bench::PrintRule(60);
  std::printf("%-22s %14.0f events/s\n", "single locked store",
              append.single_eps);
  std::printf("%-22s %14.0f events/s\n", "per-writer shards",
              append.sharded_eps);
  std::printf("%-22s %13.2fx  (target >= 2x)\n", "speedup", append.speedup);
  std::printf("\nburst: 8 workflows -> %zu shards, %zu events\n",
              query->shards, query->events);
  std::printf("LatestRuntime over %zu (signature, node) pairs: "
              "p50=%.2fus p95=%.2fus\n",
              query->pairs, query->latest_p50_us, query->latest_p95_us);
  std::printf("RuntimeObservations p50=%.2fus; full merge %.3fms; "
              "trace export %.3fms\n",
              query->obs_p50_us, query->merge_ms, query->export_ms);
  std::printf("merged-view equivalence vs single-store sequence: %s "
              "(%d mismatch(es))\n",
              query->equivalent ? "IDENTICAL" : "DIVERGED",
              query->mismatches);
  if (!pass) {
    std::fprintf(stderr, "\nFAIL: %s\n",
                 append.speedup < 2.0
                     ? "sharded append speedup below the 2x acceptance bar"
                     : "merged view diverged from the single-store baseline");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
