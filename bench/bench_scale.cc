// Scale sweep: nodes x concurrent workflows against the RM hot path
// (docs/scaling.md). Each synthetic workflow registers a zero-footprint
// AM (admission never blocks on AM capacity, so admission latency
// measures scheduler backlog, not AM placement), submits a fixed burst
// of 1-core task requests, and releases each container after a fixed
// simulated runtime. Demand exceeds cluster capacity on every grid
// point, so the RM carries a sustained pending backlog — the workload
// the incremental allocation pass exists for.
//
// Every grid point runs under allocation_mode=incremental and again
// under "full-scan" (the pre-refactor O(pending) scan per allocation).
// Three gates:
//   1. schedule-identical: the (app, node, vcores, time) allocation
//      stream fingerprint matches between modes on every point;
//   2. speedup: summed over the grid, full-scan spends >= 5x more host
//      wall-clock inside allocation passes than incremental does
//      (aggregate, so CI timing noise on one point cannot fail it);
//   3. p99 admission-to-first-container (simulated) <= 300 s everywhere.
//
// `--quick` shrinks the grid for CI; `--json` emits one JSON object for
// artifact collection. Exit code 1 when a gate fails.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/metrics.h"
#include "src/sim/cluster.h"
#include "src/sim/engine.h"
#include "src/sim/flow.h"
#include "src/yarn/yarn.h"

namespace hiway {
namespace {

constexpr int kTasksPerWorkflow = 16;
constexpr double kTaskDurationS = 2.0;
constexpr double kAdmissionStaggerS = 0.01;
constexpr int kQueues = 8;
constexpr double kP99BoundS = 300.0;

void Mix(uint64_t* h, uint64_t v) {
  *h ^= v + 0x9e3779b97f4a7c15ULL + (*h << 6) + (*h >> 2);
}

uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// One synthetic workflow: records its first allocation, runs every
/// container for kTaskDurationS, and unregisters once all tasks ran.
class ScaleAm : public AmCallbacks {
 public:
  void OnContainerAllocated(const Container& container,
                            int64_t /*cookie*/) override {
    if (container.is_am) return;
    if (first_alloc_at < 0.0) first_alloc_at = engine->Now();
    Mix(fingerprint, static_cast<uint64_t>(container.app));
    Mix(fingerprint, static_cast<uint64_t>(container.node));
    Mix(fingerprint, static_cast<uint64_t>(container.vcores));
    Mix(fingerprint, DoubleBits(engine->Now()));
    ContainerId id = container.id;
    engine->ScheduleAfter(kTaskDurationS, [this, id] {
      rm->ReleaseContainer(id);
      if (--remaining == 0) rm->UnregisterApplication(app);
    });
  }
  void OnContainerLost(const Container& /*container*/,
                       ContainerLossReason /*reason*/) override {}

  SimEngine* engine = nullptr;
  ResourceManager* rm = nullptr;
  uint64_t* fingerprint = nullptr;
  ApplicationId app = -1;
  double registered_at = 0.0;
  double first_alloc_at = -1.0;
  int remaining = kTasksPerWorkflow;
};

struct PointResult {
  int nodes = 0;
  int workflows = 0;
  std::string mode;
  uint64_t passes = 0;
  double wall_per_pass_us = 0.0;
  double p99_admission_s = 0.0;
  int64_t allocations = 0;
  uint64_t fingerprint = 1469598103934665603ULL;  // FNV-1a offset basis
  double host_wall_s = 0.0;
  bool all_admitted = false;
};

Result<PointResult> RunPoint(int nodes, int workflows,
                             const std::string& mode) {
  PointResult result;
  result.nodes = nodes;
  result.workflows = workflows;
  result.mode = mode;

  SimEngine engine;
  FlowNetwork net(&engine);
  NodeSpec node;
  node.cores = 4;
  node.memory_mb = 8192.0;
  Cluster cluster(&engine, &net, ClusterSpec::Uniform(nodes, node, 1000.0));
  YarnOptions options;
  options.scheduler = "fair";
  options.allocation_mode = mode;
  ResourceManager rm(&cluster, options);
  for (int q = 0; q < kQueues; ++q) {
    RmQueueConfig config;
    config.name = StrFormat("q%d", q);
    config.guaranteed_share = 1.0 / kQueues;
    config.max_share = 1.0;
    rm.ConfigureQueue(config);
  }

  engine.Reserve(static_cast<size_t>(workflows) * kTasksPerWorkflow + 64);
  std::vector<std::unique_ptr<ScaleAm>> ams;
  ams.reserve(static_cast<size_t>(workflows));
  for (int w = 0; w < workflows; ++w) {
    ams.push_back(std::make_unique<ScaleAm>());
    ScaleAm* am = ams.back().get();
    am->engine = &engine;
    am->rm = &rm;
    am->fingerprint = &result.fingerprint;
    std::string queue = StrFormat("q%d", w % kQueues);
    engine.ScheduleAt(w * kAdmissionStaggerS, [am, &rm, w, queue] {
      auto app = rm.RegisterApplication(StrFormat("wf-%04d", w), am, 0, 0.0,
                                        kInvalidNode, queue);
      if (!app.ok()) return;  // surfaces as all_admitted=false below
      am->app = *app;
      am->registered_at = am->engine->Now();
      ContainerRequest request;
      request.vcores = 1;
      request.memory_mb = 512.0;
      for (int t = 0; t < kTasksPerWorkflow; ++t) {
        rm.SubmitRequest(am->app, request);
      }
    });
  }

  auto start = std::chrono::steady_clock::now();
  engine.Run();
  result.host_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  result.passes = rm.allocation_passes();
  result.wall_per_pass_us =
      result.passes == 0
          ? 0.0
          : rm.allocation_pass_wall_s() / static_cast<double>(result.passes) *
                1e6;
  result.allocations = rm.counters().allocations;
  std::vector<double> admission;
  result.all_admitted = true;
  for (const auto& am : ams) {
    if (am->app < 0 || am->first_alloc_at < 0.0) {
      result.all_admitted = false;
      continue;
    }
    admission.push_back(am->first_alloc_at - am->registered_at);
  }
  result.p99_admission_s = Percentile(admission, 99.0);
  return result;
}

bool JsonMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") return true;
  }
  return false;
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bool json = JsonMode(argc, argv);

  struct GridPoint {
    int nodes;
    int workflows;
  };
  std::vector<GridPoint> grid;
  if (quick) {
    grid = {{50, 100}, {100, 200}, {250, 500}};
  } else {
    grid = {{100, 100}, {500, 500}, {1000, 1000}, {2000, 1000}};
  }

  if (!json) {
    bench::PrintHeader("RM hot-path scale sweep: nodes x workflows");
    std::printf("workload: %d x 1-core tasks per workflow, %.0fs runtime, "
                "fair scheduler, %d queues%s\n\n",
                kTasksPerWorkflow, kTaskDurationS, kQueues,
                quick ? "  [quick]" : "");
    std::printf("%6s %6s %-12s %8s %12s %10s %9s %10s\n", "nodes", "wfs",
                "mode", "passes", "us/pass", "p99-adm", "allocs",
                "host-wall");
    bench::PrintRule(80);
  }

  std::vector<PointResult> results;
  bool schedule_identical = true;
  bool p99_ok = true;
  double incremental_pass_wall_s = 0.0;
  double full_scan_pass_wall_s = 0.0;
  for (const GridPoint& point : grid) {
    const PointResult* incremental = nullptr;
    for (const std::string mode : {"incremental", "full-scan"}) {
      auto r = RunPoint(point.nodes, point.workflows, mode);
      if (!r.ok()) {
        std::fprintf(stderr, "%dx%d %s: %s\n", point.nodes, point.workflows,
                     mode.c_str(), r.status().ToString().c_str());
        return 1;
      }
      if (!r->all_admitted) {
        std::fprintf(stderr, "%dx%d %s: a workflow never got a container\n",
                     point.nodes, point.workflows, mode.c_str());
        return 1;
      }
      if (r->p99_admission_s > kP99BoundS) p99_ok = false;
      results.push_back(*r);
      const PointResult& back = results.back();
      if (!json) {
        std::printf("%6d %6d %-12s %8llu %12.1f %9.2fs %9lld %9.2fs\n",
                    back.nodes, back.workflows, back.mode.c_str(),
                    static_cast<unsigned long long>(back.passes),
                    back.wall_per_pass_us, back.p99_admission_s,
                    static_cast<long long>(back.allocations),
                    back.host_wall_s);
      }
      if (mode == "incremental") {
        incremental = &results.back();
        incremental_pass_wall_s +=
            back.wall_per_pass_us * static_cast<double>(back.passes) * 1e-6;
      } else if (incremental != nullptr) {
        if (back.fingerprint != incremental->fingerprint) {
          schedule_identical = false;
        }
        full_scan_pass_wall_s +=
            back.wall_per_pass_us * static_cast<double>(back.passes) * 1e-6;
      }
    }
  }

  double speedup = incremental_pass_wall_s > 0.0
                       ? full_scan_pass_wall_s / incremental_pass_wall_s
                       : 0.0;
  bool speedup_ok = speedup >= 5.0;
  bool ok = schedule_identical && speedup_ok && p99_ok;

  if (json) {
    std::printf("{\"bench\":\"scale\",\"quick\":%s,\"grid\":[",
                quick ? "true" : "false");
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::printf("%s{\"nodes\":%d,\"workflows\":%d,\"mode\":\"%s\","
                  "\"passes\":%llu,\"us_per_pass\":%.2f,"
                  "\"p99_admission_s\":%.3f,\"allocations\":%lld,"
                  "\"fingerprint\":\"%016llx\",\"host_wall_s\":%.3f}",
                  i == 0 ? "" : ",", r.nodes, r.workflows, r.mode.c_str(),
                  static_cast<unsigned long long>(r.passes),
                  r.wall_per_pass_us, r.p99_admission_s,
                  static_cast<long long>(r.allocations),
                  static_cast<unsigned long long>(r.fingerprint),
                  r.host_wall_s);
    }
    std::printf("],\"speedup_vs_full_scan\":%.2f,\"gates\":{"
                "\"schedule_identical\":%s,\"speedup_5x\":%s,"
                "\"p99_bound\":%s}}\n",
                speedup, schedule_identical ? "true" : "false",
                speedup_ok ? "true" : "false", p99_ok ? "true" : "false");
  } else {
    std::printf("\ngates:\n");
    std::printf("  schedule identical across modes: %s\n",
                schedule_identical ? "PASS" : "FAIL");
    std::printf("  incremental >= 5x full-scan, pass wall-clock summed over "
                "compared points: %.1fx %s\n",
                speedup, speedup_ok ? "PASS" : "FAIL");
    std::printf("  p99 admission-to-first-container <= %.0fs: %s\n",
                kP99BoundS, p99_ok ? "PASS" : "FAIL");
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
