// Multi-tenant service benchmark: a mixed burst of workflows — SNV
// calling, Montage, k-means, and TRAPLINE RNA-seq — submitted together
// through the WorkflowService gateway onto one deliberately scarce
// cluster, replayed under each RM scheduling strategy (fifo | capacity |
// fair). Reports burst makespan, mean and p95 container queue wait, and
// the time-averaged Jain fairness index over the tenants'
// demand-satisfaction ratios.
//
// Expected shape: FIFO serves container requests in arrival order, so
// whichever AMs flood the queue first monopolise the cluster while later
// tenants starve (low fairness). Capacity scheduling keeps each queue
// near its guaranteed share; fair scheduling (dominant-resource fairness,
// Ghodsi et al. NSDI'11) equalises the per-application dominant shares,
// driving the Jain index towards 1 at a modest makespan cost.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/metrics.h"
#include "src/service/workflow_service.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

struct BurstEntry {
  std::string name;
  std::string queue;
  StagedWorkflow staged;
};

/// Eight workflows, two of each kind, split across two tenant queues:
/// "genomics" (SNV + RNA-seq) and "analytics" (Montage + k-means).
std::vector<BurstEntry> MakeBurst(bool quick) {
  std::vector<BurstEntry> burst;
  for (int i = 0; i < 2; ++i) {
    SnvWorkloadOptions snv;
    snv.num_chunks = 4;
    snv.chunk_bytes = (quick ? 16LL : 64LL) << 20;
    snv.input_dir = StrFormat("/in/snv%d", i);
    snv.output_dir = StrFormat("/out/snv%d", i);
    GeneratedWorkload w = MakeSnvCallingWorkflow(snv);
    BurstEntry e;
    e.name = StrFormat("snv-%d", i);
    e.queue = "genomics";
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  for (int i = 0; i < 2; ++i) {
    RnaSeqWorkloadOptions rnaseq;
    rnaseq.replicates_per_condition = 2;
    rnaseq.sample_bytes = (quick ? 16LL : 48LL) << 20;
    rnaseq.input_dir = StrFormat("/in/geo%d", i);
    GeneratedWorkload w = MakeTraplineWorkflow(rnaseq);
    BurstEntry e;
    e.name = StrFormat("rnaseq-%d", i);
    e.queue = "genomics";
    e.staged.language = "galaxy";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    for (const auto& [name, path] : TraplineInputBindings(rnaseq)) {
      e.staged.galaxy_inputs[name] = path;
    }
    burst.push_back(std::move(e));
  }
  for (int i = 0; i < 2; ++i) {
    MontageWorkloadOptions montage;
    montage.num_images = 6;
    montage.image_bytes = 4LL << 20;
    montage.input_dir = StrFormat("/in/2mass%d", i);
    GeneratedWorkload w = MakeMontageWorkflow(montage);
    BurstEntry e;
    e.name = StrFormat("montage-%d", i);
    e.queue = "analytics";
    e.staged.language = "dax";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  for (int i = 0; i < 2; ++i) {
    KmeansWorkloadOptions kmeans;
    kmeans.points_bytes = (quick ? 8LL : 32LL) << 20;
    kmeans.converge_after = 3;
    kmeans.input_path = StrFormat("/in/kmeans%d/points.csv", i);
    GeneratedWorkload w = MakeKmeansWorkflow(kmeans);
    BurstEntry e;
    e.name = StrFormat("kmeans-%d", i);
    e.queue = "analytics";
    e.staged.language = "cuneiform";
    e.staged.document = w.document;
    e.staged.inputs = w.inputs;
    burst.push_back(std::move(e));
  }
  return burst;
}

struct BurstResult {
  double makespan_s = 0.0;
  double mean_wait_s = 0.0;
  double p95_wait_s = 0.0;
  double fairness = 0.0;
  int succeeded = 0;
  int total = 0;
};

Result<BurstResult> RunBurst(const std::string& rm_scheduler, bool quick) {
  // Scarce on purpose: 8 AM containers + ~30 requested task containers
  // against 10 x 3 = 30 vcores forces sustained multi-tenant contention.
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "10");
  karamel.SetAttribute("cluster/cores", "3");
  karamel.SetAttribute("cluster/memory_mb", "4096");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  std::vector<BurstEntry> burst = MakeBurst(quick);
  for (const BurstEntry& e : burst) {
    for (const auto& [path, size] : e.staged.inputs) {
      if (!d->dfs->Exists(path)) {
        HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
      }
    }
  }

  WorkflowServiceOptions service_options;
  service_options.rm_scheduler = rm_scheduler;
  ServiceQueueOptions genomics;
  genomics.rm.name = "genomics";
  genomics.rm.guaranteed_share = 0.5;
  genomics.max_concurrent_ams = 8;
  ServiceQueueOptions analytics;
  analytics.rm.name = "analytics";
  analytics.rm.guaranteed_share = 0.5;
  analytics.max_concurrent_ams = 8;
  service_options.queues = {genomics, analytics};
  HIWAY_ASSIGN_OR_RETURN(
      std::unique_ptr<WorkflowService> service,
      WorkflowService::Create(d.get(), service_options));

  HiWayClient client(d.get());
  for (const BurstEntry& e : burst) {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                           client.MakeSource(e.staged));
    SubmissionOptions sub;
    sub.queue = e.queue;
    HIWAY_RETURN_IF_ERROR(
        service->Submit(e.name, std::move(source), sub).status());
  }
  HIWAY_RETURN_IF_ERROR(service->RunToCompletion());

  BurstResult result;
  result.total = static_cast<int>(burst.size());
  for (const SubmissionRecord& rec : service->Records()) {
    if (rec.state == SubmissionState::kSucceeded) ++result.succeeded;
    result.makespan_s = std::max(result.makespan_s, rec.finished_at);
  }
  std::vector<double> waits;
  for (const std::string& queue : {"genomics", "analytics"}) {
    const TenantStats* stats = d->rm->queue_stats(queue);
    if (stats != nullptr) {
      waits.insert(waits.end(), stats->wait_times_s.begin(),
                   stats->wait_times_s.end());
    }
  }
  result.mean_wait_s = bench::Mean(waits);
  result.p95_wait_s = Percentile(waits, 95.0);
  result.fairness = d->rm->TimeAveragedFairness();
  return result;
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bench::PrintHeader(
      "Multi-tenant service: mixed 8-workflow burst under RM schedulers");
  std::printf("burst: 2x SNV + 2x RNA-seq (genomics), 2x Montage + "
              "2x k-means (analytics)\ncluster: 10 workers x 3 cores "
              "(scarce; sustained contention)%s\n\n",
              quick ? "  [quick]" : "");
  std::printf("%-10s %12s %14s %13s %10s %6s\n", "scheduler", "makespan",
              "mean-wait", "p95-wait", "jain", "ok");
  bench::PrintRule(70);
  for (const std::string& scheduler : {"fifo", "capacity", "fair"}) {
    auto result = RunBurst(scheduler, quick);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", scheduler.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %12s %14s %13s %10.3f %3d/%d\n", scheduler.c_str(),
                HumanDuration(result->makespan_s).c_str(),
                HumanDuration(result->mean_wait_s).c_str(),
                HumanDuration(result->p95_wait_s).c_str(), result->fairness,
                result->succeeded, result->total);
  }
  std::printf(
      "\nJain index is time-averaged over windows where >= 2 tenants hold\n"
      "or demand resources and >= 1 is backlogged; 1.0 = every tenant's\n"
      "demand is satisfied at the same rate.\n");
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
