// Reproduces Table 1 (Sec. 4): the overview of conducted experiments.
// Each row names the workflow, its domain and language, the scheduler, the
// infrastructure, the number of runs, and the evaluation goal — and this
// harness verifies that every referenced artefact actually exists in this
// repository (workloads parse, schedulers construct, tool profiles are
// registered) so the table stays honest as the code evolves.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/core/scheduler.h"
#include "src/lang/cuneiform.h"
#include "src/lang/dax_source.h"
#include "src/lang/galaxy_source.h"
#include "src/workloads/workloads.h"

namespace hiway {
namespace {

int Main() {
  bench::PrintHeader("Table 1: Overview of conducted experiments");
  std::printf(
      "%-12s %-14s %-10s %-11s %-24s %5s  %-24s %s\n", "workflow", "domain",
      "language", "scheduler", "infrastructure", "runs", "evaluation",
      "bench");
  bench::PrintRule(125);
  std::printf(
      "%-12s %-14s %-10s %-11s %-24s %5d  %-24s %s\n", "SNV Calling",
      "genomics", "Cuneiform", "data-aware", "24x Xeon E5-2620", 3,
      "performance, scalability", "bench_fig4_scaling_tez");
  std::printf(
      "%-12s %-14s %-10s %-11s %-24s %5d  %-24s %s\n", "SNV Calling",
      "genomics", "Cuneiform", "FCFS", "128x EC2 m3.large", 3, "scalability",
      "bench_table2_fig5_weak_scaling");
  std::printf(
      "%-12s %-14s %-10s %-11s %-24s %5d  %-24s %s\n", "RNA-seq",
      "bioinformatics", "Galaxy", "data-aware", "6x EC2 c3.2xlarge", 5,
      "performance", "bench_fig8_rnaseq_cloudman");
  std::printf(
      "%-12s %-14s %-10s %-11s %-24s %5d  %-24s %s\n", "Montage",
      "astronomy", "DAX", "HEFT", "8x EC2 m3.large", 80, "adaptive scheduling",
      "bench_fig9_heft_adaptive");
  bench::PrintRule(125);

  // Verify the artefacts behind every row.
  int failures = 0;
  auto check = [&failures](const char* what, const Status& st) {
    if (!st.ok()) {
      std::printf("  FAIL %-38s %s\n", what, st.ToString().c_str());
      ++failures;
    } else {
      std::printf("  ok   %s\n", what);
    }
  };
  std::printf("\nArtefact self-check:\n");

  {
    GeneratedWorkload wl = MakeSnvCallingWorkflow(SnvWorkloadOptions{});
    check("SNV workflow parses as Cuneiform",
          CuneiformSource::Parse(wl.document).status());
  }
  {
    RnaSeqWorkloadOptions options;
    GeneratedWorkload wl = MakeTraplineWorkflow(options);
    std::map<std::string, std::string> bindings;
    for (const auto& [k, v] : TraplineInputBindings(options)) bindings[k] = v;
    check("TRAPLINE workflow parses as Galaxy JSON",
          GalaxySource::Parse(wl.document, bindings).status());
  }
  {
    GeneratedWorkload wl = MakeMontageWorkflow(MontageWorkloadOptions{});
    check("Montage workflow parses as Pegasus DAX",
          DaxSource::Parse(wl.document).status());
  }
  {
    Karamel karamel;
    karamel.AddRecipe(HadoopInstallRecipe());
    karamel.AddRecipe(HiWayInstallRecipe());
    auto d = karamel.Converge();
    check("Karamel converges a Hadoop+Hi-WAY deployment", d.status());
    if (d.ok()) {
      for (const char* policy :
           {"fcfs", "data-aware", "round-robin", "heft"}) {
        auto s = MakeScheduler(policy, (*d)->dfs.get(), &(*d)->estimator);
        check(StrFormat("scheduler '%s' constructs", policy).c_str(),
              s.status());
      }
      for (const char* tool : {"bowtie2", "samtools-sort", "varscan",
                               "annovar", "tophat2", "cufflinks", "cuffdiff",
                               "mProjectPP", "mBgModel", "mAdd",
                               "kmeans-check"}) {
        check(StrFormat("tool profile '%s' registered", tool).c_str(),
              (*d)->tools.Find(tool).status());
      }
    }
  }
  std::printf("\n%s\n", failures == 0 ? "All artefacts present."
                                      : "Some artefacts are missing!");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main() { return hiway::Main(); }
