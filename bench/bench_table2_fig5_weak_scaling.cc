// Reproduces Table 2 and Fig. 5 (Sec. 4.1, second experiment): weak
// scaling of the SNV-calling workflow on EC2. Starting from one m3.large
// worker processing one sample (8 files x ~1 GB), workers and input
// double together up to 128 workers / ~1.1 TB. Inputs stream from the
// 1000-Genomes S3 bucket during execution; intermediate alignments use
// CRAM referential compression; two dedicated master VMs host (i) the
// Hadoop master processes and (ii) the Hi-WAY AM; FCFS scheduling; one
// container per worker with both cores.
//
// Paper reference (avg of 3 runs): runtimes 340-380 min, essentially flat;
// cost per run $2.48 -> $111.79; cost per GB falling $0.31 -> $0.10
// (m3.large at $0.146/h, billed per minute).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/client.h"

namespace hiway {
namespace {

constexpr double kPricePerVmHour = 0.146;  // m3.large, EU West, 2016

struct ScalePoint {
  int workers;
  double data_gb;
  std::vector<double> runtimes_min;
  double cost_per_run = 0.0;
  double cost_per_gb = 0.0;
};

Result<std::unique_ptr<Deployment>> MakeDeployment(int workers,
                                                   uint64_t seed) {
  Karamel karamel;
  // Two dedicated master VMs (Hadoop masters; Hi-WAY AM) + workers. The
  // masters are nodes 0 and 1; workers follow.
  karamel.SetAttribute("cluster/workers", StrFormat("%d", workers + 2));
  karamel.SetAttribute("cluster/cores", "2");          // m3.large
  karamel.SetAttribute("cluster/memory_mb", "7680");
  karamel.SetAttribute("cluster/disk_mbps", "150");    // local SSD
  karamel.SetAttribute("cluster/nic_mbps", "62");      // "moderate" network
  karamel.SetAttribute("cluster/switch_mbps", "20000");  // EC2 fabric
  karamel.SetAttribute("cluster/s3_mbps", "20000");      // S3 aggregate
  karamel.SetAttribute("dfs/first_datanode", "2");  // masters store no blocks
  karamel.SetAttribute("snv/chunks", StrFormat("%d", workers * 8));
  karamel.SetAttribute("snv/chunk_mb", "1024");
  karamel.SetAttribute("snv/cram", "1");
  karamel.SetAttribute("snv/ingest", "s3");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", static_cast<unsigned long long>(seed)));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  return karamel.Converge();
}

Result<double> RunOnce(int workers, uint64_t seed) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         MakeDeployment(workers, seed));
  // Masters host no containers: zero out their YARN capacity by placing
  // the AM (1 vcore? no — AM gets node 1) and reserving node 0.
  HiWayClient client(d.get());
  HiWayOptions options;
  // "we configured Hi-WAY to only allow a single container per worker
  // node ..., enabling multithreading for tasks running within that
  // container."
  options.container_vcores = 2;
  options.container_memory_mb = 7000;
  options.am_node = 1;  // dedicated AM VM
  options.am_vcores = 2;
  options.am_memory_mb = 7000;  // AM VM hosts no worker containers
  options.seed = seed;
  // Reserve the Hadoop-master VM (node 0) by a placeholder allocation.
  // (Its capacity is 2 cores; a 2-core sentinel keeps containers off it.)
  // Simpler: the data volume is sized for `workers` containers; extra
  // capacity on node 0 would skew weak scaling, so block it.
  HIWAY_ASSIGN_OR_RETURN(
      ApplicationId blocker,
      d->rm->RegisterApplication("hadoop-masters", nullptr, 2, 7000, 0));
  (void)blocker;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("snv-calling", "fcfs", options));
  HIWAY_RETURN_IF_ERROR(report.status);
  return report.Makespan();
}

int Main(int argc, char** argv) {
  const bool quick = bench::QuickMode(argc, argv);
  const int runs = quick ? 1 : 3;
  bench::PrintHeader(
      "Table 2 / Figure 5: weak scaling of SNV calling on EC2 m3.large "
      "(inputs from S3, CRAM compression, FCFS)");
  std::printf("%d run(s) per scale; 8 GB of reads per worker.\n\n", runs);
  std::printf("%8s %8s %12s %16s %14s %12s %12s\n", "workers", "masters",
              "data (GB)", "runtime (min)", "std dev", "cost/run",
              "cost/GB");
  bench::PrintRule(92);

  std::vector<ScalePoint> points;
  std::vector<int> scales = {1, 2, 4, 8, 16, 32, 64, 128};
  if (quick) scales = {1, 4, 16, 64, 128};
  for (int workers : scales) {
    ScalePoint point;
    point.workers = workers;
    point.data_gb = workers * 8.0 * 1.007;  // ~8.06 GB per sample
    for (int run = 0; run < runs; ++run) {
      uint64_t seed = 5000 + static_cast<uint64_t>(workers * 10 + run);
      auto rt = RunOnce(workers, seed);
      if (!rt.ok()) {
        std::fprintf(stderr, "run failed: %s\n",
                     rt.status().ToString().c_str());
        return 1;
      }
      point.runtimes_min.push_back(*rt / 60.0);
    }
    double mean_min = bench::Mean(point.runtimes_min);
    int vms = workers + 2;
    point.cost_per_run = vms * mean_min / 60.0 * kPricePerVmHour;
    point.cost_per_gb = point.cost_per_run / point.data_gb;
    std::printf("%8d %8d %12.2f %16.2f %14.2f %11.2f$ %11.2f$\n", workers, 2,
                point.data_gb, mean_min, bench::StdDev(point.runtimes_min),
                point.cost_per_run, point.cost_per_gb);
    points.push_back(std::move(point));
  }
  bench::PrintRule(92);

  // Claim: near-linear weak scaling — the largest scale's runtime within
  // 15 % of the smallest's (the paper's spread is 340-380 min, ~11 %).
  double first = bench::Mean(points.front().runtimes_min);
  double last = bench::Mean(points.back().runtimes_min);
  double spread = last / first;
  bool near_linear = spread < 1.15 && spread > 0.85;
  // Claim: cost per GB decreases monotonically toward ~1/3 of the
  // single-worker cost.
  bool cost_falls = points.back().cost_per_gb < 0.5 * points.front().cost_per_gb;
  std::printf(
      "Near-linear weak scaling (runtime at 128 workers / runtime at 1 "
      "worker = %.3f): %s\n",
      spread, near_linear ? "OK" : "MISS");
  std::printf("Cost per GB falls by >2x across scales: %s\n",
              cost_falls ? "OK" : "MISS");
  std::printf(
      "\nNote: extrapolating the single-worker rate, 1 TB on one machine "
      "would take ~%.0f days (the paper: \"easily ... a month\").\n",
      first * 128.0 / 60.0 / 24.0);
  return (near_linear && cost_falls) ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
