// Tracing-overhead benchmark: the fig6 utilization workload (SNV
// variant calling, S3 ingest) run with execution tracing off vs. on.
//
// Tracing must be free twice over:
//
//   virtual cost  — a tracer only *records*; enabling it must not
//                   change a single scheduling decision, so the
//                   traced run's virtual makespan must equal the
//                   untraced run's EXACTLY (same seed, same events).
//   wall cost     — the recording fast path (one relaxed load when
//                   disabled; a ring append when enabled) is gated at
//                   < 5 % median wall-clock overhead across paired
//                   runs (the ISSUE's acceptance bar; see
//                   docs/observability.md).
//
// Also reports events recorded, events/sec, ns/event, and — because the
// trace should explain the run — the critical-path breakdown of the
// traced run. `--json` emits one JSON object for CI artifacts,
// `--quick` shrinks the workload and repetition count.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/client.h"
#include "src/infra/karamel.h"
#include "src/obs/trace_analyzer.h"
#include "src/obs/tracer.h"

namespace hiway {
namespace {

constexpr double kMaxOverheadFraction = 0.05;

struct RunOutcome {
  double virtual_makespan_s = 0.0;
  double wall_seconds = 0.0;
  uint64_t events_recorded = 0;
  uint64_t events_dropped = 0;
  std::vector<TraceEvent> events;  // traced runs only
};

Result<RunOutcome> RunOnce(int workers, uint64_t seed, bool tracing,
                           bool keep_events) {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", StrFormat("%d", workers + 2));
  karamel.SetAttribute("cluster/cores", "2");
  karamel.SetAttribute("cluster/memory_mb", "7680");
  karamel.SetAttribute("cluster/disk_mbps", "150");
  karamel.SetAttribute("cluster/nic_mbps", "62");
  karamel.SetAttribute("cluster/switch_mbps", "20000");
  karamel.SetAttribute("cluster/s3_mbps", "20000");
  karamel.SetAttribute("dfs/first_datanode", "2");
  karamel.SetAttribute("snv/chunks", StrFormat("%d", workers * 8));
  karamel.SetAttribute("snv/chunk_mb", "512");
  karamel.SetAttribute("snv/cram", "1");
  karamel.SetAttribute("snv/ingest", "s3");
  karamel.SetAttribute("seed",
                       StrFormat("%llu", (unsigned long long)seed));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  d->tracer.set_enabled(tracing);

  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 2;
  options.container_memory_mb = 7000;
  options.am_node = 1;
  options.am_vcores = 2;
  options.am_memory_mb = 7000;
  options.seed = seed;
  HIWAY_ASSIGN_OR_RETURN(
      ApplicationId blocker,
      d->rm->RegisterApplication("hadoop-masters", nullptr, 2, 7000, 0));
  (void)blocker;

  auto wall_start = std::chrono::steady_clock::now();
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.Run("snv-calling", "fcfs", options));
  auto wall_end = std::chrono::steady_clock::now();
  HIWAY_RETURN_IF_ERROR(report.status);

  RunOutcome out;
  out.virtual_makespan_s = report.Makespan();
  out.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  TracerStats stats = d->tracer.Stats();
  out.events_recorded = stats.recorded;
  out.events_dropped = stats.dropped;
  if (keep_events) out.events = d->tracer.Drain();
  return out;
}

int Main(int argc, char** argv) {
  bool quick = bench::QuickMode(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json") json = true;
  }
  int workers = quick ? 4 : 8;
  int reps = quick ? 5 : 7;

  // Untimed warm-up: first simulation pays allocator / page-fault
  // costs that would otherwise be charged to the "off" leg.
  (void)RunOnce(workers, 42, /*tracing=*/false, /*keep_events=*/false);

  if (!json) {
    std::printf("bench_trace_overhead: fig6 SNV workload, %d workers, "
                "%d paired reps (tracing off vs. on)\n\n",
                workers, reps);
  }

  std::vector<double> wall_off, wall_on;
  double makespan_off = -1.0, makespan_on = -1.0;
  uint64_t events_recorded = 0, events_dropped = 0;
  double traced_wall_total = 0.0;
  std::vector<TraceEvent> sample_events;
  for (int r = 0; r < reps; ++r) {
    uint64_t seed = 42;  // identical seed: paired runs, same schedule
    auto off = RunOnce(workers, seed, /*tracing=*/false,
                       /*keep_events=*/false);
    if (!off.ok()) {
      std::fprintf(stderr, "untraced run failed: %s\n",
                   off.status().ToString().c_str());
      return 1;
    }
    auto on = RunOnce(workers, seed, /*tracing=*/true,
                      /*keep_events=*/r == 0);
    if (!on.ok()) {
      std::fprintf(stderr, "traced run failed: %s\n",
                   on.status().ToString().c_str());
      return 1;
    }
    wall_off.push_back(off->wall_seconds);
    wall_on.push_back(on->wall_seconds);
    makespan_off = off->virtual_makespan_s;
    makespan_on = on->virtual_makespan_s;
    events_recorded = on->events_recorded;
    events_dropped = on->events_dropped;
    traced_wall_total += on->wall_seconds;
    if (r == 0) sample_events = std::move(on->events);
    if (!json) {
      std::printf("  rep %d: wall off=%.3fs on=%.3fs  virtual "
                  "off=%.1fs on=%.1fs\n",
                  r, off->wall_seconds, on->wall_seconds,
                  off->virtual_makespan_s, on->virtual_makespan_s);
    }
    // Gate 1: recording must not perturb the simulation.
    if (off->virtual_makespan_s != on->virtual_makespan_s) {
      std::fprintf(stderr,
                   "FAIL: tracing changed the virtual makespan "
                   "(%.6f != %.6f)\n",
                   off->virtual_makespan_s, on->virtual_makespan_s);
      return 1;
    }
  }

  double med_off = bench::Median(wall_off);
  double med_on = bench::Median(wall_on);
  double overhead =
      med_off > 0.0 ? (med_on - med_off) / med_off : 0.0;
  double events_per_sec =
      traced_wall_total > 0.0
          ? static_cast<double>(events_recorded) *
                static_cast<double>(reps) / traced_wall_total
          : 0.0;
  double ns_per_event =
      events_recorded > 0
          ? (med_on - med_off) * 1e9 / static_cast<double>(events_recorded)
          : 0.0;

  TraceAnalyzer analyzer(std::move(sample_events));
  CriticalPathReport path = analyzer.CriticalPath();

  // Gate 2: < 5 % median wall-clock overhead.
  bool pass = overhead < kMaxOverheadFraction && events_dropped == 0;

  if (json) {
    std::printf(
        "{\"bench\": \"trace_overhead\", \"workers\": %d, \"reps\": %d, "
        "\"wall_median_off_s\": %.6f, \"wall_median_on_s\": %.6f, "
        "\"overhead_fraction\": %.6f, \"overhead_gate\": %.2f, "
        "\"virtual_makespan_s\": %.3f, \"virtual_makespan_identical\": %s, "
        "\"events_recorded\": %llu, \"events_dropped\": %llu, "
        "\"events_per_sec\": %.0f, \"marginal_ns_per_event\": %.1f, "
        "\"critical_path\": {\"total_s\": %.3f, \"wait_s\": %.3f, "
        "\"data_s\": %.3f, \"compute_s\": %.3f, \"steps\": %zu}, "
        "\"pass\": %s}\n",
        workers, reps, med_off, med_on, overhead, kMaxOverheadFraction,
        makespan_on, makespan_off == makespan_on ? "true" : "false",
        (unsigned long long)events_recorded,
        (unsigned long long)events_dropped, events_per_sec, ns_per_event,
        path.total_s, path.wait_s, path.data_s, path.compute_s,
        path.steps.size(), pass ? "true" : "false");
  } else {
    std::printf("\n  median wall: off=%.3fs on=%.3fs -> overhead %.2f%% "
                "(gate < %.0f%%)\n",
                med_off, med_on, overhead * 100.0,
                kMaxOverheadFraction * 100.0);
    std::printf("  events: %llu recorded, %llu dropped (%.0f events/s, "
                "%.1f marginal ns/event)\n",
                (unsigned long long)events_recorded,
                (unsigned long long)events_dropped, events_per_sec,
                ns_per_event);
    std::printf("  %s\n", path.Summary().c_str());
    std::printf("  virtual makespans identical across all paired runs\n");
    std::printf("\n%s\n", pass ? "PASS" : "FAIL");
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) { return hiway::Main(argc, argv); }
