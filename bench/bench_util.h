// Shared plumbing for the benchmark harnesses: statistics helpers and
// table formatting, plus canonical deployment builders for the paper's
// experiment setups.

#ifndef HIWAY_BENCH_BENCH_UTIL_H_
#define HIWAY_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/strings.h"

namespace hiway {
namespace bench {

inline double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

inline double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

inline double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  size_t mid = xs.size() / 2;
  if (xs.size() % 2 == 1) return xs[mid];
  return 0.5 * (xs[mid - 1] + xs[mid]);
}

/// Welch's two-sample t statistic (the paper reports t-test significance
/// for Fig. 8 and Fig. 9).
inline double WelchT(const std::vector<double>& a,
                     const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  double va = StdDev(a) * StdDev(a) / static_cast<double>(a.size());
  double vb = StdDev(b) * StdDev(b) / static_cast<double>(b.size());
  if (va + vb <= 0.0) return 0.0;
  return (Mean(a) - Mean(b)) / std::sqrt(va + vb);
}

/// "--quick" (or HIWAY_BENCH_QUICK=1) trims repetition counts so the whole
/// bench suite stays minutes, not hours; the paper-scale counts remain the
/// default for single benches.
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") return true;
  }
  const char* env = std::getenv("HIWAY_BENCH_QUICK");
  return env != nullptr && std::string(env) == "1";
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%s\n", std::string(title.size(), '=').c_str());
}

inline void PrintRule(int width = 78) {
  std::printf("%s\n", std::string(static_cast<size_t>(width), '-').c_str());
}

}  // namespace bench
}  // namespace hiway

#endif  // HIWAY_BENCH_BENCH_UTIL_H_
