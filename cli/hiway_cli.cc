// hiway — command-line front door to the simulator-backed Hi-WAY stack.
//
// Mirrors the paper's light-weight client (Sec. 3.1): point it at a
// workflow file in any supported language, describe the cluster with
// Chef-style attributes, pick a scheduling policy, and it provisions the
// deployment, stages declared inputs, executes the workflow, and reports
// the outcome (optionally dumping the re-executable provenance trace).
//
//   hiway --workflow wf.cf --language cuneiform --policy data-aware
//         -a cluster/workers=8 -a cluster/cores=4
//         --input /in/reads.fq=256MB --trace-out trace.jsonl
//
// Languages: cuneiform | dax | galaxy | trace.
// Galaxy placeholders resolve via repeated --galaxy-input name=/dfs/path.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/core/metrics.h"
#include "src/lang/dax_source.h"
#include "src/lang/cwl_source.h"
#include "src/lang/galaxy_source.h"
#include "src/lang/trace_source.h"
#include "src/obs/exporters.h"
#include "src/obs/trace_analyzer.h"
#include "src/service/workflow_service.h"
#include "src/sim/fault_injector.h"

namespace hiway {
namespace {

void PrintUsage() {
  std::printf(
      "usage: hiway --workflow FILE [options]\n"
      "\n"
      "workflow execution:\n"
      "  --workflow FILE          workflow document to execute (repeatable\n"
      "                           in --service mode)\n"
      "  --cwl FILE               shorthand for --workflow FILE with the\n"
      "                           CWL front-end forced for that file\n"
      "  --language LANG          cuneiform | dax | galaxy | trace | cwl\n"
      "                           (default: guessed from the extension:\n"
      "                            .cf/.cuneiform, .xml/.dax, .ga/.json,\n"
      "                            .jsonl/.trace, .cwl/.cwl.json)\n"
      "  --policy POLICY          fcfs | data-aware | round-robin | heft |\n"
      "                           online-mct (default: data-aware)\n"
      "  --vcores N               container vcores (default 1)\n"
      "  --memory MB              container memory (default 1024)\n"
      "  --tailor-containers      per-task container sizing (Sec. 5)\n"
      "  --seed N                 simulation seed (default 42)\n"
      "  --verbose                per-task completion log\n"
      "  --help                   this message\n"
      "\n"
      "deployment & storage (docs/storage-model.md):\n"
      "  -a KEY=VALUE             Chef-style deployment attribute, e.g.\n"
      "                           -a cluster/workers=8 (repeatable)\n"
      "  --input PATH=SIZE        stage an input file into DFS; SIZE takes\n"
      "                           B/KB/MB/GB suffixes (repeatable)\n"
      "  --galaxy-input NAME=PATH resolve a Galaxy input placeholder\n"
      "  --dfs-capacity-mb N      cap raw (replica-weighted) DFS storage\n"
      "                           at N MiB; writes beyond it fail\n"
      "                           (default 0 = unlimited)\n"
      "  --gc                     collect intermediate files once their\n"
      "                           last consumer completed (targets and\n"
      "                           cache-pinned outputs are kept)\n"
      "\n"
      "data caches (docs/data-cache.md):\n"
      "  --result-cache           enable the cluster-wide result cache:\n"
      "                           tasks whose signature and input contents\n"
      "                           match a sealed prior run are served\n"
      "                           without a container\n"
      "  --staging-cache-mb N     per-node staging cache budget in MiB\n"
      "                           (0 = unbounded; omit to disable)\n"
      "  --cache-verify           spot-check result-cache hits by\n"
      "                           re-reading their outputs from DFS and\n"
      "                           fail the hit loudly on a mismatch\n"
      "\n"
      "observability (docs/observability.md):\n"
      "  --trace-out FILE         write the provenance trace (JSON lines)\n"
      "  --chrome-trace-out FILE  write an execution trace in Chrome\n"
      "                           trace_event JSON (load in Perfetto) and\n"
      "                           print the critical-path breakdown\n"
      "  --metrics-out FILE       write a Prometheus-style text snapshot\n"
      "                           of per-span counters\n"
      "\n"
      "multi-tenant service mode (many AMs in one deployment):\n"
      "  --service                run all --workflow flags concurrently\n"
      "                           through the WorkflowService gateway\n"
      "  --rm-scheduler NAME      fifo | capacity | fair (default fifo)\n"
      "  --allocation-mode MODE   incremental (default) | full-scan: the\n"
      "                           RM allocation-pass implementation\n"
      "                           (docs/scaling.md; full-scan is the\n"
      "                           pre-refactor O(apps) reference pass)\n"
      "  --heartbeat-batch S      coalesce all AM->RM heartbeats into one\n"
      "                           service sweep every S seconds (default\n"
      "                           0 = per-AM heartbeat loops; shifts\n"
      "                           heartbeat timing, see docs/scaling.md)\n"
      "  --queue NAME             submit subsequent --workflow flags to\n"
      "                           this service queue (default 'default')\n"
      "  --queue-config NAME=G,M,AMS,BACKLOG\n"
      "                           configure a queue: guaranteed share G,\n"
      "                           max share M (fractions of the cluster),\n"
      "                           AMS concurrent AMs, BACKLOG waiting\n"
      "                           submissions (repeatable)\n"
      "  --priority N             preemption priority for subsequent\n"
      "                           --workflow flags (lower = preempted\n"
      "                           first; default 0)\n"
      "  --preemption             let the RM preempt task containers of\n"
      "                           over-guarantee queues when another queue\n"
      "                           starves (docs/scheduling-model.md)\n"
      "  --preemption-grace S     starvation grace period before the RM\n"
      "                           preempts, seconds (default 5)\n"
      "  --max-preempt-per-round N\n"
      "                           kill at most N containers per allocation\n"
      "                           pass (default 2)\n"
      "  --footprint-admission    only co-schedule workflows whose\n"
      "                           combined estimated storage footprint\n"
      "                           fits the DFS capacity; needs\n"
      "                           --dfs-capacity-mb (docs/storage-model.md)\n"
      "  --faults SPEC            inject failures while the burst runs,\n"
      "                           e.g. kill-am-node@60,hdfs-error:rate=0.05\n"
      "                           (see docs/failure-model.md for the\n"
      "                           grammar; targets are drawn from --seed)\n"
      "\n"
      "elastic cluster membership (docs/elastic-cluster.md):\n"
      "  --autoscaler NAME        off | reactive | aggressive |\n"
      "                           conservative — grow the fleet on\n"
      "                           sustained backlog, retire idle workers\n"
      "                           (default off; combine with\n"
      "                           -a elastic/min_nodes=N and\n"
      "                           -a elastic/max_nodes=N)\n"
      "  --spot-fraction F        treat the highest F fraction of workers\n"
      "                           as spot instances: spot-revoke faults\n"
      "                           only target those (default: any node)\n"
      "  --revoke-warning-s S     default revocation warning for\n"
      "                           spot-revoke clauses without warn=\n"
      "                           (default 120, the EC2 notice)\n");
}

Result<int64_t> ParseSize(std::string_view text) {
  double factor = 1.0;
  std::string_view number = text;
  if (EndsWith(text, "GB")) {
    factor = 1024.0 * 1024.0 * 1024.0;
    number = text.substr(0, text.size() - 2);
  } else if (EndsWith(text, "MB")) {
    factor = 1024.0 * 1024.0;
    number = text.substr(0, text.size() - 2);
  } else if (EndsWith(text, "KB")) {
    factor = 1024.0;
    number = text.substr(0, text.size() - 2);
  } else if (EndsWith(text, "B")) {
    number = text.substr(0, text.size() - 1);
  }
  HIWAY_ASSIGN_OR_RETURN(double value, ParseDouble(number));
  return static_cast<int64_t>(value * factor);
}

std::string GuessLanguage(const std::string& path) {
  if (EndsWith(path, ".cf") || EndsWith(path, ".cuneiform")) {
    return "cuneiform";
  }
  if (EndsWith(path, ".dax") || EndsWith(path, ".xml")) return "dax";
  // .cwl.json before the bare .json (galaxy) rule.
  if (EndsWith(path, ".cwl") || EndsWith(path, ".cwl.json")) return "cwl";
  if (EndsWith(path, ".ga") || EndsWith(path, ".json")) return "galaxy";
  if (EndsWith(path, ".jsonl") || EndsWith(path, ".trace")) return "trace";
  return "cuneiform";
}

struct CliWorkflow {
  std::string path;
  std::string queue;  // service mode: the queue it is submitted to
  int priority = 0;   // preemption priority of its task containers
  /// Per-file language override (--cwl); wins over --language / guessing.
  std::string language;
};

struct CliOptions {
  std::vector<CliWorkflow> workflows;
  std::string language;
  std::string policy = "data-aware";
  ChefAttributes attributes;
  std::vector<std::pair<std::string, int64_t>> inputs;
  std::map<std::string, std::string> galaxy_inputs;
  int vcores = 1;
  double memory_mb = 1024.0;
  bool tailor = false;
  uint64_t seed = 42;
  std::string trace_out;
  std::string chrome_trace_out;
  std::string metrics_out;
  bool verbose = false;
  // Service mode.
  bool service = false;
  std::string rm_scheduler = "fifo";
  double heartbeat_batch = 0.0;
  std::vector<ServiceQueueOptions> queue_configs;
  std::string faults;
  bool footprint_admission = false;
  // Elastic membership.
  double spot_fraction = -1.0;
  double revoke_warning_s = -1.0;

  const std::string& workflow_path() const { return workflows[0].path; }
};

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i, const char* flag) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Status::InvalidArgument(StrFormat("%s expects a value", flag));
    }
    return std::string(argv[++i]);
  };
  auto split_kv = [](const std::string& kv,
                     const char* flag) -> Result<std::pair<std::string,
                                                           std::string>> {
    size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("%s expects KEY=VALUE, got '%s'", flag, kv.c_str()));
    }
    return std::make_pair(kv.substr(0, eq), kv.substr(eq + 1));
  };
  std::string current_queue = "default";
  int current_priority = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--workflow") {
      HIWAY_ASSIGN_OR_RETURN(std::string path, need_value(i, "--workflow"));
      options.workflows.push_back(CliWorkflow{std::move(path), current_queue,
                                              current_priority, ""});
    } else if (arg == "--cwl") {
      HIWAY_ASSIGN_OR_RETURN(std::string path, need_value(i, "--cwl"));
      options.workflows.push_back(CliWorkflow{std::move(path), current_queue,
                                              current_priority, "cwl"});
    } else if (arg == "--service") {
      options.service = true;
    } else if (arg == "--priority") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--priority"));
      HIWAY_ASSIGN_OR_RETURN(int64_t n, ParseInt64(v));
      current_priority = static_cast<int>(n);
    } else if (arg == "--preemption") {
      options.attributes["yarn/preemption"] = "true";
    } else if (arg == "--preemption-grace") {
      HIWAY_ASSIGN_OR_RETURN(std::string v,
                             need_value(i, "--preemption-grace"));
      HIWAY_RETURN_IF_ERROR(ParseDouble(v).status());
      options.attributes["yarn/preemption_grace_s"] = v;
    } else if (arg == "--max-preempt-per-round") {
      HIWAY_ASSIGN_OR_RETURN(std::string v,
                             need_value(i, "--max-preempt-per-round"));
      HIWAY_RETURN_IF_ERROR(ParseInt64(v).status());
      options.attributes["yarn/max_preempt_per_round"] = v;
    } else if (arg == "--rm-scheduler") {
      HIWAY_ASSIGN_OR_RETURN(options.rm_scheduler,
                             need_value(i, "--rm-scheduler"));
    } else if (arg == "--allocation-mode") {
      HIWAY_ASSIGN_OR_RETURN(std::string v,
                             need_value(i, "--allocation-mode"));
      if (v != "incremental" && v != "full-scan") {
        return Status::InvalidArgument(
            "--allocation-mode must be 'incremental' or 'full-scan'");
      }
      options.attributes["yarn/allocation_mode"] = v;
    } else if (arg == "--heartbeat-batch") {
      HIWAY_ASSIGN_OR_RETURN(std::string v,
                             need_value(i, "--heartbeat-batch"));
      HIWAY_ASSIGN_OR_RETURN(options.heartbeat_batch, ParseDouble(v));
    } else if (arg == "--queue") {
      HIWAY_ASSIGN_OR_RETURN(current_queue, need_value(i, "--queue"));
    } else if (arg == "--queue-config") {
      HIWAY_ASSIGN_OR_RETURN(std::string kv, need_value(i, "--queue-config"));
      HIWAY_ASSIGN_OR_RETURN(auto pair, split_kv(kv, "--queue-config"));
      std::vector<std::string> fields = StrSplit(pair.second, ',');
      if (fields.size() != 4) {
        return Status::InvalidArgument(
            "--queue-config expects NAME=GUARANTEED,MAX,AMS,BACKLOG, got '" +
            kv + "'");
      }
      ServiceQueueOptions q;
      q.rm.name = pair.first;
      HIWAY_ASSIGN_OR_RETURN(q.rm.guaranteed_share, ParseDouble(fields[0]));
      HIWAY_ASSIGN_OR_RETURN(q.rm.max_share, ParseDouble(fields[1]));
      HIWAY_ASSIGN_OR_RETURN(int64_t ams, ParseInt64(fields[2]));
      HIWAY_ASSIGN_OR_RETURN(int64_t backlog, ParseInt64(fields[3]));
      q.max_concurrent_ams = static_cast<int>(ams);
      q.max_backlog = static_cast<int>(backlog);
      options.queue_configs.push_back(std::move(q));
    } else if (arg == "--faults") {
      HIWAY_ASSIGN_OR_RETURN(options.faults, need_value(i, "--faults"));
      // Surface grammar errors at parse time, not mid-run.
      HIWAY_RETURN_IF_ERROR(ParseFaultSpecs(options.faults).status());
    } else if (arg == "--autoscaler") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--autoscaler"));
      // Fail on unknown policy names now, not after convergence.
      HIWAY_RETURN_IF_ERROR(AutoscalerPolicyByName(v).status());
      options.attributes["elastic/autoscaler"] = v;
    } else if (arg == "--spot-fraction") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--spot-fraction"));
      HIWAY_ASSIGN_OR_RETURN(options.spot_fraction, ParseDouble(v));
      if (options.spot_fraction <= 0.0 || options.spot_fraction > 1.0) {
        return Status::InvalidArgument(
            "--spot-fraction expects a fraction in (0, 1], got '" + v + "'");
      }
    } else if (arg == "--revoke-warning-s") {
      HIWAY_ASSIGN_OR_RETURN(std::string v,
                             need_value(i, "--revoke-warning-s"));
      HIWAY_ASSIGN_OR_RETURN(options.revoke_warning_s, ParseDouble(v));
      if (options.revoke_warning_s < 0.0) {
        return Status::InvalidArgument(
            "--revoke-warning-s expects a non-negative duration, got '" + v +
            "'");
      }
    } else if (arg == "--language") {
      HIWAY_ASSIGN_OR_RETURN(options.language, need_value(i, "--language"));
    } else if (arg == "--policy") {
      HIWAY_ASSIGN_OR_RETURN(options.policy, need_value(i, "--policy"));
    } else if (arg == "-a") {
      HIWAY_ASSIGN_OR_RETURN(std::string kv, need_value(i, "-a"));
      HIWAY_ASSIGN_OR_RETURN(auto pair, split_kv(kv, "-a"));
      options.attributes[pair.first] = pair.second;
    } else if (arg == "--input") {
      HIWAY_ASSIGN_OR_RETURN(std::string kv, need_value(i, "--input"));
      HIWAY_ASSIGN_OR_RETURN(auto pair, split_kv(kv, "--input"));
      HIWAY_ASSIGN_OR_RETURN(int64_t size, ParseSize(pair.second));
      options.inputs.emplace_back(pair.first, size);
    } else if (arg == "--galaxy-input") {
      HIWAY_ASSIGN_OR_RETURN(std::string kv, need_value(i, "--galaxy-input"));
      HIWAY_ASSIGN_OR_RETURN(auto pair, split_kv(kv, "--galaxy-input"));
      options.galaxy_inputs[pair.first] = pair.second;
    } else if (arg == "--vcores") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--vcores"));
      HIWAY_ASSIGN_OR_RETURN(int64_t n, ParseInt64(v));
      options.vcores = static_cast<int>(n);
    } else if (arg == "--memory") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--memory"));
      HIWAY_ASSIGN_OR_RETURN(options.memory_mb, ParseDouble(v));
    } else if (arg == "--tailor-containers") {
      options.tailor = true;
    } else if (arg == "--result-cache") {
      options.attributes["hiway/cache_results"] = "on";
    } else if (arg == "--staging-cache-mb") {
      HIWAY_ASSIGN_OR_RETURN(std::string v,
                             need_value(i, "--staging-cache-mb"));
      HIWAY_RETURN_IF_ERROR(ParseInt64(v).status());
      options.attributes["hiway/cache_staging_mb"] = v;
    } else if (arg == "--cache-verify") {
      options.attributes["hiway/cache_verify"] = "on";
    } else if (arg == "--dfs-capacity-mb") {
      HIWAY_ASSIGN_OR_RETURN(std::string v,
                             need_value(i, "--dfs-capacity-mb"));
      HIWAY_RETURN_IF_ERROR(ParseInt64(v).status());
      options.attributes["dfs/capacity_mb"] = v;
    } else if (arg == "--gc") {
      options.attributes["hiway/gc"] = "on";
    } else if (arg == "--footprint-admission") {
      options.footprint_admission = true;
    } else if (arg == "--seed") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--seed"));
      HIWAY_ASSIGN_OR_RETURN(int64_t n, ParseInt64(v));
      options.seed = static_cast<uint64_t>(n);
    } else if (arg == "--trace-out") {
      HIWAY_ASSIGN_OR_RETURN(options.trace_out, need_value(i, "--trace-out"));
    } else if (arg == "--chrome-trace-out") {
      HIWAY_ASSIGN_OR_RETURN(options.chrome_trace_out,
                             need_value(i, "--chrome-trace-out"));
    } else if (arg == "--metrics-out") {
      HIWAY_ASSIGN_OR_RETURN(options.metrics_out,
                             need_value(i, "--metrics-out"));
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return Status::FailedPrecondition("help");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.workflows.empty()) {
    return Status::InvalidArgument("--workflow is required");
  }
  if (options.workflows.size() > 1 && !options.service) {
    return Status::InvalidArgument(
        "multiple --workflow flags require --service");
  }
  if (!options.faults.empty() && !options.service) {
    return Status::InvalidArgument(
        "--faults requires --service (failover is a service-mode feature)");
  }
  if (options.footprint_admission && !options.service) {
    return Status::InvalidArgument(
        "--footprint-admission requires --service (admission gates the "
        "service backlog)");
  }
  return options;
}

/// Resolution order: per-file override (--cwl) > --language > extension.
std::string LanguageForFile(const CliOptions& cli, const CliWorkflow& wf) {
  if (!wf.language.empty()) return wf.language;
  if (!cli.language.empty()) return cli.language;
  return GuessLanguage(wf.path);
}

/// Reads a workflow document, builds its source, and stages any inputs
/// the document itself declares (DAX / trace / CWL) that are not yet in
/// DFS.
Result<std::unique_ptr<WorkflowSource>> MakeSourceForFile(
    Deployment* d, const CliOptions& cli, const CliWorkflow& wf) {
  const std::string& path = wf.path;
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot read workflow file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  StagedWorkflow staged;
  staged.language = LanguageForFile(cli, wf);
  staged.document = buffer.str();
  staged.galaxy_inputs = cli.galaxy_inputs;
  HiWayClient client(d);
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                         client.MakeSource(staged));

  auto stage_required =
      [&](const std::vector<std::pair<std::string, int64_t>>& required)
      -> Status {
    for (const auto& [file, size] : required) {
      if (!d->dfs->Exists(file)) {
        HIWAY_RETURN_IF_ERROR(
            d->dfs->IngestFile(file, std::max<int64_t>(size, 1)));
      }
    }
    return Status::OK();
  };
  if (auto* dax = dynamic_cast<DaxSource*>(source.get())) {
    HIWAY_RETURN_IF_ERROR(stage_required(dax->required_inputs()));
  }
  if (auto* trace = dynamic_cast<TraceSource*>(source.get())) {
    HIWAY_RETURN_IF_ERROR(stage_required(trace->required_inputs()));
  }
  if (auto* cwl = dynamic_cast<CwlSource*>(source.get())) {
    HIWAY_RETURN_IF_ERROR(stage_required(cwl->required_inputs()));
  }
  return source;
}

Result<std::unique_ptr<Deployment>> ConvergeDeployment(
    const CliOptions& cli) {
  Karamel karamel;
  for (const auto& [k, v] : cli.attributes) karamel.SetAttribute(k, v);
  karamel.SetAttribute("seed", StrFormat("%llu",
                                         (unsigned long long)cli.seed));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(ElasticInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());
  if (!cli.chrome_trace_out.empty() || !cli.metrics_out.empty()) {
    d->tracer.set_enabled(true);
  }
  for (const auto& [path, size] : cli.inputs) {
    HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
  }
  return d;
}

/// Prints the cross-submission cache summary (no-op when neither cache
/// is deployed).
void PrintCacheSummary(const Deployment* d) {
  if (d->result_cache == nullptr && d->staging_cache == nullptr) return;
  CacheLoadSummary c =
      SummarizeCache(d->result_cache.get(), d->staging_cache.get());
  if (d->result_cache != nullptr) {
    std::printf("result cache: %lld hit(s) / %lld miss(es) (ratio %.2f), "
                "%lld entrie(s), saved %s compute\n",
                static_cast<long long>(c.result_hits),
                static_cast<long long>(c.result_misses), c.result_hit_ratio,
                static_cast<long long>(c.result_entries),
                HumanDuration(c.compute_saved_s).c_str());
    if (c.tenant_denied > 0 || c.stale_evictions > 0 ||
        c.verify_mismatches > 0) {
      std::printf("result cache: %lld cross-tenant denial(s), "
                  "%lld stale eviction(s), %lld verify mismatch(es)\n",
                  static_cast<long long>(c.tenant_denied),
                  static_cast<long long>(c.stale_evictions),
                  static_cast<long long>(c.verify_mismatches));
    }
  }
  if (d->staging_cache != nullptr) {
    std::printf("staging cache: %lld hit(s) / %lld miss(es), %s served "
                "locally, %s resident, %lld eviction(s)\n",
                static_cast<long long>(c.staging_hits),
                static_cast<long long>(c.staging_misses),
                HumanBytes(static_cast<double>(c.staging_bytes_served))
                    .c_str(),
                HumanBytes(static_cast<double>(c.staging_resident_bytes))
                    .c_str(),
                static_cast<long long>(c.staging_evictions));
  }
}

/// Prints DFS capacity / GC accounting (no-op without a capacity limit
/// or collector — see docs/storage-model.md).
void PrintStorageSummary(const Deployment* d) {
  if (d->gc == nullptr && d->dfs->options().capacity_bytes <= 0) return;
  const DfsCounters& c = d->dfs->counters();
  std::printf("storage: peak footprint %s raw",
              HumanBytes(static_cast<double>(c.peak_footprint)).c_str());
  if (d->dfs->options().capacity_bytes > 0) {
    std::printf(" of %s capacity",
                HumanBytes(static_cast<double>(
                               d->dfs->options().capacity_bytes))
                    .c_str());
  }
  std::printf(", %lld file(s) / %s deleted",
              static_cast<long long>(c.files_deleted),
              HumanBytes(static_cast<double>(c.bytes_deleted)).c_str());
  if (c.capacity_rejections > 0) {
    std::printf(", %lld capacity rejection(s)",
                static_cast<long long>(c.capacity_rejections));
  }
  std::printf("\n");
}

/// Drains the execution tracer into the requested exporter files and
/// prints the critical-path attribution (no-op when neither flag is set).
Status WriteObsOutputs(Deployment* d, const CliOptions& cli) {
  if (cli.chrome_trace_out.empty() && cli.metrics_out.empty()) {
    return Status::OK();
  }
  std::vector<TraceEvent> events = d->tracer.Drain();
  if (!cli.chrome_trace_out.empty()) {
    std::ofstream out(cli.chrome_trace_out);
    if (!out) {
      return Status::IoError("cannot write chrome trace file: " +
                             cli.chrome_trace_out);
    }
    out << ExportChromeTrace(events);
    std::printf("execution trace: %s (load at https://ui.perfetto.dev)\n",
                cli.chrome_trace_out.c_str());
  }
  if (!cli.metrics_out.empty()) {
    std::ofstream out(cli.metrics_out);
    if (!out) {
      return Status::IoError("cannot write metrics file: " + cli.metrics_out);
    }
    out << ExportPrometheusText(events);
    std::printf("metrics snapshot: %s\n", cli.metrics_out.c_str());
  }
  TraceAnalyzer analyzer(std::move(events));
  std::printf("%s\n", analyzer.CriticalPath().Summary().c_str());
  return Status::OK();
}

Result<int> RunService(const CliOptions& cli) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         ConvergeDeployment(cli));

  WorkflowServiceOptions service_options;
  service_options.rm_scheduler = cli.rm_scheduler;
  service_options.queues = cli.queue_configs;
  service_options.base_seed = cli.seed;
  service_options.default_policy = cli.policy;
  service_options.heartbeat_batch = cli.heartbeat_batch;
  service_options.footprint_admission = cli.footprint_admission;
  // Queues referenced by --queue but never configured get the defaults.
  for (const CliWorkflow& wf : cli.workflows) {
    bool known = false;
    for (const ServiceQueueOptions& q : service_options.queues) {
      if (q.rm.name == wf.queue) known = true;
    }
    if (!known) {
      ServiceQueueOptions q;
      q.rm.name = wf.queue;
      service_options.queues.push_back(std::move(q));
    }
  }

  // Build every source before creating the service: MakeSourceForFile
  // stages document-declared inputs, and footprint admission budgets
  // against the DFS bytes present at service creation — the baseline
  // must include those inputs (docs/storage-model.md).
  std::vector<std::unique_ptr<WorkflowSource>> sources;
  sources.reserve(cli.workflows.size());
  for (const CliWorkflow& wf : cli.workflows) {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                           MakeSourceForFile(d.get(), cli, wf));
    sources.push_back(std::move(source));
  }

  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowService> service,
                         WorkflowService::Create(d.get(), service_options));

  FaultInjector injector(&d->engine, cli.seed);
  if (cli.revoke_warning_s >= 0.0) {
    injector.SetDefaultRevokeWarning(cli.revoke_warning_s);
  }
  if (cli.spot_fraction > 0.0) service->SetSpotFraction(cli.spot_fraction);
  if (!cli.faults.empty()) {
    service->InstallFaultHandlers(&injector);
    HIWAY_RETURN_IF_ERROR(injector.ArmSpec(cli.faults));
  }

  std::printf(
      "hiway: service mode, %zu workflow(s), rm scheduler '%s', %d nodes\n",
      cli.workflows.size(), cli.rm_scheduler.c_str(),
      d->cluster->num_nodes());
  if (!injector.armed().empty()) {
    std::printf("hiway: faults armed: %s\n", cli.faults.c_str());
  }
  HiWayOptions hiway;
  hiway.container_vcores = cli.vcores;
  hiway.container_memory_mb = cli.memory_mb;
  hiway.tailor_containers = cli.tailor;
  int rejected = 0;
  for (size_t w = 0; w < cli.workflows.size(); ++w) {
    const CliWorkflow& wf = cli.workflows[w];
    std::unique_ptr<WorkflowSource> source = std::move(sources[w]);
    SubmissionOptions sub;
    sub.queue = wf.queue;
    sub.hiway = hiway;
    sub.hiway.container_priority = wf.priority;
    // A replacement AM attempt rebuilds its source from the same file,
    // so CLI submissions survive AM failures like staged ones do.
    sub.source_factory = [d = d.get(), &cli, wf] {
      return MakeSourceForFile(d, cli, wf);
    };
    auto id = service->Submit(wf.path, std::move(source), sub);
    if (!id.ok()) {
      if (!id.status().IsResourceExhausted()) return id.status();
      // Admission backpressure rejects this submission, not the burst.
      ++rejected;
      std::printf("  REJECTED '%s' -> queue '%s': %s\n", wf.path.c_str(),
                  wf.queue.c_str(), id.status().ToString().c_str());
      continue;
    }
    std::printf("  submitted #%lld '%s' -> queue '%s'\n",
                static_cast<long long>(*id), wf.path.c_str(),
                wf.queue.c_str());
  }
  HIWAY_RETURN_IF_ERROR(service->RunToCompletion());

  int exit_code = rejected > 0 ? 1 : 0;
  std::printf("\nsubmissions:\n");
  for (const SubmissionRecord& rec : service->Records()) {
    if (rec.state == SubmissionState::kSucceeded) {
      std::printf("  #%lld %-28s %-9s queue=%s wait=%s makespan=%s "
                  "tasks=%d%s\n",
                  static_cast<long long>(rec.id), rec.name.c_str(),
                  ToString(rec.state), rec.queue.c_str(),
                  HumanDuration(rec.QueueWait()).c_str(),
                  HumanDuration(rec.report.Makespan()).c_str(),
                  rec.report.tasks_completed,
                  rec.deadline_missed ? " DEADLINE-MISSED" : "");
    } else {
      exit_code = 1;
      std::printf("  #%lld %-28s %-9s queue=%s (%s)\n",
                  static_cast<long long>(rec.id), rec.name.c_str(),
                  ToString(rec.state), rec.queue.c_str(),
                  rec.report.status.ToString().c_str());
    }
  }
  std::printf("\nqueues (RM scheduler '%s'):\n",
              d->rm->scheduler_name().c_str());
  for (const QueueLoadSummary& q : SummarizeQueues(*d->rm)) {
    std::printf("  %-12s apps=%d allocations=%lld mean-wait=%s "
                "p95-wait=%s\n",
                q.queue.c_str(), q.applications,
                static_cast<long long>(q.counters.allocations),
                HumanDuration(q.mean_wait_s).c_str(),
                HumanDuration(q.p95_wait_s).c_str());
    if (q.restoration_episodes > 0 || q.counters.preempted_containers > 0) {
      std::printf("  %-12s   starved=%s episodes=%d p95-restore=%s "
                  "preempted=%lld wasted=%.2f\n",
                  "", HumanDuration(q.time_under_guarantee_s).c_str(),
                  q.restoration_episodes,
                  HumanDuration(q.p95_restoration_s).c_str(),
                  static_cast<long long>(q.counters.preempted_containers),
                  q.wasted_work_ratio);
    }
  }
  std::printf("time-averaged Jain fairness: %.3f\n",
              d->rm->TimeAveragedFairness());
  PrintCacheSummary(d.get());
  PrintStorageSummary(d.get());
  if (cli.footprint_admission && service->footprint_budget_bytes() > 0) {
    std::printf("footprint admission: budget %s raw\n",
                HumanBytes(static_cast<double>(
                               service->footprint_budget_bytes()))
                    .c_str());
  }
  if (d->elastic != nullptr &&
      (d->elastic->options().policy.enabled ||
       d->elastic->stats().nodes_revoked > 0)) {
    const ElasticStats& e = d->elastic->stats();
    std::printf("elastic ('%s'): %d scale-out(s) (+%d node(s)), "
                "%d scale-in(s), %d decommission(s), %d revocation(s), "
                "%.2f node-hour(s)\n",
                d->elastic->options().policy.name.c_str(),
                e.scale_out_actions, e.nodes_added, e.scale_in_actions,
                e.nodes_decommissioned, e.nodes_revoked,
                e.node_seconds / 3600.0);
  }
  if (!injector.armed().empty()) {
    const FaultCounters& f = injector.counters();
    std::printf("faults injected: %d node kill(s), %d am crash(es), "
                "%d container kill(s), %d spot revocation(s), "
                "%lld read fault(s)\n",
                f.node_kills, f.am_crashes, f.container_kills,
                f.spot_revocations, static_cast<long long>(f.read_faults));
    int failovers = 0;
    for (const SubmissionRecord& rec : service->Records()) {
      failovers += rec.am_failures;
    }
    std::printf("am failovers survived: %d\n", failovers);
  }
  if (!cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out);
    if (!out) {
      return Status::IoError("cannot write trace file: " + cli.trace_out);
    }
    out << SerializeTrace(d->provenance->Events());
    std::printf("trace: %s\n", cli.trace_out.c_str());
  }
  HIWAY_RETURN_IF_ERROR(WriteObsOutputs(d.get(), cli));
  return exit_code;
}

Result<int> Run(const CliOptions& cli) {
  if (cli.service) return RunService(cli);

  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d,
                         ConvergeDeployment(cli));
  HiWayClient client(d.get());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                         MakeSourceForFile(d.get(), cli, cli.workflows[0]));

  HiWayOptions options;
  options.container_vcores = cli.vcores;
  options.container_memory_mb = cli.memory_mb;
  options.tailor_containers = cli.tailor;
  options.seed = cli.seed;

  std::string language = LanguageForFile(cli, cli.workflows[0]);
  std::printf("hiway: executing '%s' (%s) under %s scheduling on %d nodes\n",
              cli.workflow_path().c_str(), language.c_str(),
              cli.policy.c_str(), d->cluster->num_nodes());
  auto report = client.RunSource(source.get(), cli.policy, options);
  HIWAY_RETURN_IF_ERROR(report.status());
  if (cli.verbose) {
    for (const ProvenanceEvent& ev : d->provenance->Events()) {
      if (ev.type == ProvenanceEventType::kTaskEnd) {
        std::printf("  t=%10.1fs  %-20s %-10s %s (%.1fs)\n", ev.timestamp,
                    ev.signature.c_str(), ev.node_name.c_str(),
                    ev.success ? "ok" : "FAILED", ev.duration);
      }
    }
  }
  if (!report->status.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 report->status.ToString().c_str());
    return 1;
  }
  std::printf(
      "finished: %d task(s) in %s virtual time (%d attempt(s), %d failed)\n",
      report->tasks_completed, HumanDuration(report->Makespan()).c_str(),
      report->task_attempts, report->failed_attempts);
  if (report->tasks_cached > 0) {
    std::printf("  %d task(s) served from the result cache\n",
                report->tasks_cached);
  }
  if (d->gc != nullptr) {
    std::printf("  gc: %lld file(s) / %s collected, peak live %s logical\n",
                static_cast<long long>(report->gc_files_collected),
                HumanBytes(static_cast<double>(report->gc_bytes_collected))
                    .c_str(),
                HumanBytes(static_cast<double>(report->peak_footprint_bytes))
                    .c_str());
  }
  PrintCacheSummary(d.get());
  PrintStorageSummary(d.get());
  for (const std::string& target : source->Targets()) {
    auto info = d->dfs->Stat(target);
    std::printf("  output: %s (%s)\n", target.c_str(),
                info.ok()
                    ? HumanBytes(static_cast<double>(info->size_bytes)).c_str()
                    : "missing");
  }
  if (!cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out);
    if (!out) {
      return Status::IoError("cannot write trace file: " + cli.trace_out);
    }
    out << SerializeTrace(d->provenance->Events());
    std::printf("  trace:  %s (re-executable with --language trace)\n",
                cli.trace_out.c_str());
  }
  HIWAY_RETURN_IF_ERROR(WriteObsOutputs(d.get(), cli));
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) {
  auto options = hiway::ParseArgs(argc, argv);
  if (!options.ok()) {
    if (options.status().IsFailedPrecondition()) {  // --help
      hiway::PrintUsage();
      return 0;
    }
    std::fprintf(stderr, "hiway: %s\n\n",
                 options.status().ToString().c_str());
    hiway::PrintUsage();
    return 2;
  }
  auto result = hiway::Run(*options);
  if (!result.ok()) {
    std::fprintf(stderr, "hiway: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return *result;
}
