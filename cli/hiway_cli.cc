// hiway — command-line front door to the simulator-backed Hi-WAY stack.
//
// Mirrors the paper's light-weight client (Sec. 3.1): point it at a
// workflow file in any supported language, describe the cluster with
// Chef-style attributes, pick a scheduling policy, and it provisions the
// deployment, stages declared inputs, executes the workflow, and reports
// the outcome (optionally dumping the re-executable provenance trace).
//
//   hiway --workflow wf.cf --language cuneiform --policy data-aware
//         -a cluster/workers=8 -a cluster/cores=4
//         --input /in/reads.fq=256MB --trace-out trace.jsonl
//
// Languages: cuneiform | dax | galaxy | trace.
// Galaxy placeholders resolve via repeated --galaxy-input name=/dfs/path.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/lang/dax_source.h"
#include "src/lang/galaxy_source.h"
#include "src/lang/trace_source.h"

namespace hiway {
namespace {

void PrintUsage() {
  std::printf(
      "usage: hiway --workflow FILE [options]\n"
      "\n"
      "  --workflow FILE          workflow document to execute\n"
      "  --language LANG          cuneiform | dax | galaxy | trace\n"
      "                           (default: guessed from the extension:\n"
      "                            .cf/.cuneiform, .xml/.dax, .ga/.json,\n"
      "                            .jsonl/.trace)\n"
      "  --policy POLICY          fcfs | data-aware | round-robin | heft |\n"
      "                           online-mct (default: data-aware)\n"
      "  -a KEY=VALUE             Chef-style deployment attribute, e.g.\n"
      "                           -a cluster/workers=8 (repeatable)\n"
      "  --input PATH=SIZE        stage an input file into DFS; SIZE takes\n"
      "                           B/KB/MB/GB suffixes (repeatable)\n"
      "  --galaxy-input NAME=PATH resolve a Galaxy input placeholder\n"
      "  --vcores N               container vcores (default 1)\n"
      "  --memory MB              container memory (default 1024)\n"
      "  --tailor-containers      per-task container sizing (Sec. 5)\n"
      "  --seed N                 simulation seed (default 42)\n"
      "  --trace-out FILE         write the provenance trace (JSON lines)\n"
      "  --verbose                per-task completion log\n"
      "  --help                   this message\n");
}

Result<int64_t> ParseSize(std::string_view text) {
  double factor = 1.0;
  std::string_view number = text;
  if (EndsWith(text, "GB")) {
    factor = 1024.0 * 1024.0 * 1024.0;
    number = text.substr(0, text.size() - 2);
  } else if (EndsWith(text, "MB")) {
    factor = 1024.0 * 1024.0;
    number = text.substr(0, text.size() - 2);
  } else if (EndsWith(text, "KB")) {
    factor = 1024.0;
    number = text.substr(0, text.size() - 2);
  } else if (EndsWith(text, "B")) {
    number = text.substr(0, text.size() - 1);
  }
  HIWAY_ASSIGN_OR_RETURN(double value, ParseDouble(number));
  return static_cast<int64_t>(value * factor);
}

std::string GuessLanguage(const std::string& path) {
  if (EndsWith(path, ".cf") || EndsWith(path, ".cuneiform")) {
    return "cuneiform";
  }
  if (EndsWith(path, ".dax") || EndsWith(path, ".xml")) return "dax";
  if (EndsWith(path, ".ga") || EndsWith(path, ".json")) return "galaxy";
  if (EndsWith(path, ".jsonl") || EndsWith(path, ".trace")) return "trace";
  return "cuneiform";
}

struct CliOptions {
  std::string workflow_path;
  std::string language;
  std::string policy = "data-aware";
  ChefAttributes attributes;
  std::vector<std::pair<std::string, int64_t>> inputs;
  std::map<std::string, std::string> galaxy_inputs;
  int vcores = 1;
  double memory_mb = 1024.0;
  bool tailor = false;
  uint64_t seed = 42;
  std::string trace_out;
  bool verbose = false;
};

Result<CliOptions> ParseArgs(int argc, char** argv) {
  CliOptions options;
  auto need_value = [&](int& i, const char* flag) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Status::InvalidArgument(StrFormat("%s expects a value", flag));
    }
    return std::string(argv[++i]);
  };
  auto split_kv = [](const std::string& kv,
                     const char* flag) -> Result<std::pair<std::string,
                                                           std::string>> {
    size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("%s expects KEY=VALUE, got '%s'", flag, kv.c_str()));
    }
    return std::make_pair(kv.substr(0, eq), kv.substr(eq + 1));
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--workflow") {
      HIWAY_ASSIGN_OR_RETURN(options.workflow_path, need_value(i, "--workflow"));
    } else if (arg == "--language") {
      HIWAY_ASSIGN_OR_RETURN(options.language, need_value(i, "--language"));
    } else if (arg == "--policy") {
      HIWAY_ASSIGN_OR_RETURN(options.policy, need_value(i, "--policy"));
    } else if (arg == "-a") {
      HIWAY_ASSIGN_OR_RETURN(std::string kv, need_value(i, "-a"));
      HIWAY_ASSIGN_OR_RETURN(auto pair, split_kv(kv, "-a"));
      options.attributes[pair.first] = pair.second;
    } else if (arg == "--input") {
      HIWAY_ASSIGN_OR_RETURN(std::string kv, need_value(i, "--input"));
      HIWAY_ASSIGN_OR_RETURN(auto pair, split_kv(kv, "--input"));
      HIWAY_ASSIGN_OR_RETURN(int64_t size, ParseSize(pair.second));
      options.inputs.emplace_back(pair.first, size);
    } else if (arg == "--galaxy-input") {
      HIWAY_ASSIGN_OR_RETURN(std::string kv, need_value(i, "--galaxy-input"));
      HIWAY_ASSIGN_OR_RETURN(auto pair, split_kv(kv, "--galaxy-input"));
      options.galaxy_inputs[pair.first] = pair.second;
    } else if (arg == "--vcores") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--vcores"));
      HIWAY_ASSIGN_OR_RETURN(int64_t n, ParseInt64(v));
      options.vcores = static_cast<int>(n);
    } else if (arg == "--memory") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--memory"));
      HIWAY_ASSIGN_OR_RETURN(options.memory_mb, ParseDouble(v));
    } else if (arg == "--tailor-containers") {
      options.tailor = true;
    } else if (arg == "--seed") {
      HIWAY_ASSIGN_OR_RETURN(std::string v, need_value(i, "--seed"));
      HIWAY_ASSIGN_OR_RETURN(int64_t n, ParseInt64(v));
      options.seed = static_cast<uint64_t>(n);
    } else if (arg == "--trace-out") {
      HIWAY_ASSIGN_OR_RETURN(options.trace_out, need_value(i, "--trace-out"));
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      return Status::FailedPrecondition("help");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (options.workflow_path.empty()) {
    return Status::InvalidArgument("--workflow is required");
  }
  if (options.language.empty()) {
    options.language = GuessLanguage(options.workflow_path);
  }
  return options;
}

Result<int> Run(const CliOptions& cli) {
  // Read the workflow document.
  std::ifstream in(cli.workflow_path);
  if (!in) {
    return Status::IoError("cannot read workflow file: " + cli.workflow_path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string document = buffer.str();

  // Converge the deployment.
  Karamel karamel;
  for (const auto& [k, v] : cli.attributes) karamel.SetAttribute(k, v);
  karamel.SetAttribute("seed", StrFormat("%llu",
                                         (unsigned long long)cli.seed));
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  // Stage inputs.
  for (const auto& [path, size] : cli.inputs) {
    HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
  }

  // Build the source.
  StagedWorkflow staged;
  staged.language = cli.language;
  staged.document = std::move(document);
  staged.galaxy_inputs = cli.galaxy_inputs;
  HiWayClient client(d.get());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                         client.MakeSource(staged));

  // DAX / trace sources declare their required inputs; stage any that the
  // user did not provide explicitly (size from the document).
  auto stage_required =
      [&](const std::vector<std::pair<std::string, int64_t>>& required)
      -> Status {
    for (const auto& [path, size] : required) {
      if (!d->dfs->Exists(path)) {
        HIWAY_RETURN_IF_ERROR(
            d->dfs->IngestFile(path, std::max<int64_t>(size, 1)));
      }
    }
    return Status::OK();
  };
  if (auto* dax = dynamic_cast<DaxSource*>(source.get())) {
    HIWAY_RETURN_IF_ERROR(stage_required(dax->required_inputs()));
  }
  if (auto* trace = dynamic_cast<TraceSource*>(source.get())) {
    HIWAY_RETURN_IF_ERROR(stage_required(trace->required_inputs()));
  }

  HiWayOptions options;
  options.container_vcores = cli.vcores;
  options.container_memory_mb = cli.memory_mb;
  options.tailor_containers = cli.tailor;
  options.seed = cli.seed;

  std::printf("hiway: executing '%s' (%s) under %s scheduling on %d nodes\n",
              cli.workflow_path.c_str(), cli.language.c_str(),
              cli.policy.c_str(), d->cluster->num_nodes());
  auto report = client.RunSource(source.get(), cli.policy, options);
  HIWAY_RETURN_IF_ERROR(report.status());
  if (cli.verbose) {
    for (const ProvenanceEvent& ev : d->provenance_store->Events()) {
      if (ev.type == ProvenanceEventType::kTaskEnd) {
        std::printf("  t=%10.1fs  %-20s %-10s %s (%.1fs)\n", ev.timestamp,
                    ev.signature.c_str(), ev.node_name.c_str(),
                    ev.success ? "ok" : "FAILED", ev.duration);
      }
    }
  }
  if (!report->status.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 report->status.ToString().c_str());
    return 1;
  }
  std::printf(
      "finished: %d task(s) in %s virtual time (%d attempt(s), %d failed)\n",
      report->tasks_completed, HumanDuration(report->Makespan()).c_str(),
      report->task_attempts, report->failed_attempts);
  for (const std::string& target : source->Targets()) {
    auto info = d->dfs->Stat(target);
    std::printf("  output: %s (%s)\n", target.c_str(),
                info.ok()
                    ? HumanBytes(static_cast<double>(info->size_bytes)).c_str()
                    : "missing");
  }
  if (!cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out);
    if (!out) {
      return Status::IoError("cannot write trace file: " + cli.trace_out);
    }
    out << SerializeTrace(d->provenance_store->Events());
    std::printf("  trace:  %s (re-executable with --language trace)\n",
                cli.trace_out.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hiway

int main(int argc, char** argv) {
  auto options = hiway::ParseArgs(argc, argv);
  if (!options.ok()) {
    if (options.status().IsFailedPrecondition()) {  // --help
      hiway::PrintUsage();
      return 0;
    }
    std::fprintf(stderr, "hiway: %s\n\n",
                 options.status().ToString().c_str());
    hiway::PrintUsage();
    return 2;
  }
  auto result = hiway::Run(*options);
  if (!result.ok()) {
    std::fprintf(stderr, "hiway: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return *result;
}
