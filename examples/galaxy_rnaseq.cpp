// Multi-language support and reproducibility (Sec. 3.2 / 3.5): execute an
// exported Galaxy workflow (the TRAPLINE RNA-seq pipeline), then take the
// run's provenance trace and re-execute it as a workflow in its own right
// — Hi-WAY's fourth language.
//
//   $ ./build/examples/galaxy_rnaseq

#include <cstdio>

#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/lang/trace_source.h"

using namespace hiway;

namespace {

Result<int> Run() {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "6");
  karamel.SetAttribute("cluster/cores", "8");
  karamel.SetAttribute("cluster/memory_mb", "15360");
  karamel.SetAttribute("rnaseq/sample_mb", "256");  // demo-sized samples
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(TraplineWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  const StagedWorkflow& staged = d->workflows.at("trapline");
  std::printf("Galaxy export: %zu bytes of JSON, %zu input placeholders\n",
              staged.document.size(), staged.galaxy_inputs.size());

  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 8;
  options.container_memory_mb = 14000;
  options.am_vcores = 0;
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport original,
                         client.Run("trapline", "data-aware", options));
  HIWAY_RETURN_IF_ERROR(original.status);
  std::printf("original run:   %2d tasks, %s\n", original.tasks_completed,
              HumanDuration(original.Makespan()).c_str());

  // Serialise the trace (in deployment, this JSON-lines file lives in
  // HDFS) and rebuild a workflow from it.
  std::string trace = SerializeTrace(d->provenance->Events());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<TraceSource> replay,
                         TraceSource::Parse(trace, original.run_id));
  std::printf("trace:          %zu bytes, re-executable with %zu tasks\n",
              trace.size(), replay->task_count());

  // Re-execution needs the same inputs in place (paper Sec. 3.6) — we
  // replay on a *fresh* cluster with only the original inputs staged.
  Karamel fresh;
  for (const auto& [k, v] : karamel.attributes()) fresh.SetAttribute(k, v);
  fresh.AddRecipe(HadoopInstallRecipe());
  fresh.AddRecipe(HiWayInstallRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d2, fresh.Converge());
  for (const auto& [path, size] : replay->required_inputs()) {
    HIWAY_RETURN_IF_ERROR(d2->dfs->IngestFile(path, size));
  }
  HiWayClient client2(d2.get());
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport replay_report,
                         client2.RunSource(replay.get(), "fcfs", options));
  HIWAY_RETURN_IF_ERROR(replay_report.status);
  std::printf("trace replay:   %2d tasks, %s\n",
              replay_report.tasks_completed,
              HumanDuration(replay_report.Makespan()).c_str());

  // The replay reproduced every output file of the recorded run.
  int missing = 0;
  for (const std::string& target : replay->Targets()) {
    if (!d2->dfs->Exists(target)) ++missing;
  }
  std::printf("replay reproduced %zu/%zu final outputs%s\n",
              replay->Targets().size() - static_cast<size_t>(missing),
              replay->Targets().size(),
              missing == 0 ? " — bit-for-bit task graph equality" : "!");
  return missing == 0 ? 0 : 1;
}

}  // namespace

int main() {
  auto result = Run();
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return *result;
}
