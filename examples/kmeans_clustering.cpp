// Iterative workflows (Sec. 3.3): the k-means clustering workflow from the
// paper, expressed in Cuneiform-lite with a recursive refinement function
// and a data-dependent convergence check. The task graph is *unbounded* at
// parse time — new tasks are discovered as check results arrive.
//
//   $ ./build/examples/kmeans_clustering

#include <cstdio>

#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/lang/cuneiform.h"

using namespace hiway;

namespace {

Result<int> Run() {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.SetAttribute("kmeans/points_mb", "128");
  karamel.SetAttribute("kmeans/converge_after", "6");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(KmeansWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  const StagedWorkflow& staged = d->workflows.at("kmeans");
  std::printf("--- workflow (Cuneiform-lite) ---\n%s\n",
              staged.document.c_str());

  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<CuneiformSource> source,
                         CuneiformSource::Parse(staged.document));

  // Static schedulers must reject this source — the paper's rule.
  {
    HiWayClient client(d.get());
    auto rejected = client.RunSource(source.get(), "heft");
    std::printf("submitting under HEFT (static): %s\n",
                rejected.status().ToString().c_str());
  }

  // Re-parse (the failed submission consumed nothing, but keep it clean)
  // and run under FCFS, which supports dynamic task discovery.
  HIWAY_ASSIGN_OR_RETURN(source, CuneiformSource::Parse(staged.document));
  HiWayClient client(d.get());
  HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                         client.RunSource(source.get(), "fcfs"));
  HIWAY_RETURN_IF_ERROR(report.status);

  std::printf(
      "\nconverged after %d tasks (%zu distinct applications discovered "
      "at runtime) in %s\n",
      report.tasks_completed, source->applications(),
      HumanDuration(report.Makespan()).c_str());
  for (const std::string& path : source->Targets()) {
    std::printf("final centroids: %s\n", path.c_str());
  }

  // Show the iteration structure from provenance.
  std::printf("\niteration trace:\n");
  for (const ProvenanceEvent& ev : d->provenance->Events()) {
    if (ev.type == ProvenanceEventType::kTaskEnd) {
      std::printf("  t=%7.1fs  %-14s on %s%s\n", ev.timestamp,
                  ev.signature.c_str(), ev.node_name.c_str(),
                  ev.stdout_value.empty()
                      ? ""
                      : StrFormat("  -> \"%s\"", ev.stdout_value.c_str())
                            .c_str());
    }
  }
  return 0;
}

}  // namespace

int main() {
  auto result = Run();
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return *result;
}
