// Adaptive scheduling (Sec. 3.4 / 4.3): run the Montage DAX workflow on a
// deliberately heterogeneous cluster, first under FCFS, then repeatedly
// under HEFT while provenance accumulates — watching the schedule adapt
// to the slow nodes.
//
//   $ ./build/examples/montage_heft

#include <cstdio>

#include "src/common/strings.h"
#include "src/core/client.h"

using namespace hiway;

namespace {

Result<int> Run() {
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "6");
  karamel.SetAttribute("cluster/cores", "2");
  karamel.SetAttribute("montage/images", "8");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(MontageWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  // Perturb half the cluster like the paper's `stress` runs: nodes 0-1
  // CPU-taxed, node 2 disk-taxed, nodes 3-5 clean.
  d->load->StressCpu(0, 16);
  d->load->StressCpu(1, 4);
  d->load->StressDisk(2, 16);
  std::printf(
      "cluster: 6 workers; node-000 (16 cpu hogs), node-001 (4 cpu hogs), "
      "node-002 (16 disk writers), node-003..005 clean\n\n");

  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 1;

  const StagedWorkflow& staged = d->workflows.at("montage");
  std::set<std::string> inputs;
  for (const auto& [path, size] : staged.inputs) inputs.insert(path);
  auto clean_outputs = [&]() {
    for (const std::string& path : d->dfs->ListFiles()) {
      if (inputs.find(path) == inputs.end()) (void)d->dfs->Delete(path);
    }
    d->tools.ResetInvocationCounts();
  };

  HIWAY_ASSIGN_OR_RETURN(WorkflowReport fcfs,
                         client.Run("montage", "fcfs", options));
  HIWAY_RETURN_IF_ERROR(fcfs.status);
  std::printf("%-28s %s\n", "FCFS baseline:",
              HumanDuration(fcfs.Makespan()).c_str());

  // Provenance from the FCFS run is discarded, as in the paper's setup.
  d->provenance->Clear();
  d->estimator.Clear();

  for (int run = 0; run < 6; ++run) {
    clean_outputs();
    HIWAY_ASSIGN_OR_RETURN(WorkflowReport heft,
                           client.Run("montage", "heft", options));
    HIWAY_RETURN_IF_ERROR(heft.status);
    std::printf("HEFT with %d prior run(s):    %s   (%lld observations)\n",
                run, HumanDuration(heft.Makespan()).c_str(),
                static_cast<long long>(d->estimator.observation_count()));
  }

  // Show where the adapted schedule put the heavy projection tasks.
  std::printf("\nmProjectPP placements in the final run:\n");
  std::map<std::string, int> per_node;
  double cutoff = 0.0;
  for (const ProvenanceEvent& ev : d->provenance->Events()) {
    if (ev.type == ProvenanceEventType::kWorkflowStart) {
      cutoff = ev.timestamp;  // keep only the last run
      per_node.clear();
    }
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.timestamp >= cutoff &&
        ev.signature == "mProjectPP") {
      ++per_node[ev.node_name];
    }
  }
  for (const auto& [node, count] : per_node) {
    std::printf("  %-10s %d task(s)\n", node.c_str(), count);
  }
  std::printf(
      "\nHEFT learned to keep the critical projection tasks off the "
      "stressed nodes.\n");
  return 0;
}

}  // namespace

int main() {
  auto result = Run();
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return *result;
}
