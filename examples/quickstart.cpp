// Quickstart: define a three-step workflow in Cuneiform-lite, provision a
// simulated four-node Hadoop cluster through Karamel recipes, execute the
// workflow on Hi-WAY, and inspect the result and its provenance trace.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/common/strings.h"
#include "src/core/client.h"
#include "src/lang/cuneiform.h"

using namespace hiway;  // examples favour brevity

int main() {
  // 1. Provision the infrastructure declaratively (Sec. 3.6 of the
  //    paper): Hadoop (cluster + HDFS + YARN) and Hi-WAY (tool profiles,
  //    provenance store).
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "4");
  karamel.SetAttribute("cluster/cores", "4");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  auto deployment = karamel.Converge();
  if (!deployment.ok()) {
    std::fprintf(stderr, "converge failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  Deployment& d = **deployment;

  // 2. Stage input data into (simulated) HDFS.
  if (Status st = d.dfs->IngestFile("/in/reads.fq", 256 << 20); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 3. A small variant-calling pipeline in Cuneiform-lite. Tasks are
  //    black boxes named after registered tool profiles.
  auto source = CuneiformSource::Parse(R"(
      deftask align( sam : reads ) in 'bowtie2';
      deftask sort( bam : sam ) in 'samtools-sort';
      deftask call( vcf : bam ) in 'varscan';
      let sam = align( reads: '/in/reads.fq' );
      let bam = sort( sam: sam );
      target call( bam: bam );
  )");
  if (!source.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 source.status().ToString().c_str());
    return 1;
  }

  // 4. Submit through the client under the default data-aware policy.
  HiWayClient client(&d);
  auto report = client.RunSource(source->get(), "data-aware");
  if (!report.ok() || !report->status.ok()) {
    std::fprintf(stderr, "workflow failed: %s\n",
                 (report.ok() ? report->status : report.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  // 5. Inspect the outcome.
  std::printf("workflow '%s' finished in %s (virtual time)\n",
              report->workflow_name.c_str(),
              HumanDuration(report->Makespan()).c_str());
  std::printf("tasks completed: %d (attempts: %d)\n",
              report->tasks_completed, report->task_attempts);
  for (const std::string& path : (*source)->Targets()) {
    auto info = d.dfs->Stat(path);
    std::printf("result: %s (%s)\n", path.c_str(),
                info.ok() ? HumanBytes(static_cast<double>(info->size_bytes))
                                .c_str()
                          : "missing!");
  }

  // 6. Every run leaves a re-executable JSON provenance trace.
  std::printf("\nprovenance trace (%zu events), first three:\n",
              d.provenance->size());
  int shown = 0;
  for (const ProvenanceEvent& ev : d.provenance->Events()) {
    if (shown++ >= 3) break;
    std::printf("  %s\n", ev.ToJson().Dump().c_str());
  }
  return 0;
}
