// Variant calling at cluster scale: the paper's Sec. 4.1 genomics
// workload, scaled down to run instantly. Demonstrates the Karamel recipe
// for the SNV workflow, data-aware scheduling, and the locality counters
// that explain why data-aware wins on a bandwidth-constrained cluster.
//
//   $ ./build/examples/variant_calling

#include <cstdio>

#include "src/common/strings.h"
#include "src/core/client.h"

using namespace hiway;

namespace {

Result<int> Run() {
  // An 8-node commodity cluster behind a constrained switch, with 32 read
  // chunks of 64 MB staged into HDFS (replication 3).
  Karamel karamel;
  karamel.SetAttribute("cluster/workers", "8");
  karamel.SetAttribute("cluster/cores", "8");
  karamel.SetAttribute("cluster/switch_mbps", "300");
  karamel.SetAttribute("snv/chunks", "32");
  karamel.SetAttribute("snv/chunk_mb", "64");
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> d, karamel.Converge());

  std::printf("staged inputs: %zu chunks, %s total\n",
              d->workflows.at("snv-calling").inputs.size(),
              HumanBytes(32.0 * 64 * 1024 * 1024).c_str());

  HiWayClient client(d.get());
  HiWayOptions options;
  options.container_vcores = 2;
  options.container_memory_mb = 2048;

  // Run the same workflow under FCFS and (on a fresh deployment) under
  // the default data-aware policy, and compare bytes moved.
  struct Outcome {
    double makespan;
    int64_t local_bytes;
    int64_t remote_bytes;
  };
  auto run_policy = [&](const std::string& policy) -> Result<Outcome> {
    Karamel fresh;
    for (const auto& [k, v] : karamel.attributes()) fresh.SetAttribute(k, v);
    fresh.AddRecipe(HadoopInstallRecipe());
    fresh.AddRecipe(HiWayInstallRecipe());
    fresh.AddRecipe(SnvWorkflowRecipe());
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<Deployment> dep,
                           fresh.Converge());
    HiWayClient c(dep.get());
    HIWAY_ASSIGN_OR_RETURN(WorkflowReport report,
                           c.Run("snv-calling", policy, options));
    HIWAY_RETURN_IF_ERROR(report.status);
    Outcome out;
    out.makespan = report.Makespan();
    out.local_bytes = dep->dfs->counters().bytes_read_local;
    out.remote_bytes = dep->dfs->counters().bytes_read_remote;
    return out;
  };

  HIWAY_ASSIGN_OR_RETURN(Outcome fcfs, run_policy("fcfs"));
  HIWAY_ASSIGN_OR_RETURN(Outcome aware, run_policy("data-aware"));

  std::printf("\n%-12s %14s %16s %16s\n", "policy", "makespan",
              "local reads", "remote reads");
  std::printf("%-12s %14s %16s %16s\n", "fcfs",
              HumanDuration(fcfs.makespan).c_str(),
              HumanBytes(static_cast<double>(fcfs.local_bytes)).c_str(),
              HumanBytes(static_cast<double>(fcfs.remote_bytes)).c_str());
  std::printf("%-12s %14s %16s %16s\n", "data-aware",
              HumanDuration(aware.makespan).c_str(),
              HumanBytes(static_cast<double>(aware.local_bytes)).c_str(),
              HumanBytes(static_cast<double>(aware.remote_bytes)).c_str());
  std::printf(
      "\nThe data-aware scheduler placed alignment tasks next to their "
      "HDFS replicas,\ncutting switch traffic by %.0f%% (makespan "
      "%+.0f%%). At this miniature scale the\nswitch is not saturated — "
      "bench_fig4_scaling_tez shows the locality win turning\ninto a "
      "1.5x runtime win once 576 containers contend for the network.\n",
      100.0 * (1.0 - static_cast<double>(aware.remote_bytes) /
                         static_cast<double>(fcfs.remote_bytes)),
      100.0 * (aware.makespan / fcfs.makespan - 1.0));
  return 0;
}

}  // namespace

int main() {
  auto result = Run();
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  return *result;
}
