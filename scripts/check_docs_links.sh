#!/bin/sh
# Verify that every relative markdown link in the repo's docs resolves to
# an existing file, that intra-page `#anchor` fragments (same-file or
# `file.md#anchor`) resolve to a real heading in the target page, and
# that backticked repo paths (src/..., docs/..., bench/..., scripts/...)
# still exist. Run from anywhere; CI runs it in the build-and-test job.
#
#   scripts/check_docs_links.sh            # check and report
#
# Exits non-zero listing every dead link/path/anchor found.

set -u
root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$root" || exit 1

fail=0

# GitHub-style anchor slugs of every heading in $1: lowercase, strip
# everything but alphanumerics/space/hyphen/underscore, spaces become
# hyphens. `#` lines inside fenced code blocks can slip in as extra
# slugs — that only ever makes the check more lenient, never flaky.
slugs_of() {
  grep '^#' "$1" 2>/dev/null \
    | sed -e 's/^#\{1,\}[[:space:]]*//' \
    | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# Markdown files under version control only (skips build trees).
files=$(git ls-files '*.md')

for f in $files; do
  dir=$(dirname "$f")

  # --- [text](target) links -------------------------------------------
  # One link per line; tolerate several links per source line.
  links=$(grep -o '](\([^)]*\))' "$f" 2>/dev/null | sed 's/^](//; s/)$//')
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*) continue ;;  # external: not checked
    esac
    target=${link%%#*}                          # strip fragment
    if [ -n "$target" ] && [ ! -e "$dir/$target" ]; then
      echo "DEAD LINK  $f: ($link)"
      fail=1
      continue
    fi
    # Fragment (same-file `#a` or cross-file `page.md#a`): the anchor
    # must match a heading slug in the target page.
    case "$link" in
      *'#'*)
        frag=${link#*#}
        [ -n "$frag" ] || continue
        if [ -z "$target" ]; then
          anchor_file=$f
        else
          anchor_file="$dir/$target"
        fi
        case "$anchor_file" in
          *.md) ;;
          *) continue ;;  # anchors into non-markdown targets: skip
        esac
        if ! slugs_of "$anchor_file" | grep -qx "$frag"; then
          echo "DEAD ANCHOR $f: ($link) — no heading #$frag in $anchor_file"
          fail=1
        fi
        ;;
    esac
  done

  # --- backticked repo paths ------------------------------------------
  # `src/foo/bar.h`, `docs/x.md`, `bench/bench_y.cc`, `scripts/z.sh`.
  # Wildcard forms like `src/core/metrics.*` must glob-match something.
  paths=$(grep -o '`\(src\|docs\|bench\|scripts\|cli\|tests\|examples\)/[A-Za-z0-9_./*-]*`' "$f" 2>/dev/null | tr -d '`')
  for p in $paths; do
    p=${p%.}                                    # trailing sentence dot
    case "$p" in
      *'*'*)
        # shellcheck disable=SC2086
        set -- $p
        if [ ! -e "$1" ]; then
          echo "DEAD PATH  $f: \`$p\` (glob matches nothing)"
          fail=1
        fi
        ;;
      *)
        # Accept `bench/bench_foo` for the binary whose source is
        # bench/bench_foo.cc — docs refer to bench targets this way.
        if [ ! -e "$p" ] && [ ! -e "$p.cc" ]; then
          echo "DEAD PATH  $f: \`$p\`"
          fail=1
        fi
        ;;
    esac
  done
done

# --- required pages ---------------------------------------------------
# Orientation pages that must exist and be reachable from the README:
# a PR that deletes or un-links them should fail here, not silently
# orphan them.
for page in docs/architecture.md docs/observability.md docs/data-cache.md \
            docs/scaling.md docs/fuzzing.md docs/storage-model.md; do
  if [ ! -f "$page" ]; then
    echo "MISSING    required page $page does not exist"
    fail=1
  elif ! grep -q "]($page)" README.md; then
    echo "UNLINKED   README.md does not link to $page"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs_links: FAILED" >&2
  exit 1
fi
echo "check_docs_links: all markdown links and repo paths resolve"
