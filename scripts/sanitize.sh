#!/bin/sh
# Address/UB-sanitized build and test run (mirrors the CI hygiene of the
# Arrow/RocksDB projects this codebase's style follows).
#
#   scripts/sanitize.sh [build-dir]
set -e

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "$BUILD_DIR" -G Ninja -S "$SRC_DIR" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -O1 -g"
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure
