#include "src/baseline/cloudman.h"

#include "src/common/logging.h"

namespace hiway {

namespace {
/// "Galaxy CloudMan only supports ... up to 20 nodes."
constexpr int kMaxCloudManNodes = 20;
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}  // namespace

// ---------------------------------------------- TransientStorageAdapter --

Result<int64_t> TransientStorageAdapter::FileSize(
    const std::string& path) const {
  auto it = catalog_.find(path);
  if (it == catalog_.end()) {
    return Status::NotFound("no such file on transient storage: " + path);
  }
  return it->second.size_bytes;
}

void TransientStorageAdapter::StageIn(
    const std::string& path, NodeId node,
    std::function<void(Status, int64_t, double)> done) {
  auto it = catalog_.find(path);
  if (it == catalog_.end()) {
    Status st = Status::NotFound("no such file on transient storage: " + path);
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done), st] { done(st, 0, 0.0); });
    return;
  }
  int64_t bytes = it->second.size_bytes;
  NodeId home = it->second.home;
  double started = cluster_->engine()->Now();
  SimEngine* engine = cluster_->engine();
  FlowSpec spec;
  if (home == kInvalidNode || home == node) {
    spec.resources = cluster_->LocalDiskPath(node);
  } else {
    spec.resources = cluster_->RemoteTransferPath(home, node);
  }
  spec.demand = std::max(static_cast<double>(bytes) / kBytesPerMb, 1e-6);
  spec.on_complete = [done = std::move(done), bytes, started, engine] {
    done(Status::OK(), bytes, engine->Now() - started);
  };
  cluster_->net()->StartFlow(std::move(spec));
}

void TransientStorageAdapter::StageOut(const std::string& path,
                                       int64_t size_bytes, NodeId node,
                                       std::function<void(Status)> done) {
  catalog_[path] = Entry{size_bytes, node};
  FlowSpec spec;
  spec.resources = cluster_->LocalDiskPath(node);
  spec.demand = std::max(static_cast<double>(size_bytes) / kBytesPerMb, 1e-6);
  spec.on_complete = [done = std::move(done)] { done(Status::OK()); };
  cluster_->net()->StartFlow(std::move(spec));
}

void TransientStorageAdapter::ScratchIo(double scratch_mb, NodeId node,
                                        std::function<void(Status)> done) {
  FlowSpec spec;
  spec.resources = cluster_->LocalDiskPath(node);
  spec.demand = std::max(scratch_mb, 1e-6);
  spec.on_complete = [done = std::move(done)] { done(Status::OK()); };
  cluster_->net()->StartFlow(std::move(spec));
}

void TransientStorageAdapter::AddFile(const std::string& path,
                                      int64_t size_bytes, NodeId home) {
  catalog_[path] = Entry{size_bytes, home};
}

bool TransientStorageAdapter::Exists(const std::string& path) const {
  return catalog_.find(path) != catalog_.end();
}

// --------------------------------------------------------- CloudManEngine --

CloudManEngine::CloudManEngine(Cluster* cluster, ToolRegistry* tools,
                               CloudManOptions options)
    : cluster_(cluster), tools_(tools), options_(options) {
  StorageAdapter* storage;
  if (options_.transient_storage) {
    transient_ = std::make_unique<TransientStorageAdapter>(cluster_);
    storage = transient_.get();
  } else {
    HIWAY_CHECK(cluster_->has_ebs());
    volume_ = std::make_unique<SharedVolumeStorageAdapter>(cluster_);
    storage = volume_.get();
  }
  executor_ = std::make_unique<TaskExecutor>(cluster_, tools_, storage,
                                             options_.seed);
  free_slots_.assign(static_cast<size_t>(cluster_->num_nodes()),
                     options_.slots_per_node);
}

void CloudManEngine::StageInput(const std::string& path, int64_t size_bytes) {
  if (transient_ != nullptr) {
    transient_->AddFile(path, size_bytes);  // pre-distributed input
  } else {
    volume_->AddFile(path, size_bytes);
  }
}

bool CloudManEngine::StorageHas(const std::string& path) const {
  return transient_ != nullptr ? transient_->Exists(path)
                               : volume_->Exists(path);
}

Status CloudManEngine::Submit(WorkflowSource* source) {
  if (submitted_) return Status::FailedPrecondition("already submitted");
  if (!source->IsStatic()) {
    return Status::InvalidArgument(
        "CloudMan baseline executes static workflows only");
  }
  if (cluster_->num_nodes() > kMaxCloudManNodes) {
    return Status::InvalidArgument(
        "Galaxy CloudMan supports clusters of at most 20 nodes");
  }
  source_ = source;
  submitted_ = true;
  report_.started_at = cluster_->engine()->Now();
  auto initial = source_->Init();
  if (!initial.ok()) {
    Finish(initial.status());
    return initial.status();
  }
  TaskId next_id = 1;
  for (TaskSpec spec : *initial) {
    if (spec.id == kInvalidTask) spec.id = next_id;
    next_id = std::max(next_id, spec.id + 1);
    Job job;
    job.spec = std::move(spec);
    TaskId id = job.spec.id;
    for (const std::string& path : job.spec.input_files) {
      if (!StorageHas(path)) {
        job.missing_inputs.insert(path);
        waiting_on_file_[path].insert(id);
      }
    }
    bool ready = job.missing_inputs.empty();
    jobs_.emplace(id, std::move(job));
    if (ready) ready_queue_.push_back(id);
  }
  DispatchLoop();
  MaybeFinish();
  return Status::OK();
}

void CloudManEngine::DispatchLoop() {
  // Slurm-style FCFS: assign queued jobs to free slots in node order.
  while (!ready_queue_.empty()) {
    NodeId node = kInvalidNode;
    for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
      if (free_slots_[static_cast<size_t>(n)] > 0) {
        node = n;
        break;
      }
    }
    if (node == kInvalidNode) return;
    TaskId id = ready_queue_.front();
    ready_queue_.pop_front();
    Job& job = jobs_.at(id);
    job.running = true;
    --free_slots_[static_cast<size_t>(node)];
    ++running_;
    TaskSpec spec = job.spec;
    // Jobs get the node's full core count (Galaxy runs one multithreaded
    // tool per node in this configuration).
    int vcores = cluster_->node(node).cores;
    cluster_->engine()->ScheduleAfter(
        options_.dispatch_overhead_s, [this, id, spec, node, vcores] {
          executor_->Execute(spec, node, vcores,
                             [this, id, node](TaskAttemptOutcome outcome) {
                               OnJobDone(id, node, std::move(outcome));
                             });
        });
  }
}

void CloudManEngine::OnJobDone(TaskId id, NodeId node,
                               TaskAttemptOutcome outcome) {
  Job& job = jobs_.at(id);
  job.running = false;
  ++free_slots_[static_cast<size_t>(node)];
  --running_;
  if (!outcome.result.status.ok()) {
    Finish(outcome.result.status.WithContext("CloudMan job failed"));
    return;
  }
  job.done = true;
  ++report_.tasks_completed;
  for (const auto& [path, size] : outcome.result.produced_files) {
    auto waiters = waiting_on_file_.find(path);
    if (waiters == waiting_on_file_.end()) continue;
    std::set<TaskId> ids = std::move(waiters->second);
    waiting_on_file_.erase(waiters);
    for (TaskId waiting_id : ids) {
      Job& w = jobs_.at(waiting_id);
      w.missing_inputs.erase(path);
      if (w.missing_inputs.empty() && !w.done && !w.running) {
        ready_queue_.push_back(waiting_id);
      }
    }
  }
  (void)source_->OnTaskCompleted(outcome.result);
  DispatchLoop();
  MaybeFinish();
}

void CloudManEngine::MaybeFinish() {
  if (finished_) return;
  if (running_ > 0 || !ready_queue_.empty()) return;
  for (const auto& [id, job] : jobs_) {
    if (!job.done) {
      Finish(Status::FailedPrecondition(
          "CloudMan workflow deadlocked on missing inputs"));
      return;
    }
  }
  Finish(Status::OK());
}

void CloudManEngine::Finish(Status status) {
  if (finished_) return;
  finished_ = true;
  report_.status = std::move(status);
  report_.finished_at = cluster_->engine()->Now();
}

Result<CloudManReport> CloudManEngine::RunToCompletion() {
  if (!submitted_) return Status::FailedPrecondition("Submit() first");
  cluster_->engine()->RunUntilPredicate([this] { return finished_; });
  if (!finished_) {
    return Status::RuntimeError("engine drained before workflow finished");
  }
  return report_;
}

}  // namespace hiway
