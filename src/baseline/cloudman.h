// Galaxy CloudMan baseline (Sec. 4.2 / Fig. 8): Galaxy clusters deployed
// on EC2, with Slurm as the batch scheduler and *all* data — inputs,
// outputs, and tool scratch — on a single EBS volume shared over the
// network by every node. Two structural properties from the paper:
//
//   * ≤ 20 nodes ("CloudMan only supports the automated setup of virtual
//     clusters of up to 20 nodes");
//   * storage on a network volume instead of node-local disk, which is
//     what Hi-WAY's ≥25 % win is attributed to.
//
// The engine runs any static WorkflowSource (typically Galaxy JSON) with
// FCFS dispatch, a per-job dispatch latency (Galaxy job handler + Slurm),
// and a configurable tasks-per-node cap (the paper sets 1 for TRAPLINE).

#ifndef HIWAY_BASELINE_CLOUDMAN_H_
#define HIWAY_BASELINE_CLOUDMAN_H_

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "src/core/task_executor.h"
#include "src/lang/workflow.h"
#include "src/sim/cluster.h"
#include "src/tools/tool_registry.h"

namespace hiway {

/// Node-local transient storage for the CloudMan baseline's footnote-4
/// mode: each file lives on the disk of the node that produced it; a
/// consumer on another node copies it across the switch first.
class TransientStorageAdapter : public StorageAdapter {
 public:
  explicit TransientStorageAdapter(Cluster* cluster) : cluster_(cluster) {}
  Result<int64_t> FileSize(const std::string& path) const override;
  void StageIn(const std::string& path, NodeId node,
               std::function<void(Status, int64_t, double)> done) override;
  void StageOut(const std::string& path, int64_t size_bytes, NodeId node,
                std::function<void(Status)> done) override;
  void ScratchIo(double scratch_mb, NodeId node,
                 std::function<void(Status)> done) override;

  /// Registers a pre-staged input (available on every node, like data the
  /// setup recipes distribute).
  void AddFile(const std::string& path, int64_t size_bytes,
               NodeId home = kInvalidNode);
  bool Exists(const std::string& path) const;

 private:
  struct Entry {
    int64_t size_bytes;
    NodeId home;  // kInvalidNode = pre-distributed everywhere
  };
  Cluster* cluster_;
  std::map<std::string, Entry> catalog_;
};

struct CloudManOptions {
  /// Concurrent jobs per node (memory-bound TRAPLINE runs use 1).
  int slots_per_node = 1;
  /// Galaxy job handler + Slurm dispatch latency per job (Galaxy polls
  /// job state and materialises datasets between steps).
  double dispatch_overhead_s = 25.0;
  /// The paper's footnote 4: "a recent update has introduced support for
  /// using transient storage instead [of EBS]". When set, inputs/outputs/
  /// scratch use node-local disks, with cross-node copies over the switch
  /// when a job consumes a file produced elsewhere.
  bool transient_storage = false;
  uint64_t seed = 42;
};

struct CloudManReport {
  Status status;
  double started_at = 0.0;
  double finished_at = 0.0;
  int tasks_completed = 0;
  double Makespan() const { return finished_at - started_at; }
};

class CloudManEngine {
 public:
  /// Unless options.transient_storage is set, the cluster must have an
  /// EBS volume (ClusterSpec::ebs_bw_mbps > 0).
  CloudManEngine(Cluster* cluster, ToolRegistry* tools,
                 CloudManOptions options);

  /// Registers a workflow input on the shared volume.
  void StageInput(const std::string& path, int64_t size_bytes);

  Status Submit(WorkflowSource* source);
  Result<CloudManReport> RunToCompletion();
  bool finished() const { return finished_; }
  const CloudManReport& report() const { return report_; }

  /// The shared EBS volume (null in transient-storage mode).
  SharedVolumeStorageAdapter* volume() { return volume_.get(); }
  /// True if `path` exists on whichever storage backend is active.
  bool StorageHas(const std::string& path) const;

 private:
  struct Job {
    TaskSpec spec;
    bool done = false;
    bool running = false;
    std::set<std::string> missing_inputs;
  };

  void DispatchLoop();
  void OnJobDone(TaskId id, NodeId node, TaskAttemptOutcome outcome);
  void MaybeFinish();
  void Finish(Status status);

  Cluster* cluster_;
  ToolRegistry* tools_;
  CloudManOptions options_;
  std::unique_ptr<SharedVolumeStorageAdapter> volume_;
  std::unique_ptr<TransientStorageAdapter> transient_;
  std::unique_ptr<TaskExecutor> executor_;
  WorkflowSource* source_ = nullptr;

  bool submitted_ = false;
  bool finished_ = false;
  CloudManReport report_;
  std::map<TaskId, Job> jobs_;
  std::map<std::string, std::set<TaskId>> waiting_on_file_;
  std::deque<TaskId> ready_queue_;
  std::vector<int> free_slots_;
  int running_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_BASELINE_CLOUDMAN_H_
