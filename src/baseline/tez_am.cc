#include "src/baseline/tez_am.h"

#include "src/common/logging.h"

namespace hiway {

TezAm::TezAm(Cluster* cluster, ResourceManager* rm, Dfs* dfs,
             ToolRegistry* tools, TezOptions options)
    : cluster_(cluster),
      rm_(rm),
      dfs_(dfs),
      tools_(tools),
      options_(options) {
  storage_ = std::make_unique<DfsStorageAdapter>(dfs_);
  executor_ = std::make_unique<TaskExecutor>(cluster_, tools_, storage_.get(),
                                             options_.seed);
}

TezAm::~TezAm() {
  if (submitted_ && !finished_) rm_->UnregisterApplication(app_);
}

Status TezAm::Submit(WorkflowSource* source) {
  if (submitted_) return Status::FailedPrecondition("DAG already submitted");
  if (!source->IsStatic()) {
    // Tez DAGs are fixed at submission; iterative sources cannot run.
    return Status::InvalidArgument(
        "Tez executes static DAGs only; '" + source->name() +
        "' is an iterative workflow");
  }
  source_ = source;
  HIWAY_ASSIGN_OR_RETURN(
      app_, rm_->RegisterApplication("tez:" + source->name(), this, 1, 1024.0,
                                     options_.am_node));
  submitted_ = true;
  report_.started_at = cluster_->engine()->Now();

  auto initial = source_->Init();
  if (!initial.ok()) {
    Finish(initial.status());
    return initial.status();
  }
  TaskId next_id = 1;
  for (TaskSpec spec : *initial) {
    if (spec.id == kInvalidTask) spec.id = next_id;
    next_id = std::max(next_id, spec.id + 1);
    if (spec.vcores <= 0) spec.vcores = options_.container_vcores;
    if (spec.memory_mb <= 0.0) spec.memory_mb = options_.container_memory_mb;
    VertexTask vertex;
    vertex.spec = std::move(spec);
    TaskId id = vertex.spec.id;
    for (const std::string& path : vertex.spec.input_files) {
      if (!dfs_->Exists(path)) {
        vertex.missing_inputs.insert(path);
        waiting_on_file_[path].insert(id);
      }
    }
    bool ready = vertex.missing_inputs.empty();
    const TaskSpec& stored = tasks_.emplace(id, std::move(vertex))
                                 .first->second.spec;
    if (ready) {
      ready_queue_.push_back(id);
      ContainerRequest request;
      request.vcores = stored.vcores;
      request.memory_mb = stored.memory_mb;
      // No locality preference: Tez's generic container reuse pool.
      rm_->SubmitRequest(app_, request);
    }
  }
  MaybeFinish();
  return Status::OK();
}

void TezAm::OnContainerAllocated(const Container& container, int64_t) {
  if (finished_ || ready_queue_.empty()) {
    rm_->ReleaseContainer(container.id);
    return;
  }
  TaskId id = ready_queue_.front();
  ready_queue_.pop_front();
  VertexTask& vertex = tasks_.at(id);
  vertex.running = true;
  ++running_;
  TaskSpec spec = vertex.spec;
  NodeId node = container.node;
  int vcores = container.vcores;
  ContainerId cid = container.id;
  // Launch + wrap overhead, then execute.
  cluster_->engine()->ScheduleAfter(
      options_.task_launch_overhead_s + options_.wrap_overhead_s,
      [this, id, spec, node, vcores, cid] {
        executor_->Execute(
            spec, node, vcores, [this, id, cid](TaskAttemptOutcome outcome) {
              rm_->ReleaseContainer(cid);
              --running_;
              VertexTask& v = tasks_.at(id);
              v.running = false;
              if (!outcome.result.status.ok()) {
                Finish(outcome.result.status.WithContext("vertex failed"));
                return;
              }
              v.done = true;
              ++report_.tasks_completed;
              for (const auto& [path, size] : outcome.result.produced_files) {
                auto waiters = waiting_on_file_.find(path);
                if (waiters == waiting_on_file_.end()) continue;
                std::set<TaskId> ids = std::move(waiters->second);
                waiting_on_file_.erase(waiters);
                for (TaskId waiting_id : ids) {
                  VertexTask& w = tasks_.at(waiting_id);
                  w.missing_inputs.erase(path);
                  if (w.missing_inputs.empty() && !w.done && !w.running) {
                    ready_queue_.push_back(waiting_id);
                    ContainerRequest request;
                    request.vcores = w.spec.vcores;
                    request.memory_mb = w.spec.memory_mb;
                    rm_->SubmitRequest(app_, request);
                  }
                }
              }
              (void)source_->OnTaskCompleted(outcome.result);
              MaybeFinish();
            });
      });
}

void TezAm::OnContainerLost(const Container&, ContainerLossReason) {
  Finish(Status::RuntimeError("Tez baseline does not recover lost containers"));
}

void TezAm::MaybeFinish() {
  if (finished_) return;
  if (running_ > 0 || !ready_queue_.empty()) return;
  for (const auto& [id, vertex] : tasks_) {
    if (!vertex.done && !vertex.missing_inputs.empty()) {
      Finish(Status::FailedPrecondition(
          "Tez DAG deadlocked on missing input files"));
      return;
    }
    if (!vertex.done) return;  // a request is still in flight
  }
  Finish(Status::OK());
}

void TezAm::Finish(Status status) {
  if (finished_) return;
  finished_ = true;
  report_.status = std::move(status);
  report_.finished_at = cluster_->engine()->Now();
  if (submitted_) rm_->UnregisterApplication(app_);
}

Result<TezReport> TezAm::RunToCompletion() {
  if (!submitted_) return Status::FailedPrecondition("Submit() a DAG first");
  cluster_->engine()->RunUntilPredicate([this] { return finished_; });
  if (!finished_) {
    return Status::RuntimeError("engine drained before the DAG finished");
  }
  return report_;
}

}  // namespace hiway
