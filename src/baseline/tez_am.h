// Tez-like baseline (Sec. 2.2 / Fig. 4): a DAG application master for YARN
// that executes vertex tasks without any data-aware placement. External
// file-based tools must be *wrapped* to run in Tez, which the paper found
// costly ("it took several weeks and a lot of code in Tez"); at runtime
// the wrapping shows up as extra per-task overhead, modelled here as a
// fixed wrap cost on top of container launch.
//
// Differences to the Hi-WAY AM that matter for Fig. 4:
//   * container requests carry no locality preference, and task selection
//     ignores block locations entirely (plain FIFO), so most reads cross
//     the switch;
//   * per-task wrap overhead for file-based tools.
// Shared with Hi-WAY: the same YARN RM, HDFS, and black-box tool profiles.

#ifndef HIWAY_BASELINE_TEZ_AM_H_
#define HIWAY_BASELINE_TEZ_AM_H_

#include <deque>
#include <map>
#include <memory>

#include "src/core/provenance.h"
#include "src/core/task_executor.h"
#include "src/hdfs/dfs.h"
#include "src/lang/workflow.h"
#include "src/yarn/yarn.h"

namespace hiway {

struct TezOptions {
  int container_vcores = 1;
  double container_memory_mb = 1024.0;
  NodeId am_node = kInvalidNode;
  /// Container launch latency (same meaning as Hi-WAY's).
  double task_launch_overhead_s = 1.0;
  /// Extra per-task cost of the input/output wrapping glue.
  double wrap_overhead_s = 2.0;
  uint64_t seed = 42;
};

struct TezReport {
  Status status;
  double started_at = 0.0;
  double finished_at = 0.0;
  int tasks_completed = 0;
  double Makespan() const { return finished_at - started_at; }
};

/// Executes a *static* workflow source as a Tez DAG.
class TezAm : public AmCallbacks {
 public:
  TezAm(Cluster* cluster, ResourceManager* rm, Dfs* dfs, ToolRegistry* tools,
        TezOptions options);
  ~TezAm() override;

  Status Submit(WorkflowSource* source);
  Result<TezReport> RunToCompletion();
  bool finished() const { return finished_; }
  const TezReport& report() const { return report_; }

  void OnContainerAllocated(const Container& container,
                            int64_t cookie) override;
  void OnContainerLost(const Container& container,
                       ContainerLossReason reason) override;

 private:
  struct VertexTask {
    TaskSpec spec;
    bool running = false;
    bool done = false;
    std::set<std::string> missing_inputs;
  };

  void MaybeFinish();
  void Finish(Status status);

  Cluster* cluster_;
  ResourceManager* rm_;
  Dfs* dfs_;
  ToolRegistry* tools_;
  TezOptions options_;
  std::unique_ptr<DfsStorageAdapter> storage_;
  std::unique_ptr<TaskExecutor> executor_;
  WorkflowSource* source_ = nullptr;

  ApplicationId app_ = -1;
  bool submitted_ = false;
  bool finished_ = false;
  TezReport report_;
  std::map<TaskId, VertexTask> tasks_;
  std::map<std::string, std::set<TaskId>> waiting_on_file_;
  std::deque<TaskId> ready_queue_;
  int running_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_BASELINE_TEZ_AM_H_
