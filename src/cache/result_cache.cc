#include "src/cache/result_cache.h"

#include <cstdlib>
#include <utility>

#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/provenance.h"
#include "src/obs/tracer.h"
#include "src/provdb/provdb.h"

namespace hiway {

namespace {

constexpr char kDefaultTenant[] = "default";
constexpr char kIndexPrefix[] = "entry/";

std::string HexU64(uint64_t v) {
  return StrFormat("%016llx", static_cast<unsigned long long>(v));
}

uint64_t ParseHexU64(const std::string& s) {
  return static_cast<uint64_t>(std::strtoull(s.c_str(), nullptr, 16));
}

}  // namespace

ResultCache::ResultCache(Dfs* dfs, ProvenanceManager* provenance,
                         ResultCacheOptions options)
    : dfs_(dfs),
      provenance_(provenance),
      options_(options),
      verify_rng_(options.seed) {}

ResultCache::~ResultCache() = default;

void ResultCache::SetVerifyReadHook(
    std::function<bool(const std::string& path, NodeId node)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  verify_read_hook_ = std::move(hook);
}

void ResultCache::BindRun(const std::string& run_id,
                          const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  tenant_of_run_[run_id] = tenant.empty() ? kDefaultTenant : tenant;
}

std::string ResultCache::TenantOfLocked(const std::string& run_id) const {
  auto it = tenant_of_run_.find(run_id);
  return it == tenant_of_run_.end() ? kDefaultTenant : it->second;
}

std::string ResultCache::TenantOf(const std::string& run_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return TenantOfLocked(run_id);
}

Result<std::string> ResultCache::KeyFor(const TaskSpec& spec) const {
  // The key covers everything that determines the bytes a task produces:
  // what runs (signature/tool/command/params), what it reads (input
  // content fingerprints), and where the results land (output bindings).
  uint64_t h = Fnv1a64(spec.signature);
  h = Fnv1a64("|tool|", h);
  h = Fnv1a64(spec.ToolName(), h);
  h = Fnv1a64("|cmd|", h);
  h = Fnv1a64(spec.command, h);
  for (const auto& [k, v] : spec.params) {
    h = Fnv1a64("|param|", h);
    h = Fnv1a64(k, h);
    h = Fnv1a64("=", h);
    h = Fnv1a64(v, h);
  }
  for (const std::string& path : spec.input_files) {
    auto stat = dfs_->Stat(path);
    if (!stat.ok()) {
      return Status::NotFound("cache key underivable, input missing: " +
                              path);
    }
    h = Fnv1a64("|in|", h);
    h = Fnv1a64(path, h);
    h = Fnv1a64(HexU64(stat->content_id), h);
  }
  for (const OutputSpec& out : spec.outputs) {
    h = Fnv1a64(out.is_value ? "|val|" : "|out|", h);
    h = Fnv1a64(out.param, h);
    h = Fnv1a64(":", h);
    h = Fnv1a64(out.path, h);
  }
  return HexU64(h);
}

uint64_t ResultCache::DigestOutputs(const std::vector<CachedOutput>& outputs) {
  uint64_t h = Fnv1a64("outputs");
  for (const CachedOutput& out : outputs) {
    h = Fnv1a64(out.path, h);
    h = Fnv1a64(StrFormat("|%lld|", static_cast<long long>(out.size_bytes)),
                h);
    h = Fnv1a64(HexU64(out.content_id), h);
    h = Fnv1a64(out.is_value ? "v" : "f", h);
  }
  return h;
}

bool ResultCache::OutputsFresh(const Entry& entry) const {
  for (const CachedOutput& out : entry.outputs) {
    if (out.is_value) continue;
    auto stat = dfs_->Stat(out.path);
    if (!stat.ok()) return false;
    if (stat->size_bytes != out.size_bytes) return false;
    if (stat->content_id != out.content_id) return false;
    // Metadata may survive a node loss that took every replica of some
    // block with it: an unreadable output must never be served.
    if (!dfs_->FileReadable(out.path)) return false;
  }
  return true;
}

bool ResultCache::ResolvedByProvenance(const Entry& entry) const {
  ProvenanceView view = provenance_->ViewOf({entry.run_id});
  if (view.shard_count() == 0) return false;
  for (const ProvenanceEvent& ev : view.Events()) {
    if (ev.type != ProvenanceEventType::kTaskEnd || !ev.success) continue;
    if (ev.signature != entry.signature) continue;
    if (entry.task_id != kInvalidTask && ev.task_id != entry.task_id) {
      continue;
    }
    return true;
  }
  return false;
}

namespace {

Json EntryToJson(const std::string& key, const std::string& signature,
                 TaskId task_id, const std::string& run_id,
                 const std::string& tenant, int32_t node,
                 const std::string& node_name, double duration,
                 const std::string& stdout_value,
                 const std::vector<CachedOutput>& outputs, uint64_t digest) {
  Json obj = Json::MakeObject();
  obj.Set("key", key);
  obj.Set("signature", signature);
  obj.Set("task", static_cast<int64_t>(task_id));
  obj.Set("run", run_id);
  obj.Set("tenant", tenant);
  obj.Set("node", static_cast<int64_t>(node));
  obj.Set("node_name", node_name);
  obj.Set("duration", duration);
  if (!stdout_value.empty()) obj.Set("stdout", stdout_value);
  Json outs = Json::MakeArray();
  for (const CachedOutput& out : outputs) {
    Json o = Json::MakeObject();
    o.Set("param", out.param);
    o.Set("path", out.path);
    o.Set("size", out.size_bytes);
    // Fingerprints are 64-bit; JSON numbers are doubles, so hex strings.
    o.Set("content", HexU64(out.content_id));
    if (out.is_value) o.Set("value", true);
    outs.Append(std::move(o));
  }
  obj.Set("outputs", std::move(outs));
  obj.Set("digest", HexU64(digest));
  return obj;
}

}  // namespace

void ResultCache::PersistLocked(const Entry& entry) {
  if (!index_) return;
  Json obj = EntryToJson(entry.key, entry.signature, entry.task_id,
                         entry.run_id, entry.tenant, entry.node,
                         entry.node_name, entry.duration, entry.stdout_value,
                         entry.outputs, entry.outputs_digest);
  std::string index_key = StrFormat("%s%s/%s", kIndexPrefix,
                                    entry.key.c_str(),
                                    HexU64(Fnv1a64(entry.tenant)).c_str());
  Status st = index_->Put(index_key, obj.Dump());
  if (!st.ok()) {
    HIWAY_LOG_WARN << "result cache: index write failed: " << st.message();
  }
}

Status ResultCache::OpenIndex(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  HIWAY_ASSIGN_OR_RETURN(index_, ProvDb::Open(path));
  for (const auto& [ikey, value] : index_->Scan(kIndexPrefix)) {
    auto parsed = Json::Parse(value);
    if (!parsed.ok()) {
      HIWAY_LOG_WARN << "result cache: dropping unparsable index entry "
                     << ikey;
      continue;
    }
    const Json& obj = *parsed;
    Entry entry;
    entry.key = obj.GetString("key");
    entry.signature = obj.GetString("signature");
    entry.task_id = obj.GetInt("task", kInvalidTask);
    entry.run_id = obj.GetString("run");
    entry.tenant = obj.GetString("tenant", kDefaultTenant);
    entry.node = static_cast<int32_t>(obj.GetInt("node", -1));
    entry.node_name = obj.GetString("node_name");
    entry.duration = obj.GetNumber("duration");
    entry.stdout_value = obj.GetString("stdout");
    if (const Json* outs = obj.Find("outputs"); outs && outs->is_array()) {
      for (const Json& o : outs->as_array()) {
        CachedOutput out;
        out.param = o.GetString("param");
        out.path = o.GetString("path");
        out.size_bytes = o.GetInt("size");
        out.content_id = ParseHexU64(o.GetString("content"));
        out.is_value = o.GetBool("value");
        entry.outputs.push_back(std::move(out));
      }
    }
    entry.outputs_digest = ParseHexU64(obj.GetString("digest"));
    if (entry.key.empty()) continue;
    entry.tick = ++tick_;
    // Restore the producing run's tenant binding so TenantOf() answers
    // consistently after a restart.
    if (!entry.run_id.empty()) {
      tenant_of_run_.emplace(entry.run_id, entry.tenant);
    }
    PinOutputsLocked(entry, +1);
    entries_[entry.key][entry.tenant] = std::move(entry);
    ++stats_.restored;
  }
  return Status::OK();
}

Status ResultCache::Publish(const TaskSpec& spec, const TaskResult& result,
                            const std::string& run_id,
                            const std::string& node_name) {
  auto key = KeyFor(spec);
  if (!key.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_publishes;
    return key.status();
  }
  // Re-verify durability against the NameNode before sealing: every file
  // output must be present. The AM only calls Publish after stage-out
  // completed, but the seal-after-durable invariant is enforced *here* so
  // no caller ordering bug can leave a dangling entry.
  std::vector<CachedOutput> outputs;
  outputs.reserve(spec.outputs.size());
  for (const OutputSpec& out : spec.outputs) {
    CachedOutput cached;
    cached.param = out.param;
    cached.path = out.path;
    cached.is_value = out.is_value;
    if (!out.is_value) {
      auto stat = dfs_->Stat(out.path);
      if (!stat.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.rejected_publishes;
        return Status::FailedPrecondition(
            "refusing to seal cache entry: output not durable in DFS: " +
            out.path);
      }
      cached.size_bytes = stat->size_bytes;
      cached.content_id = stat->content_id;
    }
    outputs.push_back(std::move(cached));
  }

  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.key = *key;
  entry.signature = spec.signature;
  entry.task_id = spec.id;
  entry.run_id = run_id;
  entry.tenant = TenantOfLocked(run_id);
  entry.node = result.node;
  entry.node_name = node_name;
  entry.duration = result.Makespan();
  entry.stdout_value = result.stdout_value;
  entry.outputs = std::move(outputs);
  entry.outputs_digest = DigestOutputs(entry.outputs);
  entry.tick = ++tick_;

  // LRU bound: make room before inserting (never evict the key we are
  // about to write). Replacing an existing (key, tenant) entry does not
  // grow the cache, so it needs no room.
  auto existing = entries_.find(entry.key);
  const bool replacing = existing != entries_.end() &&
                         existing->second.count(entry.tenant) > 0;
  if (!replacing && options_.max_entries > 0) {
    while (static_cast<int64_t>(TotalEntriesLocked()) >=
           options_.max_entries) {
      std::string victim_key;
      std::string victim_tenant;
      uint64_t oldest = ~uint64_t{0};
      for (const auto& [k, by_tenant] : entries_) {
        for (const auto& [tenant, e] : by_tenant) {
          if (e.tick < oldest) {
            oldest = e.tick;
            victim_key = k;
            victim_tenant = tenant;
          }
        }
      }
      if (victim_key.empty()) break;
      auto vit = entries_.find(victim_key);
      PinOutputsLocked(vit->second.at(victim_tenant), -1);
      if (index_) {
        index_
            ->Delete(StrFormat("%s%s/%s", kIndexPrefix, victim_key.c_str(),
                               HexU64(Fnv1a64(victim_tenant)).c_str()))
            .ok();
      }
      vit->second.erase(victim_tenant);
      if (vit->second.empty()) entries_.erase(vit);
      ++stats_.capacity_evictions;
      if (tracer_) {
        tracer_->Instant(SpanCategory::kCache, "cache_evict");
      }
    }
  }

  if (replacing) {
    PinOutputsLocked(existing->second.at(entry.tenant), -1);
  }
  PersistLocked(entry);
  PinOutputsLocked(entry, +1);
  entries_[entry.key][entry.tenant] = std::move(entry);
  ++stats_.seals;
  if (tracer_) {
    tracer_->Instant(SpanCategory::kCache, "cache_seal", -1, -1, spec.id,
                     result.node);
  }
  return Status::OK();
}

Result<CacheHit> ResultCache::Lookup(const TaskSpec& spec,
                                     const std::string& tenant) {
  const std::string want =
      tenant.empty() ? std::string(kDefaultTenant) : tenant;
  auto key = KeyFor(spec);
  std::lock_guard<std::mutex> lock(mu_);
  if (!key.ok()) {
    ++stats_.misses;
    return key.status();
  }
  auto it = entries_.find(*key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return Status::NotFound("cache miss: " + *key);
  }
  auto tit = it->second.find(want);
  if (tit == it->second.end()) {
    // The computation exists in the cache, but only under other tenants'
    // namespaces: a cross-tenant lookup we refuse.
    ++stats_.tenant_denied;
    ++stats_.misses;
    return Status::NotFound("cache entry belongs to another tenant");
  }
  Entry& entry = tit->second;

  // Resolve through the provenance view of the producing run: the
  // sharded history must still vouch for the execution (PR 4's no-leak
  // substrate). Entries whose history is gone are conservative misses.
  if (TenantOfLocked(entry.run_id) != want ||
      !ResolvedByProvenance(entry)) {
    ++stats_.unresolved;
    ++stats_.misses;
    return Status::NotFound("cache entry not resolvable via provenance: " +
                            *key);
  }

  if (!OutputsFresh(entry)) {
    ++stats_.stale_evictions;
    ++stats_.misses;
    std::string k = *key;
    std::string t = entry.tenant;
    if (index_) {
      index_
          ->Delete(StrFormat("%s%s/%s", kIndexPrefix, k.c_str(),
                             HexU64(Fnv1a64(t)).c_str()))
          .ok();
    }
    PinOutputsLocked(tit->second, -1);
    it->second.erase(tit);
    if (it->second.empty()) entries_.erase(it);
    if (tracer_) tracer_->Instant(SpanCategory::kCache, "cache_evict");
    return Status::NotFound("cache entry stale (DFS content drifted): " + k);
  }

  // Spot-check audit (--cache-verify): re-hash a sampled hit's outputs
  // against DFS before serving it.
  if (options_.verify && verify_rng_.NextDouble() < options_.verify_rate) {
    ++stats_.verify_checks;
    for (const CachedOutput& out : entry.outputs) {
      if (out.is_value) continue;
      if (verify_read_hook_ && verify_read_hook_(out.path, entry.node)) {
        // Transient DFS fault mid-verification: we cannot vouch for the
        // bytes right now, so downgrade the hit to a recompute (the
        // entry itself is not suspect).
        ++stats_.verify_transients;
        ++stats_.misses;
        return Status::NotFound(
            "cache verification hit a transient DFS fault: " + out.path);
      }
    }
    std::vector<CachedOutput> live;
    live.reserve(entry.outputs.size());
    for (const CachedOutput& out : entry.outputs) {
      CachedOutput l = out;
      if (!out.is_value) {
        auto stat = dfs_->Stat(out.path);
        // OutputsFresh above guarantees existence; re-stat for the hash.
        if (stat.ok()) {
          l.size_bytes = stat->size_bytes;
          l.content_id = stat->content_id;
        }
      }
      live.push_back(std::move(l));
    }
    if (DigestOutputs(live) != entry.outputs_digest) {
      ++stats_.verify_mismatches;
      ++stats_.misses;
      HIWAY_LOG_ERROR << "result cache: VERIFY MISMATCH for key " << *key
                      << " (signature " << entry.signature
                      << "): evicting corrupt entry";
      std::string k = *key;
      std::string t = entry.tenant;
      if (index_) {
        index_
            ->Delete(StrFormat("%s%s/%s", kIndexPrefix, k.c_str(),
                               HexU64(Fnv1a64(t)).c_str()))
            .ok();
      }
      PinOutputsLocked(tit->second, -1);
      it->second.erase(tit);
      if (it->second.empty()) entries_.erase(it);
      if (tracer_) {
        tracer_->Instant(SpanCategory::kCache, "cache_verify_mismatch");
      }
      return Status::IoError(
          "cache verification mismatch (corrupt entry evicted): " + k);
    }
  }

  entry.tick = ++tick_;
  ++stats_.hits;
  stats_.saved_compute_s += entry.duration;

  CacheHit hit;
  hit.key = entry.key;
  hit.signature = entry.signature;
  hit.run_id = entry.run_id;
  hit.node = entry.node;
  hit.node_name = entry.node_name;
  hit.duration = entry.duration;
  hit.stdout_value = entry.stdout_value;
  hit.outputs = entry.outputs;
  return hit;
}

int64_t ResultCache::AuditAgainstDfs() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dangling = 0;
  for (const auto& [key, by_tenant] : entries_) {
    for (const auto& [tenant, entry] : by_tenant) {
      for (const CachedOutput& out : entry.outputs) {
        if (out.is_value) continue;
        // An output whose metadata vanished — or whose only replicas
        // vanished with their nodes (churn) — is equally dangling: the
        // sealed bytes cannot be produced any more.
        if (!dfs_->Exists(out.path) || !dfs_->FileReadable(out.path)) {
          ++dangling;
          break;
        }
      }
    }
  }
  return dangling;
}

int64_t ResultCache::EvictUnreadable() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    for (auto tit = it->second.begin(); tit != it->second.end();) {
      bool readable = true;
      for (const CachedOutput& out : tit->second.outputs) {
        if (out.is_value) continue;
        if (!dfs_->Exists(out.path) || !dfs_->FileReadable(out.path)) {
          readable = false;
          break;
        }
      }
      if (readable) {
        ++tit;
        continue;
      }
      if (index_) {
        index_
            ->Delete(StrFormat("%s%s/%s", kIndexPrefix, it->first.c_str(),
                               HexU64(Fnv1a64(tit->first)).c_str()))
            .ok();
      }
      if (tracer_) tracer_->Instant(SpanCategory::kCache, "cache_evict");
      PinOutputsLocked(tit->second, -1);
      tit = it->second.erase(tit);
      ++evicted;
      ++stats_.churn_evictions;
    }
    if (it->second.empty()) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return evicted;
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return TotalEntriesLocked();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ResultCache::PinOutputsLocked(const Entry& entry, int sign) {
  for (const CachedOutput& out : entry.outputs) {
    if (out.is_value) continue;
    auto [it, inserted] = pinned_paths_.emplace(out.path, 0);
    it->second += sign;
    if (it->second <= 0) pinned_paths_.erase(it);
  }
}

bool ResultCache::PinsPath(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_paths_.find(path) != pinned_paths_.end();
}

size_t ResultCache::TotalEntriesLocked() const {
  size_t total = 0;
  for (const auto& [key, by_tenant] : entries_) total += by_tenant.size();
  return total;
}

}  // namespace hiway
