// Cluster-wide, content-addressed result cache: the generalisation of the
// AM's within-submission failover memoisation (src/core/hiway_am.cc,
// TryMemoise) to *repeat submissions* — the NGS re-run pattern the paper's
// evaluation workloads embody, where the same SNV/RNA-seq pipeline runs
// daily with one changed input.
//
// Keying. An entry is addressed by a key derived from the task's tool
// signature, command, parameters, and the *content fingerprints* of its
// input files (Dfs::ContentId — the simulator's stand-in for a checksum of
// the bytes), plus the declared output bindings. Re-ingesting one input
// changes its fingerprint, so exactly the downstream cone of the change
// misses while untouched chains hit. See docs/data-cache.md.
//
// Tenancy. Entries record the run that produced them; a lookup names the
// requesting tenant and is answered only when (a) the producing run
// belongs to that tenant and (b) a ProvenanceView over that run still
// vouches for the execution (a successful task-end with the entry's
// signature). This reuses the cross-tenant no-leak machinery of the
// sharded provenance layer: the cache can never serve one tenant's
// private outputs to another, and an entry whose provenance history is
// gone (wiped, or not adopted after a restart) is conservatively a miss.
//
// Durability ordering. Entries are sealed by Publish() only after the
// producing attempt's outputs are durably replicated in DFS (the AM calls
// it strictly after stage-out completes, and Publish re-verifies every
// output against the NameNode before sealing). An AM that crashes before
// its outputs replicate therefore never leaves a dangling entry. With a
// persistent index attached (ProvDb), sealed entries survive a service
// restart; lookups still re-verify outputs against the live DFS.
//
// Verification. With `verify` enabled (--cache-verify), a sampled subset
// of hits re-hashes the entry's outputs against DFS before serving; a
// mismatch fails loudly (IoError + entry evicted + error log). The
// re-hash consults the fault injector's hdfs-error hook, so transient
// read faults during verification downgrade the hit to a recompute.

#ifndef HIWAY_CACHE_RESULT_CACHE_H_
#define HIWAY_CACHE_RESULT_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/hdfs/dfs.h"
#include "src/lang/workflow.h"

namespace hiway {

class ProvDb;
class ProvenanceManager;
class Tracer;

struct ResultCacheOptions {
  /// Maximum sealed entries (LRU beyond it); <= 0 = unbounded.
  int64_t max_entries = 0;
  /// Spot-check audit mode: re-hash a sampled fraction of hits.
  bool verify = false;
  /// Fraction of hits sampled for verification.
  double verify_rate = 0.25;
  /// Seed of the verification sampler (deterministic replay).
  uint64_t seed = 20170321;
};

struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t seals = 0;
  /// Entries restored from the persistent index on open.
  int64_t restored = 0;
  /// Publishes refused because an output was not durably in DFS.
  int64_t rejected_publishes = 0;
  /// Entries dropped because DFS content drifted underneath them.
  int64_t stale_evictions = 0;
  /// Entries dropped by the max_entries LRU bound.
  int64_t capacity_evictions = 0;
  /// Entries dropped by EvictUnreadable because cluster churn left an
  /// output with zero live replicas.
  int64_t churn_evictions = 0;
  /// Lookups refused because the entry belongs to another tenant.
  int64_t tenant_denied = 0;
  /// Lookups refused because no provenance view vouches for the entry.
  int64_t unresolved = 0;
  int64_t verify_checks = 0;
  /// Verification reads that hit a transient DFS fault (hit downgraded).
  int64_t verify_transients = 0;
  /// Verification mismatches (loud failures; entry evicted).
  int64_t verify_mismatches = 0;
  /// Sum of original attempt makespans served from cache ("saved" time).
  double saved_compute_s = 0.0;
};

/// One output binding served by a hit.
struct CachedOutput {
  std::string param;
  std::string path;
  int64_t size_bytes = 0;
  uint64_t content_id = 0;
  bool is_value = false;
};

/// A resolved cache hit: everything the AM needs to complete the task
/// without a container.
struct CacheHit {
  std::string key;
  std::string signature;
  /// Run that produced the entry.
  std::string run_id;
  /// Node the original attempt ran on (attribution only).
  int32_t node = -1;
  std::string node_name;
  /// Original attempt makespan — the time a hit saves.
  double duration = 0.0;
  std::string stdout_value;
  std::vector<CachedOutput> outputs;
};

class ResultCache {
 public:
  /// `dfs` and `provenance` must outlive the cache.
  ResultCache(Dfs* dfs, ProvenanceManager* provenance,
              ResultCacheOptions options = {});
  ~ResultCache();
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Optional: emits kCache "cache_seal"/"cache_evict" instants.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Attaches (creating if necessary) a persistent ProvDb index at
  /// `path` and restores every entry it holds. Restored entries still
  /// pass the full lookup gauntlet (tenancy, provenance resolution, DFS
  /// re-verification) before serving.
  Status OpenIndex(const std::string& path);

  /// Fault-injection hook consulted once per output during verification
  /// re-hashes (wired to FaultInjector::ShouldFailRead by the service's
  /// hdfs-error scenario). Returning true marks the re-read transient.
  void SetVerifyReadHook(
      std::function<bool(const std::string& path, NodeId node)> hook);

  /// Declares `run_id` as belonging to `tenant`. Entries published under
  /// the run inherit the tenant; lookups from other tenants never see
  /// them. Unbound runs publish under the "default" tenant.
  void BindRun(const std::string& run_id, const std::string& tenant);
  std::string TenantOf(const std::string& run_id) const;

  /// The content-addressed key of `spec` under current DFS contents;
  /// NotFound when an input file does not exist (key not derivable).
  Result<std::string> KeyFor(const TaskSpec& spec) const;

  /// Seals a cache entry for a completed attempt. Call only after the
  /// attempt's stage-out is durably complete; Publish independently
  /// re-verifies every file output against DFS and refuses to seal
  /// (FailedPrecondition) when any is missing — a crashed AM must never
  /// leave a dangling entry. `node_name` is the executing node, for
  /// attribution on later hits.
  Status Publish(const TaskSpec& spec, const TaskResult& result,
                 const std::string& run_id, const std::string& node_name = "");

  /// Tenant-scoped lookup. NotFound = miss (recompute); IoError = a
  /// verification sample caught a corrupt entry (loud failure; the entry
  /// is evicted and the caller should recompute *and* alarm).
  Result<CacheHit> Lookup(const TaskSpec& spec, const std::string& tenant);

  /// Integrity audit: number of *dangling* sealed entries — entries with
  /// a file output that is absent from DFS. Sealing guaranteed every
  /// output durable, so a dangling entry means a seal-before-durable bug
  /// (an AM crash window) or unrecovered data loss. Used by crash tests:
  /// after any sequence of AM crashes this must be zero. Entries whose
  /// outputs are present but *drifted* (superseded by a re-execution or
  /// rewrite) are not dangling — Lookup evicts those lazily as stale.
  int64_t AuditAgainstDfs() const;

  /// Churn sweep: evicts sealed entries referencing an output that no
  /// longer exists or has lost every replica (unwarned node deaths can
  /// destroy all copies of a block before re-replication runs). Called
  /// by the elastic layer after each membership change so no sealed
  /// entry ever references a vanished-only replica. Returns the number
  /// of entries evicted (counted as churn_evictions).
  int64_t EvictUnreadable();

  /// True when some sealed entry records `path` as a file output. The
  /// intermediate-data GC consults this before deleting a dead file: a
  /// pinned path must survive, or the entry's replay guarantee breaks
  /// (docs/storage-model.md, "GC × result-cache pinning").
  bool PinsPath(const std::string& path) const;

  size_t size() const;
  ResultCacheStats stats() const;
  const ResultCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::string key;
    std::string signature;
    TaskId task_id = kInvalidTask;  // producing run's task id
    std::string run_id;
    std::string tenant;
    int32_t node = -1;
    std::string node_name;
    double duration = 0.0;
    std::string stdout_value;
    std::vector<CachedOutput> outputs;
    /// Digest over the outputs' (path, size, content) triples; what
    /// verification re-derives from live DFS.
    uint64_t outputs_digest = 0;
    uint64_t tick = 0;  // LRU recency stamp
  };

  static uint64_t DigestOutputs(const std::vector<CachedOutput>& outputs);
  /// True when every file output of `entry` is in DFS with the recorded
  /// size and content fingerprint.
  bool OutputsFresh(const Entry& entry) const;
  void PersistLocked(const Entry& entry);
  size_t TotalEntriesLocked() const;
  std::string TenantOfLocked(const std::string& run_id) const;
  /// True when a ProvenanceView over the producing run vouches for the
  /// entry (successful task-end with its signature).
  bool ResolvedByProvenance(const Entry& entry) const;
  /// Adds (+1) or releases (-1) the pin index entries for `entry`'s file
  /// outputs. Every insert/erase of a sealed entry must go through this
  /// so PinsPath stays exact.
  void PinOutputsLocked(const Entry& entry, int sign);

  Dfs* dfs_;
  ProvenanceManager* provenance_;
  ResultCacheOptions options_;
  Tracer* tracer_ = nullptr;
  std::function<bool(const std::string&, NodeId)> verify_read_hook_;
  mutable std::mutex mu_;
  /// key -> tenant -> entry. Tenants get private namespaces under a
  /// shared content key: two tenants computing the same bytes hold
  /// independent entries, so neither can clobber (or observe) the other.
  std::map<std::string, std::map<std::string, Entry>> entries_;
  /// path -> number of sealed entries recording it as a file output (the
  /// GC pin index).
  std::map<std::string, int> pinned_paths_;
  std::map<std::string, std::string> tenant_of_run_;
  std::unique_ptr<ProvDb> index_;  // nullptr = in-memory only
  uint64_t tick_ = 0;
  Rng verify_rng_;
  ResultCacheStats stats_;
};

}  // namespace hiway

#endif  // HIWAY_CACHE_RESULT_CACHE_H_
