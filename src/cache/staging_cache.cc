#include "src/cache/staging_cache.h"

#include <vector>

#include "src/obs/tracer.h"

namespace hiway {

StagingCache::StagingCache(StagingCacheOptions options) : options_(options) {}

int64_t StagingCache::CachedBytes(const std::string& path,
                                  uint64_t content_id, NodeId node) const {
  if (content_id == 0) return 0;  // file no longer exists in DFS
  std::lock_guard<std::mutex> lock(mu_);
  auto nit = nodes_.find(node);
  if (nit == nodes_.end()) return 0;
  auto eit = nit->second.entries.find(path);
  if (eit == nit->second.entries.end()) return 0;
  if (eit->second.content_id != content_id) return 0;
  return eit->second.bytes;
}

bool StagingCache::HitAndPin(NodeId node, const std::string& path,
                             uint64_t content_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto nit = nodes_.find(node);
  if (nit != nodes_.end()) {
    auto eit = nit->second.entries.find(path);
    if (eit != nit->second.entries.end() && content_id != 0 &&
        eit->second.content_id == content_id) {
      ++eit->second.pins;
      eit->second.tick = ++tick_;
      ++stats_.hits;
      stats_.bytes_served += eit->second.bytes;
      if (tracer_) {
        tracer_->Instant(SpanCategory::kCache, "staging_hit", -1, -1, -1,
                         node, 0.0, eit->second.bytes);
      }
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

bool StagingCache::EvictToFit(NodeBucket* bucket, NodeId node,
                              int64_t incoming) {
  if (options_.node_budget_bytes <= 0) return true;
  while (bucket->bytes + incoming > options_.node_budget_bytes) {
    // Oldest unpinned entry.
    auto victim = bucket->entries.end();
    for (auto it = bucket->entries.begin(); it != bucket->entries.end();
         ++it) {
      if (it->second.pins > 0) continue;
      if (victim == bucket->entries.end() ||
          it->second.tick < victim->second.tick) {
        victim = it;
      }
    }
    if (victim == bucket->entries.end()) return false;  // all pinned
    bucket->bytes -= victim->second.bytes;
    ++stats_.evictions;
    if (tracer_) {
      tracer_->Instant(SpanCategory::kCache, "staging_evict", -1, -1, -1,
                       node, 0.0, victim->second.bytes);
    }
    bucket->entries.erase(victim);
  }
  return true;
}

void StagingCache::InsertPinned(NodeId node, const std::string& path,
                                uint64_t content_id, int64_t bytes) {
  if (bytes < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  NodeBucket& bucket = nodes_[node];
  auto eit = bucket.entries.find(path);
  if (eit != bucket.entries.end()) {
    // Same path staged again (content drifted, or a concurrent attempt
    // raced us): replace the bytes, keep existing pins honest.
    bucket.bytes -= eit->second.bytes;
    int pins = eit->second.pins;
    bucket.entries.erase(eit);
    if (!EvictToFit(&bucket, node, bytes)) {
      ++stats_.rejected;
      return;
    }
    Entry e;
    e.content_id = content_id;
    e.bytes = bytes;
    e.pins = pins + 1;
    e.tick = ++tick_;
    bucket.entries.emplace(path, e);
    bucket.bytes += bytes;
    ++stats_.insertions;
    return;
  }
  if (!EvictToFit(&bucket, node, bytes)) {
    ++stats_.rejected;
    return;
  }
  Entry e;
  e.content_id = content_id;
  e.bytes = bytes;
  e.pins = 1;
  e.tick = ++tick_;
  bucket.entries.emplace(path, e);
  bucket.bytes += bytes;
  ++stats_.insertions;
}

void StagingCache::Unpin(NodeId node, const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto nit = nodes_.find(node);
  if (nit == nodes_.end()) return;
  auto eit = nit->second.entries.find(path);
  if (eit == nit->second.entries.end()) return;
  if (eit->second.pins > 0) --eit->second.pins;
}

void StagingCache::InvalidateNode(NodeId node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto nit = nodes_.find(node);
  if (nit == nodes_.end()) return;
  stats_.invalidated += static_cast<int64_t>(nit->second.entries.size());
  nodes_.erase(nit);
}

int StagingCache::MigrateNode(NodeId from, const std::vector<NodeId>& targets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto nit = nodes_.find(from);
  if (nit == nodes_.end() || targets.empty()) return 0;
  NodeBucket& source = nit->second;
  int moved = 0;
  size_t next_target = 0;
  std::vector<std::string> drop;
  for (auto& [path, entry] : source.entries) {
    if (entry.pins > 0) continue;  // in use on the draining node
    // Round-robin placement, first target with room after LRU eviction.
    bool placed = false;
    for (size_t attempt = 0; attempt < targets.size(); ++attempt) {
      NodeId dst = targets[(next_target + attempt) % targets.size()];
      if (dst == from) continue;
      NodeBucket& sink = nodes_[dst];
      // Same path already there: keep the fresher copy (ours — the
      // drain is the most recent observation of the content).
      auto existing = sink.entries.find(path);
      if (existing != sink.entries.end()) {
        if (existing->second.pins > 0) continue;  // don't fight a pin
        sink.bytes -= existing->second.bytes;
        sink.entries.erase(existing);
      }
      if (!EvictToFit(&sink, dst, entry.bytes)) continue;
      Entry e = entry;
      e.pins = 0;
      e.tick = ++tick_;
      sink.entries.emplace(path, e);
      sink.bytes += e.bytes;
      next_target = (next_target + attempt + 1) % targets.size();
      placed = true;
      break;
    }
    drop.push_back(path);
    if (placed) {
      ++moved;
      ++stats_.migrated;
      if (tracer_) {
        tracer_->Instant(SpanCategory::kCache, "staging_migrate", -1, -1, -1,
                         from, 0.0, entry.bytes);
      }
    } else {
      ++stats_.invalidated;
    }
  }
  for (const std::string& path : drop) {
    auto eit = source.entries.find(path);
    if (eit == source.entries.end()) continue;
    source.bytes -= eit->second.bytes;
    source.entries.erase(eit);
  }
  if (source.entries.empty()) nodes_.erase(from);
  return moved;
}

int64_t StagingCache::NodeBytes(NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto nit = nodes_.find(node);
  return nit == nodes_.end() ? 0 : nit->second.bytes;
}

int64_t StagingCache::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& [node, bucket] : nodes_) total += bucket.bytes;
  return total;
}

StagingCacheStats StagingCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace hiway
