// Per-NodeManager staging cache: signature-addressed retention of bytes a
// container already localized onto a node's scratch disk. Hi-WAY (like
// YARN's PRIVATE localization scope) discards a container's staged inputs
// when the container exits; re-running the same pipeline then pays the
// full HDFS fetch again. The staging cache keeps those bytes across
// workflows — a later task that needs the same file *content* on the same
// node skips the stage-in transfer entirely — and the data-aware scheduler
// (src/core/scheduler.cc) ranks cached bytes alongside HDFS block
// locality when placing tasks.
//
// Entries are addressed by (node, path) and carry the DFS content
// fingerprint they were staged from (Dfs::ContentId): an input that was
// re-ingested or rewritten no longer matches, so stale bytes can never
// serve a task. Each node's set is LRU-evicted under a configurable byte
// budget; entries pinned by a running attempt are never evicted (they are
// physically on disk and in use), so momentary over-budget is possible
// when pins alone exceed the budget — insertions that cannot fit after
// evicting every unpinned entry are rejected instead.
//
// Thread-safe (one mutex): the simulator is effectively single-threaded,
// but stress suites touch deployments from multiple threads.

#ifndef HIWAY_CACHE_STAGING_CACHE_H_
#define HIWAY_CACHE_STAGING_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/sim/cluster.h"

namespace hiway {

class Tracer;

struct StagingCacheOptions {
  /// Per-node byte budget; <= 0 means unbounded.
  int64_t node_budget_bytes = 0;
};

struct StagingCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Insertions refused because pinned entries alone filled the budget.
  int64_t rejected = 0;
  /// Entries dropped by InvalidateNode (node loss).
  int64_t invalidated = 0;
  /// Entries moved off a draining node by MigrateNode (elastic scale-in
  /// / warned spot revocation — the bytes survive the node).
  int64_t migrated = 0;
  /// Bytes whose stage-in transfer was skipped thanks to a hit.
  int64_t bytes_served = 0;
};

class StagingCache {
 public:
  explicit StagingCache(StagingCacheOptions options = {});
  StagingCache(const StagingCache&) = delete;
  StagingCache& operator=(const StagingCache&) = delete;

  /// Optional: emits kCache "staging_hit"/"staging_evict" instants.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Scheduler-facing: bytes of `path` cached on `node` with the given
  /// (current) content fingerprint; 0 when absent or stale. Does not
  /// touch LRU order — placement scans must not perturb recency.
  int64_t CachedBytes(const std::string& path, uint64_t content_id,
                      NodeId node) const;

  /// Stage-in fast path: when `node` holds a fresh copy of `path`, pins
  /// it for the duration of the attempt and returns true (the transfer
  /// is skipped). Counts a miss otherwise.
  bool HitAndPin(NodeId node, const std::string& path, uint64_t content_id);

  /// Records freshly staged bytes, pinned (the inserting attempt is
  /// using them). Evicts unpinned LRU entries to fit the budget; when
  /// pins alone exceed it the insertion is rejected (counted). An entry
  /// for the same path is replaced (content drift).
  void InsertPinned(NodeId node, const std::string& path,
                    uint64_t content_id, int64_t bytes);

  /// Releases an attempt's pin; entries become evictable at zero pins.
  /// Unknown (node, path) pairs are ignored (the insert was rejected).
  void Unpin(NodeId node, const std::string& path);

  /// Drops everything cached on `node` (NodeManager/disk loss).
  void InvalidateNode(NodeId node);

  /// Graceful drain: moves `from`'s unpinned entries round-robin onto
  /// `targets` (evicting LRU entries there to fit; counted as migrated),
  /// drops the ones no target can hold (counted as invalidated), and
  /// leaves pinned entries in place — their attempts are still running
  /// on the draining node and the bucket dies with the node. Returns the
  /// number of entries migrated. No-op when `targets` is empty.
  int MigrateNode(NodeId from, const std::vector<NodeId>& targets);

  int64_t NodeBytes(NodeId node) const;
  int64_t TotalBytes() const;
  StagingCacheStats stats() const;
  const StagingCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    uint64_t content_id = 0;
    int64_t bytes = 0;
    int pins = 0;
    uint64_t tick = 0;  // LRU recency stamp
  };
  struct NodeBucket {
    std::map<std::string, Entry> entries;  // by path
    int64_t bytes = 0;
  };

  /// Evicts unpinned LRU entries of `bucket` until `incoming` more bytes
  /// fit the budget; returns false when pinned entries make that
  /// impossible. Caller holds mu_.
  bool EvictToFit(NodeBucket* bucket, NodeId node, int64_t incoming);

  StagingCacheOptions options_;
  Tracer* tracer_ = nullptr;
  mutable std::mutex mu_;
  std::map<NodeId, NodeBucket> nodes_;
  uint64_t tick_ = 0;
  StagingCacheStats stats_;
};

}  // namespace hiway

#endif  // HIWAY_CACHE_STAGING_CACHE_H_
