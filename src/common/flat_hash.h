// Open-addressing hash map with stable value addresses.
//
// The RM's per-event hot path (src/yarn/yarn.h) looks up applications,
// containers, and tenant stats on every heartbeat, allocation, and
// release. `std::map` made each of those an O(log n) pointer chase;
// at thousands of concurrent workflows the tree walks dominated the
// allocation pass. FlatHashMap replaces them with an open-addressing
// index (a flat vector of slot indices probed linearly — one cache
// line per probe) over *stable* entry storage: entries live in a
// `std::deque`, so a reference obtained from `operator[]`/`find` is
// never invalidated by later inserts. That stability is load-bearing —
// call sites hold `TenantStats*` across further map operations.
//
// Erased slots go on a free list and are reused by later inserts, so
// memory is bounded by the peak live size, not total insertions.
// Iteration order is unspecified (insertion-slot order, with reuse):
// any call site whose behaviour depends on order must collect keys and
// sort, exactly as it would for `std::unordered_map`.

#ifndef HIWAY_COMMON_FLAT_HASH_H_
#define HIWAY_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace hiway {

template <typename K, typename V, typename Hash = std::hash<K>>
class FlatHashMap {
 public:
  using value_type = std::pair<K, V>;

  template <bool Const>
  class Iter {
   public:
    using Owner = std::conditional_t<Const, const FlatHashMap, FlatHashMap>;
    using Ref = std::conditional_t<Const, const value_type&, value_type&>;
    using Ptr = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;
    Iter(Owner* owner, size_t slot) : owner_(owner), slot_(slot) { Skip(); }
    // Const iterators are constructible from mutable ones (begin() on a
    // const ref, mixed comparisons).
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& o) : owner_(o.owner_), slot_(o.slot_) {}

    Ref operator*() const { return *owner_->entries_[slot_]; }
    Ptr operator->() const { return &*owner_->entries_[slot_]; }
    Iter& operator++() {
      ++slot_;
      Skip();
      return *this;
    }
    template <bool C>
    bool operator==(const Iter<C>& o) const { return slot_ == o.slot_; }
    template <bool C>
    bool operator!=(const Iter<C>& o) const { return slot_ != o.slot_; }

   private:
    friend class FlatHashMap;
    template <bool>
    friend class Iter;
    void Skip() {
      while (owner_ && slot_ < owner_->entries_.size() &&
             !owner_->entries_[slot_].has_value()) {
        ++slot_;
      }
    }
    Owner* owner_ = nullptr;
    size_t slot_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, entries_.size()); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, entries_.size()); }

  void reserve(size_t n) { RehashFor(n); }

  void clear() {
    entries_.clear();
    buckets_.clear();
    free_slots_.clear();
    size_ = 0;
  }

  V& operator[](const K& key) {
    size_t b = FindBucket(key);
    if (buckets_.empty() || buckets_[b] < 0) {
      return Insert(key, V{})->second;
    }
    return entries_[buckets_[b]]->second;
  }

  iterator find(const K& key) {
    size_t b = FindBucket(key);
    if (buckets_.empty() || buckets_[b] < 0) return end();
    return iterator(this, static_cast<size_t>(buckets_[b]));
  }
  const_iterator find(const K& key) const {
    size_t b = FindBucket(key);
    if (buckets_.empty() || buckets_[b] < 0) return end();
    return const_iterator(this, static_cast<size_t>(buckets_[b]));
  }

  size_t count(const K& key) const { return find(key) == end() ? 0 : 1; }
  bool contains(const K& key) const { return count(key) > 0; }

  V& at(const K& key) { return find(key)->second; }
  const V& at(const K& key) const { return find(key)->second; }

  std::pair<iterator, bool> emplace(const K& key, V value) {
    size_t b = FindBucket(key);
    if (!buckets_.empty() && buckets_[b] >= 0) {
      return {iterator(this, static_cast<size_t>(buckets_[b])), false};
    }
    return {Insert(key, std::move(value)), true};
  }

  size_t erase(const K& key) {
    if (buckets_.empty()) return 0;
    size_t b = FindBucket(key);
    if (buckets_[b] < 0) return 0;
    size_t slot = static_cast<size_t>(buckets_[b]);
    entries_[slot].reset();
    free_slots_.push_back(slot);
    buckets_[b] = kTombstone;
    --size_;
    ++tombstones_;
    // A tombstone-heavy table degrades probe lengths; rebuild in place.
    if (tombstones_ * 4 > buckets_.size()) Rehash(buckets_.size());
    return 1;
  }

  void erase(const_iterator it) { erase(it->first); }

 private:
  static constexpr int64_t kEmpty = -1;
  static constexpr int64_t kTombstone = -2;

  // Returns the bucket holding `key`, or the first insertable bucket
  // (empty or tombstone) on its probe path if absent.
  size_t FindBucket(const K& key) const {
    if (buckets_.empty()) return 0;
    size_t mask = buckets_.size() - 1;
    size_t b = Hash{}(key)&mask;
    size_t first_free = buckets_.size();
    while (true) {
      int64_t s = buckets_[b];
      if (s == kEmpty) {
        return first_free < buckets_.size() ? first_free : b;
      }
      if (s == kTombstone) {
        if (first_free == buckets_.size()) first_free = b;
      } else if (entries_[s]->first == key) {
        return b;
      }
      b = (b + 1) & mask;
    }
  }

  iterator Insert(const K& key, V value) {
    RehashFor(size_ + 1);
    size_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      entries_[slot].emplace(key, std::move(value));
    } else {
      slot = entries_.size();
      entries_.emplace_back(std::in_place, key, std::move(value));
    }
    size_t b = FindBucket(key);
    if (buckets_[b] == kTombstone) --tombstones_;
    buckets_[b] = static_cast<int64_t>(slot);
    ++size_;
    return iterator(this, slot);
  }

  void RehashFor(size_t n) {
    // Grow when the table would exceed ~70% load (live + tombstones).
    size_t needed = (n + tombstones_) * 10 / 7 + 1;
    if (needed <= buckets_.size()) return;
    size_t cap = 16;
    while (cap < needed) cap <<= 1;
    Rehash(cap);
  }

  void Rehash(size_t cap) {
    buckets_.assign(cap, kEmpty);
    tombstones_ = 0;
    size_t mask = cap - 1;
    for (size_t slot = 0; slot < entries_.size(); ++slot) {
      if (!entries_[slot].has_value()) continue;
      size_t b = Hash{}(entries_[slot]->first) & mask;
      while (buckets_[b] != kEmpty) b = (b + 1) & mask;
      buckets_[b] = static_cast<int64_t>(slot);
    }
  }

  // Entry storage: a deque never moves elements, so value addresses are
  // stable for the map's lifetime (erase + reuse recycles the slot).
  std::deque<std::optional<value_type>> entries_;
  std::vector<int64_t> buckets_;
  std::vector<size_t> free_slots_;
  size_t size_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_COMMON_FLAT_HASH_H_
