#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/strings.h"

namespace hiway {

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::GetString(std::string_view key, std::string def) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : def;
}

double Json::GetNumber(std::string_view key, double def) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : def;
}

int64_t Json::GetInt(std::string_view key, int64_t def) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_int() : def;
}

int64_t Json::as_int() const {
  // A plain static_cast is UB when the double lies outside int64 range
  // (fuzz-found via Galaxy step ids like 1e300); saturate instead.
  if (std::isnan(num_)) return 0;
  if (num_ >= 9223372036854775808.0) return INT64_MAX;
  if (num_ < -9223372036854775808.0) return INT64_MIN;
  return static_cast<int64_t>(num_);
}

bool Json::GetBool(std::string_view key, bool def) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : def;
}

void Json::Set(std::string key, Json value) {
  if (type_ != Type::kObject) *this = MakeObject();
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

void Json::Append(Json value) { arr_.push_back(std::move(value)); }

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.num_ == b.num_;
    case Json::Type::kString:
      return a.str_ == b.str_;
    case Json::Type::kArray:
      return a.arr_ == b.arr_;
    case Json::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string FormatNumber(double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(d));
  }
  // %.17g round-trips doubles; trim to shortest that re-parses equal.
  for (int prec = 6; prec <= 17; ++prec) {
    std::string s = StrFormat("%.*g", prec, d);
    if (std::strtod(s.c_str(), nullptr) == d) return s;
  }
  return StrFormat("%.17g", d);
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent >= 0) {
      *out += '\n';
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      *out += FormatNumber(num_);
      break;
    case Type::kString:
      *out += JsonEscape(str_);
      break;
    case Type::kArray: {
      *out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) *out += indent >= 0 ? "," : ",";
        newline(depth + 1);
        arr_[i].DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      *out += '{';
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) *out += ",";
        newline(depth + 1);
        *out += JsonEscape(obj_[i].first);
        *out += indent >= 0 ? ": " : ":";
        obj_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      *out += '}';
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    if (text_.size() > Json::kMaxInputBytes) {
      return Status::ParseError(
          StrFormat("JSON input of %zu bytes exceeds the %zu-byte limit "
                    "(Json::kMaxInputBytes)",
                    text_.size(), Json::kMaxInputBytes));
    }
    SkipWs();
    HIWAY_ASSIGN_OR_RETURN(Json v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static bool IsDigit(char c) {
    return c >= '0' && c <= '9';  // isdigit(char) is UB for high-bit bytes
  }

  Status Error(const std::string& msg) const {
    // Compute 1-based line/column for the diagnostic.
    int line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError(StrFormat("JSON error at line %d col %d (offset %zu): %s",
                                        line, col, pos_, msg.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Peek(char c) const { return pos_ < text_.size() && text_[pos_] == c; }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> ParseValue(int depth) {
    if (depth > Json::kMaxDepth) {
      return Error(StrFormat("nesting depth %d exceeds the limit of %d (Json::kMaxDepth)",
                             depth, Json::kMaxDepth));
    }
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        HIWAY_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        return ParseLiteral("true", Json(true));
      case 'f':
        return ParseLiteral("false", Json(false));
      case 'n':
        return ParseLiteral("null", Json(nullptr));
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(StrFormat("unexpected character '%c'", c));
    }
  }

  Result<Json> ParseLiteral(std::string_view lit, Json value) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Error("invalid literal");
    }
    pos_ += lit.size();
    return value;
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size()) return Error("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    } else {
      return Error("invalid number");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
        return Error("digit expected after decimal point");
      }
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !IsDigit(text_[pos_])) {
        return Error("digit expected in exponent");
      }
      while (pos_ < text_.size() && IsDigit(text_[pos_])) ++pos_;
    }
    std::string buf(text_.substr(start, pos_ - start));
    double d = std::strtod(buf.c_str(), nullptr);
    if (!std::isfinite(d)) {
      // 1e999 etc. would serialize as "inf" and break round-tripping.
      return Error(StrFormat("number '%s' overflows double range", buf.c_str()));
    }
    return Json(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("'\"' expected");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          HIWAY_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (!Consume('\\') || !Consume('u')) {
              return Error("unpaired surrogate");
            }
            HIWAY_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v += static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v += static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v += static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<Json> ParseObject(int depth) {
    Consume('{');
    Json obj = Json::MakeObject();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      HIWAY_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("':' expected");
      SkipWs();
      HIWAY_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      obj.as_object().emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("',' or '}' expected");
    }
  }

  Result<Json> ParseArray(int depth) {
    Consume('[');
    Json arr = Json::MakeArray();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      HIWAY_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("',' or ']' expected");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  JsonParser parser(text);
  return parser.ParseDocument();
}

}  // namespace hiway
