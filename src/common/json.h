// A self-contained JSON value model, parser, and serializer.
//
// Used by the Galaxy workflow front-end, the provenance trace format, and
// the trace re-execution front-end. Supports the full JSON grammar
// (RFC 8259): objects, arrays, strings with escapes (including \uXXXX with
// surrogate pairs), numbers, booleans, null.
//
// Object key order is preserved on parse and serialize so that provenance
// traces diff cleanly.

#ifndef HIWAY_COMMON_JSON_H_
#define HIWAY_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"

namespace hiway {

class Json;

/// Ordered key/value list; JSON objects preserve insertion order.
using JsonObject = std::vector<std::pair<std::string, Json>>;
using JsonArray = std::vector<Json>;

/// A JSON document node.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Json(int i) : type_(Type::kNumber), num_(i) {}  // NOLINT
  Json(int64_t i)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(uint64_t i)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(JsonArray a)  // NOLINT
      : type_(Type::kArray), arr_(std::move(a)) {}
  Json(JsonObject o)  // NOLINT
      : type_(Type::kObject), obj_(std::move(o)) {}

  static Json MakeObject() { return Json(JsonObject{}); }
  static Json MakeArray() { return Json(JsonArray{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  /// Saturating conversion: values beyond int64 range clamp, NaN maps to 0.
  int64_t as_int() const;
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  JsonArray& as_array() { return arr_; }
  const JsonObject& as_object() const { return obj_; }
  JsonObject& as_object() { return obj_; }

  /// Object field lookup; returns nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;

  /// Convenience typed getters with defaults (for tolerant readers).
  std::string GetString(std::string_view key, std::string def = "") const;
  double GetNumber(std::string_view key, double def = 0.0) const;
  int64_t GetInt(std::string_view key, int64_t def = 0) const;
  bool GetBool(std::string_view key, bool def = false) const;

  /// Appends/overwrites an object field (object nodes only).
  void Set(std::string key, Json value);

  /// Appends to an array node.
  void Append(Json value);

  /// Serialises; `indent` < 0 means compact single-line output.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document (rejects trailing garbage).
  /// Inputs larger than kMaxInputBytes or nested deeper than kMaxDepth are
  /// rejected with a ParseError naming the limit and the offending offset.
  static Result<Json> Parse(std::string_view text);

  /// Hard limits enforced by Parse.
  static constexpr size_t kMaxInputBytes = 64u << 20;
  static constexpr int kMaxDepth = 256;

  friend bool operator==(const Json& a, const Json& b);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Escapes `s` into a JSON string literal (with surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace hiway

#endif  // HIWAY_COMMON_JSON_H_
