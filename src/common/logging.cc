#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace hiway {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >= static_cast<int>(g_level)) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "[FATAL %s:%d] HIWAY_CHECK failed: %s\n", file, line,
               expr);
  std::abort();
}

}  // namespace internal

}  // namespace hiway
