// Minimal leveled logging. Defaults to warnings-and-above so tests and
// benchmarks stay quiet; verbosity is a process-wide setting.

#ifndef HIWAY_COMMON_LOGGING_H_
#define HIWAY_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hiway {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is below threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define HIWAY_LOG(level)                                          \
  (static_cast<int>(::hiway::LogLevel::k##level) <                \
   static_cast<int>(::hiway::GetLogLevel()))                      \
      ? void(0)                                                   \
      : void(::hiway::internal::LogMessage(                       \
            ::hiway::LogLevel::k##level, __FILE__, __LINE__))

#define HIWAY_LOG_DEBUG                                            \
  ::hiway::internal::LogMessage(::hiway::LogLevel::kDebug, __FILE__, __LINE__)
#define HIWAY_LOG_INFO                                             \
  ::hiway::internal::LogMessage(::hiway::LogLevel::kInfo, __FILE__, __LINE__)
#define HIWAY_LOG_WARN                                             \
  ::hiway::internal::LogMessage(::hiway::LogLevel::kWarning, __FILE__, \
                                __LINE__)
#define HIWAY_LOG_ERROR                                            \
  ::hiway::internal::LogMessage(::hiway::LogLevel::kError, __FILE__, __LINE__)

/// Fatal-on-false invariant check; prints the expression and aborts.
/// Used for programming errors (never for recoverable conditions).
#define HIWAY_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::hiway::internal::CheckFailed(#cond, __FILE__, __LINE__);            \
    }                                                                       \
  } while (false)

namespace internal {
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line);
}  // namespace internal

}  // namespace hiway

#endif  // HIWAY_COMMON_LOGGING_H_
