// Deterministic, seedable pseudo-random number generation.
//
// All stochastic behaviour in the simulator flows through Rng so that runs
// are reproducible given a seed. SplitMix64 is small, fast, and has
// well-understood statistical quality for simulation purposes.

#ifndef HIWAY_COMMON_RANDOM_H_
#define HIWAY_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace hiway {

/// SplitMix64-based generator. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Uniform 64-bit value.
  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextUint64() % n; }

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

  /// Log-normal distributed value with given median and sigma of the
  /// underlying normal. Useful for runtime noise: strictly positive and
  /// right-skewed like real task runtimes.
  double LogNormal(double median, double sigma) {
    return median * std::exp(Normal(0.0, sigma));
  }

  /// Derives an independent child generator; used to give each node / task
  /// its own stream so that adding nodes does not perturb existing streams.
  Rng Fork() { return Rng(NextUint64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  uint64_t state_;
};

}  // namespace hiway

#endif  // HIWAY_COMMON_RANDOM_H_
