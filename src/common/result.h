// Result<T>: value-or-Status, the companion to status.h.
//
// A Result<T> holds either a T or a non-OK Status. Accessing the value of a
// failed Result aborts, so callers are expected to check ok() (or use the
// HIWAY_ASSIGN_OR_RETURN macro).

#ifndef HIWAY_COMMON_RESULT_H_
#define HIWAY_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace hiway {

template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a (non-OK) Status makes
  /// `return Status::NotFound(...);` work.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // A Result constructed from a Status must carry an error; an OK
      // status without a value is a programming bug.
      status_ = Status::RuntimeError("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return value_.has_value() ? kOk : status_;
  }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result is an error.
  T value_or(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!value_.has_value()) {
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

/// HIWAY_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>); on
/// error returns the Status from the enclosing function, otherwise assigns
/// the value to `lhs` (which may be a declaration).
#define HIWAY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define HIWAY_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define HIWAY_ASSIGN_OR_RETURN_NAME(a, b) HIWAY_ASSIGN_OR_RETURN_CONCAT(a, b)

#define HIWAY_ASSIGN_OR_RETURN(lhs, expr)                                 \
  HIWAY_ASSIGN_OR_RETURN_IMPL(                                            \
      HIWAY_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace hiway

#endif  // HIWAY_COMMON_RESULT_H_
