// Shared retry/backoff/blacklist policy for failure handling. One
// struct covers both granularities of the failure model (see
// docs/failure-model.md): task-attempt retries inside a HiWayAm and
// AM-attempt retries inside the WorkflowService failover loop.
//
// Exemptions (docs/failure-model.md has the full table): losses that are
// not the task's or the node's fault bypass parts of this policy —
// node-loss (kNodeLost) failures consume an attempt but never blacklist
// the node, transient I/O errors (Unavailable) never blacklist, and RM
// preemption (kPreempted) consumes NO attempt and blacklists nothing:
// the task simply re-queues.

#ifndef HIWAY_COMMON_RETRY_POLICY_H_
#define HIWAY_COMMON_RETRY_POLICY_H_

#include <algorithm>

namespace hiway {

struct RetryPolicy {
  /// Total attempts allowed (first try + retries).
  int max_attempts = 3;
  /// Delay before the second attempt; 0 retries immediately.
  double backoff_base_s = 0.0;
  /// Multiplier applied per further attempt (exponential backoff).
  double backoff_factor = 2.0;
  /// Backoff ceiling.
  double backoff_max_s = 60.0;
  /// Failures attributed to one node before it is blacklisted for the
  /// retried work. Node-loss failures never count (the node is gone and
  /// the RM stops placing there anyway).
  int blacklist_after = 1;

  /// True when `attempts` used up the budget (no further retry).
  bool Exhausted(int attempts) const { return attempts >= max_attempts; }

  /// Delay to wait before launching attempt number `next_attempt`
  /// (1-based; the first attempt never waits).
  double BackoffBefore(int next_attempt) const {
    if (next_attempt <= 1 || backoff_base_s <= 0.0) return 0.0;
    double delay = backoff_base_s;
    for (int i = 2; i < next_attempt; ++i) delay *= backoff_factor;
    return std::min(delay, backoff_max_s);
  }

  /// True once a node accumulated enough failures to be avoided.
  bool ShouldBlacklist(int node_failures) const {
    return blacklist_after > 0 && node_failures >= blacklist_after;
  }
};

}  // namespace hiway

#endif  // HIWAY_COMMON_RETRY_POLICY_H_
