#include "src/common/status.h"

namespace hiway {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kRuntimeError:
      return "RuntimeError";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

}  // namespace hiway
