// Status: the error-reporting vocabulary used throughout hiway.
//
// Follows the Arrow/RocksDB idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing. Statuses are cheap to
// copy in the OK case (no allocation) and carry a code plus message
// otherwise.

#ifndef HIWAY_COMMON_STATUS_H_
#define HIWAY_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace hiway {

/// Machine-comparable failure categories. Kept deliberately small; the
/// message carries the specifics.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kIoError,
  kParseError,
  kRuntimeError,
  /// Transient failure (e.g. a flaky DFS read): retrying the same
  /// operation may succeed; the resource itself is not at fault.
  kUnavailable,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status RuntimeError(std::string msg) {
    return Status(StatusCode::kRuntimeError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  Status(StatusCode code, std::string msg) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(msg)});
    }
  }

  bool ok() const { return rep_ == nullptr; }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsRuntimeError() const { return code() == StatusCode::kRuntimeError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context + ": "` prepended to the
  /// message. No-op on OK statuses.
  Status WithContext(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Null for OK. shared_ptr keeps copies cheap; statuses are immutable.
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function.
#define HIWAY_RETURN_IF_ERROR(expr)          \
  do {                                       \
    ::hiway::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace hiway

#endif  // HIWAY_COMMON_STATUS_H_
