#include "src/common/strings.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hiway {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  const char* ws = " \t\r\n\f\v";
  size_t begin = s.find_first_not_of(ws);
  if (begin == std::string_view::npos) return std::string_view();
  size_t end = s.find_last_not_of(ws);
  return s.substr(begin, end - begin + 1);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(StrTrim(s));
  if (buf.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("not an integer: " + buf);
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(StrTrim(s));
  if (buf.empty()) return Status::ParseError("empty number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::ParseError("number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("not a number: " + buf);
  }
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", bytes, units[unit]);
}

std::string HumanDuration(double seconds) {
  int64_t total = static_cast<int64_t>(seconds + 0.5);
  int64_t h = total / 3600;
  int64_t m = (total % 3600) / 60;
  int64_t s = total % 60;
  if (h > 0) {
    return StrFormat("%lld:%02lld:%02lld", static_cast<long long>(h),
                     static_cast<long long>(m), static_cast<long long>(s));
  }
  return StrFormat("%lld:%02lld", static_cast<long long>(m),
                   static_cast<long long>(s));
}

}  // namespace hiway
