// Small string helpers shared across modules. Nothing clever: split, join,
// trim, predicates, and printf-style formatting into std::string.

#ifndef HIWAY_COMMON_STRINGS_H_
#define HIWAY_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace hiway {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses a base-10 signed integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// printf into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// 64-bit FNV-1a hash. Stable across processes and platforms, so content
/// fingerprints and cache keys persisted by one service instance resolve
/// identically after a restart. `seed` chains multi-field hashes.
inline uint64_t Fnv1a64(std::string_view s,
                        uint64_t seed = 14695981039346656037ull) {
  uint64_t h = seed;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Formats a byte count with binary units, e.g. "1.07 GB".
std::string HumanBytes(double bytes);

/// Formats a duration in seconds as "h:mm:ss" (or "m:ss" under an hour).
std::string HumanDuration(double seconds);

}  // namespace hiway

#endif  // HIWAY_COMMON_STRINGS_H_
