#include "src/common/xml.h"

#include <cctype>
#include <cstdint>
#include <cstdlib>

#include "src/common/strings.h"

namespace hiway {

std::string XmlElement::Attr(std::string_view key, std::string def) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return v;
  }
  return def;
}

bool XmlElement::HasAttr(std::string_view key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return true;
  }
  return false;
}

const XmlElement* XmlElement::FirstChild(std::string_view name) const {
  for (const auto& c : children) {
    if (c->name == name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::Children(
    std::string_view name) const {
  std::vector<const XmlElement*> out;
  for (const auto& c : children) {
    if (c->name == name) out.push_back(c.get());
  }
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

void SerializeTo(const XmlElement& e, std::string* out) {
  *out += '<';
  *out += e.name;
  for (const auto& [k, v] : e.attributes) {
    *out += ' ';
    *out += k;
    *out += "=\"";
    *out += XmlEscape(v);
    *out += '"';
  }
  if (e.text.empty() && e.children.empty()) {
    *out += "/>";
    return;
  }
  *out += '>';
  *out += XmlEscape(e.text);
  for (const auto& c : e.children) SerializeTo(*c, out);
  *out += "</";
  *out += e.name;
  *out += '>';
}

}  // namespace

std::string XmlSerialize(const XmlElement& root) {
  std::string out;
  SerializeTo(root, &out);
  return out;
}

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  Result<std::unique_ptr<XmlElement>> ParseDocument() {
    if (text_.size() > kXmlMaxInputBytes) {
      return Status::ParseError(
          StrFormat("XML input of %zu bytes exceeds the %zu-byte limit "
                    "(kXmlMaxInputBytes)",
                    text_.size(), kXmlMaxInputBytes));
    }
    HIWAY_RETURN_IF_ERROR(SkipProlog());
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root, ParseElement(0));
    SkipMisc();
    if (pos_ != text_.size()) {
      return Error("trailing content after root element");
    }
    return root;
  }

 private:
  Status Error(const std::string& msg) const {
    int line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status::ParseError(StrFormat("XML error at line %d (offset %zu): %s",
                                        line, pos_, msg.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool LookingAt(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  Status SkipUntil(std::string_view terminator) {
    size_t p = text_.find(terminator, pos_);
    if (p == std::string_view::npos) {
      return Error(std::string("unterminated construct, expected ") +
                   std::string(terminator));
    }
    pos_ = p + terminator.size();
    return Status::OK();
  }

  /// Skips the XML declaration, comments, PIs, and a DOCTYPE if present.
  Status SkipProlog() {
    while (true) {
      SkipWs();
      if (LookingAt("<?")) {
        HIWAY_RETURN_IF_ERROR(SkipUntil("?>"));
      } else if (LookingAt("<!--")) {
        HIWAY_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (LookingAt("<!DOCTYPE")) {
        HIWAY_RETURN_IF_ERROR(SkipUntil(">"));
      } else {
        return Status::OK();
      }
    }
  }

  void SkipMisc() {
    while (true) {
      SkipWs();
      if (LookingAt("<!--")) {
        if (!SkipUntil("-->").ok()) return;
      } else if (LookingAt("<?")) {
        if (!SkipUntil("?>").ok()) return;
      } else {
        return;
      }
    }
  }

  Result<std::string> ParseName() {
    if (pos_ >= text_.size() || !IsNameStart(text_[pos_])) {
      return Error("name expected");
    }
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "amp") {
        out += '&';
      } else if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "quot") {
        out += '"';
      } else if (ent == "apos") {
        out += '\'';
      } else if (!ent.empty() && ent[0] == '#') {
        long cp;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          cp = std::strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          cp = std::strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        if (cp <= 0 || cp > 0x10FFFF) return Error("invalid character ref");
        // Encode as UTF-8.
        uint32_t u = static_cast<uint32_t>(cp);
        if (u < 0x80) {
          out += static_cast<char>(u);
        } else if (u < 0x800) {
          out += static_cast<char>(0xC0 | (u >> 6));
          out += static_cast<char>(0x80 | (u & 0x3F));
        } else if (u < 0x10000) {
          out += static_cast<char>(0xE0 | (u >> 12));
          out += static_cast<char>(0x80 | ((u >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (u & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (u >> 18));
          out += static_cast<char>(0x80 | ((u >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((u >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (u & 0x3F));
        }
      } else {
        return Error("unknown entity &" + std::string(ent) + ";");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<std::unique_ptr<XmlElement>> ParseElement(int depth) {
    if (depth > kXmlMaxDepth) {
      return Error(StrFormat("nesting depth %d exceeds the limit of %d (kXmlMaxDepth)",
                             depth, kXmlMaxDepth));
    }
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Error("'<' expected");
    }
    ++pos_;
    auto elem = std::make_unique<XmlElement>();
    HIWAY_ASSIGN_OR_RETURN(elem->name, ParseName());
    // Attributes.
    while (true) {
      SkipWs();
      if (pos_ >= text_.size()) return Error("unterminated start tag");
      if (LookingAt("/>")) {
        pos_ += 2;
        return elem;
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      HIWAY_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Error("'=' expected after attribute name");
      }
      ++pos_;
      SkipWs();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Error("quoted attribute value expected");
      }
      char quote = text_[pos_++];
      size_t start = pos_;
      size_t end = text_.find(quote, start);
      if (end == std::string_view::npos) {
        return Error("unterminated attribute value");
      }
      pos_ = end + 1;
      HIWAY_ASSIGN_OR_RETURN(
          std::string value, DecodeEntities(text_.substr(start, end - start)));
      elem->attributes.emplace_back(std::move(attr_name), std::move(value));
    }
    // Content.
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated element <" + elem->name + ">");
      }
      if (LookingAt("</")) {
        pos_ += 2;
        HIWAY_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        if (close_name != elem->name) {
          return Error("mismatched closing tag </" + close_name +
                       "> for <" + elem->name + ">");
        }
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Error("'>' expected in closing tag");
        }
        ++pos_;
        return elem;
      }
      if (LookingAt("<!--")) {
        HIWAY_RETURN_IF_ERROR(SkipUntil("-->"));
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        size_t start = pos_ + 9;
        size_t end = text_.find("]]>", start);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        elem->text.append(text_.substr(start, end - start));
        pos_ = end + 3;
        continue;
      }
      if (LookingAt("<?")) {
        HIWAY_RETURN_IF_ERROR(SkipUntil("?>"));
        continue;
      }
      if (text_[pos_] == '<') {
        HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> child,
                               ParseElement(depth + 1));
        elem->children.push_back(std::move(child));
        continue;
      }
      // Character data up to the next markup.
      size_t start = pos_;
      size_t end = text_.find('<', start);
      if (end == std::string_view::npos) end = text_.size();
      HIWAY_ASSIGN_OR_RETURN(
          std::string data, DecodeEntities(text_.substr(start, end - start)));
      elem->text += data;
      pos_ = end;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view text) {
  XmlParser parser(text);
  return parser.ParseDocument();
}

}  // namespace hiway
