// A minimal, non-validating XML parser sufficient for Pegasus DAX files.
//
// Supports: element trees with attributes, character data, comments,
// processing instructions / XML declarations (skipped), CDATA sections, and
// the five predefined entities. Namespaces are not interpreted; prefixed
// names are kept verbatim. DTDs are not supported.

#ifndef HIWAY_COMMON_XML_H_
#define HIWAY_COMMON_XML_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"

namespace hiway {

/// One XML element. Children are owned; text content is the concatenation
/// of all character data directly inside the element.
struct XmlElement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;

  /// Attribute lookup; returns `def` when absent.
  std::string Attr(std::string_view key, std::string def = "") const;
  bool HasAttr(std::string_view key) const;

  /// First direct child with the given element name, or nullptr.
  const XmlElement* FirstChild(std::string_view name) const;

  /// All direct children with the given element name.
  std::vector<const XmlElement*> Children(std::string_view name) const;
};

/// Parses a complete XML document and returns its root element.
/// Inputs larger than kXmlMaxInputBytes or nested deeper than kXmlMaxDepth
/// are rejected with a ParseError naming the limit and offending offset.
Result<std::unique_ptr<XmlElement>> ParseXml(std::string_view text);

/// Hard limits enforced by ParseXml.
inline constexpr size_t kXmlMaxInputBytes = 64u << 20;
inline constexpr int kXmlMaxDepth = 256;

/// Serialises an element tree back to markup. Canonical form: attributes in
/// stored order, element text (if any) before child elements. Feeding the
/// output back through ParseXml yields an equal tree (round-trip fixpoint).
std::string XmlSerialize(const XmlElement& root);

/// Escapes text for inclusion in XML character data / attribute values.
std::string XmlEscape(std::string_view s);

}  // namespace hiway

#endif  // HIWAY_COMMON_XML_H_
