#include "src/core/client.h"

#include "src/lang/cuneiform.h"
#include "src/lang/cwl_source.h"
#include "src/lang/dax_source.h"
#include "src/lang/galaxy_source.h"
#include "src/lang/trace_source.h"

namespace hiway {

Result<std::unique_ptr<WorkflowSource>> HiWayClient::MakeSource(
    const StagedWorkflow& staged) const {
  if (staged.language == "cuneiform") {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<CuneiformSource> source,
                           CuneiformSource::Parse(staged.document));
    return std::unique_ptr<WorkflowSource>(std::move(source));
  }
  if (staged.language == "dax") {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<DaxSource> source,
                           DaxSource::Parse(staged.document));
    return std::unique_ptr<WorkflowSource>(std::move(source));
  }
  if (staged.language == "galaxy") {
    HIWAY_ASSIGN_OR_RETURN(
        std::unique_ptr<GalaxySource> source,
        GalaxySource::Parse(staged.document, staged.galaxy_inputs));
    return std::unique_ptr<WorkflowSource>(std::move(source));
  }
  if (staged.language == "trace") {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<TraceSource> source,
                           TraceSource::Parse(staged.document));
    return std::unique_ptr<WorkflowSource>(std::move(source));
  }
  if (staged.language == "cwl") {
    HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<CwlSource> source,
                           CwlSource::Parse(staged.document));
    return std::unique_ptr<WorkflowSource>(std::move(source));
  }
  return Status::InvalidArgument("unknown workflow language: " +
                                 staged.language);
}

Result<WorkflowReport> HiWayClient::Run(const std::string& workflow_name,
                                        const std::string& policy,
                                        const HiWayOptions& options) {
  auto it = deployment_->workflows.find(workflow_name);
  if (it == deployment_->workflows.end()) {
    return Status::NotFound("no staged workflow named '" + workflow_name +
                            "'; converge its recipe first");
  }
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                         MakeSource(it->second));
  return RunSource(source.get(), policy, options);
}

Result<WorkflowReport> HiWayClient::RunSource(WorkflowSource* source,
                                              const std::string& policy,
                                              const HiWayOptions& options) {
  HIWAY_ASSIGN_OR_RETURN(
      std::unique_ptr<WorkflowScheduler> scheduler,
      MakeScheduler(policy, deployment_->dfs.get(), &deployment_->estimator,
                    deployment_->staging_cache.get()));
  HiWayAm am(deployment_->cluster.get(), deployment_->rm.get(),
             deployment_->dfs.get(), &deployment_->tools,
             deployment_->provenance.get(), &deployment_->estimator, options);
  am.SetTracer(&deployment_->tracer);
  if (deployment_->result_cache != nullptr) {
    // Single-shot client runs share the deployment's default namespace.
    am.SetResultCache(deployment_->result_cache.get(), "default");
  }
  if (deployment_->staging_cache != nullptr) {
    am.SetStagingCache(deployment_->staging_cache.get());
  }
  if (deployment_->gc != nullptr) {
    am.SetGc(deployment_->gc.get());
  }
  HIWAY_RETURN_IF_ERROR(am.Submit(source, scheduler.get()));
  return am.RunToCompletion();
}

}  // namespace hiway
