// Hi-WAY's "light-weight client program" (Sec. 3.1): takes a staged
// workflow (any supported language), spawns a dedicated AM instance, and
// runs it to completion under a chosen scheduling policy. Shared by the
// examples, the benchmark harnesses, and the integration tests.

#ifndef HIWAY_CORE_CLIENT_H_
#define HIWAY_CORE_CLIENT_H_

#include <memory>
#include <string>

#include "src/core/hiway_am.h"
#include "src/infra/karamel.h"

namespace hiway {

class HiWayClient {
 public:
  /// Does not take ownership of the deployment.
  explicit HiWayClient(Deployment* deployment) : deployment_(deployment) {}

  /// Instantiates a WorkflowSource for a staged workflow by language
  /// ("cuneiform" | "dax" | "galaxy" | "trace").
  Result<std::unique_ptr<WorkflowSource>> MakeSource(
      const StagedWorkflow& staged) const;

  /// Submits the named staged workflow under the given scheduling policy
  /// ("fcfs" | "data-aware" | "round-robin" | "heft") and drives the
  /// engine until it finishes.
  Result<WorkflowReport> Run(const std::string& workflow_name,
                             const std::string& policy,
                             const HiWayOptions& options = HiWayOptions());

  /// Same, for an externally constructed source.
  Result<WorkflowReport> RunSource(WorkflowSource* source,
                                   const std::string& policy,
                                   const HiWayOptions& options =
                                       HiWayOptions());

 private:
  Deployment* deployment_;
};

}  // namespace hiway

#endif  // HIWAY_CORE_CLIENT_H_
