#include "src/core/hiway_am.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/obs/tracer.h"

namespace hiway {

namespace {
/// AM-assigned task ids start high so they never collide with ids chosen
/// by language front-ends (which count from 1).
constexpr TaskId kAmTaskIdBase = 1000000;
}  // namespace

HiWayAm::HiWayAm(Cluster* cluster, ResourceManager* rm, Dfs* dfs,
                 ToolRegistry* tools, ProvenanceManager* provenance,
                 RuntimeEstimator* estimator, HiWayOptions options)
    : cluster_(cluster),
      rm_(rm),
      dfs_(dfs),
      tools_(tools),
      provenance_(provenance),
      estimator_(estimator),
      options_(options),
      next_task_id_(kAmTaskIdBase) {
  storage_ = std::make_unique<DfsStorageAdapter>(dfs_);
  executor_ = std::make_unique<TaskExecutor>(cluster_, tools_, storage_.get(),
                                             options_.seed);
}

void HiWayAm::SetStagingCache(StagingCache* staging) {
  storage_->SetStagingCache(staging);
}

HiWayAm::~HiWayAm() {
  if (heartbeat_event_ != 0) {
    cluster_->engine()->Cancel(heartbeat_event_);
    heartbeat_event_ = 0;
  }
  if (submitted_ && !finished_ && !crashed_) {
    rm_->UnregisterApplication(app_);
  }
}

void HiWayAm::Crash() {
  if (finished_ || crashed_) return;
  crashed_ = true;
  if (heartbeat_event_ != 0) {
    cluster_->engine()->Cancel(heartbeat_event_);
    heartbeat_event_ = 0;
  }
  // A dead attempt's shard is sealed: in-flight executor callbacks that
  // race past the crash are dropped (and counted) instead of polluting
  // the crash-prefix trace that the next attempt replays.
  if (shard_ != nullptr) shard_->Seal();
  // Freeze the GC scope: its pins survive until a replacement attempt has
  // re-registered every interest and the service dissolves this scope.
  if (gc_ != nullptr && submitted_) gc_->MarkDormant(report_.run_id);
}

void HiWayAm::HeartbeatLoop() {
  if (finished_ || crashed_ || options_.am_heartbeat_s <= 0.0) return;
  rm_->AmHeartbeat(app_);
  heartbeat_event_ = cluster_->engine()->ScheduleAfter(
      options_.am_heartbeat_s, [this] {
        heartbeat_event_ = 0;
        HeartbeatLoop();
      });
}

void HiWayAm::SetRecoveryTrace(const std::vector<ProvenanceEvent>& events) {
  // Reassemble completed tasks from the prior attempts' records. Events
  // of one task are keyed by (run, task id) — several runs may appear
  // when earlier recoveries re-executed work — and entries are memoised
  // in recorded completion order, so duplicate signatures (identical
  // invocations, e.g. across iterations) replay in the order they
  // originally finished.
  struct Partial {
    MemoEntry entry;
    std::string signature;
    bool succeeded = false;
    int end_order = -1;
  };
  std::map<std::pair<std::string, TaskId>, Partial> partials;
  int order = 0;
  for (const ProvenanceEvent& ev : events) {
    auto key = std::make_pair(ev.run_id, ev.task_id);
    switch (ev.type) {
      case ProvenanceEventType::kTaskStart:
        partials[key].signature = ev.signature;
        break;
      case ProvenanceEventType::kTaskEnd:
        if (ev.success) {
          Partial& p = partials[key];
          p.succeeded = true;
          p.end_order = order++;
          p.entry.node = ev.node;
          p.entry.duration = ev.duration;
          p.entry.stdout_value = ev.stdout_value;
        }
        break;
      case ProvenanceEventType::kFileStageOut:
        partials[key].entry.outputs.emplace_back(ev.file_path,
                                                 ev.size_bytes);
        break;
      default:
        break;
    }
  }
  std::vector<const Partial*> done;
  for (const auto& [key, p] : partials) {
    if (p.succeeded && !p.signature.empty()) done.push_back(&p);
  }
  std::sort(done.begin(), done.end(),
            [](const Partial* a, const Partial* b) {
              return a->end_order < b->end_order;
            });
  for (const Partial* p : done) {
    memo_[p->signature].push_back(p->entry);
  }
}

void HiWayAm::ApplyContainerDefaults(TaskSpec* spec) const {
  if (spec->vcores <= 0) spec->vcores = options_.container_vcores;
  if (spec->memory_mb <= 0.0) spec->memory_mb = options_.container_memory_mb;
  if (options_.tailor_containers) {
    // Sec. 5: containers "custom-tailored to the tasks that are to be
    // executed" — cap the container at the tool's useful thread count so
    // single-threaded stages stop reserving whole nodes.
    auto profile = tools_->Find(spec->ToolName());
    if (profile.ok()) {
      int useful = std::max(1, (*profile)->max_threads);
      spec->vcores = std::min(spec->vcores, useful);
      // Scale memory with the core share, floored at 512 MB.
      double per_core =
          options_.container_memory_mb /
          std::max(options_.container_vcores, 1);
      spec->memory_mb =
          std::max(512.0, per_core * static_cast<double>(spec->vcores));
    }
  }
}

Status HiWayAm::Submit(WorkflowSource* source, WorkflowScheduler* scheduler) {
  if (submitted_) {
    return Status::FailedPrecondition("AM already has a workflow");
  }
  if (scheduler->IsStatic() && !source->IsStatic()) {
    // The paper: static policies "can not be used in conjunction with
    // workflow languages that allow iterative workflows" (Sec. 3.4).
    return Status::InvalidArgument(
        StrFormat("static scheduling policy '%s' is incompatible with "
                  "iterative workflow language '%s'",
                  scheduler->name().c_str(), source->name().c_str()));
  }
  source_ = source;
  scheduler_ = scheduler;

  // The YARN application name carries the AM attempt id so failover
  // attempts of one submission stay distinguishable in RM accounting.
  std::string app_name = "hiway:" + source->name();
  if (options_.am_attempt > 1) {
    app_name += StrFormat("#%d", options_.am_attempt);
  }
  HIWAY_ASSIGN_OR_RETURN(
      app_, rm_->RegisterApplication(app_name, this,
                                     options_.am_vcores, options_.am_memory_mb,
                                     options_.am_node, options_.rm_queue));
  submitted_ = true;
  report_ = WorkflowReport();
  report_.workflow_name = source->name();
  report_.am_attempt = options_.am_attempt;
  report_.started_at = cluster_->engine()->Now();
  report_.run_id =
      provenance_->BeginWorkflow(source->name(), report_.started_at);
  // The AM appends to its own shard for its whole lifetime — recording
  // never takes the manager's registry lock (no cross-AM contention).
  shard_ = provenance_->shard(report_.run_id);
  if (result_cache_ != nullptr) {
    // Bind this run to its tenant namespace: entries the run publishes
    // are only ever served back to workflows of the same tenant.
    result_cache_->BindRun(report_.run_id, cache_tenant_);
  }
  if (tracer_ != nullptr) {
    tracer_->Begin(SpanCategory::kWorkflow, "workflow", app_);
  }
  HeartbeatLoop();

  auto initial = source_->Init();
  if (!initial.ok()) {
    FinishWorkflow(initial.status().WithContext("workflow parsing failed"));
    return initial.status();
  }
  if (gc_ != nullptr) {
    // Iterative sources may discover consumers of any path later, so
    // their scope only collects when it ends.
    gc_->BeginScope(report_.run_id, source_->IsStatic());
    gc_->SetTargets(report_.run_id, source_->Targets());
  }

  // Assign ids and container defaults before static scheduling sees them.
  std::vector<TaskSpec> tasks = std::move(initial).value();
  for (TaskSpec& t : tasks) {
    if (t.id == kInvalidTask) t.id = next_task_id_++;
    ApplyContainerDefaults(&t);
  }

  if (scheduler_->IsStatic()) {
    // Derive data dependencies from produced/consumed files.
    std::map<std::string, TaskId> producer;
    for (const TaskSpec& t : tasks) {
      for (const OutputSpec& out : t.outputs) {
        if (!out.is_value) producer[out.path] = t.id;
      }
    }
    TaskDependencies deps;
    for (const TaskSpec& t : tasks) {
      auto& parents = deps[t.id];
      for (const std::string& in : t.input_files) {
        auto it = producer.find(in);
        if (it != producer.end() && it->second != t.id) {
          parents.push_back(it->second);
        }
      }
    }
    // Static placements may only target nodes that can actually host task
    // containers (dedicated master VMs or otherwise exhausted nodes are
    // excluded).
    std::vector<NodeId> schedulable;
    for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
      if (rm_->IsNodeAlive(n) &&
          rm_->free_vcores(n) >= options_.container_vcores &&
          rm_->free_memory_mb(n) >= options_.container_memory_mb) {
        schedulable.push_back(n);
      }
    }
    Status st = scheduler_->BuildStaticSchedule(tasks, deps, schedulable);
    if (!st.ok()) {
      FinishWorkflow(st.WithContext("static scheduling failed"));
      return st;
    }
  }

  Status st = AdmitTasks(std::move(tasks));
  if (st.ok()) st = DrainMemoised();
  if (!st.ok()) {
    FinishWorkflow(st);
    return st;
  }
  MaybeFinish();  // degenerate workflows with zero tasks
  return Status::OK();
}

Status HiWayAm::AdmitTasks(std::vector<TaskSpec> tasks) {
  for (TaskSpec& spec : tasks) {
    if (spec.id == kInvalidTask) spec.id = next_task_id_++;
    ApplyContainerDefaults(&spec);
    if (tasks_.find(spec.id) != tasks_.end()) {
      return Status::InvalidArgument(
          StrFormat("duplicate task id %lld emitted by source",
                    static_cast<long long>(spec.id)));
    }
    TaskEntry entry;
    entry.spec = std::move(spec);
    TaskId id = entry.spec.id;
    auto [it, inserted] = tasks_.emplace(id, std::move(entry));
    TaskEntry* e = &it->second;
    // Pin inputs before memoisation: a replayed completion releases its
    // pins through the same OnConsumerDone path as a real one, so the
    // refcounts never skip a consumer.
    if (gc_ != nullptr) {
      gc_->RegisterConsumer(report_.run_id, id, e->spec.input_files);
    }
    if (TryMemoise(e)) continue;
    for (const std::string& path : e->spec.input_files) {
      if (!dfs_->Exists(path)) {
        e->missing_inputs.insert(path);
        waiting_on_file_[path].insert(id);
      } else if (tracer_ != nullptr) {
        // Input already present: if one of our tasks produced it, the
        // dependency edge still matters for the critical path.
        auto prod = file_producer_.find(path);
        if (prod != file_producer_.end() && prod->second != id) {
          tracer_->Instant(SpanCategory::kTask, "task_dep", app_,
                           /*container=*/-1, id, /*node=*/-1, /*value=*/0.0,
                           prod->second);
        }
      }
    }
    if (e->missing_inputs.empty()) {
      MarkReadyOrServe(e);
    } else {
      e->state = TaskState::kWaiting;
      ++waiting_;
    }
  }
  return Status::OK();
}

bool HiWayAm::TryMemoise(TaskEntry* entry) {
  auto it = memo_.find(entry->spec.signature);
  if (it == memo_.end() || it->second.empty()) return false;
  // Every file output the spec promises must still exist in DFS — a
  // node kill may have taken replicas with it; then the task simply
  // re-executes.
  std::vector<std::pair<std::string, int64_t>> produced;
  for (const OutputSpec& out : entry->spec.outputs) {
    if (out.is_value) continue;
    auto info = dfs_->Stat(out.path);
    if (!info.ok()) return false;
    produced.emplace_back(out.path, info->size_bytes);
  }
  MemoEntry memo = std::move(it->second.front());
  it->second.pop_front();
  entry->state = TaskState::kDone;
  ++report_.tasks_completed;
  ++report_.tasks_memoised;
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kTask, "task_memoised", app_,
                     /*container=*/-1, entry->spec.id, memo.node,
                     memo.duration);
  }
  double now = cluster_->engine()->Now();
  TaskResult result;
  result.id = entry->spec.id;
  result.signature = entry->spec.signature;
  result.status = Status::OK();
  result.node = memo.node;
  result.started_at = now;
  result.finished_at = now;  // memoisation is instantaneous
  result.stdout_value = std::move(memo.stdout_value);
  result.produced_files = std::move(produced);
  // Not re-recorded in provenance and not fed to the estimator: the
  // original attempt's records already cover this completion.
  memo_completions_.push_back(std::move(result));
  return true;
}

Status HiWayAm::DrainMemoised() {
  if (draining_memo_) return Status::OK();  // outer drain picks it up
  draining_memo_ = true;
  while (!memo_completions_.empty()) {
    TaskResult result = std::move(memo_completions_.front());
    memo_completions_.pop_front();
    RegisterProducedFiles(result);
    // Memoised and cache-served completions release their input pins like
    // executed ones.
    if (gc_ != nullptr) gc_->OnConsumerDone(report_.run_id, result.id);
    auto discovered = source_->OnTaskCompleted(result);
    if (!discovered.ok()) {
      draining_memo_ = false;
      return discovered.status().WithContext("workflow evaluation failed");
    }
    if (!discovered->empty()) {
      if (scheduler_->IsStatic()) {
        draining_memo_ = false;
        return Status::FailedPrecondition(
            "a statically scheduled source discovered new tasks at runtime");
      }
      Status st = AdmitTasks(std::move(discovered).value());
      if (!st.ok()) {
        draining_memo_ = false;
        return st;
      }
    }
  }
  draining_memo_ = false;
  return Status::OK();
}

void HiWayAm::MarkReadyOrServe(TaskEntry* entry) {
  if (TryCacheHit(entry)) return;
  MarkReady(entry);
}

bool HiWayAm::TryCacheHit(TaskEntry* entry) {
  if (result_cache_ == nullptr) return false;
  auto lookup = result_cache_->Lookup(entry->spec, cache_tenant_);
  if (!lookup.ok()) {
    if (lookup.status().IsIoError()) {
      // Spot-check verification caught cached outputs that no longer
      // match DFS; the cache evicted the entry, we recompute.
      HIWAY_LOG_WARN << "cache verification failed for task "
                     << entry->spec.id << " (" << entry->spec.signature
                     << "): " << lookup.status().ToString()
                     << "; re-executing";
      if (tracer_ != nullptr) {
        tracer_->Instant(SpanCategory::kCache, "cache_verify_mismatch", app_,
                         /*container=*/-1, entry->spec.id);
      }
    }
    return false;
  }
  CacheHit hit = std::move(lookup).value();
  entry->state = TaskState::kDone;
  ++report_.tasks_completed;
  ++report_.tasks_cached;
  int64_t output_bytes = 0;
  std::vector<std::pair<std::string, int64_t>> produced;
  for (const CachedOutput& out : hit.outputs) {
    if (out.is_value) continue;
    produced.emplace_back(out.path, out.size_bytes);
    output_bytes += out.size_bytes;
  }
  double now = cluster_->engine()->Now();
  if (tracer_ != nullptr) {
    // value = compute seconds saved, aux = output bytes reused.
    tracer_->Instant(SpanCategory::kCache, "cache_hit", app_,
                     /*container=*/-1, entry->spec.id, hit.node, hit.duration,
                     output_bytes);
  }
  if (shard_ != nullptr) {
    // Recorded as its own event type: replay must not mistake a reused
    // result for an execution, and the analyzer attributes saved time.
    shard_->RecordTaskCacheHit(entry->spec.id, entry->spec.signature,
                               hit.run_id, hit.duration, now);
    if (tracer_ != nullptr) {
      tracer_->Instant(SpanCategory::kProvenance, "prov_append", app_,
                       /*container=*/-1, entry->spec.id);
    }
  }
  TaskResult result;
  result.id = entry->spec.id;
  result.signature = entry->spec.signature;
  result.status = Status::OK();
  result.node = hit.node;
  result.started_at = now;
  result.finished_at = now;  // a cache hit is instantaneous
  result.stdout_value = hit.stdout_value;
  result.produced_files = std::move(produced);
  // Delivered through the memo queue (same instant-completion plumbing
  // as recovery memoisation); not fed to the estimator — nothing ran.
  memo_completions_.push_back(std::move(result));
  return true;
}

void HiWayAm::MarkReady(TaskEntry* entry) {
  entry->state = TaskState::kReady;
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kTask, "task_ready", app_,
                     /*container=*/-1, entry->spec.id, /*node=*/-1,
                     /*value=*/0.0, entry->attempts);
  }
  scheduler_->EnqueueReady(entry->spec);
  ContainerRequest request = scheduler_->RequestFor(entry->spec);
  request.blacklist = entry->blacklist;
  request.cookie = entry->spec.id;
  request.priority = options_.container_priority;
  rm_->SubmitRequest(app_, request);
}

void HiWayAm::OnContainerAllocated(const Container& container,
                                   int64_t cookie) {
  if (crashed_) return;  // a dead AM reacts to nothing
  if (finished_) {
    rm_->ReleaseContainer(container.id);
    return;
  }
  ++report_.scheduler_invocations;
  std::optional<TaskId> picked = scheduler_->SelectTask(container.node);
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kScheduler, "am_decision", app_,
                     container.id, picked.value_or(-1), container.node);
  }
  if (!picked.has_value()) {
    // No queued task may run here. For static schedulers that simply
    // means the matching strict request is still pending elsewhere. A
    // dynamic scheduler with queued tasks has *declined* this node:
    // hand the container back and re-request with the declined nodes
    // blacklisted (cumulatively, so the request cannot ping-pong).
    rm_->ReleaseContainer(container.id);
    if (!scheduler_->IsStatic() && scheduler_->QueuedCount() > 0) {
      std::vector<NodeId> blacklist;
      auto chain = decline_chains_.find(cookie);
      if (chain != decline_chains_.end()) {
        blacklist = std::move(chain->second);
        decline_chains_.erase(chain);
      }
      blacklist.push_back(container.node);
      // Keep only the most recently declined half of the cluster so the
      // replacement request always stays satisfiable (a request excluding
      // every worker would never allocate and the engine would stall).
      size_t cap = std::max<size_t>(
          1, static_cast<size_t>(cluster_->num_nodes()) / 2);
      if (blacklist.size() > cap) {
        blacklist.erase(blacklist.begin(),
                        blacklist.end() - static_cast<ptrdiff_t>(cap));
      }
      ContainerRequest request;
      request.vcores = options_.container_vcores;
      request.memory_mb = options_.container_memory_mb;
      request.blacklist = blacklist;
      request.priority = options_.container_priority;
      request.cookie = next_decline_cookie_--;
      decline_chains_[request.cookie] = std::move(blacklist);
      rm_->SubmitRequest(app_, request);
    }
    return;
  }
  decline_chains_.erase(cookie);
  auto it = tasks_.find(*picked);
  HIWAY_CHECK(it != tasks_.end());
  LaunchTask(&it->second, container);
}

void HiWayAm::LaunchTask(TaskEntry* entry, const Container& container) {
  entry->state = TaskState::kRunning;
  entry->container = container.id;
  entry->launched_at = cluster_->engine()->Now();
  ++entry->attempts;
  ++entry->attempt_epoch;
  ++running_;
  ++report_.task_attempts;
  if (shard_ != nullptr) {
    shard_->RecordTaskStart(entry->spec, container.node,
                            cluster_->node(container.node).name,
                            cluster_->engine()->Now());
    if (tracer_ != nullptr) {
      tracer_->Instant(SpanCategory::kProvenance, "prov_append", app_,
                       /*container=*/-1, entry->spec.id);
    }
  }
  TaskId id = entry->spec.id;
  int epoch = entry->attempt_epoch;
  TaskSpec spec = entry->spec;
  NodeId node = container.node;
  int vcores = container.vcores;
  ContainerId cid = container.id;
  if (tracer_ != nullptr) {
    tracer_->Begin(SpanCategory::kTask, "localize", app_, cid, id, node);
  }
  // Container localisation / process start overhead, then execute.
  cluster_->engine()->ScheduleAfter(
      options_.task_launch_overhead_s,
      [this, id, epoch, spec, node, vcores, cid] {
        if (tracer_ != nullptr) {
          tracer_->End(SpanCategory::kTask, "localize", app_, cid, id, node,
                       options_.task_launch_overhead_s);
          tracer_->Begin(SpanCategory::kTask, "execute", app_, cid, id, node);
        }
        executor_->Execute(spec, node, vcores,
                           [this, id, epoch](TaskAttemptOutcome outcome) {
                             OnAttemptDone(id, epoch, std::move(outcome));
                           });
      });
}

void HiWayAm::OnAttemptDone(TaskId id, int epoch, TaskAttemptOutcome outcome) {
  if (crashed_) return;  // the dead AM's executor flows finish unobserved
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return;
  TaskEntry* entry = &it->second;
  if (entry->attempt_epoch != epoch || entry->state != TaskState::kRunning) {
    // A superseded attempt (its container was lost and the task already
    // re-queued); ignore.
    return;
  }
  --running_;
  ContainerId cid = entry->container;
  rm_->ReleaseContainer(entry->container);
  entry->container = kInvalidContainer;

  const TaskResult& result = outcome.result;
  if (tracer_ != nullptr) {
    tracer_->End(SpanCategory::kTask, "execute", app_, cid, id, result.node,
                 result.Makespan());
    for (const auto& t : outcome.transfers) {
      tracer_->Instant(SpanCategory::kTask,
                       t.stage_in ? "stage_in" : "stage_out", app_, cid, id,
                       result.node, t.seconds, t.size_bytes);
    }
  }
  if (shard_ != nullptr) {
    shard_->RecordTaskEnd(result, cluster_->node(result.node).name);
    for (const auto& t : outcome.transfers) {
      if (t.stage_in) {
        shard_->RecordFileStageIn(id, t.path, t.size_bytes, t.seconds,
                                  cluster_->engine()->Now());
      } else {
        shard_->RecordFileStageOut(id, t.path, t.size_bytes, t.seconds,
                                   cluster_->engine()->Now());
      }
    }
    if (tracer_ != nullptr) {
      tracer_->Instant(SpanCategory::kProvenance, "prov_append", app_,
                       /*container=*/-1, id, /*node=*/-1,
                       /*value=*/0.0,
                       static_cast<int64_t>(1 + outcome.transfers.size()));
    }
  }

  if (!result.status.ok()) {
    // Transient I/O errors (Unavailable) are not the node's fault and
    // never count toward blacklisting it.
    if (!result.status.IsUnavailable() &&
        options_.task_retry.ShouldBlacklist(
            ++entry->node_failures[result.node])) {
      entry->blacklist.push_back(result.node);
    }
    HandleAttemptFailure(entry, result.status);
    return;
  }

  entry->state = TaskState::kDone;
  ++report_.tasks_completed;
  estimator_->Observe(result.signature, result.node, result.Makespan());
  if (result_cache_ != nullptr) {
    // Seal only now — after stage-out put every output durably in DFS
    // (Publish independently re-stats them and refuses otherwise). A
    // crashed AM never reaches this point, so a crash window cannot
    // leave a cache entry pointing at unreplicated outputs.
    result_cache_->Publish(entry->spec, result, report_.run_id,
                           cluster_->node(result.node).name);
  }
  RegisterProducedFiles(result);
  // Release input pins only now, on *successful* completion: preempted or
  // drained attempts re-queue with their pins intact.
  if (gc_ != nullptr) gc_->OnConsumerDone(report_.run_id, id);

  auto discovered = source_->OnTaskCompleted(result);
  if (!discovered.ok()) {
    FinishWorkflow(
        discovered.status().WithContext("workflow evaluation failed"));
    return;
  }
  Status st = Status::OK();
  if (!discovered->empty()) {
    if (scheduler_->IsStatic()) {
      FinishWorkflow(Status::FailedPrecondition(
          "a statically scheduled source discovered new tasks at runtime"));
      return;
    }
    st = AdmitTasks(std::move(discovered).value());
  }
  // Drain unconditionally: RegisterProducedFiles above may have served a
  // newly unblocked task straight from the result cache even when the
  // source discovered nothing, and MaybeFinish refuses to finish while
  // memoised completions are undelivered.
  if (st.ok()) st = DrainMemoised();
  if (!st.ok()) {
    FinishWorkflow(st);
    return;
  }
  MaybeFinish();
}

void HiWayAm::HandleAttemptFailure(TaskEntry* entry, const Status& failure) {
  ++report_.failed_attempts;
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kTask, "task_retry", app_,
                     /*container=*/-1, entry->spec.id, /*node=*/-1,
                     /*value=*/0.0, entry->attempts);
  }
  if (options_.task_retry.Exhausted(entry->attempts)) {
    FinishWorkflow(failure.WithContext(StrFormat(
        "task %lld ('%s') failed %d attempts",
        static_cast<long long>(entry->spec.id), entry->spec.signature.c_str(),
        entry->attempts)));
    return;
  }
  // Retry elsewhere (Sec. 3.1: "re-try failed tasks, requesting YARN to
  // allocate the additional containers on different compute nodes"); the
  // caller updated the blacklist, which MarkReady forwards with the
  // fresh container request.
  RetryLater(entry);
}

void HiWayAm::RetryLater(TaskEntry* entry) {
  double delay = options_.task_retry.BackoffBefore(entry->attempts + 1);
  if (delay <= 0.0) {
    MarkReady(entry);
    return;
  }
  entry->state = TaskState::kReady;  // awaiting its delayed re-queue
  TaskId id = entry->spec.id;
  int epoch = entry->attempt_epoch;
  ++pending_retries_;
  cluster_->engine()->ScheduleAfter(delay, [this, id, epoch] {
    --pending_retries_;
    if (finished_ || crashed_) return;
    auto it = tasks_.find(id);
    if (it == tasks_.end() || it->second.attempt_epoch != epoch ||
        it->second.state != TaskState::kReady) {
      return;
    }
    MarkReady(&it->second);
  });
}

void HiWayAm::RegisterProducedFiles(const TaskResult& result) {
  for (const auto& [path, size] : result.produced_files) {
    file_producer_[path] = result.id;
    // The cache (if any) sealed its entry before this point, so a pinned
    // output is already visible to the collector here.
    if (gc_ != nullptr) gc_->RegisterProduced(report_.run_id, path, size);
    auto waiters = waiting_on_file_.find(path);
    if (waiters == waiting_on_file_.end()) continue;
    std::set<TaskId> ids = std::move(waiters->second);
    waiting_on_file_.erase(waiters);
    for (TaskId id : ids) {
      auto it = tasks_.find(id);
      if (it == tasks_.end()) continue;
      TaskEntry* entry = &it->second;
      if (tracer_ != nullptr) {
        // Dependency edge: consumer `id` waited on this producer's file.
        tracer_->Instant(SpanCategory::kTask, "task_dep", app_,
                         /*container=*/-1, id, /*node=*/-1, /*value=*/0.0,
                         result.id);
      }
      entry->missing_inputs.erase(path);
      if (entry->state == TaskState::kWaiting &&
          entry->missing_inputs.empty()) {
        --waiting_;
        // Now that all inputs exist their content ids are final, so the
        // cache key is computable: a downstream task whose upstream was
        // itself a hit can cascade into a hit too.
        MarkReadyOrServe(entry);
      }
    }
  }
}

void HiWayAm::MaybeFinish() {
  if (finished_) return;
  if (running_ > 0 || scheduler_->QueuedCount() > 0 ||
      pending_retries_ > 0 || !memo_completions_.empty()) {
    return;
  }
  if (waiting_ > 0) {
    // Nothing is running or queued, yet tasks still await inputs: those
    // files will never appear.
    std::string missing;
    for (const auto& [id, entry] : tasks_) {
      if (entry.state == TaskState::kWaiting) {
        for (const std::string& path : entry.missing_inputs) {
          if (!missing.empty()) missing += ", ";
          missing += path;
          if (missing.size() > 200) break;
        }
      }
    }
    FinishWorkflow(Status::FailedPrecondition(
        "workflow deadlocked; unresolvable inputs: " + missing));
    return;
  }
  if (!source_->IsDone()) {
    FinishWorkflow(Status::RuntimeError(
        "workflow source reports pending work but no tasks are eligible"));
    return;
  }
  FinishWorkflow(Status::OK());
}

void HiWayAm::FinishWorkflow(Status status) {
  if (finished_) return;
  finished_ = true;
  if (heartbeat_event_ != 0) {
    cluster_->engine()->Cancel(heartbeat_event_);
    heartbeat_event_ = 0;
  }
  report_.status = status;
  report_.finished_at = cluster_->engine()->Now();
  if (gc_ != nullptr && submitted_ && source_ != nullptr) {
    // Targets may only have resolved during execution (iterative
    // control flow); refresh them so the final pass never collects one.
    gc_->SetTargets(report_.run_id, source_->Targets());
    GcScopeReport gc_report = gc_->EndScope(report_.run_id);
    report_.peak_footprint_bytes = gc_report.peak_live_bytes;
    report_.gc_files_collected = gc_report.files_collected;
    report_.gc_bytes_collected = gc_report.bytes_collected;
  }
  if (tracer_ != nullptr) {
    tracer_->End(SpanCategory::kWorkflow, "workflow", app_,
                 /*container=*/-1, /*task=*/-1, /*node=*/-1,
                 report_.Makespan());
  }
  // Seals the shard: a terminal run accepts no further events.
  if (shard_ != nullptr) {
    shard_->RecordWorkflowEnd(report_.finished_at, status.ok());
  }
  if (submitted_) {
    rm_->UnregisterApplication(app_);
  }
  if (finish_listener_) finish_listener_(report_);
}

void HiWayAm::OnContainerLost(const Container& container,
                              ContainerLossReason reason) {
  if (finished_ || crashed_) return;
  for (auto& [id, entry] : tasks_) {
    if (entry.state == TaskState::kRunning &&
        entry.container == container.id) {
      --running_;
      entry.container = kInvalidContainer;
      ++entry.attempt_epoch;  // discard the in-flight outcome
      if (reason == ContainerLossReason::kPreempted) {
        // Scheduler-initiated reclaim, not a fault: restore the attempt
        // budget, blame no node, and re-queue immediately — the RM will
        // re-place the task once the guarantees settle.
        --entry.attempts;
        ++report_.tasks_preempted;
        if (tracer_ != nullptr) {
          tracer_->Instant(SpanCategory::kTask, "task_preempted", app_,
                           container.id, id, container.node);
        }
        MarkReady(&entry);
        return;
      }
      if (reason == ContainerLossReason::kDrained) {
        // Vacated off a draining node — same exemption as preemption:
        // restore the budget, blame no node, requeue immediately (the
        // draining node takes no placements, so the retry lands on the
        // surviving fleet).
        --entry.attempts;
        ++report_.tasks_drained;
        if (tracer_ != nullptr) {
          tracer_->Instant(SpanCategory::kTask, "task_drained", app_,
                           container.id, id, container.node);
        }
        MarkReady(&entry);
        return;
      }
      if (reason != ContainerLossReason::kNodeLost &&
          options_.task_retry.ShouldBlacklist(
              ++entry.node_failures[container.node])) {
        // A dead node is never blacklisted — the RM already stopped
        // placing there, and dead-listing it forever would only shrink
        // the request's candidate set once the node recovers.
        entry.blacklist.push_back(container.node);
      }
      ++report_.failed_attempts;
      if (options_.task_retry.Exhausted(entry.attempts)) {
        FinishWorkflow(Status::RuntimeError(StrFormat(
            "task %lld lost its container too many times",
            static_cast<long long>(id))));
        return;
      }
      RetryLater(&entry);
      return;
    }
  }
}

void HiWayAm::OnNodeDraining(NodeId node, double deadline) {
  if (finished_ || crashed_) return;
  double now = cluster_->engine()->Now();
  // Margin absorbing runtime-estimate noise: a task must be projected to
  // finish comfortably before the node disappears to be worth keeping.
  constexpr double kSafetyMarginS = 5.0;
  // Snapshot the victims first — DrainContainer re-enters
  // OnContainerLost, which mutates tasks_.
  std::vector<ContainerId> vacate;
  std::vector<Container> running = rm_->RunningContainers();
  for (const Container& c : running) {
    if (c.node != node || c.app != app_ || c.is_am) continue;
    const TaskEntry* owner = nullptr;
    for (const auto& [id, entry] : tasks_) {
      if (entry.state == TaskState::kRunning && entry.container == c.id) {
        owner = &entry;
        break;
      }
    }
    if (owner == nullptr) continue;
    double estimate = estimator_ != nullptr
                          ? estimator_->Estimate(owner->spec.signature, node)
                          : 0.0;
    if (estimate <= 0.0 && estimator_ != nullptr) {
      estimate = estimator_->MeanEstimate(owner->spec.signature,
                                          cluster_->num_nodes());
    }
    double projected_finish = owner->launched_at +
                              options_.task_launch_overhead_s + estimate;
    // Requeue only tasks the estimator says CANNOT finish in the window.
    // With no estimate (a signature that has never completed), keeping is
    // the right bet: if the task finishes, all its progress is saved; if
    // it does not, it dies at the deadline — exactly what an unwarned
    // kill would have done anyway, so the warning costs nothing.
    bool vacate_it = estimate > 0.0 &&
                     projected_finish + kSafetyMarginS > deadline;
    if (vacate_it) vacate.push_back(c.id);
  }
  for (ContainerId cid : vacate) {
    if (tracer_ != nullptr) {
      tracer_->Instant(SpanCategory::kMembership, "drain_requeue", app_, cid,
                       /*task=*/-1, node, deadline - now);
    }
    rm_->DrainContainer(cid);
  }
}

Result<WorkflowReport> HiWayAm::RunToCompletion() {
  if (!submitted_) {
    return Status::FailedPrecondition("Submit() a workflow first");
  }
  cluster_->engine()->RunUntilPredicate([this] { return finished_; });
  if (!finished_) {
    return Status::RuntimeError(
        "engine ran out of events before the workflow finished");
  }
  return report_;
}

}  // namespace hiway
