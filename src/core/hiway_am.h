// The Hi-WAY application master: the iterative Workflow Driver (Sec. 3.3)
// plus the glue between the language front-ends, the Workflow Scheduler,
// YARN, HDFS, and the Provenance Manager (Fig. 1 of the paper).
//
// Lifecycle (Fig. 3): parse -> discover tasks -> request containers for
// ready tasks -> on allocation let the scheduler pick a task -> execute ->
// on completion register outputs, possibly discover new tasks -> repeat
// until the source is done. Failed attempts are retried on other nodes.

#ifndef HIWAY_CORE_HIWAY_AM_H_
#define HIWAY_CORE_HIWAY_AM_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cache/result_cache.h"
#include "src/cache/staging_cache.h"
#include "src/common/retry_policy.h"
#include "src/core/provenance.h"
#include "src/core/runtime_estimator.h"
#include "src/core/scheduler.h"
#include "src/core/task_executor.h"
#include "src/gc/intermediate_gc.h"
#include "src/hdfs/dfs.h"
#include "src/lang/workflow.h"
#include "src/tools/tool_registry.h"
#include "src/yarn/yarn.h"

namespace hiway {

struct HiWayOptions {
  /// Default container sizing (the paper: identical containers per run;
  /// a TaskSpec may override).
  int container_vcores = 1;
  double container_memory_mb = 1024.0;
  /// AM container sizing / placement (kInvalidNode = RM chooses).
  int am_vcores = 1;
  double am_memory_mb = 1024.0;
  NodeId am_node = kInvalidNode;
  /// RM scheduler queue this workflow's application is charged to
  /// (multi-tenant service mode; the queue must be configured on the RM).
  std::string rm_queue = "default";
  /// Preemption priority stamped on every task-container request: when
  /// the RM must reclaim capacity for a starved queue it kills
  /// lower-priority containers first (docs/scheduling-model.md). Batch
  /// workflows should run below interactive ones.
  int container_priority = 0;
  /// Task-attempt retry policy (max attempts, backoff, blacklisting) —
  /// shared vocabulary with the service's AM-attempt loop. Defaults:
  /// 3 attempts, immediate retry, blacklist a node after one failure.
  RetryPolicy task_retry;
  /// AM -> RM liveness heartbeat period; <= 0 disables heartbeats (the
  /// RM then never declares this AM dead by timeout).
  double am_heartbeat_s = 1.0;
  /// Which AM attempt of its submission this is (1 = first launch);
  /// informational, stamped into the report and the YARN app name.
  int am_attempt = 1;
  /// Fixed per-task container launch latency (localisation, JVM start).
  double task_launch_overhead_s = 1.0;
  /// Seed for runtime noise / failure injection.
  uint64_t seed = 42;
  /// Custom-tailored containers (the paper's Sec. 5 future work): instead
  /// of identical containers, each task's container is sized to its
  /// tool's useful parallelism (vcores = min(profile max_threads,
  /// container_vcores); single-threaded tools get one core). Avoids
  /// under-utilisation when fat containers run thin tools.
  bool tailor_containers = false;
};

/// Final report of one workflow execution.
struct WorkflowReport {
  Status status;
  std::string workflow_name;
  std::string run_id;
  double started_at = 0.0;
  double finished_at = 0.0;
  int tasks_completed = 0;
  /// Of tasks_completed, how many were memoised from a recovery trace
  /// instead of re-executed (AM failover; 0 outside recovery).
  int tasks_memoised = 0;
  /// Of tasks_completed, how many were served from the cluster-wide
  /// result cache (prior submissions' sealed outputs) without running.
  int tasks_cached = 0;
  int task_attempts = 0;
  int failed_attempts = 0;
  /// Containers lost to RM preemption (scheduler-initiated reclaims).
  /// Unlike failed_attempts these never consume the task retry budget.
  int tasks_preempted = 0;
  /// Containers vacated off draining nodes (spot revocation warnings,
  /// autoscaler decommissions). Same retry-budget exemption as
  /// preemption — the node, not the task, is at fault.
  int tasks_drained = 0;
  /// AM attempt number this report belongs to (1 = first launch).
  int am_attempt = 1;
  /// Scheduling decisions taken by the AM (Fig. 6 master-load accounting).
  int64_t scheduler_invocations = 0;
  /// Traced storage footprint (logical bytes; 0 without a GC attached):
  /// high-water mark of staged inputs + live intermediates, plus what the
  /// collector reclaimed (docs/storage-model.md).
  int64_t peak_footprint_bytes = 0;
  int64_t gc_files_collected = 0;
  int64_t gc_bytes_collected = 0;

  double Makespan() const { return finished_at - started_at; }
};

class HiWayAm : public AmCallbacks {
 public:
  HiWayAm(Cluster* cluster, ResourceManager* rm, Dfs* dfs,
          ToolRegistry* tools, ProvenanceManager* provenance,
          RuntimeEstimator* estimator, HiWayOptions options);
  ~HiWayAm() override;
  HiWayAm(const HiWayAm&) = delete;
  HiWayAm& operator=(const HiWayAm&) = delete;

  /// Registers the AM with YARN, parses the workflow, and starts issuing
  /// container requests. Rejects static schedulers for iterative sources
  /// (the paper's Cuneiform restriction). Neither pointer is owned.
  Status Submit(WorkflowSource* source, WorkflowScheduler* scheduler);

  /// Provenance-replay recovery (AM failover): call before Submit() with
  /// the prior attempts' provenance events. Tasks whose signature
  /// completed successfully in the trace — and whose recorded file
  /// outputs still exist in DFS — are memoised (completed instantly from
  /// the record, outputs re-registered, stdout replayed for iterative
  /// sources) instead of re-executed. The workflow resumes from the
  /// frontier of incomplete work.
  void SetRecoveryTrace(const std::vector<ProvenanceEvent>& events);

  /// Simulates the AM process dying: every subsequent callback, executor
  /// completion, and heartbeat is ignored, so the RM's liveness timeout
  /// (or a node kill) is what surfaces the failure. Irreversible.
  void Crash();
  bool crashed() const { return crashed_; }

  /// Drives the engine until the workflow finishes; returns the report.
  /// (Convenience for single-workflow experiments; multi-workflow setups
  /// run the engine themselves and poll finished().)
  Result<WorkflowReport> RunToCompletion();

  bool finished() const { return finished_; }
  const WorkflowReport& report() const { return report_; }

  /// YARN application id once Submit() succeeded (per-tenant metrics).
  ApplicationId app() const { return app_; }

  /// Attaches the cluster-wide result cache (docs/data-cache.md): before
  /// scheduling a ready task the AM asks the cache for a sealed result of
  /// the same invocation (tenant-scoped); a hit completes the task
  /// instantly, and every successful attempt is published back. `tenant`
  /// scopes both lookups and publishes (empty = the shared default
  /// namespace). Set before Submit(); the cache is not owned.
  void SetResultCache(ResultCache* cache, std::string tenant) {
    result_cache_ = cache;
    cache_tenant_ = std::move(tenant);
  }

  /// Attaches the intermediate-data GC (src/gc/): the AM then opens a
  /// scope for its run, registers every task's inputs (before
  /// memoisation, so replayed completions release pins in order) and
  /// every produced file, and lets the collector delete intermediates
  /// whose last consumer completed. Set before Submit(); not owned.
  void SetGc(IntermediateGc* gc) { gc_ = gc; }

  /// Attaches the per-NodeManager staging cache: stage-in of an input
  /// already resident on the chosen node is served locally instead of
  /// re-reading from DFS. Forwarded to the storage adapter; set before
  /// Submit(). Not owned; shared across AMs and workflows.
  void SetStagingCache(StagingCache* staging);

  /// Attaches an execution tracer (src/obs/tracer.h): the AM then
  /// records workflow/task-attempt span events (ready, localize,
  /// execute, stage transfers, dependency edges, retries, memoisation)
  /// feeding the TraceAnalyzer's critical path. Set before Submit().
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

  /// Invoked exactly once when the workflow reaches a terminal state
  /// (success or failure), after the report is final. Lets a service run
  /// many AMs concurrently without polling finished(). The listener must
  /// not destroy the AM synchronously (it is called from AM code).
  void set_finish_listener(std::function<void(const WorkflowReport&)> fn) {
    finish_listener_ = std::move(fn);
  }

  // AmCallbacks:
  void OnContainerAllocated(const Container& container,
                            int64_t cookie) override;
  void OnContainerLost(const Container& container,
                       ContainerLossReason reason) override;
  /// Drain triage: tasks on the doomed node that the runtime estimator
  /// projects CANNOT finish before `deadline` are proactively vacated
  /// (ResourceManager::DrainContainer) so they requeue on the surviving
  /// fleet instead of dying at the deadline. Everything else — including
  /// tasks with no estimate yet — keeps running: a kept task that
  /// finishes saves all its progress, and one that overstays loses no
  /// more than an unwarned kill would have taken.
  void OnNodeDraining(NodeId node, double deadline) override;

 private:
  enum class TaskState { kWaiting, kReady, kRunning, kDone };

  struct TaskEntry {
    TaskSpec spec;
    TaskState state = TaskState::kWaiting;
    int attempts = 0;
    int attempt_epoch = 0;  // invalidates outcomes of superseded attempts
    std::vector<NodeId> blacklist;
    /// Attributed failures per node (feeds RetryPolicy::ShouldBlacklist;
    /// node losses and transient I/O errors are not attributed).
    std::map<NodeId, int> node_failures;
    std::set<std::string> missing_inputs;
    ContainerId container = kInvalidContainer;
    /// Virtual time the current attempt's container was handed to
    /// LaunchTask (drain triage: projected finish = launched_at +
    /// overhead + estimate).
    double launched_at = 0.0;
  };

  /// One successfully completed task reconstructed from a recovery
  /// trace, consumed by signature in recorded completion order.
  struct MemoEntry {
    std::vector<std::pair<std::string, int64_t>> outputs;
    std::string stdout_value;
    int32_t node = -1;
    double duration = 0.0;
  };

  /// Applies option defaults to a TaskSpec's container sizing.
  void ApplyContainerDefaults(TaskSpec* spec) const;

  Status AdmitTasks(std::vector<TaskSpec> tasks);
  void MarkReady(TaskEntry* entry);
  /// MarkReady unless the result cache already holds this invocation's
  /// sealed outputs for our tenant — then the task completes instantly
  /// (queued on memo_completions_, like a recovery memoisation).
  void MarkReadyOrServe(TaskEntry* entry);
  /// Attempts to complete `entry` from the result cache. False = miss
  /// (or verification evicted the entry); the task must execute.
  bool TryCacheHit(TaskEntry* entry);
  void LaunchTask(TaskEntry* entry, const Container& container);
  void OnAttemptDone(TaskId id, int epoch, TaskAttemptOutcome outcome);
  void HandleAttemptFailure(TaskEntry* entry, const Status& failure);
  /// Re-queues a failed task, honouring the retry policy's backoff.
  void RetryLater(TaskEntry* entry);
  void RegisterProducedFiles(const TaskResult& result);
  void MaybeFinish();
  void FinishWorkflow(Status status);
  /// Completes `entry` from the recovery memo if possible (signature
  /// recorded as successful, file outputs still present in DFS).
  bool TryMemoise(TaskEntry* entry);
  /// Delivers queued memoised completions to the source; discovery may
  /// admit further tasks (which can memoise in turn). Re-entrancy safe.
  Status DrainMemoised();
  void HeartbeatLoop();

  Cluster* cluster_;
  ResourceManager* rm_;
  Dfs* dfs_;
  ToolRegistry* tools_;
  ProvenanceManager* provenance_;
  /// This attempt's own provenance shard (owned by provenance_); set by
  /// Submit, appended to directly so recording never crosses AMs.
  ProvenanceShard* shard_ = nullptr;
  RuntimeEstimator* estimator_;
  HiWayOptions options_;

  WorkflowSource* source_ = nullptr;
  WorkflowScheduler* scheduler_ = nullptr;
  std::unique_ptr<TaskExecutor> executor_;
  std::unique_ptr<DfsStorageAdapter> storage_;

  ApplicationId app_ = -1;
  bool submitted_ = false;
  bool finished_ = false;
  bool crashed_ = false;
  WorkflowReport report_;
  std::function<void(const WorkflowReport&)> finish_listener_;

  std::map<TaskId, TaskEntry> tasks_;
  std::map<std::string, std::set<TaskId>> waiting_on_file_;
  /// Which completed task produced each DFS path (trace dependency
  /// edges for consumers admitted after their producer finished).
  std::map<std::string, TaskId> file_producer_;
  /// Recovery memo: signature -> recorded completions, oldest first.
  std::map<std::string, std::deque<MemoEntry>> memo_;
  /// Memoised results awaiting delivery to the source.
  std::deque<TaskResult> memo_completions_;
  bool draining_memo_ = false;
  EventId heartbeat_event_ = 0;
  int pending_retries_ = 0;
  int running_ = 0;
  int waiting_ = 0;
  TaskId next_task_id_ = 1;
  /// Decline chains: when a dynamic scheduler declines a container, the
  /// replacement request carries the nodes declined so far (keyed by a
  /// negative cookie) so a request cannot ping-pong between bad nodes.
  std::map<int64_t, std::vector<NodeId>> decline_chains_;
  int64_t next_decline_cookie_ = -1;
  Tracer* tracer_ = nullptr;
  /// Cluster-wide result cache (nullptr = caching off) and the tenant
  /// namespace this workflow reads from / publishes into.
  ResultCache* result_cache_ = nullptr;
  std::string cache_tenant_;
  /// Intermediate-data collector (nullptr = GC off). The AM registers
  /// interests; the service owns scope teardown across AM failover.
  IntermediateGc* gc_ = nullptr;
};

}  // namespace hiway

#endif  // HIWAY_CORE_HIWAY_AM_H_
