#include "src/core/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/cache/result_cache.h"
#include "src/cache/staging_cache.h"

namespace hiway {

MasterLoad ComputeMasterLoad(const MasterLoadInputs& inputs,
                             const MasterCostModel& model) {
  MasterLoad out;
  if (inputs.duration_s <= 0.0) return out;
  double dur = inputs.duration_s;
  double n = static_cast<double>(inputs.num_workers);

  // ResourceManager: periodic NM heartbeats plus allocation churn.
  double heartbeats = n * dur / model.nm_heartbeat_period_s;
  double rm_cpu_s =
      heartbeats * model.rm_heartbeat_cpu_s +
      static_cast<double>(inputs.rm.allocations + inputs.rm.requests +
                          inputs.rm.releases) *
          model.rm_allocation_cpu_s;

  // NameNode: metadata ops plus periodic block reports.
  double block_reports = n * dur / model.blockreport_period_s;
  double nn_cpu_s =
      static_cast<double>(inputs.dfs.metadata_ops) * model.nn_metadata_cpu_s +
      block_reports * model.nn_blockreport_cpu_s;

  out.hadoop_master.cpu_load = (rm_cpu_s + nn_cpu_s) / dur;
  double master_wire =
      heartbeats * model.heartbeat_wire_bytes +
      static_cast<double>(inputs.dfs.metadata_ops) *
          model.metadata_wire_bytes;
  out.hadoop_master.net_mbps = master_wire / dur / (1024.0 * 1024.0);
  // Masters do little disk I/O beyond edit logs; model as proportional to
  // metadata mutation rate against a 100 MB/s log device.
  out.hadoop_master.io_utilization =
      std::min(1.0, static_cast<double>(inputs.dfs.metadata_ops) * 512.0 /
                        dur / (100.0 * 1024.0 * 1024.0) * 100.0);

  // Hi-WAY AM: scheduling decisions, provenance writes, and container
  // status updates arriving with every AM-RM heartbeat.
  double am_cpu_s =
      static_cast<double>(inputs.am_decisions) * model.am_decision_cpu_s +
      static_cast<double>(inputs.provenance_events) *
          model.am_provenance_cpu_s +
      inputs.mean_running_containers * dur / model.nm_heartbeat_period_s *
          model.am_status_cpu_s;
  out.hiway_am.cpu_load = am_cpu_s / dur;
  out.hiway_am.net_mbps = static_cast<double>(inputs.am_decisions) *
                          model.decision_wire_bytes / dur /
                          (1024.0 * 1024.0);
  out.hiway_am.io_utilization =
      std::min(1.0, static_cast<double>(inputs.provenance_events) * 1024.0 /
                        dur / (100.0 * 1024.0 * 1024.0) * 100.0);
  return out;
}

RoleUtilization WorkerUtilization(const FlowNetwork& net,
                                  const Cluster& cluster, NodeId node) {
  RoleUtilization out;
  out.cpu_load = net.Stats(cluster.cpu(node)).mean_rate;
  out.io_utilization = net.Stats(cluster.disk(node)).busy_fraction;
  out.net_mbps = net.Stats(cluster.nic(node)).mean_rate;
  return out;
}

RoleUtilization MeanWorkerUtilization(const FlowNetwork& net,
                                      const Cluster& cluster, NodeId first,
                                      NodeId last) {
  RoleUtilization out;
  int count = 0;
  for (NodeId n = first; n <= last; ++n) {
    RoleUtilization u = WorkerUtilization(net, cluster, n);
    out.cpu_load += u.cpu_load;
    out.io_utilization += u.io_utilization;
    out.net_mbps += u.net_mbps;
    ++count;
  }
  if (count > 0) {
    out.cpu_load /= count;
    out.io_utilization /= count;
    out.net_mbps /= count;
  }
  return out;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  if (rank == 0) rank = 1;
  return xs[rank - 1];
}

QueueLoadSummary SummarizeQueue(const ResourceManager& rm,
                                const std::string& queue) {
  QueueLoadSummary out;
  out.queue = queue;
  for (ApplicationId app : rm.KnownApplications()) {
    const TenantStats* stats = rm.app_stats(app);
    if (stats != nullptr && stats->queue == queue) ++out.applications;
  }
  const TenantStats* stats = rm.queue_stats(queue);
  if (stats == nullptr) return out;
  out.pending_requests = stats->pending_requests;
  out.allocated = stats->usage;
  if (rm.total_vcores() > 0) {
    out.allocated_vcore_share =
        static_cast<double>(stats->usage.vcores) / rm.total_vcores();
  }
  if (rm.total_memory_mb() > 0.0) {
    out.allocated_memory_share = stats->usage.memory_mb / rm.total_memory_mb();
  }
  if (!stats->wait_times_s.empty()) {
    double sum = 0.0;
    for (double w : stats->wait_times_s) sum += w;
    out.mean_wait_s = sum / static_cast<double>(stats->wait_times_s.size());
    out.p95_wait_s = Percentile(stats->wait_times_s, 95.0);
  }
  out.counters = stats->counters;
  out.time_under_guarantee_s = stats->time_under_guarantee_s;
  out.restoration_episodes =
      static_cast<int>(stats->restoration_latency_s.size());
  if (!stats->restoration_latency_s.empty()) {
    double sum = 0.0;
    for (double r : stats->restoration_latency_s) sum += r;
    out.mean_restoration_s =
        sum / static_cast<double>(stats->restoration_latency_s.size());
    out.p95_restoration_s = Percentile(stats->restoration_latency_s, 95.0);
  }
  if (stats->counters.container_work_s > 0.0) {
    out.wasted_work_ratio =
        stats->counters.preempted_work_s / stats->counters.container_work_s;
  }
  return out;
}

std::vector<QueueLoadSummary> SummarizeQueues(const ResourceManager& rm) {
  std::vector<QueueLoadSummary> out;
  for (const std::string& queue : rm.ConfiguredQueues()) {
    out.push_back(SummarizeQueue(rm, queue));
  }
  return out;
}

CacheLoadSummary SummarizeCache(const ResultCache* results,
                                const StagingCache* staging) {
  CacheLoadSummary out;
  if (results != nullptr) {
    ResultCacheStats s = results->stats();
    out.result_hits = s.hits;
    out.result_misses = s.misses;
    if (s.hits + s.misses > 0) {
      out.result_hit_ratio = static_cast<double>(s.hits) /
                             static_cast<double>(s.hits + s.misses);
    }
    out.result_entries = static_cast<int64_t>(results->size());
    out.tenant_denied = s.tenant_denied;
    out.stale_evictions = s.stale_evictions;
    out.verify_mismatches = s.verify_mismatches;
    out.compute_saved_s = s.saved_compute_s;
  }
  if (staging != nullptr) {
    StagingCacheStats s = staging->stats();
    out.staging_hits = s.hits;
    out.staging_misses = s.misses;
    if (s.hits + s.misses > 0) {
      out.staging_hit_ratio = static_cast<double>(s.hits) /
                              static_cast<double>(s.hits + s.misses);
    }
    out.staging_bytes_served = s.bytes_served;
    out.staging_resident_bytes = staging->TotalBytes();
    out.staging_evictions = s.evictions;
  }
  return out;
}

}  // namespace hiway
