// Resource-utilisation accounting for the Fig. 6 experiment.
//
// Worker-side numbers come directly from the flow network's integrals
// (CPU load like `uptime`, device busy fraction like `iostat`, NIC MB/s
// like `ifstat`). Master-side numbers come from an explicit cost model:
// each control-plane operation (NM heartbeat, container allocation,
// NameNode metadata op, AM scheduling decision, provenance write) charges
// a fixed CPU time and wire volume on the node hosting that process. The
// constants are stated here, not hidden, because Fig. 6's claim is about
// *orders of magnitude and trends*, not absolute values: master load grows
// with cluster size but stays far below saturation.

#ifndef HIWAY_CORE_METRICS_H_
#define HIWAY_CORE_METRICS_H_

#include "src/core/hiway_am.h"
#include "src/hdfs/dfs.h"
#include "src/sim/flow.h"
#include "src/yarn/yarn.h"

namespace hiway {

/// One role's utilisation triple (what Fig. 6 plots).
struct RoleUtilization {
  double cpu_load = 0.0;       // mean runnable demand, in cores
  double io_utilization = 0.0; // device busy fraction, 0..1
  double net_mbps = 0.0;       // mean NIC throughput, MB/s
};

/// Cost constants of the master-load model (seconds / bytes per op).
struct MasterCostModel {
  double rm_heartbeat_cpu_s = 0.0002;   // RM processing one NM heartbeat
  double rm_allocation_cpu_s = 0.0010;  // one container allocation
  double nn_metadata_cpu_s = 0.0005;    // one NameNode metadata op
  double nn_blockreport_cpu_s = 0.0004; // one DataNode block report
  double am_decision_cpu_s = 0.0020;    // one AM scheduling decision
  double am_provenance_cpu_s = 0.0020;  // one provenance event write (JSON
                                        // serialisation + HDFS append)
  double am_status_cpu_s = 0.0002;      // one container status update,
                                        // received per container per
                                        // AM-RM heartbeat

  double heartbeat_wire_bytes = 2048;   // NM heartbeat request+response
  double metadata_wire_bytes = 512;
  double decision_wire_bytes = 1024;

  double nm_heartbeat_period_s = 1.0;
  double blockreport_period_s = 3.0;
};

/// Aggregated inputs of the master-load model for one run.
struct MasterLoadInputs {
  double duration_s = 0.0;
  int num_workers = 0;
  RmCounters rm;
  DfsCounters dfs;
  int64_t am_decisions = 0;
  int64_t provenance_events = 0;
  /// Mean number of concurrently running containers (drives the AM's
  /// status-update processing load).
  double mean_running_containers = 0.0;
};

/// Computed master-process utilisation.
struct MasterLoad {
  RoleUtilization hadoop_master;  // RM + NameNode co-located (the paper's
                                  // "two Hadoop master threads" VM)
  RoleUtilization hiway_am;
};

MasterLoad ComputeMasterLoad(const MasterLoadInputs& inputs,
                             const MasterCostModel& model = MasterCostModel());

/// Mean utilisation of one worker node, read from the flow network.
RoleUtilization WorkerUtilization(const FlowNetwork& net,
                                  const Cluster& cluster, NodeId node);

/// Mean across a range of worker nodes [first, last].
RoleUtilization MeanWorkerUtilization(const FlowNetwork& net,
                                      const Cluster& cluster, NodeId first,
                                      NodeId last);

/// p-th percentile (p in [0, 100]) by nearest-rank over a copy of the
/// sample; 0.0 on an empty sample.
double Percentile(std::vector<double> xs, double p);

/// One RM queue's multi-tenancy summary (service mode, Sec. 3.1's "one AM
/// per workflow" run many-at-once): who is charged to the queue, what it
/// holds, and how long its container requests waited.
struct QueueLoadSummary {
  std::string queue;
  int applications = 0;         // apps ever charged to this queue
  int pending_requests = 0;     // open container requests right now
  ResourceUsage allocated;      // live containers held by the queue
  double allocated_vcore_share = 0.0;   // fraction of cluster vcores
  double allocated_memory_share = 0.0;  // fraction of cluster memory
  double mean_wait_s = 0.0;     // container request queue wait
  double p95_wait_s = 0.0;
  RmCounters counters;          // per-queue protocol counters
  // -- Guarantee enforcement (docs/scheduling-model.md) ------------------
  double time_under_guarantee_s = 0.0;  // total starved time
  int restoration_episodes = 0;         // closed starvation episodes
  double mean_restoration_s = 0.0;      // guarantee-restoration latency
  double p95_restoration_s = 0.0;
  /// Fraction of this queue's consumed container-seconds thrown away by
  /// preemption: counters.preempted_work_s / counters.container_work_s.
  double wasted_work_ratio = 0.0;
};

QueueLoadSummary SummarizeQueue(const ResourceManager& rm,
                                const std::string& queue);

/// Summaries for every configured queue, ascending by name.
std::vector<QueueLoadSummary> SummarizeQueues(const ResourceManager& rm);

/// Cross-submission cache effectiveness (docs/data-cache.md): result-
/// cache reuse and staging-cache transfer savings in one report. Either
/// cache pointer may be null (its section stays zero).
struct CacheLoadSummary {
  // -- Result cache ------------------------------------------------------
  int64_t result_hits = 0;
  int64_t result_misses = 0;
  double result_hit_ratio = 0.0;       // hits / (hits + misses)
  int64_t result_entries = 0;          // sealed entries resident now
  int64_t tenant_denied = 0;           // cross-tenant lookups refused
  int64_t stale_evictions = 0;         // outputs drifted in DFS
  int64_t verify_mismatches = 0;       // spot-checks that failed loudly
  double compute_saved_s = 0.0;        // recorded durations of all hits
  // -- Staging cache -----------------------------------------------------
  int64_t staging_hits = 0;
  int64_t staging_misses = 0;
  double staging_hit_ratio = 0.0;
  int64_t staging_bytes_served = 0;    // stage-in bytes never transferred
  int64_t staging_resident_bytes = 0;  // cached bytes across all nodes
  int64_t staging_evictions = 0;
};

CacheLoadSummary SummarizeCache(const class ResultCache* results,
                                const class StagingCache* staging);

}  // namespace hiway

#endif  // HIWAY_CORE_METRICS_H_
