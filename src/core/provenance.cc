#include "src/core/provenance.h"

#include "src/common/strings.h"

namespace hiway {

std::string_view ProvenanceEventTypeToString(ProvenanceEventType type) {
  switch (type) {
    case ProvenanceEventType::kWorkflowStart:
      return "workflow-start";
    case ProvenanceEventType::kWorkflowEnd:
      return "workflow-end";
    case ProvenanceEventType::kTaskStart:
      return "task-start";
    case ProvenanceEventType::kTaskEnd:
      return "task-end";
    case ProvenanceEventType::kFileStageIn:
      return "file-stage-in";
    case ProvenanceEventType::kFileStageOut:
      return "file-stage-out";
  }
  return "unknown";
}

Result<ProvenanceEventType> ProvenanceEventTypeFromString(
    std::string_view s) {
  if (s == "workflow-start") return ProvenanceEventType::kWorkflowStart;
  if (s == "workflow-end") return ProvenanceEventType::kWorkflowEnd;
  if (s == "task-start") return ProvenanceEventType::kTaskStart;
  if (s == "task-end") return ProvenanceEventType::kTaskEnd;
  if (s == "file-stage-in") return ProvenanceEventType::kFileStageIn;
  if (s == "file-stage-out") return ProvenanceEventType::kFileStageOut;
  return Status::ParseError("unknown provenance event type: " +
                            std::string(s));
}

Json ProvenanceEvent::ToJson() const {
  Json obj = Json::MakeObject();
  obj.Set("type", std::string(ProvenanceEventTypeToString(type)));
  obj.Set("run_id", run_id);
  obj.Set("timestamp", timestamp);
  switch (type) {
    case ProvenanceEventType::kWorkflowStart:
      obj.Set("workflow", workflow_name);
      break;
    case ProvenanceEventType::kWorkflowEnd:
      obj.Set("workflow", workflow_name);
      obj.Set("total_runtime", total_runtime);
      obj.Set("success", success);
      break;
    case ProvenanceEventType::kTaskStart:
      obj.Set("task_id", task_id);
      obj.Set("signature", signature);
      obj.Set("command", command);
      obj.Set("tool", tool);
      obj.Set("node", static_cast<int64_t>(node));
      obj.Set("node_name", node_name);
      break;
    case ProvenanceEventType::kTaskEnd:
      obj.Set("task_id", task_id);
      obj.Set("signature", signature);
      obj.Set("command", command);
      obj.Set("node", static_cast<int64_t>(node));
      obj.Set("node_name", node_name);
      obj.Set("duration", duration);
      obj.Set("success", success);
      if (!stdout_value.empty()) obj.Set("stdout", stdout_value);
      break;
    case ProvenanceEventType::kFileStageIn:
    case ProvenanceEventType::kFileStageOut:
      obj.Set("task_id", task_id);
      obj.Set("file", file_path);
      obj.Set("size_bytes", size_bytes);
      obj.Set("transfer_seconds", transfer_seconds);
      break;
  }
  return obj;
}

Result<ProvenanceEvent> ProvenanceEvent::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("provenance event must be a JSON object");
  }
  ProvenanceEvent ev;
  HIWAY_ASSIGN_OR_RETURN(
      ev.type, ProvenanceEventTypeFromString(json.GetString("type")));
  ev.run_id = json.GetString("run_id");
  ev.timestamp = json.GetNumber("timestamp");
  ev.workflow_name = json.GetString("workflow");
  ev.total_runtime = json.GetNumber("total_runtime");
  ev.success = json.GetBool("success", true);
  ev.task_id = json.GetInt("task_id", kInvalidTask);
  ev.signature = json.GetString("signature");
  ev.command = json.GetString("command");
  ev.tool = json.GetString("tool");
  ev.node = static_cast<int32_t>(json.GetInt("node", -1));
  ev.node_name = json.GetString("node_name");
  ev.duration = json.GetNumber("duration");
  ev.stdout_value = json.GetString("stdout");
  ev.file_path = json.GetString("file");
  ev.size_bytes = json.GetInt("size_bytes");
  ev.transfer_seconds = json.GetNumber("transfer_seconds");
  return ev;
}

std::string SerializeTrace(const std::vector<ProvenanceEvent>& events) {
  std::string out;
  for (const ProvenanceEvent& ev : events) {
    out += ev.ToJson().Dump();
    out += '\n';
  }
  return out;
}

Result<std::vector<ProvenanceEvent>> ParseTrace(std::string_view text) {
  std::vector<ProvenanceEvent> out;
  size_t line_no = 0;
  for (const std::string& line : StrSplit(text, '\n')) {
    ++line_no;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty()) continue;
    auto json = Json::Parse(trimmed);
    if (!json.ok()) {
      return json.status().WithContext(
          StrFormat("trace line %zu", line_no));
    }
    auto ev = ProvenanceEvent::FromJson(*json);
    if (!ev.ok()) {
      return ev.status().WithContext(StrFormat("trace line %zu", line_no));
    }
    out.push_back(std::move(ev).value());
  }
  return out;
}

std::string ProvenanceManager::BeginWorkflow(const std::string& workflow_name,
                                             double now) {
  run_id_ = StrFormat("%s-run-%lld", workflow_name.c_str(),
                      static_cast<long long>(run_counter_++));
  runs_[run_id_] = RunInfo{workflow_name, now};
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kWorkflowStart;
  ev.run_id = run_id_;
  ev.timestamp = now;
  ev.workflow_name = workflow_name;
  store_->Append(ev);
  return run_id_;
}

void ProvenanceManager::EndWorkflow(const std::string& run_id, double now,
                                    bool success) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kWorkflowEnd;
  ev.run_id = run_id;
  ev.timestamp = now;
  auto it = runs_.find(run_id);
  if (it != runs_.end()) {
    ev.workflow_name = it->second.workflow_name;
    ev.total_runtime = now - it->second.started;
  }
  ev.success = success;
  store_->Append(ev);
}

void ProvenanceManager::RecordTaskStart(const std::string& run_id,
                                        const TaskSpec& task, int32_t node,
                                        const std::string& node_name,
                                        double now) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kTaskStart;
  ev.run_id = run_id;
  ev.timestamp = now;
  ev.task_id = task.id;
  ev.signature = task.signature;
  ev.command = task.command;
  ev.tool = task.ToolName();
  ev.node = node;
  ev.node_name = node_name;
  store_->Append(ev);
}

void ProvenanceManager::RecordTaskEnd(const std::string& run_id,
                                      const TaskResult& result,
                                      const std::string& node_name) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kTaskEnd;
  ev.run_id = run_id;
  ev.timestamp = result.finished_at;
  ev.task_id = result.id;
  ev.signature = result.signature;
  ev.node = result.node;
  ev.node_name = node_name;
  ev.duration = result.Makespan();
  ev.success = result.status.ok();
  ev.stdout_value = result.stdout_value;
  store_->Append(ev);
}

void ProvenanceManager::RecordFileStageIn(const std::string& run_id,
                                          TaskId task, const std::string& path,
                                          int64_t size_bytes,
                                          double transfer_seconds,
                                          double now) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kFileStageIn;
  ev.run_id = run_id;
  ev.timestamp = now;
  ev.task_id = task;
  ev.file_path = path;
  ev.size_bytes = size_bytes;
  ev.transfer_seconds = transfer_seconds;
  store_->Append(ev);
}

void ProvenanceManager::RecordFileStageOut(const std::string& run_id,
                                           TaskId task,
                                           const std::string& path,
                                           int64_t size_bytes,
                                           double transfer_seconds,
                                           double now) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kFileStageOut;
  ev.run_id = run_id;
  ev.timestamp = now;
  ev.task_id = task;
  ev.file_path = path;
  ev.size_bytes = size_bytes;
  ev.transfer_seconds = transfer_seconds;
  store_->Append(ev);
}

void ProvenanceManager::EndWorkflow(double now, bool success) {
  EndWorkflow(run_id_, now, success);
}

void ProvenanceManager::RecordTaskStart(const TaskSpec& task, int32_t node,
                                        const std::string& node_name,
                                        double now) {
  RecordTaskStart(run_id_, task, node, node_name, now);
}

void ProvenanceManager::RecordTaskEnd(const TaskResult& result,
                                      const std::string& node_name) {
  RecordTaskEnd(run_id_, result, node_name);
}

void ProvenanceManager::RecordFileStageIn(TaskId task, const std::string& path,
                                          int64_t size_bytes,
                                          double transfer_seconds,
                                          double now) {
  RecordFileStageIn(run_id_, task, path, size_bytes, transfer_seconds, now);
}

void ProvenanceManager::RecordFileStageOut(TaskId task,
                                           const std::string& path,
                                           int64_t size_bytes,
                                           double transfer_seconds,
                                           double now) {
  RecordFileStageOut(run_id_, task, path, size_bytes, transfer_seconds, now);
}

Result<double> ProvenanceManager::LatestRuntime(const std::string& signature,
                                                int32_t node) const {
  // Scan newest-to-oldest; the paper's strategy is "always use the latest
  // observed runtime" to adapt quickly to infrastructure changes.
  std::vector<ProvenanceEvent> events = store_->Events();
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->type == ProvenanceEventType::kTaskEnd && it->success &&
        it->signature == signature && it->node == node) {
      return it->duration;
    }
  }
  return Status::NotFound("no runtime observation for " + signature);
}

std::vector<std::pair<int32_t, double>> ProvenanceManager::RuntimeObservations(
    const std::string& signature) const {
  std::vector<std::pair<int32_t, double>> out;
  for (const ProvenanceEvent& ev : store_->Events()) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.success &&
        ev.signature == signature) {
      out.emplace_back(ev.node, ev.duration);
    }
  }
  return out;
}

}  // namespace hiway
