#include "src/core/provenance.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace hiway {

std::string_view ProvenanceEventTypeToString(ProvenanceEventType type) {
  switch (type) {
    case ProvenanceEventType::kWorkflowStart:
      return "workflow-start";
    case ProvenanceEventType::kWorkflowEnd:
      return "workflow-end";
    case ProvenanceEventType::kTaskStart:
      return "task-start";
    case ProvenanceEventType::kTaskEnd:
      return "task-end";
    case ProvenanceEventType::kFileStageIn:
      return "file-stage-in";
    case ProvenanceEventType::kFileStageOut:
      return "file-stage-out";
    case ProvenanceEventType::kTaskCacheHit:
      return "task-cache-hit";
  }
  return "unknown";
}

Result<ProvenanceEventType> ProvenanceEventTypeFromString(
    std::string_view s) {
  if (s == "workflow-start") return ProvenanceEventType::kWorkflowStart;
  if (s == "workflow-end") return ProvenanceEventType::kWorkflowEnd;
  if (s == "task-start") return ProvenanceEventType::kTaskStart;
  if (s == "task-end") return ProvenanceEventType::kTaskEnd;
  if (s == "file-stage-in") return ProvenanceEventType::kFileStageIn;
  if (s == "file-stage-out") return ProvenanceEventType::kFileStageOut;
  if (s == "task-cache-hit") return ProvenanceEventType::kTaskCacheHit;
  return Status::ParseError("unknown provenance event type: " +
                            std::string(s));
}

Json ProvenanceEvent::ToJson() const {
  Json obj = Json::MakeObject();
  obj.Set("type", std::string(ProvenanceEventTypeToString(type)));
  obj.Set("run_id", run_id);
  if (seq >= 0) obj.Set("seq", seq);
  obj.Set("timestamp", timestamp);
  switch (type) {
    case ProvenanceEventType::kWorkflowStart:
      obj.Set("workflow", workflow_name);
      break;
    case ProvenanceEventType::kWorkflowEnd:
      obj.Set("workflow", workflow_name);
      obj.Set("total_runtime", total_runtime);
      obj.Set("success", success);
      break;
    case ProvenanceEventType::kTaskStart:
      obj.Set("task_id", task_id);
      obj.Set("signature", signature);
      obj.Set("command", command);
      obj.Set("tool", tool);
      obj.Set("node", static_cast<int64_t>(node));
      obj.Set("node_name", node_name);
      break;
    case ProvenanceEventType::kTaskEnd:
      obj.Set("task_id", task_id);
      obj.Set("signature", signature);
      obj.Set("command", command);
      obj.Set("node", static_cast<int64_t>(node));
      obj.Set("node_name", node_name);
      obj.Set("duration", duration);
      obj.Set("success", success);
      if (!stdout_value.empty()) obj.Set("stdout", stdout_value);
      break;
    case ProvenanceEventType::kFileStageIn:
    case ProvenanceEventType::kFileStageOut:
      obj.Set("task_id", task_id);
      obj.Set("file", file_path);
      obj.Set("size_bytes", size_bytes);
      obj.Set("transfer_seconds", transfer_seconds);
      break;
    case ProvenanceEventType::kTaskCacheHit:
      obj.Set("task_id", task_id);
      obj.Set("signature", signature);
      obj.Set("source_run", source_run_id);
      obj.Set("duration", duration);
      break;
  }
  return obj;
}

Result<ProvenanceEvent> ProvenanceEvent::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::ParseError("provenance event must be a JSON object");
  }
  ProvenanceEvent ev;
  HIWAY_ASSIGN_OR_RETURN(
      ev.type, ProvenanceEventTypeFromString(json.GetString("type")));
  ev.run_id = json.GetString("run_id");
  ev.seq = json.GetInt("seq", -1);
  ev.timestamp = json.GetNumber("timestamp");
  ev.workflow_name = json.GetString("workflow");
  ev.total_runtime = json.GetNumber("total_runtime");
  ev.success = json.GetBool("success", true);
  ev.task_id = json.GetInt("task_id", kInvalidTask);
  ev.signature = json.GetString("signature");
  ev.command = json.GetString("command");
  ev.tool = json.GetString("tool");
  ev.node = static_cast<int32_t>(json.GetInt("node", -1));
  ev.node_name = json.GetString("node_name");
  ev.duration = json.GetNumber("duration");
  ev.stdout_value = json.GetString("stdout");
  ev.file_path = json.GetString("file");
  ev.size_bytes = json.GetInt("size_bytes");
  ev.transfer_seconds = json.GetNumber("transfer_seconds");
  ev.source_run_id = json.GetString("source_run");
  return ev;
}

std::string SerializeTrace(const std::vector<ProvenanceEvent>& events) {
  std::string out;
  for (const ProvenanceEvent& ev : events) {
    out += ev.ToJson().Dump();
    out += '\n';
  }
  return out;
}

Result<std::vector<ProvenanceEvent>> ParseTrace(std::string_view text) {
  std::vector<ProvenanceEvent> out;
  size_t line_no = 0;
  for (const std::string& line : StrSplit(text, '\n')) {
    ++line_no;
    std::string_view trimmed = StrTrim(line);
    if (trimmed.empty()) continue;
    auto json = Json::Parse(trimmed);
    if (!json.ok()) {
      return json.status().WithContext(
          StrFormat("trace line %zu", line_no));
    }
    auto ev = ProvenanceEvent::FromJson(*json);
    if (!ev.ok()) {
      return ev.status().WithContext(StrFormat("trace line %zu", line_no));
    }
    out.push_back(std::move(ev).value());
  }
  return out;
}

// --------------------------------------------------------- ProvenanceShard --

ProvenanceShard::ProvenanceShard(std::string run_id,
                                 std::string workflow_name, double started,
                                 std::unique_ptr<ProvenanceStore> store,
                                 std::atomic<int64_t>* global_seq)
    : run_id_(std::move(run_id)),
      workflow_name_(std::move(workflow_name)),
      started_(started),
      global_seq_(global_seq),
      store_(std::move(store)) {}

void ProvenanceShard::Append(ProvenanceEvent event) {
  if (event.run_id.empty()) event.run_id = run_id_;
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_) {
    ++dropped_after_seal_;
    return;
  }
  // Stamped under the shard lock so seq is ascending within the shard
  // (the merge relies on per-shard order); different shards only share
  // the lock-free atomic.
  if (global_seq_ != nullptr) {
    event.seq = global_seq_->fetch_add(1, std::memory_order_relaxed);
  }
  store_->Append(event);
}

void ProvenanceShard::RecordWorkflowStart(double now) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kWorkflowStart;
  ev.timestamp = now;
  ev.workflow_name = workflow_name_;
  Append(std::move(ev));
}

void ProvenanceShard::RecordWorkflowEnd(double now, bool success) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kWorkflowEnd;
  ev.timestamp = now;
  ev.workflow_name = workflow_name_;
  ev.total_runtime = now - started_;
  ev.success = success;
  Append(std::move(ev));
  Seal();
}

void ProvenanceShard::RecordTaskStart(const TaskSpec& task, int32_t node,
                                      const std::string& node_name,
                                      double now) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kTaskStart;
  ev.timestamp = now;
  ev.task_id = task.id;
  ev.signature = task.signature;
  ev.command = task.command;
  ev.tool = task.ToolName();
  ev.node = node;
  ev.node_name = node_name;
  Append(std::move(ev));
}

void ProvenanceShard::RecordTaskEnd(const TaskResult& result,
                                    const std::string& node_name) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kTaskEnd;
  ev.timestamp = result.finished_at;
  ev.task_id = result.id;
  ev.signature = result.signature;
  ev.node = result.node;
  ev.node_name = node_name;
  ev.duration = result.Makespan();
  ev.success = result.status.ok();
  ev.stdout_value = result.stdout_value;
  Append(std::move(ev));
}

void ProvenanceShard::RecordFileStageIn(TaskId task, const std::string& path,
                                        int64_t size_bytes,
                                        double transfer_seconds, double now) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kFileStageIn;
  ev.timestamp = now;
  ev.task_id = task;
  ev.file_path = path;
  ev.size_bytes = size_bytes;
  ev.transfer_seconds = transfer_seconds;
  Append(std::move(ev));
}

void ProvenanceShard::RecordFileStageOut(TaskId task, const std::string& path,
                                         int64_t size_bytes,
                                         double transfer_seconds, double now) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kFileStageOut;
  ev.timestamp = now;
  ev.task_id = task;
  ev.file_path = path;
  ev.size_bytes = size_bytes;
  ev.transfer_seconds = transfer_seconds;
  Append(std::move(ev));
}

void ProvenanceShard::RecordTaskCacheHit(TaskId task,
                                         const std::string& signature,
                                         const std::string& source_run_id,
                                         double saved_seconds, double now) {
  ProvenanceEvent ev;
  ev.type = ProvenanceEventType::kTaskCacheHit;
  ev.timestamp = now;
  ev.task_id = task;
  ev.signature = signature;
  ev.source_run_id = source_run_id;
  ev.duration = saved_seconds;
  Append(std::move(ev));
}

void ProvenanceShard::Seal() {
  std::lock_guard<std::mutex> lock(mu_);
  sealed_ = true;
}

bool ProvenanceShard::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

int64_t ProvenanceShard::dropped_after_seal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_after_seal_;
}

std::vector<ProvenanceEvent> ProvenanceShard::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->Events();
}

size_t ProvenanceShard::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return store_->size();
}

// ---------------------------------------------------------- ProvenanceView --

void ProvenanceView::AddShard(const ProvenanceShard* shard) {
  if (shard != nullptr) shards_.push_back(shard);
}

std::vector<ProvenanceEvent> ProvenanceView::Events() const {
  // Snapshot each shard (its lock is taken one at a time, briefly).
  std::vector<std::vector<ProvenanceEvent>> snapshots;
  snapshots.reserve(shards_.size());
  size_t total = 0;
  bool all_stamped = true;
  for (const ProvenanceShard* shard : shards_) {
    snapshots.push_back(shard->Events());
    total += snapshots.back().size();
    for (const ProvenanceEvent& ev : snapshots.back()) {
      if (ev.seq < 0) all_stamped = false;
    }
  }

  std::vector<ProvenanceEvent> merged;
  merged.reserve(total);
  if (all_stamped) {
    // K-way merge by seq: every shard snapshot is already ascending in
    // seq, so this reproduces the exact global append order a single
    // shared store would hold.
    std::vector<size_t> next(snapshots.size(), 0);
    while (merged.size() < total) {
      int best = -1;
      int64_t best_seq = 0;
      for (size_t i = 0; i < snapshots.size(); ++i) {
        if (next[i] >= snapshots[i].size()) continue;
        int64_t s = snapshots[i][next[i]].seq;
        if (best < 0 || s < best_seq) {
          best = static_cast<int>(i);
          best_seq = s;
        }
      }
      if (best < 0) break;  // defensive: all cursors exhausted early
      merged.push_back(
          std::move(snapshots[static_cast<size_t>(best)]
                             [next[static_cast<size_t>(best)]++]));
    }
    return merged;
  }
  // Foreign (unstamped) events present: fall back to timestamp order,
  // stable across the shard concatenation so the result is deterministic.
  for (std::vector<ProvenanceEvent>& snapshot : snapshots) {
    for (ProvenanceEvent& ev : snapshot) merged.push_back(std::move(ev));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const ProvenanceEvent& a, const ProvenanceEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  return merged;
}

size_t ProvenanceView::size() const {
  size_t total = 0;
  for (const ProvenanceShard* shard : shards_) total += shard->size();
  return total;
}

Result<double> ProvenanceView::LatestRuntime(const std::string& signature,
                                             int32_t node) const {
  // The paper's strategy is "always use the latest observed runtime" to
  // adapt quickly to infrastructure changes: take the per-shard latest
  // match, then the globally newest among those (merged order).
  bool found = false;
  int64_t best_seq = -1;
  double best_ts = 0.0;
  double best = 0.0;
  for (const ProvenanceShard* shard : shards_) {
    std::vector<ProvenanceEvent> events = shard->Events();
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      if (it->type == ProvenanceEventType::kTaskEnd && it->success &&
          it->signature == signature && it->node == node) {
        bool newer = !found || (it->seq >= 0 && best_seq >= 0
                                    ? it->seq > best_seq
                                    : it->timestamp > best_ts);
        if (newer) {
          found = true;
          best_seq = it->seq;
          best_ts = it->timestamp;
          best = it->duration;
        }
        break;  // within a shard, the first hit from the back is latest
      }
    }
  }
  if (!found) {
    return Status::NotFound("no runtime observation for " + signature);
  }
  return best;
}

std::vector<std::pair<int32_t, double>> ProvenanceView::RuntimeObservations(
    const std::string& signature) const {
  std::vector<std::pair<int32_t, double>> out;
  for (const ProvenanceEvent& ev : Events()) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.success &&
        ev.signature == signature) {
      out.emplace_back(ev.node, ev.duration);
    }
  }
  return out;
}

// ------------------------------------------------------- ProvenanceManager --

ProvenanceManager::ProvenanceManager()
    : factory_([](const std::string&)
                   -> Result<std::unique_ptr<ProvenanceStore>> {
        return std::unique_ptr<ProvenanceStore>(
            std::make_unique<InMemoryProvenanceStore>());
      }) {}

ProvenanceManager::ProvenanceManager(ShardStoreFactory factory)
    : factory_(std::move(factory)) {}

std::string ProvenanceManager::BeginWorkflow(const std::string& workflow_name,
                                             double now) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string run_id = StrFormat("%s-run-%lld", workflow_name.c_str(),
                                 static_cast<long long>(run_counter_++));
  auto store = factory_(run_id);
  std::unique_ptr<ProvenanceStore> backing;
  if (store.ok()) {
    backing = std::move(*store);
  } else {
    // Provenance must never take the workflow down: degrade to memory.
    HIWAY_LOG_ERROR << "provenance shard backend for " << run_id
                    << " failed (" << store.status()
                    << "); falling back to in-memory";
    backing = std::make_unique<InMemoryProvenanceStore>();
  }
  auto shard = std::make_unique<ProvenanceShard>(
      run_id, workflow_name, now, std::move(backing), &seq_);
  shard->RecordWorkflowStart(now);
  by_run_[run_id] = shard.get();
  shards_.push_back(std::move(shard));
  return run_id;
}

ProvenanceShard* ProvenanceManager::ShardLocked(
    const std::string& run_id) const {
  auto it = by_run_.find(run_id);
  return it == by_run_.end() ? nullptr : it->second;
}

ProvenanceShard* ProvenanceManager::shard(const std::string& run_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ShardLocked(run_id);
}

std::vector<std::string> ProvenanceManager::RunIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->run_id());
  return out;
}

void ProvenanceManager::EndWorkflow(const std::string& run_id, double now,
                                    bool success) {
  if (ProvenanceShard* s = shard(run_id)) s->RecordWorkflowEnd(now, success);
}

void ProvenanceManager::RecordTaskStart(const std::string& run_id,
                                        const TaskSpec& task, int32_t node,
                                        const std::string& node_name,
                                        double now) {
  if (ProvenanceShard* s = shard(run_id)) {
    s->RecordTaskStart(task, node, node_name, now);
  }
}

void ProvenanceManager::RecordTaskEnd(const std::string& run_id,
                                      const TaskResult& result,
                                      const std::string& node_name) {
  if (ProvenanceShard* s = shard(run_id)) s->RecordTaskEnd(result, node_name);
}

void ProvenanceManager::RecordFileStageIn(const std::string& run_id,
                                          TaskId task, const std::string& path,
                                          int64_t size_bytes,
                                          double transfer_seconds,
                                          double now) {
  if (ProvenanceShard* s = shard(run_id)) {
    s->RecordFileStageIn(task, path, size_bytes, transfer_seconds, now);
  }
}

void ProvenanceManager::RecordFileStageOut(const std::string& run_id,
                                           TaskId task,
                                           const std::string& path,
                                           int64_t size_bytes,
                                           double transfer_seconds,
                                           double now) {
  if (ProvenanceShard* s = shard(run_id)) {
    s->RecordFileStageOut(task, path, size_bytes, transfer_seconds, now);
  }
}

void ProvenanceManager::SealRun(const std::string& run_id) {
  if (ProvenanceShard* s = shard(run_id)) s->Seal();
}

Result<double> ProvenanceManager::LatestRuntime(const std::string& signature,
                                                int32_t node) const {
  return View().LatestRuntime(signature, node);
}

std::vector<std::pair<int32_t, double>> ProvenanceManager::RuntimeObservations(
    const std::string& signature) const {
  return View().RuntimeObservations(signature);
}

ProvenanceView ProvenanceManager::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  ProvenanceView view;
  for (const auto& shard : shards_) view.AddShard(shard.get());
  return view;
}

ProvenanceView ProvenanceManager::ViewOf(
    const std::vector<std::string>& run_ids) const {
  std::lock_guard<std::mutex> lock(mu_);
  ProvenanceView view;
  for (const std::string& run_id : run_ids) {
    view.AddShard(ShardLocked(run_id));
  }
  return view;
}

std::vector<ProvenanceEvent> ProvenanceManager::Events() const {
  return View().Events();
}

size_t ProvenanceManager::size() const { return View().size(); }

size_t ProvenanceManager::shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.size();
}

Status ProvenanceManager::AdoptShard(const std::string& run_id,
                                     std::unique_ptr<ProvenanceStore> store) {
  if (store == nullptr) return Status::InvalidArgument("null shard store");
  std::lock_guard<std::mutex> lock(mu_);
  if (by_run_.count(run_id) > 0) {
    return Status::InvalidArgument("shard for run '" + run_id +
                                   "' already exists");
  }
  std::string workflow_name;
  double started = 0.0;
  for (const ProvenanceEvent& ev : store->Events()) {
    // Keep id issuance collision-free with the adopted history.
    if (ev.seq >= 0) {
      int64_t floor = ev.seq + 1;
      int64_t cur = seq_.load(std::memory_order_relaxed);
      while (cur < floor &&
             !seq_.compare_exchange_weak(cur, floor,
                                         std::memory_order_relaxed)) {
      }
    }
    if (ev.type == ProvenanceEventType::kWorkflowStart &&
        workflow_name.empty()) {
      workflow_name = ev.workflow_name;
      started = ev.timestamp;
    }
  }
  size_t pos = run_id.rfind("-run-");
  if (pos != std::string::npos) {
    auto n = ParseInt64(run_id.substr(pos + 5));
    if (n.ok() && *n >= run_counter_) run_counter_ = *n + 1;
  }
  auto shard = std::make_unique<ProvenanceShard>(
      run_id, workflow_name, started, std::move(store), &seq_);
  shard->Seal();
  by_run_[run_id] = shard.get();
  shards_.push_back(std::move(shard));
  return Status::OK();
}

void ProvenanceManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  by_run_.clear();
  shards_.clear();
}

}  // namespace hiway
