// Provenance Manager (Sec. 3.5 of the paper).
//
// Records events at three granularities — workflow, task, and file — each
// timestamped and serialisable as JSON, so a trace is both a queryable
// statistics source (feeding the adaptive schedulers) and a re-executable
// workflow (the trace front-end in src/lang/trace_source.h).

#ifndef HIWAY_CORE_PROVENANCE_H_
#define HIWAY_CORE_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/result.h"
#include "src/lang/workflow.h"

namespace hiway {

enum class ProvenanceEventType {
  kWorkflowStart,
  kWorkflowEnd,
  kTaskStart,
  kTaskEnd,
  kFileStageIn,
  kFileStageOut,
};

std::string_view ProvenanceEventTypeToString(ProvenanceEventType type);
Result<ProvenanceEventType> ProvenanceEventTypeFromString(std::string_view s);

/// One provenance record. Unused fields stay at their defaults and are
/// omitted from the JSON encoding.
struct ProvenanceEvent {
  ProvenanceEventType type = ProvenanceEventType::kWorkflowStart;
  /// Unique id of the workflow run this event belongs to.
  std::string run_id;
  /// Virtual timestamp (seconds).
  double timestamp = 0.0;

  // Workflow-level fields.
  std::string workflow_name;
  double total_runtime = 0.0;
  bool success = true;

  // Task-level fields.
  TaskId task_id = kInvalidTask;
  std::string signature;
  std::string command;
  std::string tool;
  int32_t node = -1;
  std::string node_name;
  double duration = 0.0;
  std::string stdout_value;

  // File-level fields.
  std::string file_path;
  int64_t size_bytes = 0;
  double transfer_seconds = 0.0;

  Json ToJson() const;
  static Result<ProvenanceEvent> FromJson(const Json& json);
};

/// Long-term storage for provenance events. Implementations: in-memory
/// (default), and the embedded key-value database in src/provdb/ standing
/// in for the paper's MySQL/Couchbase backends.
class ProvenanceStore {
 public:
  virtual ~ProvenanceStore() = default;
  virtual void Append(const ProvenanceEvent& event) = 0;
  /// All stored events in append order.
  virtual std::vector<ProvenanceEvent> Events() const = 0;
  virtual size_t size() const = 0;
  virtual void Clear() = 0;
};

class InMemoryProvenanceStore : public ProvenanceStore {
 public:
  void Append(const ProvenanceEvent& event) override {
    events_.push_back(event);
  }
  std::vector<ProvenanceEvent> Events() const override { return events_; }
  size_t size() const override { return events_.size(); }
  void Clear() override { events_.clear(); }

 private:
  std::vector<ProvenanceEvent> events_;
};

/// Serialises events as JSON lines (one compact object per line) — the
/// paper's HDFS trace-file format.
std::string SerializeTrace(const std::vector<ProvenanceEvent>& events);

/// Parses a JSON-lines trace back into events.
Result<std::vector<ProvenanceEvent>> ParseTrace(std::string_view text);

/// Front door used by the AM: stamps run ids and timestamps, forwards to a
/// store, and answers the statistics queries the Workflow Scheduler needs
/// (Sec. 3.4: observed runtimes per task signature and node).
class ProvenanceManager {
 public:
  /// Does not take ownership of `store`.
  explicit ProvenanceManager(ProvenanceStore* store) : store_(store) {}

  /// Starts a new run; returns its id. Run ids are unique per manager
  /// for the manager's lifetime (a counter, never reused), so several
  /// concurrent AMs — and successive failover attempts of one workflow —
  /// can record interleaved without clobbering each other as long as
  /// they use the explicit-run-id overloads below.
  std::string BeginWorkflow(const std::string& workflow_name, double now);

  /// Explicit-run-id recording (concurrency-safe: per-run state is keyed
  /// by the id, not by "the current run").
  void EndWorkflow(const std::string& run_id, double now, bool success);
  void RecordTaskStart(const std::string& run_id, const TaskSpec& task,
                       int32_t node, const std::string& node_name, double now);
  void RecordTaskEnd(const std::string& run_id, const TaskResult& result,
                     const std::string& node_name);
  void RecordFileStageIn(const std::string& run_id, TaskId task,
                         const std::string& path, int64_t size_bytes,
                         double transfer_seconds, double now);
  void RecordFileStageOut(const std::string& run_id, TaskId task,
                          const std::string& path, int64_t size_bytes,
                          double transfer_seconds, double now);

  /// Legacy single-run convenience: records against the most recently
  /// begun run. Only safe when one workflow runs at a time.
  void EndWorkflow(double now, bool success);
  void RecordTaskStart(const TaskSpec& task, int32_t node,
                       const std::string& node_name, double now);
  void RecordTaskEnd(const TaskResult& result, const std::string& node_name);
  void RecordFileStageIn(TaskId task, const std::string& path,
                         int64_t size_bytes, double transfer_seconds,
                         double now);
  void RecordFileStageOut(TaskId task, const std::string& path,
                          int64_t size_bytes, double transfer_seconds,
                          double now);

  /// Latest observed runtime of `signature` on `node` across all stored
  /// runs; NotFound when the pair was never observed.
  Result<double> LatestRuntime(const std::string& signature,
                               int32_t node) const;

  /// All observed (node, runtime) samples for a signature, oldest first.
  std::vector<std::pair<int32_t, double>> RuntimeObservations(
      const std::string& signature) const;

  ProvenanceStore* store() const { return store_; }
  const std::string& current_run_id() const { return run_id_; }

 private:
  struct RunInfo {
    std::string workflow_name;
    double started = 0.0;
  };

  ProvenanceStore* store_;
  std::string run_id_;
  std::map<std::string, RunInfo> runs_;
  int64_t run_counter_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_CORE_PROVENANCE_H_
