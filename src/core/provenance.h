// Provenance Manager (Sec. 3.5 of the paper), sharded per submission.
//
// Records events at three granularities — workflow, task, and file — each
// timestamped and serialisable as JSON, so a trace is both a queryable
// statistics source (feeding the adaptive schedulers) and a re-executable
// workflow (the trace front-end in src/lang/trace_source.h).
//
// Storage mirrors the paper's one-AM-per-workflow argument: every AM
// attempt appends to its own ProvenanceShard (its own store, its own
// lock), so concurrent workflows never contend on a central write path.
// Cross-run queries — the runtime estimator's statistics, trace export,
// failover replay — go through a ProvenanceView, which merges the shards
// on read. A global atomic sequence number stamped at append time makes
// the merged order identical to what a single shared store would have
// recorded for the same schedule.

#ifndef HIWAY_CORE_PROVENANCE_H_
#define HIWAY_CORE_PROVENANCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/result.h"
#include "src/lang/workflow.h"

namespace hiway {

enum class ProvenanceEventType {
  kWorkflowStart,
  kWorkflowEnd,
  kTaskStart,
  kTaskEnd,
  kFileStageIn,
  kFileStageOut,
  /// A task satisfied from the cluster-wide result cache: no container
  /// ran. `signature`/`task_id` name the satisfied task, `source_run_id`
  /// the run that produced the reused entry, and `duration` the original
  /// attempt's makespan (the time the hit saved). Replay and the runtime
  /// estimator ignore these — a hit is not a runtime observation.
  kTaskCacheHit,
};

std::string_view ProvenanceEventTypeToString(ProvenanceEventType type);
Result<ProvenanceEventType> ProvenanceEventTypeFromString(std::string_view s);

/// One provenance record. Unused fields stay at their defaults and are
/// omitted from the JSON encoding.
struct ProvenanceEvent {
  ProvenanceEventType type = ProvenanceEventType::kWorkflowStart;
  /// Unique id of the workflow run this event belongs to.
  std::string run_id;
  /// Global append sequence number, stamped by the shard at append time;
  /// -1 for events that never passed through a shard (e.g. a trace file
  /// produced by another installation). The merge-on-read view orders
  /// shards by this.
  int64_t seq = -1;
  /// Virtual timestamp (seconds).
  double timestamp = 0.0;

  // Workflow-level fields.
  std::string workflow_name;
  double total_runtime = 0.0;
  bool success = true;

  // Task-level fields.
  TaskId task_id = kInvalidTask;
  std::string signature;
  std::string command;
  std::string tool;
  int32_t node = -1;
  std::string node_name;
  double duration = 0.0;
  std::string stdout_value;

  // File-level fields.
  std::string file_path;
  int64_t size_bytes = 0;
  double transfer_seconds = 0.0;

  // Cache-hit fields (kTaskCacheHit): the run whose execution the cache
  // served this task from.
  std::string source_run_id;

  Json ToJson() const;
  static Result<ProvenanceEvent> FromJson(const Json& json);
};

/// Long-term storage for provenance events. Implementations: in-memory
/// (default), and the embedded key-value database in src/provdb/ standing
/// in for the paper's MySQL/Couchbase backends. A store holds the events
/// of ONE shard; it needs no internal locking (the owning shard
/// serialises access).
class ProvenanceStore {
 public:
  virtual ~ProvenanceStore() = default;
  virtual void Append(const ProvenanceEvent& event) = 0;
  /// All stored events in append order.
  virtual std::vector<ProvenanceEvent> Events() const = 0;
  virtual size_t size() const = 0;
  virtual void Clear() = 0;
};

class InMemoryProvenanceStore : public ProvenanceStore {
 public:
  void Append(const ProvenanceEvent& event) override {
    events_.push_back(event);
  }
  std::vector<ProvenanceEvent> Events() const override { return events_; }
  size_t size() const override { return events_.size(); }
  void Clear() override { events_.clear(); }

 private:
  std::vector<ProvenanceEvent> events_;
};

/// Serialises events as JSON lines (one compact object per line) — the
/// paper's HDFS trace-file format.
std::string SerializeTrace(const std::vector<ProvenanceEvent>& events);

/// Parses a JSON-lines trace back into events.
Result<std::vector<ProvenanceEvent>> ParseTrace(std::string_view text);

/// The append target of ONE workflow run (one AM attempt): owns its store
/// and its lock, so concurrent shards never contend with each other —
/// only the global sequence counter is shared, and that is a lock-free
/// atomic. Created by ProvenanceManager::BeginWorkflow, sealed when the
/// run ends (or its AM is declared dead), and retained afterwards so
/// failover replay and cross-run statistics keep the history.
class ProvenanceShard {
 public:
  /// `global_seq` is the manager-wide append counter (not owned, must
  /// outlive the shard); pass nullptr to leave events unstamped.
  ProvenanceShard(std::string run_id, std::string workflow_name,
                  double started, std::unique_ptr<ProvenanceStore> store,
                  std::atomic<int64_t>* global_seq);

  const std::string& run_id() const { return run_id_; }
  const std::string& workflow_name() const { return workflow_name_; }
  double started() const { return started_; }

  /// Appends one event: stamps the global sequence number and — when the
  /// event names no run — this shard's run id. Thread-safe; appends to a
  /// sealed shard are dropped (and counted).
  void Append(ProvenanceEvent event);

  // Event-building front doors used by the AM (Sec. 3.5 record points).
  void RecordWorkflowStart(double now);
  /// Appends the workflow-end event (total_runtime measured from the
  /// shard's start) and seals the shard.
  void RecordWorkflowEnd(double now, bool success);
  void RecordTaskStart(const TaskSpec& task, int32_t node,
                       const std::string& node_name, double now);
  void RecordTaskEnd(const TaskResult& result, const std::string& node_name);
  void RecordFileStageIn(TaskId task, const std::string& path,
                         int64_t size_bytes, double transfer_seconds,
                         double now);
  void RecordFileStageOut(TaskId task, const std::string& path,
                          int64_t size_bytes, double transfer_seconds,
                          double now);
  /// Records a result-cache hit: `task` (with `signature`) was satisfied
  /// from the entry `source_run_id` produced, saving `saved_seconds` of
  /// the original attempt's makespan.
  void RecordTaskCacheHit(TaskId task, const std::string& signature,
                          const std::string& source_run_id,
                          double saved_seconds, double now);

  /// No further appends (terminal run, or its AM was declared dead).
  /// Idempotent. Sealed shards stay readable forever.
  void Seal();
  bool sealed() const;
  /// Appends dropped because the shard was already sealed (late events
  /// from a crashed AM's in-flight callbacks).
  int64_t dropped_after_seal() const;

  /// Snapshot of this shard's events, append order (ascending seq).
  std::vector<ProvenanceEvent> Events() const;
  size_t size() const;

 private:
  const std::string run_id_;
  const std::string workflow_name_;
  const double started_;
  std::atomic<int64_t>* global_seq_;
  mutable std::mutex mu_;
  std::unique_ptr<ProvenanceStore> store_;
  bool sealed_ = false;
  int64_t dropped_after_seal_ = 0;
};

/// Merge-on-read over a set of shards: iteration in global append order
/// plus the scheduler-facing statistics queries, across any subset of a
/// service's runs (one submission's attempts, a queue, or everything).
/// A view is a cheap value object holding non-owning shard pointers; the
/// shards (retained by their manager) must outlive it. Reads take each
/// shard's lock one at a time — never two at once — so appenders only
/// ever contend with a reader on their own shard.
class ProvenanceView {
 public:
  ProvenanceView() = default;

  void AddShard(const ProvenanceShard* shard);
  size_t shard_count() const { return shards_.size(); }

  /// All events of all shards merged into global append order: ascending
  /// seq when every event was shard-stamped (the normal case, exactly
  /// the sequence a single shared store would hold), otherwise by
  /// timestamp with shard order breaking ties.
  std::vector<ProvenanceEvent> Events() const;

  /// Total events across the shards.
  size_t size() const;

  /// Latest observed runtime of `signature` on `node` across the viewed
  /// shards; NotFound when the pair was never observed. "Latest" follows
  /// merged order, matching a newest-to-oldest scan of a single store.
  Result<double> LatestRuntime(const std::string& signature,
                               int32_t node) const;

  /// All observed (node, runtime) samples for a signature in merged
  /// order, oldest first.
  std::vector<std::pair<int32_t, double>> RuntimeObservations(
      const std::string& signature) const;

  /// JSON-lines trace of the merged events (HDFS trace-file export).
  std::string ExportTrace() const { return SerializeTrace(Events()); }

 private:
  std::vector<const ProvenanceShard*> shards_;
};

/// Builds the store behind a new shard. The default factory produces
/// in-memory stores; src/provdb/ provides one that gives every shard its
/// own log segment under a common directory.
using ShardStoreFactory =
    std::function<Result<std::unique_ptr<ProvenanceStore>>(
        const std::string& run_id)>;

/// Front door used by the AMs: issues run ids, creates one shard per run
/// (BeginWorkflow), and answers cross-run queries through merged views.
/// Appends never pass through the manager — an AM holds its own shard —
/// so the manager's lock guards only shard creation and lookup.
class ProvenanceManager {
 public:
  /// In-memory shards.
  ProvenanceManager();
  /// Custom shard backends (e.g. per-shard ProvDb log segments). A
  /// factory failure falls back to an in-memory shard with an error log
  /// (provenance must never take the workflow down).
  explicit ProvenanceManager(ShardStoreFactory factory);

  /// Starts a new run: creates its shard, records the workflow-start
  /// event, and returns the run id. Run ids are unique per manager for
  /// the manager's lifetime (a counter, never reused), so several
  /// concurrent AMs — and successive failover attempts of one workflow —
  /// record interleaved without clobbering each other.
  std::string BeginWorkflow(const std::string& workflow_name, double now);

  /// The shard of a run, for direct appends (the AM holds this for its
  /// lifetime; shards are never destroyed before the manager).
  ProvenanceShard* shard(const std::string& run_id) const;

  /// Run ids of every shard, creation order.
  std::vector<std::string> RunIds() const;

  /// Explicit-run-id recording: routed to the run's shard. Convenient
  /// for tests and tools; hot paths append via shard() directly.
  void EndWorkflow(const std::string& run_id, double now, bool success);
  void RecordTaskStart(const std::string& run_id, const TaskSpec& task,
                       int32_t node, const std::string& node_name, double now);
  void RecordTaskEnd(const std::string& run_id, const TaskResult& result,
                     const std::string& node_name);
  void RecordFileStageIn(const std::string& run_id, TaskId task,
                         const std::string& path, int64_t size_bytes,
                         double transfer_seconds, double now);
  void RecordFileStageOut(const std::string& run_id, TaskId task,
                          const std::string& path, int64_t size_bytes,
                          double transfer_seconds, double now);

  /// Seals a run's shard without recording a workflow-end event (the AM
  /// died; there is no orderly end). Unknown runs are ignored.
  void SealRun(const std::string& run_id);

  /// Statistics queries over ALL shards (the scheduler-facing interface,
  /// Sec. 3.4), answered through a merged view.
  Result<double> LatestRuntime(const std::string& signature,
                               int32_t node) const;
  std::vector<std::pair<int32_t, double>> RuntimeObservations(
      const std::string& signature) const;

  /// View over every shard of this manager.
  ProvenanceView View() const;
  /// View over the shards of the named runs only (e.g. the prior
  /// attempts of one submission, for failover replay). Unknown run ids
  /// are skipped.
  ProvenanceView ViewOf(const std::vector<std::string>& run_ids) const;

  /// Merged events of all shards (View().Events()).
  std::vector<ProvenanceEvent> Events() const;
  /// Total events across all shards.
  size_t size() const;
  size_t shard_count() const;

  /// Adopts pre-existing history (a shard's store reopened from disk) as
  /// a sealed shard. The run counter and sequence counter advance past
  /// anything the store contains, so new runs never collide with it.
  Status AdoptShard(const std::string& run_id,
                    std::unique_ptr<ProvenanceStore> store);

  /// Drops every shard (the ablation harnesses wipe provenance between
  /// experiment phases). Outstanding shard pointers become dangling;
  /// only call between runs.
  void Clear();

 private:
  ProvenanceShard* ShardLocked(const std::string& run_id) const;

  mutable std::mutex mu_;  // guards the shard registry, never appends
  ShardStoreFactory factory_;
  std::vector<std::unique_ptr<ProvenanceShard>> shards_;  // creation order
  std::map<std::string, ProvenanceShard*, std::less<>> by_run_;
  std::atomic<int64_t> seq_{0};
  int64_t run_counter_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_CORE_PROVENANCE_H_
