#include "src/core/runtime_estimator.h"

#include <algorithm>

namespace hiway {

void RuntimeEstimator::LoadFromStore(const ProvenanceStore& store) {
  for (const ProvenanceEvent& ev : store.Events()) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.success &&
        ev.node >= 0) {
      Observe(ev.signature, ev.node, ev.duration);
    }
  }
}

void RuntimeEstimator::LoadFromView(const ProvenanceView& view) {
  for (const ProvenanceEvent& ev : view.Events()) {
    if (ev.type == ProvenanceEventType::kTaskEnd && ev.success &&
        ev.node >= 0) {
      Observe(ev.signature, ev.node, ev.duration);
    }
  }
}

void RuntimeEstimator::Observe(const std::string& signature, int32_t node,
                               double runtime) {
  runtime = std::max(runtime, 0.0);
  Cell& cell = cells_[{signature, node}];
  cell.latest = runtime;
  cell.sum += runtime;
  ++cell.count;
  Cell& sig = by_signature_[signature];
  sig.latest = runtime;
  sig.sum += runtime;
  ++sig.count;
  ++observation_count_;
}

double RuntimeEstimator::Estimate(const std::string& signature,
                                  int32_t node) const {
  auto it = cells_.find({signature, node});
  switch (strategy_) {
    case EstimationStrategy::kLatestObserved:
      return it == cells_.end() ? 0.0 : it->second.latest;
    case EstimationStrategy::kRunningMean:
      return it == cells_.end() ? 0.0
                                : it->second.sum /
                                      static_cast<double>(it->second.count);
    case EstimationStrategy::kLatestWithSignatureFallback: {
      if (it != cells_.end()) return it->second.latest;
      auto sig = by_signature_.find(signature);
      if (sig != by_signature_.end() && sig->second.count > 0) {
        return sig->second.sum / static_cast<double>(sig->second.count);
      }
      return 0.0;
    }
  }
  return 0.0;
}

bool RuntimeEstimator::HasObservation(const std::string& signature,
                                      int32_t node) const {
  return cells_.find({signature, node}) != cells_.end();
}

double RuntimeEstimator::MeanEstimate(const std::string& signature,
                                      int num_nodes) const {
  if (num_nodes <= 0) return 0.0;
  double total = 0.0;
  for (int n = 0; n < num_nodes; ++n) {
    total += Estimate(signature, n);
  }
  return total / num_nodes;
}

void RuntimeEstimator::Clear() {
  cells_.clear();
  by_signature_.clear();
  observation_count_ = 0;
}

}  // namespace hiway
