// Runtime estimation from provenance (Sec. 3.4 of the paper).
//
// The estimator answers "how long will a task with signature S take on
// node N?" from past observations. The paper's default strategy is to use
// the latest observed runtime for the exact (signature, node) pair and to
// assume zero for unobserved pairs, which deliberately drives exploration
// of new task-machine assignments. A running-mean strategy is provided for
// the A4 ablation.

#ifndef HIWAY_CORE_RUNTIME_ESTIMATOR_H_
#define HIWAY_CORE_RUNTIME_ESTIMATOR_H_

#include <map>
#include <string>
#include <utility>

#include "src/core/provenance.h"

namespace hiway {

enum class EstimationStrategy {
  /// Latest observed runtime of (signature, node); unseen -> 0 (paper
  /// default: optimistic, forces trying every assignment once).
  kLatestObserved,
  /// Arithmetic mean of all observations of (signature, node); unseen -> 0.
  kRunningMean,
  /// Like kLatestObserved, but an unseen pair falls back to the mean over
  /// *other* nodes for the same signature (and only then to 0) — a less
  /// exploratory variant for the estimator ablation.
  kLatestWithSignatureFallback,
};

class RuntimeEstimator {
 public:
  explicit RuntimeEstimator(
      EstimationStrategy strategy = EstimationStrategy::kLatestObserved)
      : strategy_(strategy) {}

  /// Bulk-loads observations from a provenance store (one linear scan).
  void LoadFromStore(const ProvenanceStore& store);

  /// Bulk-loads observations from a merged view over provenance shards
  /// (merged order, so "latest" matches a single-store load of the same
  /// schedule).
  void LoadFromView(const ProvenanceView& view);

  /// Records a fresh observation (called by the AM on task completion).
  void Observe(const std::string& signature, int32_t node, double runtime);

  /// Estimated runtime in seconds; never negative.
  double Estimate(const std::string& signature, int32_t node) const;

  /// True if (signature, node) has at least one observation.
  bool HasObservation(const std::string& signature, int32_t node) const;

  /// Mean of Estimate() across `num_nodes` nodes (HEFT's w̄ term).
  double MeanEstimate(const std::string& signature, int num_nodes) const;

  /// Total observations recorded.
  int64_t observation_count() const { return observation_count_; }

  EstimationStrategy strategy() const { return strategy_; }

  void Clear();

 private:
  struct Cell {
    double latest = 0.0;
    double sum = 0.0;
    int64_t count = 0;
  };

  EstimationStrategy strategy_;
  std::map<std::pair<std::string, int32_t>, Cell> cells_;
  /// Per-signature aggregate for the fallback strategy.
  std::map<std::string, Cell> by_signature_;
  int64_t observation_count_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_CORE_RUNTIME_ESTIMATOR_H_
