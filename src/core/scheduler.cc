#include "src/core/scheduler.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hiway {

// ---------------------------------------------------------------- FCFS ----

void FcfsScheduler::EnqueueReady(const TaskSpec& task) {
  queue_.push_back(task);
}

ContainerRequest FcfsScheduler::RequestFor(const TaskSpec& task) {
  ContainerRequest r;
  r.vcores = task.vcores;
  r.memory_mb = task.memory_mb;
  return r;
}

std::optional<TaskId> FcfsScheduler::SelectTask(NodeId node) {
  (void)node;
  if (queue_.empty()) return std::nullopt;
  TaskId id = queue_.front().id;
  queue_.pop_front();
  return id;
}

void FcfsScheduler::RemoveTask(TaskId id) {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [id](const TaskSpec& t) { return t.id == id; }),
               queue_.end());
}

// ---------------------------------------------------------- data-aware ----

void DataAwareScheduler::EnqueueReady(const TaskSpec& task) {
  queue_.push_back(task);
}

int64_t DataAwareScheduler::EffectiveLocalBytes(const std::string& path,
                                                NodeId node) const {
  int64_t local = dfs_->LocalBytes(path, node);
  if (staging_ != nullptr) {
    // A staged copy only counts while it matches the file's current
    // content; CachedBytes checks the fingerprint and never perturbs
    // the cache's LRU order.
    local = std::max(
        local, staging_->CachedBytes(path, dfs_->ContentId(path), node));
  }
  return local;
}

ContainerRequest DataAwareScheduler::RequestFor(const TaskSpec& task) {
  ContainerRequest r;
  r.vcores = task.vcores;
  r.memory_mb = task.memory_mb;
  // Prefer the node with the most input data, but allow any (relaxed
  // locality): the *selection* step re-optimises against the node YARN
  // actually hands us.
  int64_t best_bytes = -1;
  NodeId best_node = kInvalidNode;
  for (NodeId n = 0; n < dfs_->cluster()->num_nodes(); ++n) {
    int64_t local = 0;
    for (const std::string& path : task.input_files) {
      local += EffectiveLocalBytes(path, n);
    }
    if (local > best_bytes) {
      best_bytes = local;
      best_node = n;
    }
  }
  if (best_bytes > 0) r.preferred_node = best_node;
  return r;
}

std::optional<TaskId> DataAwareScheduler::SelectTask(NodeId node) {
  if (queue_.empty()) return std::nullopt;
  // "skims through all tasks pending execution, from which it selects the
  // task with the highest fraction of input data available locally"
  // (Sec. 3.4). Ties resolve FIFO.
  double best_fraction = -1.0;
  size_t best_index = 0;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const TaskSpec& task = queue_[i];
    int64_t total = 0;
    int64_t local = 0;
    for (const std::string& path : task.input_files) {
      auto info = dfs_->Stat(path);
      if (info.ok()) total += info->size_bytes;
      local += EffectiveLocalBytes(path, node);
    }
    double fraction =
        total > 0 ? static_cast<double>(local) / static_cast<double>(total)
                  : 0.0;
    if (fraction > best_fraction + 1e-12) {
      best_fraction = fraction;
      best_index = i;
    }
  }
  TaskId id = queue_[best_index].id;
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(best_index));
  return id;
}

void DataAwareScheduler::RemoveTask(TaskId id) {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [id](const TaskSpec& t) { return t.id == id; }),
               queue_.end());
}

// ---------------------------------------------------------- round-robin ---

namespace {

/// Kahn topological order; tasks missing from `deps` count as sources.
/// Returns InvalidArgument on cycles.
Result<std::vector<const TaskSpec*>> TopologicalOrder(
    const std::vector<TaskSpec>& tasks, const TaskDependencies& deps) {
  std::map<TaskId, const TaskSpec*> by_id;
  std::map<TaskId, int> in_degree;
  std::map<TaskId, std::vector<TaskId>> dependents;
  for (const TaskSpec& t : tasks) {
    by_id[t.id] = &t;
    in_degree[t.id] = 0;
  }
  for (const auto& [task, parents] : deps) {
    for (TaskId parent : parents) {
      if (by_id.find(parent) == by_id.end()) continue;
      ++in_degree[task];
      dependents[parent].push_back(task);
    }
  }
  std::deque<TaskId> frontier;
  for (const TaskSpec& t : tasks) {
    if (in_degree[t.id] == 0) frontier.push_back(t.id);
  }
  std::vector<const TaskSpec*> order;
  while (!frontier.empty()) {
    TaskId id = frontier.front();
    frontier.pop_front();
    order.push_back(by_id[id]);
    for (TaskId dep : dependents[id]) {
      if (--in_degree[dep] == 0) frontier.push_back(dep);
    }
  }
  if (order.size() != tasks.size()) {
    return Status::InvalidArgument("task graph contains a cycle");
  }
  return order;
}

}  // namespace

Status RoundRobinScheduler::BuildStaticSchedule(
    const std::vector<TaskSpec>& tasks, const TaskDependencies& deps,
    const std::vector<NodeId>& nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("round-robin needs at least one node");
  }
  HIWAY_ASSIGN_OR_RETURN(std::vector<const TaskSpec*> order,
                         TopologicalOrder(tasks, deps));
  size_t next = 0;
  for (const TaskSpec* t : order) {
    assignment_[t->id] = nodes[next];
    next = (next + 1) % nodes.size();
  }
  return Status::OK();
}

void RoundRobinScheduler::EnqueueReady(const TaskSpec& task) {
  auto it = assignment_.find(task.id);
  HIWAY_CHECK(it != assignment_.end());
  ready_per_node_[it->second].push_back(task);
  ++queued_;
}

ContainerRequest RoundRobinScheduler::RequestFor(const TaskSpec& task) {
  ContainerRequest r;
  r.vcores = task.vcores;
  r.memory_mb = task.memory_mb;
  auto it = assignment_.find(task.id);
  HIWAY_CHECK(it != assignment_.end());
  r.preferred_node = it->second;
  r.strict_locality = true;  // static schedules pin their placements
  return r;
}

std::optional<TaskId> RoundRobinScheduler::SelectTask(NodeId node) {
  auto it = ready_per_node_.find(node);
  if (it == ready_per_node_.end() || it->second.empty()) return std::nullopt;
  TaskId id = it->second.front().id;
  it->second.pop_front();
  --queued_;
  return id;
}

void RoundRobinScheduler::RemoveTask(TaskId id) {
  for (auto& [node, queue] : ready_per_node_) {
    size_t before = queue.size();
    queue.erase(std::remove_if(queue.begin(), queue.end(),
                               [id](const TaskSpec& t) { return t.id == id; }),
                queue.end());
    queued_ -= before - queue.size();
  }
}

size_t RoundRobinScheduler::QueuedCount() const { return queued_; }

Result<NodeId> RoundRobinScheduler::AssignedNode(TaskId id) const {
  auto it = assignment_.find(id);
  if (it == assignment_.end()) return Status::NotFound("task not scheduled");
  return it->second;
}

// ----------------------------------------------------------------- HEFT ---

Status HeftScheduler::BuildStaticSchedule(const std::vector<TaskSpec>& tasks,
                                          const TaskDependencies& deps,
                                          const std::vector<NodeId>& nodes) {
  if (nodes.empty()) {
    return Status::InvalidArgument("HEFT needs at least one node");
  }
  HIWAY_ASSIGN_OR_RETURN(std::vector<const TaskSpec*> order,
                         TopologicalOrder(tasks, deps));

  // Successor lists for the upward-rank recursion.
  std::map<TaskId, std::vector<TaskId>> successors;
  for (const auto& [task, parents] : deps) {
    for (TaskId parent : parents) successors[parent].push_back(task);
  }
  std::map<TaskId, const TaskSpec*> by_id;
  for (const TaskSpec& t : tasks) by_id[t.id] = &t;

  // rank_u(t) = w̄(t) + max over successors of rank_u(succ); computed in
  // reverse topological order. w̄ averages the estimates over the
  // schedulable nodes.
  auto mean_estimate = [&](const std::string& signature) {
    double total = 0.0;
    for (NodeId n : nodes) total += estimator_->Estimate(signature, n);
    return total / static_cast<double>(nodes.size());
  };
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TaskSpec* t = *it;
    double succ_rank = 0.0;
    for (TaskId s : successors[t->id]) {
      succ_rank = std::max(succ_rank, rank_[s]);
    }
    rank_[t->id] = mean_estimate(t->signature) + succ_rank;
  }

  // Placement: tasks by decreasing rank onto the node with the earliest
  // estimated finish time. EST respects both the node's accumulated load
  // and the estimated finish times of the task's parents.
  std::vector<const TaskSpec*> by_rank(order.begin(), order.end());
  std::stable_sort(by_rank.begin(), by_rank.end(),
                   [this](const TaskSpec* a, const TaskSpec* b) {
                     return rank_[a->id] > rank_[b->id];
                   });
  std::map<NodeId, double> node_free;
  std::map<NodeId, int> node_tasks;
  for (NodeId n : nodes) {
    node_free[n] = 0.0;
    node_tasks[n] = 0;
  }
  std::map<TaskId, double> finish_time;
  for (const TaskSpec* t : by_rank) {
    double parents_done = 0.0;
    auto dep_it = deps.find(t->id);
    if (dep_it != deps.end()) {
      for (TaskId parent : dep_it->second) {
        auto fit = finish_time.find(parent);
        if (fit != finish_time.end()) {
          parents_done = std::max(parents_done, fit->second);
        }
      }
    }
    // EFT ties (common while estimates default to zero) break towards the
    // least-loaded node, so exploration spreads over all unobserved
    // machines instead of herding onto one.
    double best_eft = std::numeric_limits<double>::infinity();
    int best_count = std::numeric_limits<int>::max();
    NodeId best_node = nodes.front();
    for (NodeId n : nodes) {
      double est = std::max(node_free[n], parents_done);
      double eft = est + estimator_->Estimate(t->signature, n);
      if (eft < best_eft - 1e-12 ||
          (eft < best_eft + 1e-12 && node_tasks[n] < best_count)) {
        best_eft = eft;
        best_count = node_tasks[n];
        best_node = n;
      }
    }
    assignment_[t->id] = best_node;
    node_free[best_node] = best_eft;
    ++node_tasks[best_node];
    finish_time[t->id] = best_eft;
  }
  return Status::OK();
}

void HeftScheduler::EnqueueReady(const TaskSpec& task) {
  auto it = assignment_.find(task.id);
  HIWAY_CHECK(it != assignment_.end());
  // Keep the per-node queue ordered by decreasing rank so critical tasks
  // launch first.
  auto& queue = ready_per_node_[it->second];
  double r = rank_[task.id];
  auto pos = std::find_if(queue.begin(), queue.end(),
                          [this, r](const TaskSpec& t) {
                            return rank_.at(t.id) < r;
                          });
  queue.insert(pos, task);
  ++queued_;
}

ContainerRequest HeftScheduler::RequestFor(const TaskSpec& task) {
  ContainerRequest r;
  r.vcores = task.vcores;
  r.memory_mb = task.memory_mb;
  auto it = assignment_.find(task.id);
  HIWAY_CHECK(it != assignment_.end());
  r.preferred_node = it->second;
  r.strict_locality = true;
  return r;
}

std::optional<TaskId> HeftScheduler::SelectTask(NodeId node) {
  auto it = ready_per_node_.find(node);
  if (it == ready_per_node_.end() || it->second.empty()) return std::nullopt;
  TaskId id = it->second.front().id;
  it->second.pop_front();
  --queued_;
  return id;
}

void HeftScheduler::RemoveTask(TaskId id) {
  for (auto& [node, queue] : ready_per_node_) {
    size_t before = queue.size();
    queue.erase(std::remove_if(queue.begin(), queue.end(),
                               [id](const TaskSpec& t) { return t.id == id; }),
                queue.end());
    queued_ -= before - queue.size();
  }
}

size_t HeftScheduler::QueuedCount() const { return queued_; }

Result<NodeId> HeftScheduler::AssignedNode(TaskId id) const {
  auto it = assignment_.find(id);
  if (it == assignment_.end()) return Status::NotFound("task not scheduled");
  return it->second;
}

Result<double> HeftScheduler::UpwardRank(TaskId id) const {
  auto it = rank_.find(id);
  if (it == rank_.end()) return Status::NotFound("task not ranked");
  return it->second;
}

// ----------------------------------------------------------- online MCT ---

void OnlineMctScheduler::EnqueueReady(const TaskSpec& task) {
  queue_.push_back(task);
}

ContainerRequest OnlineMctScheduler::RequestFor(const TaskSpec& task) {
  ContainerRequest r;
  r.vcores = task.vcores;
  r.memory_mb = task.memory_mb;
  // Prefer the node with the best runtime estimate, relaxed so any free
  // node may still serve the request.
  double best = std::numeric_limits<double>::infinity();
  for (NodeId n = 0; n < num_nodes_; ++n) {
    if (!estimator_->HasObservation(task.signature, n)) continue;
    double est = estimator_->Estimate(task.signature, n);
    if (est < best) {
      best = est;
      r.preferred_node = n;
    }
  }
  return r;
}

std::optional<TaskId> OnlineMctScheduler::SelectTask(NodeId node) {
  if (queue_.empty()) return std::nullopt;
  // Pick the task for which this node is comparatively strongest:
  // minimise estimate(sig, node) / mean(sig). Unobserved pairs score 0
  // (optimistic exploration, matching the estimator's default); overall
  // ties resolve FIFO.
  double best_score = std::numeric_limits<double>::infinity();
  size_t best_index = 0;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const TaskSpec& task = queue_[i];
    double mean = estimator_->MeanEstimate(task.signature, num_nodes_);
    double score;
    if (!estimator_->HasObservation(task.signature, node) || mean <= 0.0) {
      score = 0.0;
    } else {
      score = estimator_->Estimate(task.signature, node) / mean;
    }
    if (score < best_score - 1e-12) {
      best_score = score;
      best_index = i;
    }
  }
  if (best_score > decline_threshold_ &&
      declines_since_dispatch_ < num_nodes_) {
    // This node is comparatively terrible for everything we have queued;
    // decline the container (the driver re-requests elsewhere). The
    // decline budget guarantees progress even if every node looks bad.
    ++declines_since_dispatch_;
    return std::nullopt;
  }
  declines_since_dispatch_ = 0;
  TaskId id = queue_[best_index].id;
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(best_index));
  return id;
}

void OnlineMctScheduler::RemoveTask(TaskId id) {
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [id](const TaskSpec& t) { return t.id == id; }),
               queue_.end());
}

// -------------------------------------------------------------- factory ---

Result<std::unique_ptr<WorkflowScheduler>> MakeScheduler(
    const std::string& policy, Dfs* dfs, const RuntimeEstimator* estimator,
    const StagingCache* staging) {
  if (policy == "fcfs") {
    return std::unique_ptr<WorkflowScheduler>(new FcfsScheduler());
  }
  if (policy == "data-aware") {
    if (dfs == nullptr) {
      return Status::InvalidArgument("data-aware scheduling requires a DFS");
    }
    return std::unique_ptr<WorkflowScheduler>(
        new DataAwareScheduler(dfs, staging));
  }
  if (policy == "round-robin") {
    return std::unique_ptr<WorkflowScheduler>(new RoundRobinScheduler());
  }
  if (policy == "heft") {
    if (estimator == nullptr) {
      return Status::InvalidArgument("HEFT requires a runtime estimator");
    }
    return std::unique_ptr<WorkflowScheduler>(new HeftScheduler(estimator));
  }
  if (policy == "online-mct") {
    if (estimator == nullptr || dfs == nullptr) {
      return Status::InvalidArgument(
          "online-mct requires a runtime estimator and a cluster");
    }
    return std::unique_ptr<WorkflowScheduler>(
        new OnlineMctScheduler(estimator, dfs->cluster()->num_nodes()));
  }
  return Status::InvalidArgument("unknown scheduling policy: " + policy);
}

}  // namespace hiway
