// Workflow Scheduler framework (Sec. 3.4 of the paper).
//
// The Workflow Scheduler decides, above YARN's resource-level scheduling,
// which *task* runs in which *container*. Four policies from the paper:
//
//  * FCFS           — queue order, no placement preference.
//  * data-aware     — Hi-WAY's default: pick the pending task with the
//                     largest fraction of its input already local (in
//                     HDFS) to the node hosting the fresh container.
//  * round-robin    — static: tasks assigned to nodes in turn at onset.
//  * HEFT           — static and adaptive: placements minimise estimated
//                     finish times computed from provenance statistics.
//
// Static policies need the full task graph up front and are therefore
// incompatible with iterative (Cuneiform) workflows — the driver enforces
// this, mirroring the paper.

#ifndef HIWAY_CORE_SCHEDULER_H_
#define HIWAY_CORE_SCHEDULER_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/staging_cache.h"
#include "src/core/runtime_estimator.h"
#include "src/hdfs/dfs.h"
#include "src/lang/workflow.h"
#include "src/yarn/yarn.h"

namespace hiway {

/// Dependency edges of a static task graph: deps[t] = tasks t reads from.
using TaskDependencies = std::map<TaskId, std::vector<TaskId>>;

class WorkflowScheduler {
 public:
  virtual ~WorkflowScheduler() = default;

  virtual std::string name() const = 0;

  /// Static schedulers pre-build a full placement and pin containers.
  virtual bool IsStatic() const { return false; }

  /// Called once with the complete task graph (static schedulers only).
  /// `nodes` are the compute nodes that can actually host task containers
  /// (dedicated master VMs are excluded).
  virtual Status BuildStaticSchedule(const std::vector<TaskSpec>& tasks,
                                     const TaskDependencies& deps,
                                     const std::vector<NodeId>& nodes) {
    (void)tasks;
    (void)deps;
    (void)nodes;
    return Status::OK();
  }

  /// A task's data dependencies are met; it now awaits a container.
  virtual void EnqueueReady(const TaskSpec& task) = 0;

  /// The container request the AM should submit on behalf of this ready
  /// task. Note the allocated container is matched to *some* queued task
  /// by SelectTask, not necessarily this one.
  virtual ContainerRequest RequestFor(const TaskSpec& task) = 0;

  /// Picks (and removes) a queued task to run in a container on `node`;
  /// nullopt if no queued task may run there.
  virtual std::optional<TaskId> SelectTask(NodeId node) = 0;

  /// Removes a task from the queue without running it (e.g. workflow
  /// abort). Unknown ids are ignored.
  virtual void RemoveTask(TaskId id) = 0;

  virtual size_t QueuedCount() const = 0;
};

/// First-come-first-served: the policy "most established SWfMSs employ".
class FcfsScheduler : public WorkflowScheduler {
 public:
  std::string name() const override { return "fcfs"; }
  void EnqueueReady(const TaskSpec& task) override;
  ContainerRequest RequestFor(const TaskSpec& task) override;
  std::optional<TaskId> SelectTask(NodeId node) override;
  void RemoveTask(TaskId id) override;
  size_t QueuedCount() const override { return queue_.size(); }

 private:
  std::deque<TaskSpec> queue_;
};

/// Hi-WAY's default policy for I/O-intensive workflows: selects the task
/// with the highest fraction of input bytes already on the container's
/// node, minimising transfer over the switch. With a staging cache
/// attached, bytes a node retained from earlier stage-ins count as local
/// too — a cached copy is as cheap as an HDFS block replica, so warm
/// nodes attract the tasks whose inputs they already hold.
class DataAwareScheduler : public WorkflowScheduler {
 public:
  explicit DataAwareScheduler(Dfs* dfs,
                              const StagingCache* staging = nullptr)
      : dfs_(dfs), staging_(staging) {}
  std::string name() const override { return "data-aware"; }
  void EnqueueReady(const TaskSpec& task) override;
  ContainerRequest RequestFor(const TaskSpec& task) override;
  std::optional<TaskId> SelectTask(NodeId node) override;
  void RemoveTask(TaskId id) override;
  size_t QueuedCount() const override { return queue_.size(); }

 private:
  /// Bytes of `path` effectively local to `node`: HDFS block replicas or
  /// a fresh staging-cache copy, whichever is larger.
  int64_t EffectiveLocalBytes(const std::string& path, NodeId node) const;

  Dfs* dfs_;
  const StagingCache* staging_;
  std::deque<TaskSpec> queue_;  // FIFO among locality ties
};

/// Static round-robin: tasks are dealt to nodes in turn (topological
/// order), and each container is pinned to its task's node.
class RoundRobinScheduler : public WorkflowScheduler {
 public:
  std::string name() const override { return "round-robin"; }
  bool IsStatic() const override { return true; }
  Status BuildStaticSchedule(const std::vector<TaskSpec>& tasks,
                             const TaskDependencies& deps,
                             const std::vector<NodeId>& nodes) override;
  void EnqueueReady(const TaskSpec& task) override;
  ContainerRequest RequestFor(const TaskSpec& task) override;
  std::optional<TaskId> SelectTask(NodeId node) override;
  void RemoveTask(TaskId id) override;
  size_t QueuedCount() const override;

  /// Node a task was assigned to (tests / diagnostics).
  Result<NodeId> AssignedNode(TaskId id) const;

 private:
  std::map<TaskId, NodeId> assignment_;
  std::map<NodeId, std::deque<TaskSpec>> ready_per_node_;
  size_t queued_ = 0;
};

/// Heterogeneous Earliest Finish Time [Topcuoglu et al. 2002], driven by
/// provenance-based runtime estimates. Upward ranks order the tasks;
/// each is placed on the node with the earliest estimated finish time.
/// Unobserved (signature, node) pairs estimate 0, encouraging exploration
/// exactly as described in Sec. 3.4.
class HeftScheduler : public WorkflowScheduler {
 public:
  explicit HeftScheduler(const RuntimeEstimator* estimator)
      : estimator_(estimator) {}
  std::string name() const override { return "heft"; }
  bool IsStatic() const override { return true; }
  Status BuildStaticSchedule(const std::vector<TaskSpec>& tasks,
                             const TaskDependencies& deps,
                             const std::vector<NodeId>& nodes) override;
  void EnqueueReady(const TaskSpec& task) override;
  ContainerRequest RequestFor(const TaskSpec& task) override;
  std::optional<TaskId> SelectTask(NodeId node) override;
  void RemoveTask(TaskId id) override;
  size_t QueuedCount() const override;

  Result<NodeId> AssignedNode(TaskId id) const;
  Result<double> UpwardRank(TaskId id) const;

 private:
  const RuntimeEstimator* estimator_;
  std::map<TaskId, NodeId> assignment_;
  std::map<TaskId, double> rank_;
  std::map<NodeId, std::deque<TaskSpec>> ready_per_node_;  // rank-ordered
  size_t queued_ = 0;
};

/// Online minimum-completion-time: a *dynamic* adaptive policy (the
/// paper's Sec. 3.4 notes such policies were "in the process of being
/// integrated"). No pre-built schedule: when a container on node n is
/// allocated, pick the queued task whose estimated runtime on n is lowest
/// relative to its mean across nodes — i.e. the task for which this node
/// is comparatively best — falling back to FIFO among unobserved tasks.
/// Unlike HEFT it tolerates iterative workflows, and unlike plain FCFS it
/// exploits provenance statistics without pinning placements.
/// Additionally, the policy *declines* a container when the node is
/// estimated markedly slower than average for every queued task
/// (SelectTask returns nullopt); the driver then hands the container back
/// and re-requests with the node blacklisted.
class OnlineMctScheduler : public WorkflowScheduler {
 public:
  /// `decline_threshold`: decline when even the best queued task is
  /// estimated this many times slower than its cross-node mean here.
  OnlineMctScheduler(const RuntimeEstimator* estimator, int num_nodes,
                     double decline_threshold = 1.5)
      : estimator_(estimator),
        num_nodes_(num_nodes),
        decline_threshold_(decline_threshold) {}
  std::string name() const override { return "online-mct"; }
  void EnqueueReady(const TaskSpec& task) override;
  ContainerRequest RequestFor(const TaskSpec& task) override;
  std::optional<TaskId> SelectTask(NodeId node) override;
  void RemoveTask(TaskId id) override;
  size_t QueuedCount() const override { return queue_.size(); }

 private:
  const RuntimeEstimator* estimator_;
  int num_nodes_;
  double decline_threshold_;
  int declines_since_dispatch_ = 0;
  std::deque<TaskSpec> queue_;
};

/// Factory: "fcfs", "data-aware", "round-robin", "heft", "online-mct".
/// `staging` (optional) lets the data-aware policy rank staging-cache
/// copies alongside HDFS block locality.
Result<std::unique_ptr<WorkflowScheduler>> MakeScheduler(
    const std::string& policy, Dfs* dfs, const RuntimeEstimator* estimator,
    const StagingCache* staging = nullptr);

}  // namespace hiway

#endif  // HIWAY_CORE_SCHEDULER_H_
