#include "src/core/task_executor.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace hiway {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}

// ------------------------------------------------------ DfsStorageAdapter -

Result<int64_t> DfsStorageAdapter::FileSize(const std::string& path) const {
  HIWAY_ASSIGN_OR_RETURN(DfsFileInfo info, dfs_->Stat(path));
  return info.size_bytes;
}

void DfsStorageAdapter::StageIn(
    const std::string& path, NodeId node,
    std::function<void(Status, int64_t, double)> done) {
  auto info = dfs_->Stat(path);
  if (!info.ok()) {
    Status st = info.status();
    dfs_->cluster()->engine()->ScheduleAfter(
        0.0, [done = std::move(done), st] { done(st, 0, 0.0); });
    return;
  }
  int64_t bytes = info->size_bytes;
  uint64_t content = info->content_id;
  SimEngine* engine = dfs_->cluster()->engine();
  if (staging_ != nullptr && staging_->HitAndPin(node, path, content)) {
    // The node already holds this exact content from an earlier task or
    // workflow: no DFS read, the stage-in is free. Pinned until the
    // attempt releases its inputs.
    engine->ScheduleAfter(0.0, [done = std::move(done), bytes] {
      done(Status::OK(), bytes, 0.0);
    });
    return;
  }
  double started = engine->Now();
  StagingCache* staging = staging_;
  dfs_->ReadToNode(path, node,
                   [done = std::move(done), path, node, bytes, content,
                    started, engine, staging](Status st) {
                     if (st.ok() && staging != nullptr) {
                       // Keep the fresh local copy for later attempts on
                       // this node (pinned: the reader uses it now).
                       staging->InsertPinned(node, path, content, bytes);
                     }
                     done(st, bytes, engine->Now() - started);
                   });
}

void DfsStorageAdapter::ReleaseInputs(const std::vector<std::string>& paths,
                                      NodeId node) {
  if (staging_ == nullptr) return;
  for (const std::string& path : paths) {
    staging_->Unpin(node, path);
  }
}

void DfsStorageAdapter::StageOut(const std::string& path, int64_t size_bytes,
                                 NodeId node,
                                 std::function<void(Status)> done) {
  // Output-committer semantics: a retried attempt replaces whatever a
  // previous attempt of the same task left behind (HDFS-side this is a
  // temp-file + rename; here the metadata swap suffices).
  if (dfs_->Exists(path)) {
    (void)dfs_->Delete(path);
  }
  dfs_->WriteFromNode(path, size_bytes, node, std::move(done));
}

void DfsStorageAdapter::ScratchIo(double scratch_mb, NodeId node,
                                  std::function<void(Status)> done) {
  // Hi-WAY scratch hits the node-local disk ("both HDFS as well as the
  // storage of YARN containers reside on the local file system").
  FlowSpec spec;
  spec.resources = dfs_->cluster()->LocalDiskPath(node);
  spec.demand = std::max(scratch_mb, 1e-6);
  spec.on_complete = [done = std::move(done)] { done(Status::OK()); };
  dfs_->cluster()->net()->StartFlow(std::move(spec));
}

// --------------------------------------------- SharedVolumeStorageAdapter -

Result<int64_t> SharedVolumeStorageAdapter::FileSize(
    const std::string& path) const {
  auto it = catalog_.find(path);
  if (it == catalog_.end()) {
    return Status::NotFound("no such file on shared volume: " + path);
  }
  return it->second;
}

void SharedVolumeStorageAdapter::StageIn(
    const std::string& path, NodeId node,
    std::function<void(Status, int64_t, double)> done) {
  auto it = catalog_.find(path);
  if (it == catalog_.end()) {
    Status st = Status::NotFound("no such file on shared volume: " + path);
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done), st] { done(st, 0, 0.0); });
    return;
  }
  int64_t bytes = it->second;
  double started = cluster_->engine()->Now();
  SimEngine* engine = cluster_->engine();
  FlowSpec spec;
  spec.resources = cluster_->EbsPath(node);
  spec.demand = std::max(static_cast<double>(bytes) / kBytesPerMb, 1e-6);
  spec.rate_cap = client_mbps_;
  spec.on_complete = [done = std::move(done), bytes, started, engine] {
    done(Status::OK(), bytes, engine->Now() - started);
  };
  cluster_->net()->StartFlow(std::move(spec));
}

void SharedVolumeStorageAdapter::StageOut(const std::string& path,
                                          int64_t size_bytes, NodeId node,
                                          std::function<void(Status)> done) {
  catalog_[path] = size_bytes;
  FlowSpec spec;
  spec.resources = cluster_->EbsPath(node);
  spec.demand = std::max(static_cast<double>(size_bytes) / kBytesPerMb, 1e-6);
  spec.rate_cap = client_mbps_;
  spec.on_complete = [done = std::move(done)] { done(Status::OK()); };
  cluster_->net()->StartFlow(std::move(spec));
}

void SharedVolumeStorageAdapter::ScratchIo(double scratch_mb, NodeId node,
                                           std::function<void(Status)> done) {
  // CloudMan keeps even transient data on the shared volume (the paper
  // attributes the Fig. 8 gap exactly to this).
  FlowSpec spec;
  spec.resources = cluster_->EbsPath(node);
  spec.demand = std::max(scratch_mb, 1e-6);
  spec.rate_cap = client_mbps_;
  spec.on_complete = [done = std::move(done)] { done(Status::OK()); };
  cluster_->net()->StartFlow(std::move(spec));
}

void SharedVolumeStorageAdapter::AddFile(const std::string& path,
                                         int64_t size_bytes) {
  catalog_[path] = size_bytes;
}

bool SharedVolumeStorageAdapter::Exists(const std::string& path) const {
  return catalog_.find(path) != catalog_.end();
}

// ------------------------------------------------------------ TaskExecutor -

struct TaskExecutor::Attempt {
  TaskSpec task;
  NodeId node = kInvalidNode;
  int vcores = 1;
  std::function<void(TaskAttemptOutcome)> done;
  TaskAttemptOutcome outcome;
  const ToolProfile* profile = nullptr;
  int prior_invocations = 0;
  int64_t input_bytes = 0;
  int stage_in_pending = 0;
  Status stage_in_status;
  double stage_in_started = 0.0;
  double stage_out_started = 0.0;
  int stage_out_pending = 0;
  bool delivered = false;
};

void TaskExecutor::Execute(const TaskSpec& task, NodeId node, int vcores,
                           std::function<void(TaskAttemptOutcome)> done) {
  auto attempt = std::make_shared<Attempt>();
  attempt->task = task;
  attempt->node = node;
  attempt->vcores = std::max(vcores, 1);
  attempt->done = std::move(done);
  attempt->outcome.result.id = task.id;
  attempt->outcome.result.signature = task.signature;
  attempt->outcome.result.node = node;
  attempt->outcome.result.started_at = cluster_->engine()->Now();

  auto profile = tools_->FindForInvocation(task.ToolName(),
                                           &attempt->prior_invocations);
  if (!profile.ok()) {
    Finish(attempt, profile.status());
    return;
  }
  attempt->profile = *profile;
  StartStageIn(attempt);
}

void TaskExecutor::StartStageIn(std::shared_ptr<Attempt> attempt) {
  attempt->stage_in_started = cluster_->engine()->Now();
  if (attempt->task.input_files.empty()) {
    StartInvoke(attempt);
    return;
  }
  attempt->stage_in_pending =
      static_cast<int>(attempt->task.input_files.size());
  for (const std::string& path : attempt->task.input_files) {
    storage_->StageIn(
        path, attempt->node,
        [this, attempt, path](Status st, int64_t bytes, double seconds) {
          attempt->input_bytes += bytes;
          attempt->outcome.transfers.push_back(
              TaskAttemptOutcome::FileTransfer{path, bytes, seconds, true});
          if (!st.ok() && attempt->stage_in_status.ok()) {
            attempt->stage_in_status = st;
          }
          if (--attempt->stage_in_pending == 0) {
            attempt->outcome.result.stage_in_seconds =
                cluster_->engine()->Now() - attempt->stage_in_started;
            if (!attempt->stage_in_status.ok()) {
              Finish(attempt, attempt->stage_in_status.WithContext(
                                  "stage-in failed"));
            } else {
              StartInvoke(attempt);
            }
          }
        });
  }
}

void TaskExecutor::StartInvoke(std::shared_ptr<Attempt> attempt) {
  const ToolProfile& profile = *attempt->profile;
  double input_mb = static_cast<double>(attempt->input_bytes) / kBytesPerMb;
  double work =
      profile.fixed_cpu_seconds + profile.cpu_seconds_per_mb * input_mb;
  if (profile.runtime_noise_sigma > 0.0) {
    work *= rng_.LogNormal(1.0, profile.runtime_noise_sigma);
  }
  // Node heterogeneity: faster nodes burn through core-seconds quicker.
  double speed = cluster_->node(attempt->node).speed_factor;
  if (speed > 0.0) work /= speed;
  double threads = static_cast<double>(
      std::min(profile.max_threads, std::max(attempt->vcores, 1)));
  double scratch_mb = profile.scratch_mb_per_input_mb * input_mb;

  FlowSpec spec;
  spec.resources = {cluster_->cpu(attempt->node)};
  spec.demand = std::max(work, 1e-6);
  spec.rate_cap = threads;
  spec.on_complete = [this, attempt, scratch_mb] {
    // Transient tool failures surface after the compute phase (a crashed
    // tool has already burned its runtime).
    if (attempt->profile->failure_probability > 0.0 &&
        rng_.NextDouble() < attempt->profile->failure_probability) {
      Finish(attempt,
             Status::RuntimeError(StrFormat(
                 "tool %s exited non-zero (injected transient failure)",
                 attempt->profile->name.c_str())));
      return;
    }
    if (scratch_mb > 0.0) {
      StartScratch(attempt, scratch_mb);
    } else {
      StartStageOut(attempt);
    }
  };
  cluster_->net()->StartFlow(std::move(spec));
}

void TaskExecutor::StartScratch(std::shared_ptr<Attempt> attempt,
                                double scratch_mb) {
  storage_->ScratchIo(scratch_mb, attempt->node,
                      [this, attempt](Status st) {
                        if (!st.ok()) {
                          Finish(attempt, st.WithContext("scratch I/O failed"));
                          return;
                        }
                        StartStageOut(attempt);
                      });
}

void TaskExecutor::StartStageOut(std::shared_ptr<Attempt> attempt) {
  // Synthesize stdout before stage-out so value-only tasks still work.
  const ToolProfile& profile = *attempt->profile;
  if (profile.stdout_fn) {
    ToolInvocation inv;
    inv.task = &attempt->task;
    inv.prior_invocations = attempt->prior_invocations;
    inv.input_bytes = attempt->input_bytes;
    attempt->outcome.result.stdout_value = profile.stdout_fn(inv);
  }

  attempt->stage_out_started = cluster_->engine()->Now();

  // Determine file output sizes.
  std::vector<std::pair<std::string, int64_t>> files;
  int file_outputs = 0;
  for (const OutputSpec& out : attempt->task.outputs) {
    if (!out.is_value) ++file_outputs;
  }
  // Task-level output-ratio override (e.g. cram=1 experiments).
  double ratio = profile.output_ratio;
  auto ratio_param = attempt->task.params.find("output_ratio");
  if (ratio_param != attempt->task.params.end()) {
    auto parsed = ParseDouble(ratio_param->second);
    if (parsed.ok()) ratio = *parsed;
  }
  for (const OutputSpec& out : attempt->task.outputs) {
    if (out.is_value) continue;
    int64_t size;
    if (out.size_bytes.has_value()) {
      size = *out.size_bytes;
    } else {
      double param_ratio = ratio / std::max(file_outputs, 1);
      auto it = profile.output_ratio_by_param.find(out.param);
      if (it != profile.output_ratio_by_param.end()) param_ratio = it->second;
      size = static_cast<int64_t>(
          static_cast<double>(attempt->input_bytes) * param_ratio);
    }
    size = std::max(size, profile.min_output_bytes);
    files.emplace_back(out.path, size);
  }

  if (files.empty()) {
    Finish(attempt, Status::OK());
    return;
  }
  attempt->stage_out_pending = static_cast<int>(files.size());
  for (const auto& [path, size] : files) {
    attempt->outcome.result.produced_files.emplace_back(path, size);
    double flow_started = cluster_->engine()->Now();
    std::string path_copy = path;
    int64_t size_copy = size;
    storage_->StageOut(
        path, size, attempt->node,
        [this, attempt, path_copy, size_copy, flow_started](Status st) {
          attempt->outcome.transfers.push_back(
              TaskAttemptOutcome::FileTransfer{
                  path_copy, size_copy,
                  cluster_->engine()->Now() - flow_started, false});
          if (!st.ok()) {
            Finish(attempt, st.WithContext("stage-out failed"));
            return;
          }
          if (--attempt->stage_out_pending == 0) {
            attempt->outcome.result.stage_out_seconds =
                cluster_->engine()->Now() - attempt->stage_out_started;
            Finish(attempt, Status::OK());
          }
        });
  }
}

void TaskExecutor::Finish(std::shared_ptr<Attempt> attempt, Status status) {
  if (attempt->delivered) return;
  attempt->delivered = true;
  // The attempt is done with its localized inputs either way; a staging
  // cache may now evict them under pressure.
  storage_->ReleaseInputs(attempt->task.input_files, attempt->node);
  attempt->outcome.result.status = status;
  attempt->outcome.result.finished_at = cluster_->engine()->Now();
  // Deliver asynchronously so AM state updates never nest inside flow
  // completion callbacks.
  auto outcome = std::make_shared<TaskAttemptOutcome>(
      std::move(attempt->outcome));
  auto done = std::move(attempt->done);
  cluster_->engine()->ScheduleAfter(
      0.0, [done = std::move(done), outcome] { done(std::move(*outcome)); });
}

}  // namespace hiway
