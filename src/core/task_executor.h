// Container-side task lifecycle (Sec. 3.1): (i) obtain input data,
// (ii) invoke the black-box command, (iii) store outputs for downstream
// consumers. Data movement costs depend on the storage backend: Hi-WAY
// stages through node-local disk + HDFS; the Galaxy CloudMan baseline
// moves everything over a shared network volume (Sec. 4.2).

#ifndef HIWAY_CORE_TASK_EXECUTOR_H_
#define HIWAY_CORE_TASK_EXECUTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/staging_cache.h"
#include "src/common/random.h"
#include "src/hdfs/dfs.h"
#include "src/lang/workflow.h"
#include "src/sim/cluster.h"
#include "src/tools/tool_registry.h"

namespace hiway {

/// Abstracts where task data lives and what moving it costs.
class StorageAdapter {
 public:
  virtual ~StorageAdapter() = default;

  /// Size of an existing file, or NotFound.
  virtual Result<int64_t> FileSize(const std::string& path) const = 0;

  /// Moves `path` to `node` for consumption;
  /// `done(status, bytes, seconds)` reports the transfer.
  virtual void StageIn(const std::string& path, NodeId node,
                       std::function<void(Status, int64_t, double)> done) = 0;

  /// Publishes a `size_bytes` output produced on `node`.
  virtual void StageOut(const std::string& path, int64_t size_bytes,
                        NodeId node, std::function<void(Status)> done) = 0;

  /// Performs `scratch_mb` of tool-transient I/O on `node` (intermediate
  /// spill files); where those bytes go is the adapter's choice.
  virtual void ScratchIo(double scratch_mb, NodeId node,
                         std::function<void(Status)> done) = 0;

  /// Signals that a finished attempt no longer needs its staged inputs
  /// on `node` (adapters with a staging cache unpin them so they become
  /// evictable). Default: nothing to release.
  virtual void ReleaseInputs(const std::vector<std::string>& paths,
                             NodeId node) {
    (void)paths;
    (void)node;
  }
};

/// HDFS-backed storage (Hi-WAY's mode): local replicas read from local
/// disk, remote blocks cross the switch, outputs are replicated, scratch
/// hits the node-local disk.
class DfsStorageAdapter : public StorageAdapter {
 public:
  explicit DfsStorageAdapter(Dfs* dfs) : dfs_(dfs) {}
  Result<int64_t> FileSize(const std::string& path) const override;
  void StageIn(const std::string& path, NodeId node,
               std::function<void(Status, int64_t, double)> done) override;
  void StageOut(const std::string& path, int64_t size_bytes, NodeId node,
                std::function<void(Status)> done) override;
  void ScratchIo(double scratch_mb, NodeId node,
                 std::function<void(Status)> done) override;
  void ReleaseInputs(const std::vector<std::string>& paths,
                     NodeId node) override;

  /// Attaches the node-local staging cache (nullptr = off): StageIn of a
  /// path whose current content already sits on the target node becomes
  /// free, and successful reads populate the cache (pinned until
  /// ReleaseInputs). Not owned; shared across adapters and workflows.
  void SetStagingCache(StagingCache* staging) { staging_ = staging; }

 private:
  Dfs* dfs_;
  StagingCache* staging_ = nullptr;
};

/// Shared-network-volume storage (the CloudMan baseline): every byte —
/// inputs, outputs, and scratch — crosses the EBS volume and the node's
/// NIC. Sizes are tracked in a simple catalog (no blocks, no locality).
class SharedVolumeStorageAdapter : public StorageAdapter {
 public:
  /// `client_mbps` caps each node's streaming rate against the volume
  /// (per-mount NFS/EBS client throughput); the volume's aggregate
  /// capacity is the cluster's ebs resource.
  explicit SharedVolumeStorageAdapter(Cluster* cluster,
                                      double client_mbps = 40.0)
      : cluster_(cluster), client_mbps_(client_mbps) {}
  Result<int64_t> FileSize(const std::string& path) const override;
  void StageIn(const std::string& path, NodeId node,
               std::function<void(Status, int64_t, double)> done) override;
  void StageOut(const std::string& path, int64_t size_bytes, NodeId node,
                std::function<void(Status)> done) override;
  void ScratchIo(double scratch_mb, NodeId node,
                 std::function<void(Status)> done) override;

  /// Registers a pre-existing file on the volume (input staging).
  void AddFile(const std::string& path, int64_t size_bytes);
  bool Exists(const std::string& path) const;

 private:
  Cluster* cluster_;
  double client_mbps_;
  std::map<std::string, int64_t> catalog_;
};

/// Result of simulating one task attempt, handed to the AM.
struct TaskAttemptOutcome {
  TaskResult result;
  /// Transfer log for file-level provenance: (path, bytes, seconds, is_in).
  struct FileTransfer {
    std::string path;
    int64_t size_bytes;
    double seconds;
    bool stage_in;
  };
  std::vector<FileTransfer> transfers;
};

/// Executes TaskSpecs inside containers. Stateless across tasks except for
/// the RNG (runtime noise / failure injection) and the tool registry's
/// invocation counters.
class TaskExecutor {
 public:
  TaskExecutor(Cluster* cluster, ToolRegistry* tools, StorageAdapter* storage,
               uint64_t seed = 42)
      : cluster_(cluster), tools_(tools), storage_(storage), rng_(seed) {}

  /// Runs `task` on `node` with `vcores` of CPU available. `done` fires
  /// (via the engine) once the attempt finished or failed.
  void Execute(const TaskSpec& task, NodeId node, int vcores,
               std::function<void(TaskAttemptOutcome)> done);

 private:
  struct Attempt;
  void StartStageIn(std::shared_ptr<Attempt> attempt);
  void StartInvoke(std::shared_ptr<Attempt> attempt);
  void StartScratch(std::shared_ptr<Attempt> attempt, double scratch_mb);
  void StartStageOut(std::shared_ptr<Attempt> attempt);
  void Finish(std::shared_ptr<Attempt> attempt, Status status);

  Cluster* cluster_;
  ToolRegistry* tools_;
  StorageAdapter* storage_;
  Rng rng_;
};

}  // namespace hiway

#endif  // HIWAY_CORE_TASK_EXECUTOR_H_
