#include "src/elastic/autoscaler.h"

#include "src/common/strings.h"

namespace hiway {

Result<AutoscalerPolicy> AutoscalerPolicyByName(std::string_view name) {
  AutoscalerPolicy p;
  if (name == "off" || name == "fixed" || name.empty()) {
    p.name = "off";
    p.enabled = false;
    return p;
  }
  if (name == "reactive") {
    // Balanced default: reacts within a few poll periods, retires idle
    // workers one at a time.
    p.name = "reactive";
    p.enabled = true;
    p.poll_s = 5.0;
    p.scale_out_after_s = 15.0;
    p.scale_out_step = 2;
    p.scale_in_after_s = 45.0;
    p.scale_in_step = 1;
    p.cooldown_s = 30.0;
    return p;
  }
  if (name == "aggressive") {
    // Chases the backlog hard; cheap on makespan, spendy on churn.
    p.name = "aggressive";
    p.enabled = true;
    p.poll_s = 5.0;
    p.scale_out_after_s = 5.0;
    p.scale_out_step = 4;
    p.scale_in_after_s = 20.0;
    p.scale_in_step = 2;
    p.cooldown_s = 10.0;
    return p;
  }
  if (name == "conservative") {
    // Slow in both directions; minimises churn at some makespan cost.
    p.name = "conservative";
    p.enabled = true;
    p.poll_s = 10.0;
    p.scale_out_after_s = 45.0;
    p.scale_out_step = 1;
    p.scale_in_after_s = 120.0;
    p.scale_in_step = 1;
    p.cooldown_s = 60.0;
    return p;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown autoscaler policy '%.*s' (expected off, fixed, reactive, "
      "aggressive, or conservative)",
      static_cast<int>(name.size()), name.data()));
}

}  // namespace hiway
