// Autoscaler policy vocabulary (docs/elastic-cluster.md): pure data +
// presets, no simulation dependencies. A policy describes *when* the
// elastic control loop (src/elastic/elastic_cluster.h) adds or retires
// worker nodes; the loop itself owns the mechanics (RM onboarding,
// graceful decommission, data-service migration).
//
// Triggers are deliberately simple sustained-signal thresholds — the
// shape cloud autoscalers (EC2 target tracking, work_queue_factory's
// min/max workers) actually use: scale out when the RM container
// backlog has been non-empty for `scale_out_after_s`, scale in when at
// least one worker has sat empty for `scale_in_after_s`, and after any
// action hold still for `cooldown_s` so the previous step's effect is
// observable before the next decision.

#ifndef HIWAY_ELASTIC_AUTOSCALER_H_
#define HIWAY_ELASTIC_AUTOSCALER_H_

#include <string>
#include <string_view>

#include "src/common/result.h"

namespace hiway {

struct AutoscalerPolicy {
  /// Preset name ("off", "reactive", "aggressive", "conservative").
  std::string name = "off";
  /// Disabled policies never scale; the elastic layer still tracks
  /// node-hours and serves revocations.
  bool enabled = false;
  /// Fleet bounds. The loop never decommissions below min_nodes and
  /// never grows past max_nodes (0 = "whatever the deployment started
  /// with" — the caller fills it in).
  int min_nodes = 1;
  int max_nodes = 0;
  /// Control-loop period, seconds.
  double poll_s = 5.0;
  /// Backlog must be continuously non-empty this long before scaling
  /// out (absorbs the RM's allocation delay and momentary bursts).
  double scale_out_after_s = 15.0;
  /// Nodes added per scale-out action.
  int scale_out_step = 2;
  /// An empty worker must stay empty this long before scale-in.
  double scale_in_after_s = 45.0;
  /// Nodes retired per scale-in action.
  int scale_in_step = 1;
  /// Quiet period after any action before the next one.
  double cooldown_s = 30.0;
};

/// Resolves a preset by name (see AutoscalerPolicy::name); "fixed" is
/// accepted as an alias of "off". InvalidArgument for unknown names,
/// listing the valid ones.
Result<AutoscalerPolicy> AutoscalerPolicyByName(std::string_view name);

}  // namespace hiway

#endif  // HIWAY_ELASTIC_AUTOSCALER_H_
