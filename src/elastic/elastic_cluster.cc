#include "src/elastic/elastic_cluster.h"

#include <algorithm>

#include "src/obs/tracer.h"

namespace hiway {

ElasticCluster::ElasticCluster(SimEngine* engine, Cluster* cluster,
                               ResourceManager* rm, Dfs* dfs,
                               StagingCache* staging,
                               ResultCache* result_cache, Tracer* tracer,
                               ElasticOptions options)
    : engine_(engine),
      cluster_(cluster),
      rm_(rm),
      dfs_(dfs),
      staging_(staging),
      result_cache_(result_cache),
      tracer_(tracer),
      options_(std::move(options)),
      last_accrue_(engine->Now()) {
  if (options_.policy.max_nodes <= 0) {
    options_.policy.max_nodes = cluster_->num_nodes();
  }
  if (options_.policy.min_nodes > options_.policy.max_nodes) {
    options_.policy.min_nodes = options_.policy.max_nodes;
  }
}

int ElasticCluster::LiveNodes() const {
  int live = 0;
  for (NodeId n = 0; n < cluster_->num_nodes(); ++n) {
    if (rm_->IsNodeAlive(n)) ++live;
  }
  return live;
}

void ElasticCluster::Accrue() {
  double now = engine_->Now();
  double dt = now - last_accrue_;
  last_accrue_ = now;
  if (dt > 0.0) stats_.node_seconds += dt * LiveNodes();
}

const ElasticStats& ElasticCluster::stats() {
  Accrue();
  return stats_;
}

std::vector<NodeId> ElasticCluster::MigrationTargets(NodeId excluding) const {
  std::vector<NodeId> targets;
  for (NodeId n = dfs_->options().first_datanode; n < cluster_->num_nodes();
       ++n) {
    if (n == excluding) continue;
    if (rm_->IsNodeAlive(n) && !rm_->IsNodeDraining(n)) targets.push_back(n);
  }
  return targets;
}

void ElasticCluster::SweepCaches() {
  dfs_->ReReplicate();
  // No sealed entry may reference a vanished-only replica: on graceful
  // paths the sweep finds nothing (the rescue saved every block); after
  // unwarned losses it evicts exactly the destroyed entries.
  if (result_cache_ != nullptr) result_cache_->EvictUnreadable();
}

bool ElasticCluster::DecommissionNode(NodeId node) {
  if (!rm_->IsNodeAlive(node)) return false;
  Accrue();
  if (staging_ != nullptr) {
    staging_->MigrateNode(node, MigrationTargets(node));
  }
  if (!rm_->DecommissionNode(node)) return false;
  dfs_->DecommissionNode(node);
  SweepCaches();
  ++stats_.nodes_decommissioned;
  return true;
}

void ElasticCluster::RevokeNode(NodeId node, double warn_s) {
  if (!rm_->IsNodeAlive(node)) return;
  Accrue();
  ++stats_.nodes_revoked;
  double deadline = engine_->Now() + std::max(0.0, warn_s);
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kMembership, "spot_revoke", /*app=*/-1,
                     /*container=*/-1, /*task=*/-1, node, warn_s);
  }
  // Warning phase: stop placements, let AMs triage (keep short tasks,
  // requeue the rest uncharged), move unpinned staged bytes off.
  rm_->BeginDrain(node, deadline);
  if (staging_ != nullptr) {
    staging_->MigrateNode(node, MigrationTargets(node));
  }
  // Deadline: the instance is gone. The warning window is what lets the
  // DataNode push sole-replica blocks to peers, so the DFS departure is
  // the rescue-first decommission — a warned revocation loses no data.
  engine_->ScheduleAt(deadline, [this, node] {
    if (!rm_->IsNodeAlive(node)) return;  // already retired meanwhile
    Accrue();
    rm_->KillNode(node);
    dfs_->DecommissionNode(node);
    if (staging_ != nullptr) staging_->InvalidateNode(node);
    SweepCaches();
  });
}

void ElasticCluster::ScaleOut(int count) {
  ++stats_.scale_out_actions;
  last_action_ = engine_->Now();
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kMembership, "autoscale_out", /*app=*/-1,
                     /*container=*/-1, /*task=*/-1, /*node=*/-1,
                     static_cast<double>(count));
  }
  pending_joins_ += count;
  // Provisioning latency, then topology + RM onboarding in one event
  // (the registration heartbeat).
  engine_->ScheduleAfter(options_.join_delay_s, [this, count] {
    for (int i = 0; i < count; ++i) {
      NodeSpec spec = options_.node_template;
      spec.name.clear();  // Cluster names joiners node-<id>
      NodeId id = cluster_->AddNode(std::move(spec));
      rm_->AddNode(id);
      ++stats_.nodes_added;
    }
    Accrue();
    pending_joins_ -= count;
  });
}

void ElasticCluster::ScaleIn(int count) {
  // Retire the highest-id empty workers first (they are the most likely
  // to be elastic joiners; low ids keep the long-lived data).
  std::vector<NodeId> victims;
  for (NodeId n = cluster_->num_nodes() - 1;
       n >= dfs_->options().first_datanode; --n) {
    if (static_cast<int>(victims.size()) >= count) break;
    if (!rm_->IsNodeAlive(n) || rm_->IsNodeDraining(n)) continue;
    if (rm_->containers_on(n) > 0) continue;
    if (LiveNodes() - static_cast<int>(victims.size()) <=
        options_.policy.min_nodes) {
      break;
    }
    victims.push_back(n);
  }
  if (victims.empty()) return;
  ++stats_.scale_in_actions;
  last_action_ = engine_->Now();
  if (tracer_ != nullptr) {
    tracer_->Instant(SpanCategory::kMembership, "autoscale_in", /*app=*/-1,
                     /*container=*/-1, /*task=*/-1, /*node=*/-1,
                     static_cast<double>(victims.size()));
  }
  for (NodeId n : victims) DecommissionNode(n);
}

void ElasticCluster::Start() {
  if (started_ || !options_.policy.enabled) return;
  started_ = true;
  Poll(/*seen_activity=*/false);
}

void ElasticCluster::Poll(bool seen_activity) {
  engine_->ScheduleAfter(options_.policy.poll_s, [this, seen_activity] {
    bool active = active_ ? active_() : true;
    if (!active) {
      // Same termination contract as FaultInjector::Recur: poll through
      // the pre-submission gap, stop once the workload has quiesced.
      if (seen_activity) return;
      Poll(/*seen_activity=*/false);
      return;
    }
    Accrue();
    double now = engine_->Now();
    const AutoscalerPolicy& p = options_.policy;

    // Signal 1: sustained container backlog -> scale out.
    bool backlogged = !rm_->PendingRequestDump().empty();
    if (backlogged) {
      if (backlog_since_ < 0.0) backlog_since_ = now;
    } else {
      backlog_since_ = -1.0;
    }
    // Signal 2: sustained empty worker -> scale in.
    bool any_idle = false;
    for (NodeId n = dfs_->options().first_datanode; n < cluster_->num_nodes();
         ++n) {
      if (rm_->IsNodeAlive(n) && !rm_->IsNodeDraining(n) &&
          rm_->containers_on(n) == 0) {
        any_idle = true;
        break;
      }
    }
    if (any_idle) {
      if (idle_since_ < 0.0) idle_since_ = now;
    } else {
      idle_since_ = -1.0;
    }

    bool cooled = now - last_action_ >= p.cooldown_s;
    if (cooled && backlog_since_ >= 0.0 &&
        now - backlog_since_ >= p.scale_out_after_s) {
      int room = p.max_nodes - (LiveNodes() + pending_joins_);
      int step = std::min(p.scale_out_step, room);
      if (step > 0) ScaleOut(step);
    } else if (cooled && !backlogged && idle_since_ >= 0.0 &&
               now - idle_since_ >= p.scale_in_after_s) {
      ScaleIn(p.scale_in_step);
    }
    Poll(/*seen_activity=*/true);
  });
}

}  // namespace hiway
