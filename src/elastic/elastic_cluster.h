// Elastic cluster membership (docs/elastic-cluster.md): the control
// plane that grows and shrinks the worker fleet at runtime and keeps
// every data service consistent through churn.
//
// Three flows meet here:
//
//  * Autoscaling — a policy-driven poll loop (src/elastic/autoscaler.h)
//    watches the RM's container backlog and idle workers, provisions
//    new nodes (Cluster::AddNode + ResourceManager::AddNode after a
//    configurable join delay, modelling VM boot + NodeManager
//    registration) and gracefully retires empty ones.
//
//  * Graceful decommission — retiring a node walks the full stack:
//    RM vacates containers with the uncharged kDrained reason, the DFS
//    rescues sole-replica blocks before dropping the DataNode and then
//    re-replicates, the staging cache migrates its entries to surviving
//    nodes, and the result cache sweeps entries whose outputs churn
//    made unreadable (there are none on the graceful path — that's the
//    zero-data-loss invariant elastic_test pins down).
//
//  * Spot revocation — RevokeNode(node, warn_s) models the EC2
//    two-minute notice: the RM drains the node (AMs keep short tasks,
//    proactively requeue the rest), the staging cache migrates, and at
//    the deadline the node dies. The warning window is what lets the
//    DataNode push its sole-replica blocks off in time, so a *warned*
//    revocation loses no data where an unwarned kill-node can.
//
// The poll loop terminates like FaultInjector::Recur: it keeps polling
// until the workload has been observed active and then quiesces, so
// RunUntilPredicate-driven runs end. Node-hours are accrued as the
// integral of the live-worker count over virtual time — the cost axis
// of bench_elastic's frontier.

#ifndef HIWAY_ELASTIC_ELASTIC_CLUSTER_H_
#define HIWAY_ELASTIC_ELASTIC_CLUSTER_H_

#include <functional>
#include <vector>

#include "src/cache/result_cache.h"
#include "src/cache/staging_cache.h"
#include "src/elastic/autoscaler.h"
#include "src/hdfs/dfs.h"
#include "src/sim/cluster.h"
#include "src/yarn/yarn.h"

namespace hiway {

class Tracer;

struct ElasticOptions {
  AutoscalerPolicy policy;
  /// Hardware of nodes the autoscaler provisions (defaults match the
  /// deployment's existing workers when wired by the karamel recipe).
  NodeSpec node_template;
  /// Seconds between a scale-out decision and the node joining the RM
  /// (VM provisioning + NodeManager registration).
  double join_delay_s = 5.0;
};

struct ElasticStats {
  int scale_out_actions = 0;
  int scale_in_actions = 0;
  int nodes_added = 0;
  int nodes_decommissioned = 0;
  int nodes_revoked = 0;
  /// Live-worker count integrated over virtual time (node-hours =
  /// node_seconds / 3600) — the frontier's cost axis.
  double node_seconds = 0.0;
};

class ElasticCluster {
 public:
  /// `staging`, `result_cache`, and `tracer` may be null (the
  /// corresponding maintenance steps are skipped). Nothing is owned.
  ElasticCluster(SimEngine* engine, Cluster* cluster, ResourceManager* rm,
                 Dfs* dfs, StagingCache* staging, ResultCache* result_cache,
                 Tracer* tracer, ElasticOptions options);
  ElasticCluster(const ElasticCluster&) = delete;
  ElasticCluster& operator=(const ElasticCluster&) = delete;

  /// True while the workload is running (the service wires !Idle()).
  /// The poll loop stops once this turns false after having been true.
  void SetActiveCheck(std::function<bool()> active) {
    active_ = std::move(active);
  }

  /// Starts the autoscaler poll loop (no-op for disabled policies —
  /// node-hours accrual still works via Accrue()/stats()). Call once,
  /// after the deployment converged.
  void Start();

  /// Spot revocation with warning: drains `node` now, migrates its
  /// staging entries, and kills it `warn_s` seconds later (RM node
  /// loss + DFS decommission-with-rescue + re-replication + cache
  /// sweeps). warn_s = 0 degenerates to an immediate graceful-less
  /// kill. No-op for dead nodes.
  void RevokeNode(NodeId node, double warn_s);

  /// Gracefully retires one specific node right now (scale-in path):
  /// false when the RM refuses (an AM lives there) or the node is dead.
  bool DecommissionNode(NodeId node);

  /// Workers currently alive (draining nodes count — they still run).
  int LiveNodes() const;

  /// Flushes the node-seconds integral up to now (stats() calls it).
  void Accrue();

  const ElasticStats& stats();
  const ElasticOptions& options() const { return options_; }

 private:
  void Poll(bool seen_activity);
  /// One scale-out action: schedules `count` joins after join_delay_s.
  void ScaleOut(int count);
  /// One scale-in action: retires up to `count` empty workers.
  void ScaleIn(int count);
  /// Post-departure data-service maintenance shared by every path.
  void SweepCaches();
  std::vector<NodeId> MigrationTargets(NodeId excluding) const;

  SimEngine* engine_;
  Cluster* cluster_;
  ResourceManager* rm_;
  Dfs* dfs_;
  StagingCache* staging_;
  ResultCache* result_cache_;
  Tracer* tracer_;
  ElasticOptions options_;
  std::function<bool()> active_;
  bool started_ = false;
  /// Scale-outs decided but not yet joined (counted against max_nodes).
  int pending_joins_ = 0;
  /// Virtual time the backlog was first observed non-empty; < 0 = none.
  double backlog_since_ = -1.0;
  /// Virtual time an empty worker was first observed; < 0 = none.
  double idle_since_ = -1.0;
  /// Virtual time of the last scale action (cooldown anchor).
  double last_action_ = -1e18;
  double last_accrue_ = 0.0;
  ElasticStats stats_;
};

}  // namespace hiway

#endif  // HIWAY_ELASTIC_ELASTIC_CLUSTER_H_
