#include "src/fuzz/fuzz_targets.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "src/common/json.h"
#include "src/common/strings.h"
#include "src/common/xml.h"
#include "src/infra/karamel.h"
#include "src/lang/cuneiform_parser.h"
#include "src/lang/cwl_source.h"
#include "src/lang/dax_source.h"
#include "src/lang/galaxy_source.h"
#include "src/lang/trace_source.h"
#include "src/lang/workflow_validate.h"
#include "src/sim/fault_injector.h"

namespace hiway {
namespace fuzz {

namespace {

bool g_throw_mode = false;

std::string_view AsView(const uint8_t* data, size_t size) {
  return std::string_view(reinterpret_cast<const char*>(data), size);
}

/// Harness invariant shared by every workflow front-end: a source that
/// accepted the input must emit a structurally valid task graph.
void CheckSourceTasks(WorkflowSource* source, const char* lang) {
  auto tasks = source->Init();
  HIWAY_FUZZ_INVARIANT(tasks.ok(), std::string(lang) +
                                       " source accepted input but Init() "
                                       "failed: " +
                                       tasks.status().message());
  Status valid = ValidateWorkflowTasks(*tasks);
  HIWAY_FUZZ_INVARIANT(valid.ok(), std::string(lang) +
                                       " source emitted an invalid task "
                                       "graph: " +
                                       valid.message());
}

// ---- targets --------------------------------------------------------------

void FuzzCuneiform(const uint8_t* data, size_t size) {
  // Lexer and parser only: evaluation is budgeted separately by the driver
  // (CuneiformOptions::max_eval_depth) and is Turing-complete by design.
  auto program = cuneiform::ParseCuneiform(AsView(data, size));
  (void)program;
}

void FuzzJson(const uint8_t* data, size_t size) {
  auto doc = Json::Parse(AsView(data, size));
  if (!doc.ok()) return;
  // Round-trip fixpoint: dump -> parse must succeed and yield an equal
  // value, for both compact and indented forms.
  std::string compact = doc->Dump();
  auto again = Json::Parse(compact);
  HIWAY_FUZZ_INVARIANT(again.ok(),
                       "JSON round-trip re-parse failed: " +
                           again.status().message() + " for " + compact);
  HIWAY_FUZZ_INVARIANT(*again == *doc,
                       "JSON round-trip changed the value: " + compact);
  std::string indented = doc->Dump(2);
  auto pretty = Json::Parse(indented);
  HIWAY_FUZZ_INVARIANT(pretty.ok() && *pretty == *doc,
                       "indented JSON round-trip changed the value");
}

void FuzzXml(const uint8_t* data, size_t size) {
  auto root = ParseXml(AsView(data, size));
  if (!root.ok()) return;
  // Fixpoint on the canonical serialized form: serialize -> parse ->
  // serialize must be byte-identical.
  std::string first = XmlSerialize(**root);
  auto again = ParseXml(first);
  HIWAY_FUZZ_INVARIANT(again.ok(),
                       "XML round-trip re-parse failed: " +
                           again.status().message() + " for " + first);
  std::string second = XmlSerialize(**again);
  HIWAY_FUZZ_INVARIANT(first == second,
                       "XML round-trip is not a fixpoint: '" + first +
                           "' vs '" + second + "'");
}

void FuzzDax(const uint8_t* data, size_t size) {
  auto source = DaxSource::Parse(AsView(data, size), "/dax/");
  if (!source.ok()) return;
  for (const auto& [path, sz] : (*source)->required_inputs()) {
    HIWAY_FUZZ_INVARIANT(!path.empty() && sz >= 0,
                         "DAX required input with empty path or negative "
                         "size");
  }
  CheckSourceTasks(source->get(), "DAX");
}

void FuzzGalaxy(const uint8_t* data, size_t size) {
  std::map<std::string, std::string> inputs;
  inputs["input"] = "/galaxy/input.dat";
  for (int i = 0; i < 8; ++i) {
    inputs[StrFormat("input_%d", i)] = StrFormat("/galaxy/input_%d.dat", i);
  }
  auto source = GalaxySource::Parse(AsView(data, size), inputs, "/galaxy-out");
  if (!source.ok()) return;
  CheckSourceTasks(source->get(), "Galaxy");
}

void FuzzTrace(const uint8_t* data, size_t size) {
  // Exercise both the strict path and the allow_incomplete crash-prefix
  // path (the recovery parser must be exactly as robust).
  for (bool allow_incomplete : {false, true}) {
    auto source = TraceSource::Parse(AsView(data, size), "", allow_incomplete);
    if (!source.ok()) continue;
    for (const auto& [path, sz] : (*source)->required_inputs()) {
      HIWAY_FUZZ_INVARIANT(!path.empty() && sz >= 0,
                           "trace required input with empty path or "
                           "negative size");
    }
    CheckSourceTasks(source->get(), "trace");
  }
}

void FuzzFaultSpec(const uint8_t* data, size_t size) {
  auto specs = ParseFaultSpecs(AsView(data, size));
  if (!specs.ok()) return;
  // Accepted specs must be sane: the injector schedules engine events from
  // these fields, so a non-finite time or a garbage node id (the pre-fix
  // parser turned node=1e300 into INT_MIN via an undefined float->int
  // cast) corrupts the simulation instead of failing the parse.
  for (const FaultSpec& spec : *specs) {
    HIWAY_FUZZ_INVARIANT(std::isfinite(spec.rate) && spec.rate <= 1.0,
                         "fault spec parsed a non-probability rate");
    HIWAY_FUZZ_INVARIANT(!std::isnan(spec.at) && !std::isinf(spec.at),
                         "fault spec parsed a non-finite at-time");
    HIWAY_FUZZ_INVARIANT(!std::isnan(spec.every) && !std::isinf(spec.every),
                         "fault spec parsed a non-finite every-period");
    HIWAY_FUZZ_INVARIANT(!std::isnan(spec.until) && !std::isinf(spec.until),
                         "fault spec parsed a non-finite until-time");
    HIWAY_FUZZ_INVARIANT(!std::isnan(spec.warn) && !std::isinf(spec.warn),
                         "fault spec parsed a non-finite warn-lead");
    HIWAY_FUZZ_INVARIANT(spec.node >= kInvalidNode,
                         "fault spec parsed a garbage node id");
    HIWAY_FUZZ_INVARIANT(spec.submission >= -1,
                         "fault spec parsed a garbage submission id");
  }
}

/// Clamps a numeric attribute the mutator produced to a harness budget so
/// a *valid but huge* value (e.g. cluster/workers=900000) cannot turn the
/// corpus run into a memory/time blowup. Unparseable tokens are left
/// untouched so the loud error paths stay reachable.
void ClampAttr(ChefAttributes* attrs, const std::string& key, int64_t maxv) {
  auto it = attrs->find(key);
  if (it == attrs->end()) return;
  auto parsed = ParseInt64(it->second);
  if (parsed.ok() && *parsed > maxv) {
    it->second = StrFormat("%lld", static_cast<long long>(maxv));
  }
}

void FuzzKaramel(const uint8_t* data, size_t size) {
  // Input grammar: one "key=value" attribute per line; lines without '='
  // are ignored. The attributes drive the full built-in cookbook.
  ChefAttributes attrs;
  std::string_view text = AsView(data, size);
  for (std::string_view line : StrSplit(text, '\n')) {
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    std::string key(StrTrim(line.substr(0, eq)));
    std::string value(StrTrim(line.substr(eq + 1)));
    if (key.empty()) continue;
    attrs[key] = value;
  }
  // Hermeticity: never touch the real filesystem from the fuzzer.
  attrs["hiway/prov_backend"] = "memory";
  attrs["hiway/cache_dir"] = "";
  // Budget clamps (see ClampAttr): valid-but-huge sizes stay in range.
  ClampAttr(&attrs, "cluster/workers", 256);
  ClampAttr(&attrs, "cluster/cores", 64);
  ClampAttr(&attrs, "snv/chunks", 32);
  ClampAttr(&attrs, "snv/chunk_mb", 64);
  ClampAttr(&attrs, "rnaseq/replicates", 8);
  ClampAttr(&attrs, "rnaseq/sample_mb", 64);
  ClampAttr(&attrs, "montage/images", 32);
  ClampAttr(&attrs, "montage/image_mb", 32);
  ClampAttr(&attrs, "kmeans/points_mb", 64);
  ClampAttr(&attrs, "elastic/max_nodes", 512);

  Karamel karamel;
  for (const auto& [k, v] : attrs) karamel.SetAttribute(k, v);
  karamel.AddRecipe(HadoopInstallRecipe());
  karamel.AddRecipe(HiWayInstallRecipe());
  karamel.AddRecipe(ElasticInstallRecipe());
  karamel.AddRecipe(SnvWorkflowRecipe());
  karamel.AddRecipe(TraplineWorkflowRecipe());
  karamel.AddRecipe(MontageWorkflowRecipe());
  karamel.AddRecipe(KmeansWorkflowRecipe());
  auto deployment = karamel.Converge();
  (void)deployment;
}

void FuzzCwl(const uint8_t* data, size_t size) {
  auto source = CwlSource::Parse(AsView(data, size));
  if (!source.ok()) return;
  for (const auto& [path, sz] : (*source)->required_inputs()) {
    HIWAY_FUZZ_INVARIANT(!path.empty() && sz >= 0,
                         "CWL required input with empty path or negative "
                         "size");
  }
  CheckSourceTasks(source->get(), "CWL");
}

const std::vector<FuzzTarget>& Registry() {
  static const std::vector<FuzzTarget>* targets = new std::vector<FuzzTarget>{
      {"cuneiform", "Cuneiform-lite lexer + parser", FuzzCuneiform},
      {"json", "src/common/json.cc parser + round-trip fixpoint", FuzzJson},
      {"xml", "src/common/xml.cc parser + round-trip fixpoint", FuzzXml},
      {"dax", "Pegasus DAX loader -> valid workflow", FuzzDax},
      {"galaxy", "Galaxy JSON loader -> valid workflow", FuzzGalaxy},
      {"trace", "provenance trace replay (strict + crash-prefix)",
       FuzzTrace},
      {"faultspec", "fault-injector spec grammar", FuzzFaultSpec},
      {"karamel", "karamel attribute parsing + cookbook converge",
       FuzzKaramel},
      {"cwl", "CWL-subset loader -> valid workflow", FuzzCwl},
  };
  return *targets;
}

}  // namespace

const std::vector<FuzzTarget>& AllFuzzTargets() { return Registry(); }

const FuzzTarget* FindFuzzTarget(std::string_view name) {
  for (const FuzzTarget& t : Registry()) {
    if (name == t.name) return &t;
  }
  return nullptr;
}

bool SetInvariantThrowMode(bool throw_mode) {
  bool prev = g_throw_mode;
  g_throw_mode = throw_mode;
  return prev;
}

void InvariantFailure(const char* file, int line, const std::string& msg) {
  std::string what =
      StrFormat("fuzz invariant violated at %s:%d: %s", file, line,
                msg.c_str());
  if (g_throw_mode) throw InvariantViolation(what);
  std::fprintf(stderr, "%s\n", what.c_str());
  std::abort();
}

}  // namespace fuzz
}  // namespace hiway
