// Fuzz-target registry for every untrusted-input parser in the repo.
//
// Each target is a deterministic `void(const uint8_t*, size_t)` entry point
// with libFuzzer-compatible semantics: it must return normally (possibly
// after the parser rejects the input with a Status) for *any* byte string,
// within a small time budget, and without crashing or violating a target
// invariant (valid Workflow / parse→serialize→parse fixpoint).
//
// The same entry points serve two harnesses (docs/fuzzing.md):
//  - tests/fuzz/fuzz_runner_main.cc: the seeded-corpus runner registered as
//    `ctest -L fuzz`, which replays the seed corpus plus deterministic
//    mutation rounds (src/common/random.h) on a wall-clock budget;
//  - -DHIWAY_LIBFUZZER=ON: per-target `LLVMFuzzerTestOneInput` binaries for
//    coverage-guided runs under ASan/UBSan.

#ifndef HIWAY_FUZZ_FUZZ_TARGETS_H_
#define HIWAY_FUZZ_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hiway {
namespace fuzz {

using FuzzTargetFn = void (*)(const uint8_t* data, size_t size);

struct FuzzTarget {
  const char* name;
  /// One-line description shown by the corpus runner.
  const char* description;
  FuzzTargetFn fn;
};

/// All registered targets, in stable order.
const std::vector<FuzzTarget>& AllFuzzTargets();

/// Lookup by name; nullptr when unknown.
const FuzzTarget* FindFuzzTarget(std::string_view name);

/// Thrown by HIWAY_FUZZ_INVARIANT in throw mode (the corpus runner), so the
/// harness can save the offending input and fail the test instead of
/// aborting the whole process.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// In throw mode invariant failures raise InvariantViolation; otherwise
/// (the default, used by the libFuzzer build) they abort so the fuzzing
/// engine records a crash. Returns the previous mode.
bool SetInvariantThrowMode(bool throw_mode);

/// Reports an invariant failure according to the current mode.
void InvariantFailure(const char* file, int line, const std::string& msg);

}  // namespace fuzz
}  // namespace hiway

/// Asserts a per-target invariant inside a fuzz target body.
#define HIWAY_FUZZ_INVARIANT(cond, msg)                            \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::hiway::fuzz::InvariantFailure(__FILE__, __LINE__, (msg));  \
    }                                                              \
  } while (false)

#endif  // HIWAY_FUZZ_FUZZ_TARGETS_H_
