#include "src/gc/footprint.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace hiway {

FootprintEstimate EstimateFootprint(const std::vector<TaskSpec>& tasks,
                                    const std::vector<std::string>& targets,
                                    const Dfs* dfs) {
  FootprintEstimate est;
  std::set<std::string> target_set(targets.begin(), targets.end());

  // Producer / consumer indices over file (non-value) paths.
  std::map<std::string, size_t> producer_of;
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (const OutputSpec& out : tasks[i].outputs) {
      if (!out.is_value) producer_of[out.path] = i;
    }
  }
  std::map<std::string, int> remaining_consumers;
  std::vector<std::set<std::string>> inputs_of(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (const std::string& path : tasks[i].input_files) {
      if (inputs_of[i].insert(path).second) ++remaining_consumers[path];
    }
  }

  // Known sizes: external inputs from the DFS, produced paths as tasks
  // "run" below.
  std::map<std::string, int64_t> size_of;
  int64_t live = 0;
  for (const auto& [path, count] : remaining_consumers) {
    (void)count;
    if (producer_of.find(path) != producer_of.end()) continue;
    int64_t size = 0;
    if (dfs != nullptr) {
      auto stat = dfs->Stat(path);
      if (stat.ok()) size = stat->size_bytes;
    }
    size_of[path] = size;
    est.input_bytes += size;
    live += size;  // staged inputs are live for the whole run
  }
  est.peak_bytes = live;

  // Kahn topological order over producer -> consumer edges.
  std::vector<int> missing_deps(tasks.size(), 0);
  std::vector<std::vector<size_t>> dependents(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (const std::string& path : inputs_of[i]) {
      auto producer = producer_of.find(path);
      if (producer != producer_of.end() && producer->second != i) {
        ++missing_deps[i];
        dependents[producer->second].push_back(i);
      }
    }
  }
  std::queue<size_t> ready;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (missing_deps[i] == 0) ready.push(i);
  }
  std::vector<size_t> order;
  order.reserve(tasks.size());
  while (!ready.empty()) {
    size_t i = ready.front();
    ready.pop();
    order.push_back(i);
    for (size_t dep : dependents[i]) {
      if (--missing_deps[dep] == 0) ready.push(dep);
    }
  }
  // Cycles / unresolvable deps (malformed graphs): append leftovers in
  // declaration order so the walk still terminates.
  if (order.size() < tasks.size()) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      if (missing_deps[i] > 0) order.push_back(i);
    }
  }

  // Serial GC-enabled walk: produce outputs, then retire inputs whose
  // last consumer just finished.
  for (size_t i : order) {
    const TaskSpec& task = tasks[i];
    int64_t input_sum = 0;
    for (const std::string& path : inputs_of[i]) {
      auto size = size_of.find(path);
      if (size != size_of.end()) input_sum += size->second;
    }
    for (const OutputSpec& out : task.outputs) {
      if (out.is_value) continue;
      int64_t size;
      if (out.size_bytes.has_value()) {
        size = *out.size_bytes;
      } else {
        size = input_sum;  // tool-model fallback: outputs scale with inputs
        est.exact_sizes = false;
      }
      size_of[out.path] = size;
      est.total_produced_bytes += size;
      live += size;
      est.peak_bytes = std::max(est.peak_bytes, live);
      // Dead on arrival: no consumer, not a target.
      if (remaining_consumers.find(out.path) == remaining_consumers.end() &&
          target_set.count(out.path) == 0) {
        live -= size;
      }
    }
    for (const std::string& path : inputs_of[i]) {
      auto count = remaining_consumers.find(path);
      if (count == remaining_consumers.end()) continue;
      if (--count->second > 0) continue;
      remaining_consumers.erase(count);
      // Only scope-produced, non-target files are collectible; staged
      // external inputs stay for the whole run.
      if (producer_of.find(path) != producer_of.end() &&
          target_set.count(path) == 0) {
        auto size = size_of.find(path);
        if (size != size_of.end()) live -= size->second;
      }
    }
  }
  return est;
}

}  // namespace hiway
