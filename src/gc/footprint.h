// Per-workflow peak-footprint estimation: the port of Makeflow's
// dag_node_footprint analysis. Simulates a serial, GC-enabled execution of
// a static task graph and reports the high-water mark of live logical
// bytes — the number WorkflowService admission compares against the DFS
// capacity budget (docs/storage-model.md).

#ifndef HIWAY_GC_FOOTPRINT_H_
#define HIWAY_GC_FOOTPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hdfs/dfs.h"
#include "src/lang/workflow.h"

namespace hiway {

struct FootprintEstimate {
  /// Peak live logical bytes across the simulated run (inputs staged in
  /// DFS + produced-but-not-yet-collected intermediates + targets).
  int64_t peak_bytes = 0;
  /// Sum of all produced output sizes.
  int64_t total_produced_bytes = 0;
  /// Bytes of external inputs (paths no task in the list produces) found
  /// in the DFS at estimation time.
  int64_t input_bytes = 0;
  /// False when some output lacked a declared size and the estimator fell
  /// back to sum-of-inputs; the estimate is then a heuristic.
  bool exact_sizes = true;
};

/// Estimates the storage footprint of executing `tasks` with GC enabled.
/// Walks the graph in topological order, adding each task's outputs to
/// the live set and retiring inputs whose last consumer completed
/// (targets and external inputs are never retired). `dfs` supplies sizes
/// of already-staged external inputs and may be nullptr (inputs then
/// count as zero bytes). Logical bytes — multiply by the effective DFS
/// replication factor for raw capacity.
FootprintEstimate EstimateFootprint(const std::vector<TaskSpec>& tasks,
                                    const std::vector<std::string>& targets,
                                    const Dfs* dfs);

}  // namespace hiway

#endif  // HIWAY_GC_FOOTPRINT_H_
