#include "src/gc/intermediate_gc.h"

#include "src/cache/result_cache.h"
#include "src/common/logging.h"

namespace hiway {

void IntermediateGc::BeginScope(const std::string& run_id, bool is_static) {
  auto [it, inserted] = scopes_.emplace(run_id, Scope{});
  if (!inserted) return;  // idempotent: a retried Submit reuses the scope
  it->second.is_static = is_static;
  ++stats_.scopes_opened;
}

void IntermediateGc::SetTargets(const std::string& run_id,
                                const std::vector<std::string>& targets) {
  auto it = scopes_.find(run_id);
  if (it == scopes_.end()) return;
  for (const std::string& path : targets) {
    it->second.targets.insert(path);
    Touch(it->second, path);
  }
}

IntermediateGc::FileState& IntermediateGc::Touch(Scope& scope,
                                                 const std::string& path) {
  auto [it, inserted] = scope.files.emplace(path, FileState{});
  if (inserted) ++interest_[path];
  return it->second;
}

void IntermediateGc::AddLive(Scope& scope, FileState& file) {
  if (file.counted_live) return;
  file.counted_live = true;
  scope.live_bytes += file.size_bytes;
  if (scope.live_bytes > scope.peak_live_bytes) {
    scope.peak_live_bytes = scope.live_bytes;
  }
}

void IntermediateGc::RegisterConsumer(const std::string& run_id, TaskId task,
                                      const std::vector<std::string>& inputs) {
  auto it = scopes_.find(run_id);
  if (it == scopes_.end()) return;
  Scope& scope = it->second;
  std::vector<std::string>& recorded = scope.task_inputs[task];
  for (const std::string& path : inputs) {
    FileState& file = Touch(scope, path);
    if (file.waiting_consumers.insert(task).second) {
      recorded.push_back(path);
    }
    // Staged external inputs (present in DFS, not produced here) count
    // toward the scope's live footprint from first reference; they are
    // never collected, only accounted.
    if (!file.produced && !file.counted_live) {
      auto stat = dfs_->Stat(path);
      if (stat.ok()) {
        file.size_bytes = stat->size_bytes;
        AddLive(scope, file);
      }
    }
  }
}

void IntermediateGc::RegisterProduced(const std::string& run_id,
                                      const std::string& path,
                                      int64_t size_bytes) {
  auto it = scopes_.find(run_id);
  if (it == scopes_.end()) return;
  Scope& scope = it->second;
  FileState& file = Touch(scope, path);
  file.produced = true;
  file.collected = false;
  if (file.counted_live && file.size_bytes != size_bytes) {
    // Re-produced at a different size (e.g. failover re-execution).
    scope.live_bytes += size_bytes - file.size_bytes;
  }
  file.size_bytes = size_bytes;
  AddLive(scope, file);
  // An output nothing consumes and nobody targets is dead on arrival
  // (Makeflow's "garbage at creation" case).
  MaybeCollect(scope, path, /*final_pass=*/false);
}

void IntermediateGc::OnConsumerDone(const std::string& run_id, TaskId task) {
  auto it = scopes_.find(run_id);
  if (it == scopes_.end()) return;
  Scope& scope = it->second;
  auto inputs = scope.task_inputs.find(task);
  if (inputs == scope.task_inputs.end()) return;
  for (const std::string& path : inputs->second) {
    auto file = scope.files.find(path);
    if (file == scope.files.end()) continue;
    file->second.waiting_consumers.erase(task);
    MaybeCollect(scope, path, /*final_pass=*/false);
  }
  scope.task_inputs.erase(inputs);
}

bool IntermediateGc::CachePinned(const std::string& path) const {
  return cache_ != nullptr && cache_->PinsPath(path);
}

void IntermediateGc::MaybeCollect(Scope& scope, const std::string& path,
                                  bool final_pass) {
  auto it = scope.files.find(path);
  if (it == scope.files.end()) return;
  FileState& file = it->second;
  if (!file.produced || file.collected) return;
  if (!file.waiting_consumers.empty()) return;
  if (scope.targets.count(path) != 0) return;
  // Online collection is safe only for static, live scopes: iterative
  // sources may still discover consumers, and a dormant (crashed) scope
  // must not delete files its replacement is about to re-pin.
  if (!final_pass && (!scope.is_static || scope.dormant)) return;
  // Another live scope references the path (cross-submission sharing).
  auto interest = interest_.find(path);
  if (interest != interest_.end() && interest->second > 1) return;
  if (CachePinned(path)) {
    if (scope.deferred.insert(path).second) ++stats_.cache_deferrals;
    return;
  }
  Status st = dfs_->Delete(path);
  // NotFound is fine: the file may have been superseded or never landed.
  if (!st.ok() && !st.IsNotFound()) {
    HIWAY_LOG_WARN << "gc: delete of " << path << " failed: " << st.message();
    return;
  }
  file.collected = true;
  scope.deferred.erase(path);
  if (file.counted_live) {
    file.counted_live = false;
    scope.live_bytes -= file.size_bytes;
  }
  ++scope.files_collected;
  scope.bytes_collected += file.size_bytes;
  ++stats_.files_collected;
  stats_.bytes_collected += file.size_bytes;
}

void IntermediateGc::MarkDormant(const std::string& run_id) {
  auto it = scopes_.find(run_id);
  if (it != scopes_.end()) it->second.dormant = true;
}

GcScopeReport IntermediateGc::EndScope(const std::string& run_id) {
  GcScopeReport report;
  auto it = scopes_.find(run_id);
  if (it == scopes_.end()) return report;
  Scope& scope = it->second;
  // Final pass: by now the consumer set is complete (static or not), so
  // anything dead, untargeted, unshared, and unpinned goes. Cache-pinned
  // files are intentionally left behind — the sealed entry owns them.
  for (auto& [path, file] : scope.files) {
    (void)file;
    MaybeCollect(scope, path, /*final_pass=*/true);
  }
  report.peak_live_bytes = scope.peak_live_bytes;
  report.files_collected = scope.files_collected;
  report.bytes_collected = scope.bytes_collected;
  for (const auto& [path, file] : scope.files) {
    (void)file;
    auto interest = interest_.find(path);
    if (interest != interest_.end() && --interest->second <= 0) {
      interest_.erase(interest);
    }
  }
  scopes_.erase(it);
  ++stats_.scopes_ended;
  return report;
}

int64_t IntermediateGc::Sweep() {
  ++stats_.sweeps;
  int64_t before = stats_.files_collected;
  for (auto& [run_id, scope] : scopes_) {
    (void)run_id;
    std::vector<std::string> retry(scope.deferred.begin(),
                                   scope.deferred.end());
    for (const std::string& path : retry) {
      MaybeCollect(scope, path, /*final_pass=*/false);
    }
  }
  return stats_.files_collected - before;
}

int64_t IntermediateGc::LiveBytes(const std::string& run_id) const {
  auto it = scopes_.find(run_id);
  return it == scopes_.end() ? 0 : it->second.live_bytes;
}

int64_t IntermediateGc::PeakLiveBytes(const std::string& run_id) const {
  auto it = scopes_.find(run_id);
  return it == scopes_.end() ? 0 : it->second.peak_live_bytes;
}

bool IntermediateGc::HasScope(const std::string& run_id) const {
  return scopes_.find(run_id) != scopes_.end();
}

}  // namespace hiway
