// Intermediate-data garbage collector: the port of Makeflow's
// reference-counting GC (makeflow_gc.c) onto the Hi-WAY DFS.
//
// Every workflow run opens a *scope*. Inside a scope the AM registers each
// task's input set before the task can complete (RegisterConsumer) and
// each produced file as stage-out finishes (RegisterProduced). A produced
// file is *dead* — and deleted from the DFS — once every registered
// consumer has successfully completed, it is not a workflow target, no
// other live scope references the path, and no sealed result-cache entry
// pins it. Pins are released only by *successful* completion, so a
// preempted or drain-requeued task (which never reaches OnConsumerDone)
// keeps its inputs alive across the retry by construction.
//
// Failover. When an AM attempt crashes, the service marks its scope
// *dormant*: no further online collection, interests frozen. The
// replacement attempt opens a fresh scope and re-registers every interest
// during replay (consumer sets are re-derived from the task graph; the
// ProvenanceView-backed memoisation decides which producers re-execute).
// Only after the replacement is live does the service dissolve the
// dormant scope (EndScope), whose final pass collects exactly the files
// no surviving scope references. See docs/storage-model.md.
//
// Iterative (non-static) sources can discover new consumers of any path
// at any time, so their scopes never collect online — only the EndScope
// pass runs, when the consumer set is finally complete.

#ifndef HIWAY_GC_INTERMEDIATE_GC_H_
#define HIWAY_GC_INTERMEDIATE_GC_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/hdfs/dfs.h"
#include "src/lang/workflow.h"

namespace hiway {

class ResultCache;

/// Cumulative collector counters across all scopes.
struct GcStats {
  int64_t files_collected = 0;
  int64_t bytes_collected = 0;
  /// Dead files whose deletion is deferred because a sealed result-cache
  /// entry pins them (retried on Sweep / scope end).
  int64_t cache_deferrals = 0;
  int64_t sweeps = 0;
  int64_t scopes_opened = 0;
  int64_t scopes_ended = 0;
};

/// Per-scope summary returned by EndScope, surfaced through
/// WorkflowReport.
struct GcScopeReport {
  /// High-water mark of the scope's live logical bytes (staged inputs +
  /// uncollected produced files) — the traced actual the footprint
  /// estimator is benchmarked against.
  int64_t peak_live_bytes = 0;
  int64_t files_collected = 0;
  int64_t bytes_collected = 0;
};

class IntermediateGc {
 public:
  /// `dfs` must outlive the collector.
  explicit IntermediateGc(Dfs* dfs) : dfs_(dfs) {}
  IntermediateGc(const IntermediateGc&) = delete;
  IntermediateGc& operator=(const IntermediateGc&) = delete;

  /// Optional: sealed entries of `cache` pin their outputs against
  /// collection (the GC must never invalidate the result cache).
  void SetResultCache(const ResultCache* cache) { cache_ = cache; }

  /// Opens the scope of run `run_id`. `is_static` gates online collection
  /// (iterative sources collect only at EndScope).
  void BeginScope(const std::string& run_id, bool is_static);

  /// Declares the workflow's final products; targets are never collected.
  /// May be called again as iterative sources resolve their targets.
  void SetTargets(const std::string& run_id,
                  const std::vector<std::string>& targets);

  /// Registers `task` as a consumer of `inputs`. Must happen before the
  /// task can complete (the AM calls it at admission, before memoisation).
  void RegisterConsumer(const std::string& run_id, TaskId task,
                        const std::vector<std::string>& inputs);

  /// Registers a file the scope produced (stage-out durably complete).
  void RegisterProduced(const std::string& run_id, const std::string& path,
                        int64_t size_bytes);

  /// Releases `task`'s input pins. Call only on *successful* completion —
  /// preempted / drain-requeued attempts keep their pins.
  void OnConsumerDone(const std::string& run_id, TaskId task);

  /// Freezes the scope after an AM crash: interests are kept, online
  /// collection stops. Dissolve with EndScope once a replacement attempt
  /// has re-registered its interests.
  void MarkDormant(const std::string& run_id);

  /// Final collection pass (dead, unpinned, not referenced by any other
  /// scope), then releases every interest the scope held. Returns the
  /// scope's summary; a zero report for unknown run ids.
  GcScopeReport EndScope(const std::string& run_id);

  /// Retries cache-deferred dead files whose pins have since been
  /// released (the service calls this after cache evictions / periodic
  /// maintenance). Returns files collected.
  int64_t Sweep();

  /// Current live logical bytes of the scope (0 for unknown run ids).
  int64_t LiveBytes(const std::string& run_id) const;
  int64_t PeakLiveBytes(const std::string& run_id) const;
  bool HasScope(const std::string& run_id) const;

  const GcStats& stats() const { return stats_; }

 private:
  struct FileState {
    bool produced = false;       // written by this scope (collectible)
    bool collected = false;      // already deleted by this GC
    bool counted_live = false;   // size currently in live_bytes
    int64_t size_bytes = 0;
    std::set<TaskId> waiting_consumers;
  };

  struct Scope {
    bool is_static = false;
    bool dormant = false;
    std::set<std::string> targets;
    std::map<std::string, FileState> files;
    std::map<TaskId, std::vector<std::string>> task_inputs;
    /// Dead files deferred because the result cache pinned them.
    std::set<std::string> deferred;
    int64_t live_bytes = 0;
    int64_t peak_live_bytes = 0;
    int64_t files_collected = 0;
    int64_t bytes_collected = 0;
  };

  /// Returns the scope's entry for `path`, creating it (and taking the
  /// scope's global interest in the path) on first reference.
  FileState& Touch(Scope& scope, const std::string& path);
  void AddLive(Scope& scope, FileState& file);
  /// Deletes `path` if dead and unpinned; defers on a cache pin when
  /// `defer_on_pin`. `final_pass` also collects in dormant / iterative
  /// scopes (EndScope semantics).
  void MaybeCollect(Scope& scope, const std::string& path, bool final_pass);
  bool CachePinned(const std::string& path) const;

  Dfs* dfs_;
  const ResultCache* cache_ = nullptr;
  std::map<std::string, Scope> scopes_;
  /// Global path -> number of scopes referencing it. A path is only
  /// collectible for a scope when its count is 1 (that scope alone).
  std::map<std::string, int> interest_;
  GcStats stats_;
};

}  // namespace hiway

#endif  // HIWAY_GC_INTERMEDIATE_GC_H_
