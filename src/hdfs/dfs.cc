#include "src/hdfs/dfs.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace hiway {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}

Dfs::Dfs(Cluster* cluster, DfsOptions options)
    : cluster_(cluster), options_(options), rng_(options.seed) {
  HIWAY_CHECK(options_.replication >= 1);
  HIWAY_CHECK(options_.block_size_bytes > 0);
}

int Dfs::EffectiveReplication() const {
  int alive = 0;
  for (NodeId n = options_.first_datanode; n < cluster_->num_nodes(); ++n) {
    if (dead_nodes_.find(n) == dead_nodes_.end()) ++alive;
  }
  return std::max(1, std::min(options_.replication, alive));
}

void Dfs::AccountReplica(NodeId node, int64_t size_bytes, int sign) {
  stored_bytes_[node] += sign * size_bytes;
  total_stored_bytes_ += sign * size_bytes;
  if (total_stored_bytes_ > counters_.peak_footprint) {
    counters_.peak_footprint = total_stored_bytes_;
  }
}

void Dfs::AccountReplicas(const DfsFileInfo& info, int sign) {
  if (info.external) return;  // S3 objects consume no cluster storage
  for (const DfsBlock& block : info.blocks) {
    for (NodeId replica : block.replicas) {
      AccountReplica(replica, block.size_bytes, sign);
    }
  }
}

Status Dfs::CheckCapacity(const std::string& path, int64_t size_bytes,
                          int replication) {
  if (options_.capacity_bytes <= 0) return Status::OK();
  int64_t projected = size_bytes * static_cast<int64_t>(replication);
  if (total_stored_bytes_ + projected <= options_.capacity_bytes) {
    return Status::OK();
  }
  ++counters_.capacity_rejections;
  return Status::ResourceExhausted(StrFormat(
      "DFS capacity exceeded writing %s: %lld raw bytes stored + %lld "
      "requested > %lld capacity",
      path.c_str(), static_cast<long long>(total_stored_bytes_),
      static_cast<long long>(projected),
      static_cast<long long>(options_.capacity_bytes)));
}

bool Dfs::Exists(const std::string& path) const {
  ++counters_.metadata_ops;
  return files_.find(path) != files_.end();
}

Result<DfsFileInfo> Dfs::Stat(const std::string& path) const {
  ++counters_.metadata_ops;
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file in DFS: " + path);
  }
  return it->second;
}

Status Dfs::Delete(const std::string& path) {
  ++counters_.metadata_ops;
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such file in DFS: " + path);
  }
  if (!it->second.external) {
    int64_t raw = 0;
    for (const DfsBlock& block : it->second.blocks) {
      raw += block.size_bytes * static_cast<int64_t>(block.replicas.size());
    }
    counters_.bytes_deleted += raw;
  }
  ++counters_.files_deleted;
  AccountReplicas(it->second, -1);
  files_.erase(it);
  return Status::OK();
}

std::vector<NodeId> Dfs::PlaceReplicas(std::optional<NodeId> favored,
                                       int count) {
  std::vector<NodeId> alive;
  alive.reserve(static_cast<size_t>(cluster_->num_nodes()));
  for (NodeId n = options_.first_datanode; n < cluster_->num_nodes(); ++n) {
    if (dead_nodes_.find(n) == dead_nodes_.end()) alive.push_back(n);
  }
  HIWAY_CHECK(!alive.empty());
  std::vector<NodeId> chosen;
  if (favored.has_value() && *favored >= options_.first_datanode &&
      dead_nodes_.find(*favored) == dead_nodes_.end()) {
    chosen.push_back(*favored);
  }
  // Fisher-Yates style selection of the remaining replicas.
  std::vector<NodeId> pool;
  for (NodeId n : alive) {
    if (chosen.empty() || n != chosen[0]) pool.push_back(n);
  }
  while (static_cast<int>(chosen.size()) < count && !pool.empty()) {
    size_t idx = static_cast<size_t>(rng_.UniformInt(pool.size()));
    chosen.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(idx));
  }
  return chosen;
}

Status Dfs::IngestFile(const std::string& path, int64_t size_bytes,
                       std::optional<NodeId> favored_node) {
  ++counters_.metadata_ops;
  if (size_bytes < 0) {
    return Status::InvalidArgument("negative file size for " + path);
  }
  if (files_.find(path) != files_.end()) {
    return Status::AlreadyExists("file already in DFS: " + path);
  }
  int rep = EffectiveReplication();
  Status cap = CheckCapacity(path, size_bytes, rep);
  if (!cap.ok()) return cap;
  DfsFileInfo info;
  info.path = path;
  info.size_bytes = size_bytes;
  info.content_id = NextContentId(path, size_bytes);
  int64_t remaining = size_bytes;
  do {
    DfsBlock block;
    block.size_bytes = std::min(remaining, options_.block_size_bytes);
    block.replicas = PlaceReplicas(favored_node, rep);
    info.blocks.push_back(std::move(block));
    remaining -= info.blocks.back().size_bytes;
  } while (remaining > 0);
  AccountReplicas(info, +1);
  files_.emplace(path, std::move(info));
  return Status::OK();
}

Status Dfs::RegisterExternalFile(const std::string& path,
                                 int64_t size_bytes) {
  ++counters_.metadata_ops;
  if (!cluster_->has_s3()) {
    return Status::FailedPrecondition(
        "cluster has no S3 uplink for external file " + path);
  }
  if (files_.find(path) != files_.end()) {
    return Status::AlreadyExists("file already in DFS: " + path);
  }
  DfsFileInfo info;
  info.path = path;
  info.size_bytes = size_bytes;
  info.external = true;
  info.content_id = NextContentId(path, size_bytes);
  files_.emplace(path, std::move(info));
  return Status::OK();
}

uint64_t Dfs::ContentId(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return 0;
  return it->second.content_id;
}

uint64_t Dfs::NextContentId(const std::string& path, int64_t size_bytes) {
  uint64_t gen = ++generation_[path];
  uint64_t h = Fnv1a64(path);
  h = Fnv1a64(StrFormat("|%lld|%llu", static_cast<long long>(size_bytes),
                        static_cast<unsigned long long>(gen)),
              h);
  // 0 is reserved for "no such file".
  return h == 0 ? 1 : h;
}

int64_t Dfs::LocalBytes(const std::string& path, NodeId node) const {
  auto it = files_.find(path);
  if (it == files_.end()) return 0;
  int64_t total = 0;
  for (const DfsBlock& block : it->second.blocks) {
    if (std::find(block.replicas.begin(), block.replicas.end(), node) !=
        block.replicas.end()) {
      total += block.size_bytes;
    }
  }
  return total;
}

std::vector<std::string> Dfs::ListFiles() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, info] : files_) out.push_back(path);
  return out;
}

void Dfs::ReadToNode(const std::string& path, NodeId node,
                     std::function<void(Status)> done) {
  ++counters_.metadata_ops;  // block-location lookup
  if (dead_nodes_.find(node) != dead_nodes_.end()) {
    Status st = Status::IoError("reader node is dead");
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done), st] { done(st); });
    return;
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    Status st = Status::NotFound("no such file in DFS: " + path);
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done), st] { done(st); });
    return;
  }
  if (read_fault_hook_ && read_fault_hook_(path, node)) {
    Status st = Status::Unavailable("transient DFS read error: " + path);
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done), st] { done(st); });
    return;
  }
  const DfsFileInfo& info = it->second;
  // Zero-byte files (and metadata-only sentinels) complete immediately.
  if (info.size_bytes == 0) {
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done)] { done(Status::OK()); });
    return;
  }
  if (info.external) {
    // Stream from the S3-like object store through the node's NIC onto
    // its local disk.
    counters_.bytes_read_remote += info.size_bytes;
    FlowSpec spec;
    spec.resources = cluster_->S3ReadPath(node);
    spec.demand = static_cast<double>(info.size_bytes) / kBytesPerMb;
    spec.on_complete = [done = std::move(done)] { done(Status::OK()); };
    cluster_->net()->StartFlow(std::move(spec));
    return;
  }
  struct ReadState {
    int pending = 0;
    bool delivered = false;
    Status status;
    std::function<void(Status)> done;
    void MaybeFinish() {
      if (pending == 0 && !delivered) {
        delivered = true;
        done(status);
      }
    }
  };
  auto state = std::make_shared<ReadState>();
  state->done = std::move(done);
  for (const DfsBlock& block : info.blocks) {
    if (block.replicas.empty()) {
      Status st = Status::IoError("block lost (all replicas dead): " + path);
      cluster_->engine()->ScheduleAfter(
          0.0, [state, st] {
            if (state->status.ok()) state->status = st;
            state->MaybeFinish();
          });
      continue;
    }
    bool local = std::find(block.replicas.begin(), block.replicas.end(),
                           node) != block.replicas.end();
    FlowSpec spec;
    if (local) {
      ++counters_.blocks_read_local;
      counters_.bytes_read_local += block.size_bytes;
      spec.resources = cluster_->LocalDiskPath(node);
    } else {
      ++counters_.blocks_read_remote;
      counters_.bytes_read_remote += block.size_bytes;
      // Fetch from a deterministic replica choice (first alive replica).
      NodeId src = block.replicas.front();
      spec.resources = cluster_->RemoteTransferPath(src, node);
    }
    spec.demand = static_cast<double>(block.size_bytes) / kBytesPerMb;
    ++state->pending;
    spec.on_complete = [state] {
      --state->pending;
      state->MaybeFinish();
    };
    cluster_->net()->StartFlow(std::move(spec));
  }
  // If all blocks were lost, the scheduled error callbacks deliver the
  // status (exactly once, guarded by `delivered`).
}

void Dfs::WriteFromNode(const std::string& path, int64_t size_bytes,
                        NodeId node, std::function<void(Status)> done) {
  ++counters_.metadata_ops;
  if (dead_nodes_.find(node) != dead_nodes_.end()) {
    // A crashed DataNode cannot push a write pipeline; this also stops
    // "ghost" attempts of lost containers from publishing outputs.
    Status st = Status::IoError("writer node is dead");
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done), st] { done(st); });
    return;
  }
  if (files_.find(path) != files_.end()) {
    Status st = Status::AlreadyExists("file already in DFS: " + path);
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done), st] { done(st); });
    return;
  }
  int rep = EffectiveReplication();
  Status cap = CheckCapacity(path, size_bytes, rep);
  if (!cap.ok()) {
    cluster_->engine()->ScheduleAfter(
        0.0, [done = std::move(done), cap] { done(cap); });
    return;
  }
  counters_.bytes_written += size_bytes;
  // Build metadata up front (placement is decided at write start, like an
  // HDFS client asking the NameNode for a pipeline).
  DfsFileInfo info;
  info.path = path;
  info.size_bytes = size_bytes;
  info.content_id = NextContentId(path, size_bytes);
  int64_t remaining = size_bytes;
  struct WriteState {
    int pending = 0;
    std::function<void(Status)> done;
  };
  auto state = std::make_shared<WriteState>();
  state->done = std::move(done);
  std::vector<FlowSpec> flows;
  do {
    DfsBlock block;
    block.size_bytes = std::min(remaining, options_.block_size_bytes);
    remaining -= block.size_bytes;
    block.replicas = PlaceReplicas(node, rep);
    // Pipelined replication: one flow crossing the writer's disk plus the
    // network path to every remote replica.
    FlowSpec spec;
    std::vector<ResourceId> resources;
    bool writer_is_replica =
        std::find(block.replicas.begin(), block.replicas.end(), node) !=
        block.replicas.end();
    if (writer_is_replica) {
      resources.push_back(cluster_->disk(node));
    }
    bool any_remote = false;
    for (NodeId replica : block.replicas) {
      if (replica == node) continue;
      any_remote = true;
      resources.push_back(cluster_->nic(replica));
      resources.push_back(cluster_->disk(replica));
    }
    if (any_remote) {
      resources.push_back(cluster_->nic(node));
      resources.push_back(cluster_->switch_resource());
    }
    if (resources.empty()) resources.push_back(cluster_->disk(node));
    spec.resources = std::move(resources);
    spec.demand =
        std::max(static_cast<double>(block.size_bytes) / kBytesPerMb, 1e-6);
    spec.on_complete = [state] {
      if (--state->pending == 0) state->done(Status::OK());
    };
    flows.push_back(std::move(spec));
    info.blocks.push_back(std::move(block));
  } while (remaining > 0);
  AccountReplicas(info, +1);
  files_.emplace(path, std::move(info));
  state->pending = static_cast<int>(flows.size());
  for (FlowSpec& spec : flows) {
    cluster_->net()->StartFlow(std::move(spec));
  }
}

void Dfs::KillNode(NodeId node) {
  dead_nodes_.insert(node);
  auto stored = stored_bytes_.find(node);
  if (stored != stored_bytes_.end()) {
    total_stored_bytes_ -= stored->second;
    stored->second = 0;
  }
  for (auto& [path, info] : files_) {
    for (DfsBlock& block : info.blocks) {
      block.replicas.erase(
          std::remove(block.replicas.begin(), block.replicas.end(), node),
          block.replicas.end());
    }
  }
}

void Dfs::DecommissionNode(NodeId node) {
  if (dead_nodes_.find(node) != dead_nodes_.end()) return;
  // Rescue pass: every block whose only replica lives on the retiring
  // node gets a copy elsewhere before the replicas are dropped.
  for (auto& [path, info] : files_) {
    for (DfsBlock& block : info.blocks) {
      if (block.replicas.size() != 1 || block.replicas[0] != node) continue;
      std::vector<NodeId> pool;
      for (NodeId n = options_.first_datanode; n < cluster_->num_nodes();
           ++n) {
        if (n == node) continue;
        if (dead_nodes_.find(n) == dead_nodes_.end()) pool.push_back(n);
      }
      if (pool.empty()) break;  // nowhere to rescue to
      NodeId dst = pool[static_cast<size_t>(rng_.UniformInt(pool.size()))];
      block.replicas.push_back(dst);
      AccountReplica(dst, block.size_bytes, +1);
      ++counters_.blocks_re_replicated;
      ++counters_.metadata_ops;
    }
  }
  KillNode(node);
}

bool Dfs::AllFilesReadable() const {
  for (const auto& [path, info] : files_) {
    if (info.size_bytes == 0) continue;
    for (const DfsBlock& block : info.blocks) {
      if (block.replicas.empty()) return false;
    }
  }
  return true;
}

bool Dfs::FileReadable(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return false;
  const DfsFileInfo& info = it->second;
  if (info.external || info.size_bytes == 0) return true;
  for (const DfsBlock& block : info.blocks) {
    if (block.replicas.empty()) return false;
  }
  return true;
}

void Dfs::ReReplicate() {
  int rep = EffectiveReplication();
  for (auto& [path, info] : files_) {
    for (DfsBlock& block : info.blocks) {
      if (block.replicas.empty()) continue;  // unrecoverable
      while (static_cast<int>(block.replicas.size()) < rep) {
        // Choose a new home distinct from current replicas (DataNodes
        // only — master VMs below first_datanode store no blocks).
        std::vector<NodeId> pool;
        for (NodeId n = options_.first_datanode; n < cluster_->num_nodes();
             ++n) {
          if (dead_nodes_.find(n) != dead_nodes_.end()) continue;
          if (std::find(block.replicas.begin(), block.replicas.end(), n) ==
              block.replicas.end()) {
            pool.push_back(n);
          }
        }
        if (pool.empty()) break;
        NodeId dst = pool[static_cast<size_t>(rng_.UniformInt(pool.size()))];
        block.replicas.push_back(dst);
        AccountReplica(dst, block.size_bytes, +1);
        ++counters_.blocks_re_replicated;
        ++counters_.metadata_ops;
      }
    }
  }
}

int64_t Dfs::StoredBytes(NodeId node) const {
  auto it = stored_bytes_.find(node);
  return it == stored_bytes_.end() ? 0 : it->second;
}

}  // namespace hiway
