// Simulated HDFS: block-structured immutable files with replicated
// placement across cluster nodes, locality metadata for data-aware
// scheduling, and flow-based data movement for reads and pipelined
// replicated writes.
//
// Only the behaviour Hi-WAY depends on is modelled: block locations and
// sizes (for the data-aware scheduler), replication (for fault tolerance),
// and the cost of moving bytes between disks and across the switch.

#ifndef HIWAY_HDFS_DFS_H_
#define HIWAY_HDFS_DFS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/sim/cluster.h"

namespace hiway {

struct DfsOptions {
  /// Number of replicas per block (HDFS default 3, clamped to the cluster
  /// size).
  int replication = 3;
  /// Block size in bytes (HDFS default 128 MiB).
  int64_t block_size_bytes = 128LL * 1024 * 1024;
  /// Seed for randomized replica placement.
  uint64_t seed = 7;
  /// Nodes below this id run no DataNode (dedicated master VMs store no
  /// HDFS blocks).
  NodeId first_datanode = 0;
  /// Cluster-wide storage capacity in raw (replica-weighted) bytes;
  /// 0 = unlimited. A write or ingest that would push the total stored
  /// bytes past this limit fails with ResourceExhausted — the condition
  /// intermediate-data GC (src/gc/, docs/storage-model.md) exists to
  /// relieve.
  int64_t capacity_bytes = 0;
};

/// One replicated block of a file.
struct DfsBlock {
  int64_t size_bytes = 0;
  /// Nodes currently holding a replica (distinct, possibly fewer than the
  /// target replication after node failures).
  std::vector<NodeId> replicas;
};

/// NameNode-side metadata of one file.
struct DfsFileInfo {
  std::string path;
  int64_t size_bytes = 0;
  std::vector<DfsBlock> blocks;
  /// External objects (e.g. the 1000-Genomes S3 bucket in Sec. 4.1) have
  /// no HDFS replicas; reads stream through the cluster's S3 uplink.
  bool external = false;
  /// Content fingerprint standing in for a checksum of the bytes. The
  /// simulator stores sizes, not data, so the fingerprint is derived from
  /// (path, size, per-path write generation): re-writing a path — even with
  /// the same size — yields a new fingerprint, which is the conservative
  /// choice for result-cache keys. Deterministic across process restarts
  /// (same ingest sequence -> same ids), so a persisted cache index stays
  /// resolvable.
  uint64_t content_id = 0;
};

/// Cumulative counters, used for master-load accounting (Fig. 6) and for
/// quantifying locality wins (Fig. 4).
struct DfsCounters {
  int64_t metadata_ops = 0;
  int64_t blocks_read_local = 0;
  int64_t blocks_read_remote = 0;
  int64_t bytes_read_local = 0;
  int64_t bytes_read_remote = 0;
  int64_t bytes_written = 0;
  int64_t blocks_re_replicated = 0;
  /// Raw (replica-weighted) bytes freed by Delete() over the lifetime.
  int64_t bytes_deleted = 0;
  /// Files removed by Delete().
  int64_t files_deleted = 0;
  /// High-water mark of total stored raw bytes (the cluster's realised
  /// storage footprint; docs/storage-model.md).
  int64_t peak_footprint = 0;
  /// Writes/ingests refused because they would exceed capacity_bytes.
  int64_t capacity_rejections = 0;
};

class Dfs {
 public:
  Dfs(Cluster* cluster, DfsOptions options);
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  // ---- Metadata operations (instantaneous; counted) --------------------

  bool Exists(const std::string& path) const;

  Result<DfsFileInfo> Stat(const std::string& path) const;

  Status Delete(const std::string& path);

  /// Creates metadata for a pre-loaded file without moving data: replicas
  /// are placed per policy. Used to stage workflow input. If
  /// `favored_node` is given, the first replica lands there (like an HDFS
  /// write from that node).
  Status IngestFile(const std::string& path, int64_t size_bytes,
                    std::optional<NodeId> favored_node = std::nullopt);

  /// Registers an external (S3-hosted) object: readable from any node via
  /// the cluster's S3 uplink, never local to any node. Requires the
  /// cluster to have an S3 resource.
  Status RegisterExternalFile(const std::string& path, int64_t size_bytes);

  /// Bytes of `path` that have a replica on `node` — the quantity the
  /// data-aware scheduler maximises.
  int64_t LocalBytes(const std::string& path, NodeId node) const;

  /// Content fingerprint of `path` (see DfsFileInfo::content_id);
  /// 0 when the file does not exist. Not counted as a metadata op: every
  /// caller pairs it with a Stat/Exists that already is.
  uint64_t ContentId(const std::string& path) const;

  /// All file paths currently in the namespace, sorted.
  std::vector<std::string> ListFiles() const;

  // ---- Data operations (asynchronous; consume simulated bandwidth) -----

  /// Stages the file onto `node`'s local disk: local blocks are read from
  /// the local disk, remote blocks are fetched from a replica over the
  /// switch. `done` fires when every block has arrived.
  void ReadToNode(const std::string& path, NodeId node,
                  std::function<void(Status)> done);

  /// Writes a new `size_bytes` file from `node`, pipelining each block to
  /// `replication` replicas (first replica local, as in HDFS). `done`
  /// fires when the last block is fully replicated.
  void WriteFromNode(const std::string& path, int64_t size_bytes, NodeId node,
                     std::function<void(Status)> done);

  // ---- Failure handling -------------------------------------------------

  /// Drops every replica stored on `node` (simulates a DataNode crash).
  /// Files that lose all replicas of some block become unreadable.
  void KillNode(NodeId node);

  /// Gracefully retires `node`'s DataNode: blocks for which it holds the
  /// SOLE replica are first copied to another live node (counted as
  /// re-replications), then the node's replicas are dropped as in
  /// KillNode. Guarantees zero data loss — follow with ReReplicate() to
  /// restore full target replication. Elastic scale-in and warned spot
  /// revocations use this path (docs/elastic-cluster.md).
  void DecommissionNode(NodeId node);

  /// True if every block of every file still has >= 1 replica.
  bool AllFilesReadable() const;

  /// True if `path` exists and every block has >= 1 replica (external
  /// files are always readable). Not counted as a metadata op; the
  /// result cache calls this per audit sweep.
  bool FileReadable(const std::string& path) const;

  /// Restores the target replication of under-replicated blocks by copying
  /// from surviving replicas (metadata-level; instantaneous, counted).
  void ReReplicate();

  /// Fault-injection hook consulted once per ReadToNode of an existing
  /// file. Returning true fails that read with Unavailable — a transient
  /// error; a retried attempt may succeed. nullptr disables the hook.
  void SetReadFaultHook(
      std::function<bool(const std::string& path, NodeId node)> hook) {
    read_fault_hook_ = std::move(hook);
  }

  const DfsCounters& counters() const { return counters_; }
  const DfsOptions& options() const { return options_; }
  Cluster* cluster() const { return cluster_; }

  /// Total bytes of replicas currently stored on `node`. O(1): the DFS
  /// keeps incremental per-node byte accounting (docs/storage-model.md).
  int64_t StoredBytes(NodeId node) const;

  /// Total raw (replica-weighted) bytes stored across all nodes. O(1).
  int64_t TotalStoredBytes() const { return total_stored_bytes_; }

 private:
  /// Adds (`sign` = +1) or removes (-1) every replica of `info` from the
  /// per-node and cluster byte accounting, updating the peak watermark.
  void AccountReplicas(const DfsFileInfo& info, int sign);
  /// Single-replica accounting delta (replica churn: kills, rescues,
  /// re-replication).
  void AccountReplica(NodeId node, int64_t size_bytes, int sign);
  /// ResourceExhausted when storing `size_bytes` at `replication` would
  /// exceed capacity_bytes; OK otherwise (and always OK when unlimited).
  Status CheckCapacity(const std::string& path, int64_t size_bytes,
                       int replication);
  /// Picks `count` distinct replica nodes, honouring the favored first
  /// node when alive.
  std::vector<NodeId> PlaceReplicas(std::optional<NodeId> favored, int count);

  int EffectiveReplication() const;

  /// Bumps the path's write generation and returns the fingerprint for a
  /// file of `size_bytes` being created now.
  uint64_t NextContentId(const std::string& path, int64_t size_bytes);

  Cluster* cluster_;
  DfsOptions options_;
  mutable DfsCounters counters_;
  Rng rng_;
  std::map<std::string, DfsFileInfo> files_;
  /// Write generation per path. Survives Delete(): a deleted-then-
  /// rewritten path must not reuse an old fingerprint.
  std::map<std::string, uint64_t> generation_;
  std::set<NodeId> dead_nodes_;
  std::function<bool(const std::string&, NodeId)> read_fault_hook_;
  /// Incremental byte accounting: raw bytes of replicas per node and the
  /// cluster total (StoredBytes/TotalStoredBytes are O(1) lookups, not
  /// namespace scans).
  std::map<NodeId, int64_t> stored_bytes_;
  int64_t total_stored_bytes_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_HDFS_DFS_H_
