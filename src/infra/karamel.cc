#include "src/infra/karamel.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <set>

#include "src/common/strings.h"
#include "src/provdb/provdb.h"
#include "src/tools/standard_tools.h"
#include "src/workloads/workloads.h"

namespace hiway {

namespace {

std::string Attr(const ChefAttributes& attrs, const std::string& key,
                 const std::string& def) {
  auto it = attrs.find(key);
  return it == attrs.end() ? def : it->second;
}

/// Parses attrs[key] as an integer in [min, max]; absent means `def`.
/// Unparseable or out-of-range values are loud errors naming the key and
/// the offending token — recipes never silently fall back to defaults.
Result<int64_t> AttrInt(const ChefAttributes& attrs, const std::string& key,
                        int64_t def, int64_t min, int64_t max) {
  auto it = attrs.find(key);
  if (it == attrs.end()) return def;
  auto parsed = ParseInt64(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StrFormat("attribute %s: '%s' is not an integer", key.c_str(),
                  it->second.c_str()));
  }
  if (*parsed < min || *parsed > max) {
    return Status::InvalidArgument(StrFormat(
        "attribute %s: %lld is outside the allowed range [%lld, %lld]",
        key.c_str(), static_cast<long long>(*parsed),
        static_cast<long long>(min), static_cast<long long>(max)));
  }
  return *parsed;
}

Result<double> AttrDouble(const ChefAttributes& attrs, const std::string& key,
                          double def, double min, double max) {
  auto it = attrs.find(key);
  if (it == attrs.end()) return def;
  auto parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        StrFormat("attribute %s: '%s' is not a number", key.c_str(),
                  it->second.c_str()));
  }
  if (!std::isfinite(*parsed) || *parsed < min || *parsed > max) {
    return Status::InvalidArgument(
        StrFormat("attribute %s: %s is outside the allowed range [%g, %g]",
                  key.c_str(), it->second.c_str(), min, max));
  }
  return *parsed;
}

}  // namespace

Result<std::unique_ptr<Deployment>> Karamel::Converge() {
  // Kahn's algorithm over recipe dependencies.
  std::map<std::string, const Recipe*> by_name;
  for (const Recipe& r : recipes_) {
    if (by_name.count(r.name) > 0) {
      return Status::InvalidArgument("duplicate recipe: " + r.name);
    }
    by_name[r.name] = &r;
  }
  std::map<std::string, int> in_degree;
  std::map<std::string, std::vector<std::string>> dependents;
  for (const Recipe& r : recipes_) {
    in_degree[r.name] += 0;
    for (const std::string& dep : r.dependencies) {
      if (by_name.count(dep) == 0) {
        return Status::InvalidArgument("recipe '" + r.name +
                                       "' depends on unknown '" + dep + "'");
      }
      ++in_degree[r.name];
      dependents[dep].push_back(r.name);
    }
  }
  std::deque<std::string> frontier;
  for (const Recipe& r : recipes_) {
    if (in_degree[r.name] == 0) frontier.push_back(r.name);
  }
  std::vector<const Recipe*> order;
  while (!frontier.empty()) {
    std::string name = frontier.front();
    frontier.pop_front();
    order.push_back(by_name[name]);
    for (const std::string& d : dependents[name]) {
      if (--in_degree[d] == 0) frontier.push_back(d);
    }
  }
  if (order.size() != recipes_.size()) {
    return Status::InvalidArgument("recipe dependency cycle");
  }
  auto deployment = std::make_unique<Deployment>();
  for (const Recipe* r : order) {
    Status st = r->converge(attributes_, deployment.get());
    if (!st.ok()) {
      return st.WithContext("recipe '" + r->name + "' failed to converge");
    }
  }
  return deployment;
}

Recipe HadoopInstallRecipe() {
  Recipe r;
  r.name = "hadoop::install";
  r.converge = [](const ChefAttributes& attrs, Deployment* d) -> Status {
    NodeSpec node;
    HIWAY_ASSIGN_OR_RETURN(int64_t cores,
                           AttrInt(attrs, "cluster/cores", 2, 1, 4096));
    node.cores = static_cast<int>(cores);
    HIWAY_ASSIGN_OR_RETURN(
        node.memory_mb, AttrDouble(attrs, "cluster/memory_mb", 7680.0,
                                   1.0, 1e9));
    HIWAY_ASSIGN_OR_RETURN(
        node.disk_bw_mbps, AttrDouble(attrs, "cluster/disk_mbps", 150.0,
                                      0.001, 1e9));
    HIWAY_ASSIGN_OR_RETURN(
        node.nic_bw_mbps, AttrDouble(attrs, "cluster/nic_mbps", 125.0,
                                     0.001, 1e9));
    HIWAY_ASSIGN_OR_RETURN(
        int64_t workers, AttrInt(attrs, "cluster/workers", 4, 1, 1000000));
    HIWAY_ASSIGN_OR_RETURN(
        double switch_mbps, AttrDouble(attrs, "cluster/switch_mbps", 1250.0,
                                       0.001, 1e9));
    ClusterSpec spec =
        ClusterSpec::Uniform(static_cast<int>(workers), node, switch_mbps);
    HIWAY_ASSIGN_OR_RETURN(
        spec.ebs_bw_mbps, AttrDouble(attrs, "cluster/ebs_mbps", 0.0, 0.0, 1e9));
    HIWAY_ASSIGN_OR_RETURN(
        spec.s3_bw_mbps, AttrDouble(attrs, "cluster/s3_mbps", 0.0, 0.0, 1e9));
    d->cluster = std::make_unique<Cluster>(&d->engine, &d->net, spec);
    DfsOptions dfs_opts;
    HIWAY_ASSIGN_OR_RETURN(int64_t replication,
                           AttrInt(attrs, "dfs/replication", 3, 1, 64));
    dfs_opts.replication = static_cast<int>(replication);
    HIWAY_ASSIGN_OR_RETURN(int64_t block_mb,
                           AttrInt(attrs, "dfs/block_mb", 128, 1, 1 << 20));
    dfs_opts.block_size_bytes = block_mb << 20;
    HIWAY_ASSIGN_OR_RETURN(
        int64_t capacity_mb,
        AttrInt(attrs, "dfs/capacity_mb", 0, 0, int64_t{1} << 40));
    dfs_opts.capacity_bytes = capacity_mb << 20;
    HIWAY_ASSIGN_OR_RETURN(
        int64_t first_dn,
        AttrInt(attrs, "dfs/first_datanode", 0, 0, 2147483647));
    dfs_opts.first_datanode = static_cast<NodeId>(first_dn);
    HIWAY_ASSIGN_OR_RETURN(int64_t seed,
                           AttrInt(attrs, "seed", 7, INT64_MIN, INT64_MAX));
    dfs_opts.seed = static_cast<uint64_t>(seed);
    d->dfs = std::make_unique<Dfs>(d->cluster.get(), dfs_opts);
    YarnOptions yarn_opts;
    HIWAY_ASSIGN_OR_RETURN(
        yarn_opts.allocation_delay_s,
        AttrDouble(attrs, "yarn/allocation_delay_s", 0.5, 0.0, 1e9));
    yarn_opts.scheduler = Attr(attrs, "yarn/scheduler", "fifo");
    yarn_opts.allocation_mode =
        Attr(attrs, "yarn/allocation_mode", "incremental");
    yarn_opts.preemption = Attr(attrs, "yarn/preemption", "false") == "true";
    HIWAY_ASSIGN_OR_RETURN(
        yarn_opts.preemption_grace_s,
        AttrDouble(attrs, "yarn/preemption_grace_s", 5.0, 0.0, 1e9));
    HIWAY_ASSIGN_OR_RETURN(
        int64_t max_preempt,
        AttrInt(attrs, "yarn/max_preempt_per_round", 2, 0, 1000000));
    yarn_opts.max_preempt_per_round = static_cast<int>(max_preempt);
    d->rm = std::make_unique<ResourceManager>(d->cluster.get(), yarn_opts);
    d->rm->SetTracer(&d->tracer);
    if (Attr(attrs, "obs/tracing", "off") == "on") {
      d->tracer.set_enabled(true);
    }
    d->load = std::make_unique<LoadInjector>(d->cluster.get());
    return Status::OK();
  };
  return r;
}

Recipe HiWayInstallRecipe() {
  Recipe r;
  r.name = "hiway::install";
  r.dependencies = {"hadoop::install"};
  r.converge = [](const ChefAttributes& attrs, Deployment* d) -> Status {
    RegisterStandardTools(&d->tools);
    std::string backend = Attr(attrs, "hiway/prov_backend", "memory");
    if (backend == "provdb") {
      std::string dir =
          Attr(attrs, "hiway/prov_dir", "hiway-provenance");
      auto sharded = OpenShardedProvenance(dir);
      if (!sharded.ok()) {
        return sharded.status().WithContext("hiway::install provenance");
      }
      d->provdb_dir = std::move(sharded->dir);
      d->provenance = std::move(sharded->manager);
    } else if (backend == "memory") {
      d->provenance = std::make_unique<ProvenanceManager>();
    } else {
      return Status::InvalidArgument("unknown hiway/prov_backend: " +
                                     backend);
    }
    if (Attr(attrs, "hiway/cache_results", "off") == "on") {
      ResultCacheOptions copts;
      HIWAY_ASSIGN_OR_RETURN(
          copts.max_entries,
          AttrInt(attrs, "hiway/cache_max_entries", 0, 0, int64_t{1} << 40));
      copts.verify = Attr(attrs, "hiway/cache_verify", "off") == "on";
      HIWAY_ASSIGN_OR_RETURN(
          copts.verify_rate,
          AttrDouble(attrs, "hiway/cache_verify_rate", 0.25, 0.0, 1.0));
      HIWAY_ASSIGN_OR_RETURN(
          int64_t seed, AttrInt(attrs, "seed", 7, INT64_MIN, INT64_MAX));
      copts.seed = static_cast<uint64_t>(seed);
      d->result_cache = std::make_unique<ResultCache>(
          d->dfs.get(), d->provenance.get(), copts);
      d->result_cache->SetTracer(&d->tracer);
      std::string cache_dir = Attr(attrs, "hiway/cache_dir", "");
      if (!cache_dir.empty()) {
        // Persistent index: a restarted deployment pointed at the same
        // directory restores its sealed entries.
        HIWAY_RETURN_IF_ERROR(d->result_cache->OpenIndex(cache_dir)
                                  .WithContext("hiway::install cache index"));
      }
    }
    HIWAY_ASSIGN_OR_RETURN(
        int64_t staging_mb,
        AttrInt(attrs, "hiway/cache_staging_mb", -1, -1, 1 << 20));
    if (staging_mb >= 0) {
      StagingCacheOptions sopts;
      sopts.node_budget_bytes = staging_mb > 0 ? staging_mb << 20 : 0;
      d->staging_cache = std::make_unique<StagingCache>(sopts);
      d->staging_cache->SetTracer(&d->tracer);
    }
    if (Attr(attrs, "hiway/gc", "off") == "on") {
      d->gc = std::make_unique<IntermediateGc>(d->dfs.get());
      if (d->result_cache != nullptr) {
        // Sealed cache entries pin their outputs: the collector defers
        // them so a later submission can still replay the hit.
        d->gc->SetResultCache(d->result_cache.get());
      }
    }
    return Status::OK();
  };
  return r;
}

Recipe ElasticInstallRecipe() {
  Recipe r;
  r.name = "elastic::install";
  // Depends on hiway::install so the staging/result caches exist (when
  // enabled) by the time the control plane captures them.
  r.dependencies = {"hadoop::install", "hiway::install"};
  r.converge = [](const ChefAttributes& attrs, Deployment* d) -> Status {
    auto policy = AutoscalerPolicyByName(Attr(attrs, "elastic/autoscaler",
                                              "off"));
    if (!policy.ok()) {
      return policy.status().WithContext("elastic::install");
    }
    ElasticOptions opts;
    opts.policy = *policy;
    HIWAY_ASSIGN_OR_RETURN(int64_t min_nodes,
                           AttrInt(attrs, "elastic/min_nodes", 1, 0, 1000000));
    opts.policy.min_nodes = static_cast<int>(min_nodes);
    HIWAY_ASSIGN_OR_RETURN(int64_t max_nodes,
                           AttrInt(attrs, "elastic/max_nodes", 0, 0, 1000000));
    opts.policy.max_nodes = static_cast<int>(max_nodes);
    HIWAY_ASSIGN_OR_RETURN(
        opts.join_delay_s,
        AttrDouble(attrs, "elastic/join_delay_s", 5.0, 0.0, 1e9));
    // Joiners match the fleet's worker hardware.
    HIWAY_ASSIGN_OR_RETURN(int64_t cores,
                           AttrInt(attrs, "cluster/cores", 2, 1, 4096));
    opts.node_template.cores = static_cast<int>(cores);
    HIWAY_ASSIGN_OR_RETURN(
        opts.node_template.memory_mb,
        AttrDouble(attrs, "cluster/memory_mb", 7680.0, 1.0, 1e9));
    HIWAY_ASSIGN_OR_RETURN(
        opts.node_template.disk_bw_mbps,
        AttrDouble(attrs, "cluster/disk_mbps", 150.0, 0.001, 1e9));
    HIWAY_ASSIGN_OR_RETURN(
        opts.node_template.nic_bw_mbps,
        AttrDouble(attrs, "cluster/nic_mbps", 125.0, 0.001, 1e9));
    d->elastic = std::make_unique<ElasticCluster>(
        &d->engine, d->cluster.get(), d->rm.get(), d->dfs.get(),
        d->staging_cache.get(), d->result_cache.get(), &d->tracer,
        std::move(opts));
    return Status::OK();
  };
  return r;
}

Recipe SnvWorkflowRecipe() {
  Recipe r;
  r.name = "workflow::snv-calling";
  r.dependencies = {"hiway::install"};
  r.converge = [](const ChefAttributes& attrs, Deployment* d) -> Status {
    SnvWorkloadOptions options;
    HIWAY_ASSIGN_OR_RETURN(int64_t chunks,
                           AttrInt(attrs, "snv/chunks", 8, 1, 100000));
    options.num_chunks = static_cast<int>(chunks);
    HIWAY_ASSIGN_OR_RETURN(int64_t chunk_mb,
                           AttrInt(attrs, "snv/chunk_mb", 1024, 1, 1 << 20));
    options.chunk_bytes = chunk_mb << 20;
    HIWAY_ASSIGN_OR_RETURN(int64_t cram, AttrInt(attrs, "snv/cram", 0, 0, 1));
    options.cram_compression = cram != 0;
    GeneratedWorkload workload = MakeSnvCallingWorkflow(options);
    StagedWorkflow staged;
    staged.language = "cuneiform";
    staged.document = workload.document;
    staged.inputs = workload.inputs;
    std::string ingest = Attr(attrs, "snv/ingest", "dfs");
    if (ingest == "dfs") {
      for (const auto& [path, size] : workload.inputs) {
        HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
      }
    } else if (ingest == "s3") {
      // Sec. 4.1, second experiment: "obtaining input read data during
      // workflow execution from the Amazon S3 bucket ... instead of
      // storing them on the cluster in HDFS".
      for (const auto& [path, size] : workload.inputs) {
        HIWAY_RETURN_IF_ERROR(d->dfs->RegisterExternalFile(path, size));
      }
    } else if (ingest != "none") {
      return Status::InvalidArgument("unknown snv/ingest mode: " + ingest);
    }
    d->workflows["snv-calling"] = std::move(staged);
    return Status::OK();
  };
  return r;
}

Recipe TraplineWorkflowRecipe() {
  Recipe r;
  r.name = "workflow::trapline";
  r.dependencies = {"hiway::install"};
  r.converge = [](const ChefAttributes& attrs, Deployment* d) -> Status {
    RnaSeqWorkloadOptions options;
    HIWAY_ASSIGN_OR_RETURN(int64_t replicates,
                           AttrInt(attrs, "rnaseq/replicates", 3, 1, 10000));
    options.replicates_per_condition = static_cast<int>(replicates);
    HIWAY_ASSIGN_OR_RETURN(
        int64_t sample_mb,
        AttrInt(attrs, "rnaseq/sample_mb", 1740, 1, 1 << 20));
    options.sample_bytes = sample_mb << 20;
    GeneratedWorkload workload = MakeTraplineWorkflow(options);
    StagedWorkflow staged;
    staged.language = "galaxy";
    staged.document = workload.document;
    staged.inputs = workload.inputs;
    for (const auto& [name, path] : TraplineInputBindings(options)) {
      staged.galaxy_inputs[name] = path;
    }
    for (const auto& [path, size] : workload.inputs) {
      HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
    }
    d->workflows["trapline"] = std::move(staged);
    return Status::OK();
  };
  return r;
}

Recipe MontageWorkflowRecipe() {
  Recipe r;
  r.name = "workflow::montage";
  r.dependencies = {"hiway::install"};
  r.converge = [](const ChefAttributes& attrs, Deployment* d) -> Status {
    MontageWorkloadOptions options;
    HIWAY_ASSIGN_OR_RETURN(int64_t images,
                           AttrInt(attrs, "montage/images", 11, 1, 10000));
    options.num_images = static_cast<int>(images);
    HIWAY_ASSIGN_OR_RETURN(int64_t image_mb,
                           AttrInt(attrs, "montage/image_mb", 4, 1, 1 << 20));
    options.image_bytes = image_mb << 20;
    GeneratedWorkload workload = MakeMontageWorkflow(options);
    StagedWorkflow staged;
    staged.language = "dax";
    staged.document = workload.document;
    staged.inputs = workload.inputs;
    for (const auto& [path, size] : workload.inputs) {
      HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
    }
    d->workflows["montage"] = std::move(staged);
    return Status::OK();
  };
  return r;
}

Recipe KmeansWorkflowRecipe() {
  Recipe r;
  r.name = "workflow::kmeans";
  r.dependencies = {"hiway::install"};
  r.converge = [](const ChefAttributes& attrs, Deployment* d) -> Status {
    KmeansWorkloadOptions options;
    HIWAY_ASSIGN_OR_RETURN(int64_t points_mb,
                           AttrInt(attrs, "kmeans/points_mb", 64, 1, 1 << 20));
    options.points_bytes = points_mb << 20;
    HIWAY_ASSIGN_OR_RETURN(
        int64_t converge_after,
        AttrInt(attrs, "kmeans/converge_after", 5, 1, 1000000));
    options.converge_after = static_cast<int>(converge_after);
    GeneratedWorkload workload = MakeKmeansWorkflow(options);
    StagedWorkflow staged;
    staged.language = "cuneiform";
    staged.document = workload.document;
    staged.inputs = workload.inputs;
    for (const auto& [path, size] : workload.inputs) {
      HIWAY_RETURN_IF_ERROR(d->dfs->IngestFile(path, size));
    }
    d->workflows["kmeans"] = std::move(staged);
    return Status::OK();
  };
  return r;
}

}  // namespace hiway
