// Reproducible installation (Sec. 3.6): the paper provisions clusters,
// Hadoop, Hi-WAY, and execution-ready workflows (tools + input data)
// through Chef recipes orchestrated by Karamel. This module reproduces
// that declarative model against the simulator: recipes converge a
// Deployment (cluster topology, DFS, YARN, tool profiles, staged inputs,
// workflow documents) in dependency order, so every experiment in bench/
// is a one-call, parameterised, repeatable setup.

#ifndef HIWAY_INFRA_KARAMEL_H_
#define HIWAY_INFRA_KARAMEL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/result_cache.h"
#include "src/cache/staging_cache.h"
#include "src/common/result.h"
#include "src/core/provenance.h"
#include "src/gc/intermediate_gc.h"
#include "src/core/runtime_estimator.h"
#include "src/elastic/elastic_cluster.h"
#include "src/hdfs/dfs.h"
#include "src/obs/tracer.h"
#include "src/sim/cluster.h"
#include "src/sim/load_injector.h"
#include "src/tools/tool_registry.h"
#include "src/yarn/yarn.h"

namespace hiway {

/// Chef-style node attributes: string key/value configuration consumed by
/// recipes (e.g. "cluster/workers" = "16").
using ChefAttributes = std::map<std::string, std::string>;

/// A workflow staged onto the cluster, ready to submit.
struct StagedWorkflow {
  /// "cuneiform", "dax", "galaxy", or "trace".
  std::string language;
  std::string document;
  /// Galaxy input placeholder bindings (Galaxy workflows only).
  std::map<std::string, std::string> galaxy_inputs;
  /// Input files the recipe ingested into the DFS: (path, bytes).
  std::vector<std::pair<std::string, int64_t>> inputs;
};

/// The converged state of one simulated deployment. Owns the engine and
/// every component living inside it.
class Deployment {
 public:
  Deployment() : net(&engine), tracer(&engine) {}
  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  SimEngine engine;
  FlowNetwork net;
  /// Deployment-wide execution tracer (src/obs/tracer.h). Attached to
  /// the RM by HadoopInstallRecipe; disabled until set_enabled(true)
  /// (or the obs/tracing = "on" attribute).
  Tracer tracer;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Dfs> dfs;
  std::unique_ptr<ResourceManager> rm;
  std::unique_ptr<LoadInjector> load;
  ToolRegistry tools;
  /// Durable shard backend when hiway/prov_backend = "provdb"; null for
  /// the in-memory default. Declared before `provenance` so the manager
  /// (whose shard factory captures it) is destroyed first.
  std::shared_ptr<class ProvDbDirectory> provdb_dir;
  std::unique_ptr<ProvenanceManager> provenance;
  /// Cluster-wide result cache and per-node staging cache
  /// (docs/data-cache.md); null unless the hiway/cache_* attributes
  /// enable them. Declared after `provenance` (destroyed first): the
  /// result cache resolves hits through provenance views.
  std::unique_ptr<ResultCache> result_cache;
  std::unique_ptr<StagingCache> staging_cache;
  /// Intermediate-data garbage collector (docs/storage-model.md); null
  /// unless hiway/gc = "on". Declared after the caches: its cache-pin
  /// checks reference `result_cache`, so it must be destroyed first.
  std::unique_ptr<IntermediateGc> gc;
  /// Elastic membership control plane (docs/elastic-cluster.md); built
  /// by ElasticInstallRecipe. Declared after the cluster/RM/DFS/caches
  /// it points into (destroyed first).
  std::unique_ptr<ElasticCluster> elastic;
  RuntimeEstimator estimator;
  std::map<std::string, StagedWorkflow> workflows;
};

/// One installation step with Chef-style dependencies.
struct Recipe {
  std::string name;
  std::vector<std::string> dependencies;
  std::function<Status(const ChefAttributes&, Deployment*)> converge;
};

/// Orchestrates recipes in dependency order (Karamel's role in the paper).
class Karamel {
 public:
  /// Registers a recipe; duplicate names are an error at Converge time.
  void AddRecipe(Recipe recipe) { recipes_.push_back(std::move(recipe)); }

  void SetAttribute(const std::string& key, const std::string& value) {
    attributes_[key] = value;
  }
  const ChefAttributes& attributes() const { return attributes_; }

  /// Topologically orders the recipes and converges each against a fresh
  /// Deployment. Unknown dependencies and cycles are errors.
  Result<std::unique_ptr<Deployment>> Converge();

 private:
  std::vector<Recipe> recipes_;
  ChefAttributes attributes_;
};

// ---- Built-in cookbook ----------------------------------------------------

/// Provisions the cluster, HDFS, and YARN.
/// Attributes (defaults in parentheses):
///   cluster/workers (4), cluster/cores (2), cluster/memory_mb (7680),
///   cluster/disk_mbps (150), cluster/nic_mbps (125),
///   cluster/switch_mbps (1250), cluster/ebs_mbps (0), cluster/s3_mbps (0),
///   dfs/replication (3), dfs/block_mb (128), dfs/capacity_mb (0 =
///   unlimited; N > 0 caps raw replica-weighted DFS bytes at N MiB —
///   see docs/storage-model.md), yarn/allocation_delay_s (0.5),
///   yarn/scheduler ("fifo"), yarn/allocation_mode ("incremental";
///   "full-scan" selects the pre-refactor pass — see docs/scaling.md),
///   obs/tracing ("off"; "on" enables the deployment tracer — see
///   docs/observability.md)
Recipe HadoopInstallRecipe();

/// Installs Hi-WAY: the standard tool profiles and the sharded
/// provenance manager. Attributes:
///   hiway/prov_backend ("memory"; "provdb" gives every run its own log
///   segment), hiway/prov_dir ("provdb" backend's segment directory,
///   default "hiway-provenance"),
///   hiway/cache_results ("off"; "on" builds the cluster-wide result
///   cache), hiway/cache_max_entries (0 = unbounded),
///   hiway/cache_verify ("off"; "on" spot-checks hits against DFS),
///   hiway/cache_verify_rate (0.25), hiway/cache_dir ("" = volatile;
///   a path persists the cache index in a provdb log there),
///   hiway/cache_staging_mb (-1 = no staging cache; 0 = unbounded
///   per-node budget; N > 0 = N MiB per node),
///   hiway/gc ("off"; "on" builds the intermediate-data garbage
///   collector — see docs/storage-model.md)
Recipe HiWayInstallRecipe();

/// Builds the elastic membership control plane (docs/elastic-cluster.md)
/// over the converged cluster/RM/DFS/caches. Always creates
/// Deployment::elastic (revocations work even with autoscaling off); the
/// poll loop only runs for enabled policies, and only once the service
/// (or a test) calls Start(). Attributes:
///   elastic/autoscaler ("off"; "reactive", "aggressive", or
///   "conservative" enable scaling), elastic/min_nodes (1),
///   elastic/max_nodes (0 = the converged cluster size),
///   elastic/join_delay_s (5)
Recipe ElasticInstallRecipe();

/// Stages the SNV-calling workflow (Sec. 4.1). Attributes:
///   snv/chunks (8), snv/chunk_mb (1024), snv/cram (0), snv/ingest ("dfs":
///   replicate into HDFS; "none": register sizes only, e.g. S3 inputs)
Recipe SnvWorkflowRecipe();

/// Stages the TRAPLINE RNA-seq Galaxy workflow (Sec. 4.2). Attributes:
///   rnaseq/replicates (3), rnaseq/sample_mb (1740)
Recipe TraplineWorkflowRecipe();

/// Stages the Montage DAX workflow (Sec. 4.3). Attributes:
///   montage/images (11), montage/image_mb (4)
Recipe MontageWorkflowRecipe();

/// Stages the iterative k-means workflow. Attributes:
///   kmeans/points_mb (64), kmeans/converge_after (5)
Recipe KmeansWorkflowRecipe();

}  // namespace hiway

#endif  // HIWAY_INFRA_KARAMEL_H_
