#include "src/lang/cuneiform.h"

#include <algorithm>
#include <functional>

#include "src/common/strings.h"
#include "src/lang/cuneiform_parser.h"

namespace hiway {

using cuneiform::Expr;
using cuneiform::ExprPtr;
using cuneiform::FunDef;
using cuneiform::OutDecl;
using cuneiform::ParamDecl;
using cuneiform::Program;
using cuneiform::TaskDef;

bool CuneiformValue::IsConcrete() const {
  if (kind == Kind::kPending) return false;
  if (kind == Kind::kList) {
    for (const CuneiformValue& item : items) {
      if (!item.IsConcrete()) return false;
    }
  }
  return true;
}

Result<std::unique_ptr<CuneiformSource>> CuneiformSource::Parse(
    std::string_view source_text, CuneiformOptions options) {
  HIWAY_ASSIGN_OR_RETURN(Program program,
                         cuneiform::ParseCuneiform(source_text));
  return std::unique_ptr<CuneiformSource>(
      new CuneiformSource(std::move(program), std::move(options)));
}

bool CuneiformSource::Truthy(const CuneiformValue& v) {
  switch (v.kind) {
    case CuneiformValue::Kind::kString:
    case CuneiformValue::Kind::kFile:
      return !v.str.empty() && v.str != "false" && v.str != "0";
    case CuneiformValue::Kind::kList:
      return !v.items.empty();
    case CuneiformValue::Kind::kPending:
      return false;  // callers must check IsConcrete first
  }
  return false;
}

std::string CuneiformSource::Serialize(const CuneiformValue& v) {
  switch (v.kind) {
    case CuneiformValue::Kind::kString:
      return "s'" + v.str + "'";
    case CuneiformValue::Kind::kFile:
      return "f'" + v.str + "'";
    case CuneiformValue::Kind::kList: {
      std::string out = "[";
      for (size_t i = 0; i < v.items.size(); ++i) {
        if (i > 0) out += ",";
        out += Serialize(v.items[i]);
      }
      return out + "]";
    }
    case CuneiformValue::Kind::kPending:
      return "<pending>";
  }
  return "?";
}

Result<std::vector<TaskSpec>> CuneiformSource::Init() {
  std::vector<TaskSpec> discovered;
  HIWAY_RETURN_IF_ERROR(Sweep(&discovered));
  return discovered;
}

Result<std::vector<TaskSpec>> CuneiformSource::OnTaskCompleted(
    const TaskResult& result) {
  auto key_it = key_by_task_.find(result.id);
  if (key_it == key_by_task_.end()) {
    return Status::InvalidArgument(
        StrFormat("completion for unknown task %lld",
                  static_cast<long long>(result.id)));
  }
  AppEntry& entry = memo_[key_it->second];
  entry.done = true;
  // Bind declared outputs to produced files / the stdout value.
  const TaskDef& def = program_.tasks.at(entry.spec.signature);
  std::map<std::string, std::string> produced;
  for (const OutputSpec& out : entry.spec.outputs) {
    produced[out.param] = out.path;
  }
  for (const OutDecl& out : def.outputs) {
    if (out.is_value) {
      entry.outputs[out.name] =
          CuneiformValue::String(result.stdout_value);
    } else {
      entry.outputs[out.name] = CuneiformValue::File(produced[out.name]);
    }
  }
  std::vector<TaskSpec> discovered;
  HIWAY_RETURN_IF_ERROR(Sweep(&discovered));
  return discovered;
}

std::vector<std::string> CuneiformSource::Targets() const {
  std::vector<std::string> out;
  // Flatten file paths of resolved targets.
  std::function<void(const CuneiformValue&)> visit =
      [&](const CuneiformValue& v) {
        if (v.kind == CuneiformValue::Kind::kFile) out.push_back(v.str);
        if (v.kind == CuneiformValue::Kind::kList) {
          for (const CuneiformValue& item : v.items) visit(item);
        }
      };
  for (const CuneiformValue& v : target_values_) visit(v);
  return out;
}

Status CuneiformSource::Sweep(std::vector<TaskSpec>* discovered) {
  Env env;
  // Top-level lets evaluate in order; later bindings may shadow earlier.
  for (const auto& [name, expr] : program_.lets) {
    HIWAY_ASSIGN_OR_RETURN(CuneiformValue v, Eval(expr, env, 0, discovered));
    env[name] = std::move(v);
  }
  target_values_.clear();
  bool all_concrete = true;
  for (const ExprPtr& target : program_.targets) {
    HIWAY_ASSIGN_OR_RETURN(CuneiformValue v,
                           Eval(target, env, 0, discovered));
    all_concrete = all_concrete && v.IsConcrete();
    target_values_.push_back(std::move(v));
  }
  done_ = all_concrete;
  return Status::OK();
}

Result<CuneiformValue> CuneiformSource::Eval(
    const ExprPtr& expr, const Env& env, int depth,
    std::vector<TaskSpec>* discovered) {
  if (depth > options_.max_eval_depth) {
    return Status::RuntimeError(StrFormat(
        "evaluation depth limit (%d) exceeded at line %d — unbounded "
        "static recursion?",
        options_.max_eval_depth, expr->line));
  }
  switch (expr->kind) {
    case Expr::Kind::kString:
      return CuneiformValue::String(expr->str);
    case Expr::Kind::kVar: {
      auto it = env.find(expr->str);
      if (it == env.end()) {
        return Status::InvalidArgument(StrFormat(
            "undefined variable '%s' at line %d", expr->str.c_str(),
            expr->line));
      }
      return it->second;
    }
    case Expr::Kind::kList: {
      std::vector<CuneiformValue> items;
      items.reserve(expr->items.size());
      for (const ExprPtr& item : expr->items) {
        HIWAY_ASSIGN_OR_RETURN(CuneiformValue v,
                               Eval(item, env, depth + 1, discovered));
        items.push_back(std::move(v));
      }
      return CuneiformValue::List(std::move(items));
    }
    case Expr::Kind::kConcat: {
      std::string out;
      for (const ExprPtr& part : expr->items) {
        HIWAY_ASSIGN_OR_RETURN(CuneiformValue v,
                               Eval(part, env, depth + 1, discovered));
        if (v.kind == CuneiformValue::Kind::kPending) {
          return CuneiformValue::Pending();
        }
        if (v.kind == CuneiformValue::Kind::kList) {
          return Status::InvalidArgument(StrFormat(
              "cannot concatenate a list at line %d", expr->line));
        }
        out += v.str;
      }
      return CuneiformValue::String(std::move(out));
    }
    case Expr::Kind::kIf: {
      HIWAY_ASSIGN_OR_RETURN(CuneiformValue cond,
                             Eval(expr->cond, env, depth + 1, discovered));
      if (!cond.IsConcrete()) {
        // Data-dependent control flow: suspend both branches until the
        // condition's task(s) finish. This is what makes the language
        // iterative without unbounded task graphs.
        return CuneiformValue::Pending();
      }
      return Eval(Truthy(cond) ? expr->then_branch : expr->else_branch, env,
                  depth + 1, discovered);
    }
    case Expr::Kind::kApply:
      return EvalApply(*expr, env, depth, discovered);
  }
  return Status::RuntimeError("unreachable expression kind");
}

Result<CuneiformValue> CuneiformSource::EvalApply(
    const Expr& expr, const Env& env, int depth,
    std::vector<TaskSpec>* discovered) {
  auto task_it = program_.tasks.find(expr.str);
  if (task_it != program_.tasks.end()) {
    // Task application: named arguments only.
    std::map<std::string, CuneiformValue> args;
    for (const auto& [name, value_expr] : expr.args) {
      if (name.empty()) {
        return Status::InvalidArgument(StrFormat(
            "task '%s' requires named arguments (line %d)",
            expr.str.c_str(), expr.line));
      }
      HIWAY_ASSIGN_OR_RETURN(CuneiformValue v,
                             Eval(value_expr, env, depth + 1, discovered));
      args[name] = std::move(v);
    }
    return ApplyTask(task_it->second, args, discovered);
  }
  auto fun_it = program_.funs.find(expr.str);
  if (fun_it != program_.funs.end()) {
    const FunDef& def = fun_it->second;
    if (expr.args.size() != def.params.size()) {
      return Status::InvalidArgument(StrFormat(
          "function '%s' expects %zu arguments, got %zu (line %d)",
          def.name.c_str(), def.params.size(), expr.args.size(), expr.line));
    }
    Env local;  // defuns close over nothing but their parameters
    for (size_t i = 0; i < def.params.size(); ++i) {
      if (!expr.args[i].first.empty() &&
          expr.args[i].first != def.params[i]) {
        return Status::InvalidArgument(StrFormat(
            "function '%s' argument %zu is named '%s', expected '%s'",
            def.name.c_str(), i, expr.args[i].first.c_str(),
            def.params[i].c_str()));
      }
      HIWAY_ASSIGN_OR_RETURN(
          CuneiformValue v,
          Eval(expr.args[i].second, env, depth + 1, discovered));
      local[def.params[i]] = std::move(v);
    }
    return Eval(def.body, local, depth + 1, discovered);
  }
  return Status::InvalidArgument(StrFormat(
      "'%s' is neither a task nor a function (line %d)", expr.str.c_str(),
      expr.line));
}

Result<CuneiformValue> CuneiformSource::ApplyTask(
    const TaskDef& def, const std::map<std::string, CuneiformValue>& args,
    std::vector<TaskSpec>* discovered) {
  // Check arity.
  for (const ParamDecl& param : def.inputs) {
    if (args.find(param.name) == args.end()) {
      return Status::InvalidArgument(StrFormat(
          "task '%s' missing argument '%s'", def.name.c_str(),
          param.name.c_str()));
    }
  }
  if (args.size() != def.inputs.size()) {
    return Status::InvalidArgument(StrFormat(
        "task '%s' called with %zu arguments, expects %zu",
        def.name.c_str(), args.size(), def.inputs.size()));
  }

  // Implicit map/cross: each *single* parameter bound to a list expands
  // the application over the cross product of such lists (Cuneiform's
  // second-order behaviour). Aggregating ([x]) parameters consume their
  // whole list in one invocation.
  std::vector<const ParamDecl*> mapped;
  for (const ParamDecl& param : def.inputs) {
    const CuneiformValue& v = args.at(param.name);
    if (!param.is_list && v.kind == CuneiformValue::Kind::kList) {
      mapped.push_back(&param);
    }
  }

  if (mapped.empty()) {
    return InvokeCombination(def, args, {}, discovered);
  }

  // Mapping over an empty list yields an empty list (no invocations).
  for (const ParamDecl* param : mapped) {
    if (args.at(param->name).items.empty()) {
      return CuneiformValue::List({});
    }
  }

  // Enumerate the cross product (deterministic order). Per-combination
  // bindings are pointer overrides into the argument lists — copying the
  // lists here would make large fan-outs quadratic.
  std::vector<CuneiformValue> results;
  std::vector<size_t> index(mapped.size(), 0);
  std::map<std::string, const CuneiformValue*> overrides;
  while (true) {
    bool element_pending = false;
    for (size_t i = 0; i < mapped.size(); ++i) {
      const CuneiformValue& list = args.at(mapped[i]->name);
      const CuneiformValue& element = list.items[index[i]];
      if (!element.IsConcrete()) element_pending = true;
      overrides[mapped[i]->name] = &element;
    }
    if (element_pending) {
      // This combination's inputs are not known yet; it stays pending but
      // sibling combinations still proceed (eager per-element evaluation).
      results.push_back(CuneiformValue::Pending());
    } else {
      HIWAY_ASSIGN_OR_RETURN(
          CuneiformValue v,
          InvokeCombination(def, args, overrides, discovered));
      results.push_back(std::move(v));
    }
    // Advance the odometer.
    size_t pos = mapped.size();
    while (pos > 0) {
      --pos;
      if (++index[pos] < args.at(mapped[pos]->name).items.size()) break;
      index[pos] = 0;
      if (pos == 0) return CuneiformValue::List(std::move(results));
    }
  }
}

Result<CuneiformValue> CuneiformSource::InvokeCombination(
    const TaskDef& def, const std::map<std::string, CuneiformValue>& args,
    const std::map<std::string, const CuneiformValue*>& overrides,
    std::vector<TaskSpec>* discovered) {
  auto arg = [&](const std::string& name) -> const CuneiformValue& {
    auto it = overrides.find(name);
    return it != overrides.end() ? *it->second : args.at(name);
  };
  // Pending arguments suspend this combination entirely.
  for (const ParamDecl& param : def.inputs) {
    if (!arg(param.name).IsConcrete()) {
      return CuneiformValue::Pending();
    }
  }
  // Validate argument shapes.
  for (const ParamDecl& param : def.inputs) {
    const CuneiformValue& v = arg(param.name);
    if (param.is_list) {
      if (v.kind != CuneiformValue::Kind::kList) {
        return Status::InvalidArgument(StrFormat(
            "task '%s' parameter [%s] requires a list", def.name.c_str(),
            param.name.c_str()));
      }
    } else if (v.kind == CuneiformValue::Kind::kList) {
      return Status::RuntimeError("unexpanded list argument");
    }
  }

  // Memo key: the concrete application.
  std::string key = def.name + "(";
  for (const ParamDecl& param : def.inputs) {
    key += param.name + "=" + Serialize(arg(param.name)) + ";";
  }
  key += ")";

  auto result_value = [&](AppEntry& entry) -> CuneiformValue {
    if (!entry.done) return CuneiformValue::Pending();
    if (def.outputs.size() == 1) {
      return entry.outputs.at(def.outputs[0].name);
    }
    std::vector<CuneiformValue> tuple;
    for (const OutDecl& out : def.outputs) {
      tuple.push_back(entry.outputs.at(out.name));
    }
    return CuneiformValue::List(std::move(tuple));
  };

  auto it = memo_.find(key);
  if (it != memo_.end()) {
    return result_value(it->second);
  }

  // New concrete application: synthesise a TaskSpec.
  AppEntry entry;
  entry.task_id = next_task_id_++;
  TaskSpec spec;
  spec.id = entry.task_id;
  spec.signature = def.name;
  spec.tool = def.tool;
  for (const ParamDecl& param : def.inputs) {
    const CuneiformValue& v = arg(param.name);
    if (param.is_list) {
      int files = 0;
      for (const CuneiformValue& item : v.items) {
        if (item.kind == CuneiformValue::Kind::kFile) {
          spec.input_files.push_back(item.str);
          ++files;
        } else {
          spec.params[param.name + "." +
                      StrFormat("%d", files)] = item.str;
        }
      }
      spec.params[param.name + ".count"] =
          StrFormat("%zu", v.items.size());
    } else if (param.is_string) {
      spec.params[param.name] = v.str;
    } else {
      // File parameter: string literals are path literals.
      spec.input_files.push_back(v.str);
    }
  }
  for (const auto& [prop, value] : def.props) {
    if (prop == "cpu") {
      auto parsed = ParseInt64(value);
      if (parsed.ok()) spec.vcores = static_cast<int>(*parsed);
    } else if (prop == "mem") {
      auto parsed = ParseDouble(value);
      if (parsed.ok()) spec.memory_mb = *parsed;
    } else {
      spec.params[prop] = value;
    }
  }
  for (const OutDecl& out : def.outputs) {
    OutputSpec o;
    o.param = out.name;
    o.is_value = out.is_value;
    if (!out.is_value) {
      // Content-addressed scratch path: the memo key canonically encodes
      // the definition and its concrete arguments, so the same
      // application writes to the same place in every run, regardless of
      // completion order. Cross-run result-cache keys depend on this
      // (an order-dependent invocation counter would make every repeat
      // submission a miss); re-executions after an input change land in
      // a fresh directory instead of clobbering the previous cone.
      o.path = StrFormat("%s/%s-%016llx/%s.dat", options_.output_dir.c_str(),
                         def.name.c_str(),
                         static_cast<unsigned long long>(Fnv1a64(key)),
                         out.name.c_str());
    }
    spec.outputs.push_back(std::move(o));
  }
  spec.command = key;
  entry.spec = spec;
  memo_.emplace(key, std::move(entry));
  key_by_task_.emplace(spec.id, key);
  discovered->push_back(std::move(spec));
  return CuneiformValue::Pending();
}

}  // namespace hiway
