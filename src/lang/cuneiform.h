// The Cuneiform-lite front-end: an iterative WorkflowSource.
//
// Evaluation model (Sec. 3.3 of the paper): the interpreter reduces the
// program as far as its data allows. Each concrete black-box application
// becomes a task; its results are unknown until the driver runs it, so the
// application's value is *pending*. After every task completion the
// program is re-evaluated from the root (memoised per concrete
// application, so nothing is re-submitted), which naturally supports
// data-dependent conditionals, unbounded loops, and recursion: an `if`
// whose condition is pending suspends both branches, and resolving it may
// discover entirely new tasks.

#ifndef HIWAY_LANG_CUNEIFORM_H_
#define HIWAY_LANG_CUNEIFORM_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/lang/cuneiform_ast.h"
#include "src/lang/workflow.h"

namespace hiway {

/// Evaluation value: strings, files, lists, or a pending task output.
struct CuneiformValue {
  enum class Kind { kString, kFile, kList, kPending };
  Kind kind = Kind::kString;
  std::string str;                     // kString / kFile payload
  std::vector<CuneiformValue> items;   // kList payload

  static CuneiformValue String(std::string s) {
    CuneiformValue v;
    v.kind = Kind::kString;
    v.str = std::move(s);
    return v;
  }
  static CuneiformValue File(std::string path) {
    CuneiformValue v;
    v.kind = Kind::kFile;
    v.str = std::move(path);
    return v;
  }
  static CuneiformValue List(std::vector<CuneiformValue> items) {
    CuneiformValue v;
    v.kind = Kind::kList;
    v.items = std::move(items);
    return v;
  }
  static CuneiformValue Pending() {
    CuneiformValue v;
    v.kind = Kind::kPending;
    return v;
  }

  /// True if no pending value occurs anywhere inside.
  bool IsConcrete() const;
};

struct CuneiformOptions {
  /// DFS directory generated outputs are placed under.
  std::string output_dir = "/cuneiform";
  /// Guards against unbounded *static* recursion (a defun that recurses
  /// without consuming task results). Each level costs several native
  /// stack frames, so the bound is sized to trip well before the C++
  /// stack does (even under sanitizers); ~60+ data-driven iterations per
  /// sweep still fit comfortably.
  int max_eval_depth = 400;
  /// Workflow name used in provenance.
  std::string workflow_name = "cuneiform-workflow";
};

class CuneiformSource : public WorkflowSource {
 public:
  /// Parses `source_text`; fails on syntax errors.
  static Result<std::unique_ptr<CuneiformSource>> Parse(
      std::string_view source_text, CuneiformOptions options = {});

  std::string name() const override { return options_.workflow_name; }
  bool IsStatic() const override { return false; }
  Result<std::vector<TaskSpec>> Init() override;
  Result<std::vector<TaskSpec>> OnTaskCompleted(
      const TaskResult& result) override;
  bool IsDone() const override { return done_; }
  std::vector<std::string> Targets() const override;

  /// Resolved target values after completion (files flattened in order).
  const std::vector<CuneiformValue>& target_values() const {
    return target_values_;
  }

  /// Number of distinct task applications discovered so far.
  size_t applications() const { return memo_.size(); }

 private:
  CuneiformSource(cuneiform::Program program, CuneiformOptions options)
      : program_(std::move(program)), options_(std::move(options)) {}

  struct AppEntry {
    TaskId task_id = kInvalidTask;
    bool done = false;
    /// Output values by parameter name (filled on completion).
    std::map<std::string, CuneiformValue> outputs;
    TaskSpec spec;
  };

  using Env = std::map<std::string, CuneiformValue>;

  /// One full reduction sweep; fills `discovered` with new tasks and sets
  /// done_ when all targets are concrete.
  Status Sweep(std::vector<TaskSpec>* discovered);

  Result<CuneiformValue> Eval(const cuneiform::ExprPtr& expr, const Env& env,
                              int depth, std::vector<TaskSpec>* discovered);
  Result<CuneiformValue> EvalApply(const cuneiform::Expr& expr, const Env& env,
                                   int depth,
                                   std::vector<TaskSpec>* discovered);
  Result<CuneiformValue> ApplyTask(const cuneiform::TaskDef& def,
                                   const std::map<std::string, CuneiformValue>&
                                       args,
                                   std::vector<TaskSpec>* discovered);
  /// Invokes one concrete combination (after map/cross expansion).
  /// A parameter's value is `overrides[name]` if present, else
  /// `args[name]` — the override indirection avoids copying the (possibly
  /// huge) argument lists once per combination.
  Result<CuneiformValue> InvokeCombination(
      const cuneiform::TaskDef& def,
      const std::map<std::string, CuneiformValue>& args,
      const std::map<std::string, const CuneiformValue*>& overrides,
      std::vector<TaskSpec>* discovered);

  static bool Truthy(const CuneiformValue& v);
  static std::string Serialize(const CuneiformValue& v);

  cuneiform::Program program_;
  CuneiformOptions options_;
  std::map<std::string, AppEntry> memo_;      // app key -> entry
  std::map<TaskId, std::string> key_by_task_;
  TaskId next_task_id_ = 1;
  bool done_ = false;
  std::vector<CuneiformValue> target_values_;
};

}  // namespace hiway

#endif  // HIWAY_LANG_CUNEIFORM_H_
