// AST for Cuneiform-lite, hiway's implementation of the Cuneiform
// functional workflow language [Brandt et al. 2015]. The dialect keeps the
// properties the paper exercises — black-box task definitions, implicit
// map/cross application over lists, data-dependent conditionals, and
// recursion (i.e. unbounded iteration) — with a compact grammar:
//
//   program  := stmt*
//   stmt     := deftask | defun | let | target
//   deftask  := 'deftask' NAME '(' out* ':' in* ')' 'in' STRING props? ';'
//   out      := NAME            -- file output
//             | '<' NAME '>'    -- value output (task stdout, for control flow)
//   in       := NAME            -- single file parameter (lists map/cross)
//             | '[' NAME ']'    -- aggregating file-list parameter
//             | '~' NAME        -- string parameter
//   props    := '{' NAME ':' (STRING | NUMBER) (',' ...)* '}'
//               -- recognised: cpu, mem, output_ratio (forwarded as params)
//   defun    := 'defun' NAME '(' NAME (',' NAME)* ')' '{' expr '}'
//   let      := 'let' NAME '=' expr ';'
//   target   := 'target' expr (',' expr)* ';'
//   expr     := primary ('+' primary)*                    -- string concat
//   primary  := STRING | NAME | list | apply | ifexpr | '(' expr ')'
//   list     := '[' (expr (',' expr)*)? ']'
//   apply    := NAME '(' (param ':' expr | expr) (',' ...)* ')'
//               -- named args call a task, positional args call a defun
//   ifexpr   := 'if' expr 'then' expr 'else' expr 'end'
//               -- truthy: non-empty string != "false"/"0", non-empty list
//   comments := '%' to end of line
//   STRING   := '...' with \\ escapes

#ifndef HIWAY_LANG_CUNEIFORM_AST_H_
#define HIWAY_LANG_CUNEIFORM_AST_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hiway {
namespace cuneiform {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

struct Expr {
  enum class Kind { kString, kVar, kList, kApply, kIf, kConcat };
  Kind kind = Kind::kString;
  int line = 0;

  // kString: the literal; kVar / kApply: the name.
  std::string str;
  // kList elements or kConcat parts.
  std::vector<ExprPtr> items;
  // kApply arguments; `first` empty for positional (defun) arguments.
  std::vector<std::pair<std::string, ExprPtr>> args;
  // kIf branches.
  ExprPtr cond;
  ExprPtr then_branch;
  ExprPtr else_branch;
};

/// One input parameter of a task definition.
struct ParamDecl {
  std::string name;
  bool is_list = false;    // '[name]': consumes a whole list
  bool is_string = false;  // '~name': plain string, not staged
};

/// One output of a task definition.
struct OutDecl {
  std::string name;
  bool is_value = false;  // '<name>': carries the task's stdout
};

struct TaskDef {
  std::string name;
  std::vector<OutDecl> outputs;
  std::vector<ParamDecl> inputs;
  /// Tool profile to invoke (the 'in "..."' clause).
  std::string tool;
  std::map<std::string, std::string> props;
  int line = 0;
};

struct FunDef {
  std::string name;
  std::vector<std::string> params;
  ExprPtr body;
  int line = 0;
};

struct Program {
  std::map<std::string, TaskDef> tasks;
  std::map<std::string, FunDef> funs;
  /// Top-level bindings, in order.
  std::vector<std::pair<std::string, ExprPtr>> lets;
  std::vector<ExprPtr> targets;
};

}  // namespace cuneiform
}  // namespace hiway

#endif  // HIWAY_LANG_CUNEIFORM_AST_H_
