#include "src/lang/cuneiform_parser.h"

#include <cctype>

#include "src/common/strings.h"

namespace hiway {
namespace cuneiform {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  auto error = [&line](const std::string& msg) {
    return Status::ParseError(
        StrFormat("cuneiform lex error at line %d: %s", line, msg.c_str()));
  };
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < source.size() && source[i] != '\n') ++i;
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < source.size()) {
        char s = source[i++];
        if (s == '\\') {
          if (i >= source.size()) return error("truncated escape in string");
          char e = source[i++];
          switch (e) {
            case 'n':
              value += '\n';
              break;
            case 't':
              value += '\t';
              break;
            default:
              value += e;
          }
          continue;
        }
        if (s == '\'') {
          closed = true;
          break;
        }
        if (s == '\n') ++line;
        value += s;
      }
      if (!closed) return error("unterminated string literal");
      tokens.push_back(Token{TokenKind::kString, std::move(value), line});
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) ++i;
      tokens.push_back(Token{TokenKind::kIdent,
                             std::string(source.substr(start, i - start)),
                             line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.')) {
        ++i;
      }
      tokens.push_back(Token{TokenKind::kNumber,
                             std::string(source.substr(start, i - start)),
                             line});
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case '[':
        kind = TokenKind::kLBracket;
        break;
      case ']':
        kind = TokenKind::kRBracket;
        break;
      case ':':
        kind = TokenKind::kColon;
        break;
      case '=':
        kind = TokenKind::kEquals;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '~':
        kind = TokenKind::kTilde;
        break;
      case '<':
        kind = TokenKind::kLess;
        break;
      case '>':
        kind = TokenKind::kGreater;
        break;
      default:
        return error(StrFormat("unexpected character '%c'", c));
    }
    tokens.push_back(Token{kind, std::string(1, c), line});
    ++i;
  }
  tokens.push_back(Token{TokenKind::kEof, "", line});
  return tokens;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Maximum expression nesting ('(', '[', calls, if) before the parser
  /// refuses the input instead of overflowing the stack.
  static constexpr int kMaxExprDepth = kCuneiformMaxExprDepth;

  Result<Program> Parse() {
    Program program;
    while (!AtEnd()) {
      const Token& tok = Peek();
      if (tok.kind != TokenKind::kIdent) {
        return Error("statement expected");
      }
      if (tok.text == "deftask") {
        HIWAY_RETURN_IF_ERROR(ParseDeftask(&program));
      } else if (tok.text == "defun") {
        HIWAY_RETURN_IF_ERROR(ParseDefun(&program));
      } else if (tok.text == "let") {
        HIWAY_RETURN_IF_ERROR(ParseLet(&program));
      } else if (tok.text == "target") {
        HIWAY_RETURN_IF_ERROR(ParseTarget(&program));
      } else {
        return Error("unknown statement '" + tok.text + "'");
      }
    }
    if (program.targets.empty()) {
      return Status::ParseError(
          "cuneiform program has no 'target' statement");
    }
    return program;
  }

 private:
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  Token Advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(StrFormat("cuneiform parse error at line %d: %s",
                                        Peek().line, msg.c_str()));
  }

  Status Expect(TokenKind kind, const char* what) {
    if (!Match(kind)) return Error(std::string("expected ") + what);
    return Status::OK();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  // deftask NAME ( out* : in* ) in STRING props? ;
  Status ParseDeftask(Program* program) {
    Advance();  // deftask
    TaskDef def;
    def.line = Peek().line;
    HIWAY_ASSIGN_OR_RETURN(def.name, ExpectIdent("task name"));
    HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    // Outputs until ':'.
    while (Peek().kind != TokenKind::kColon) {
      OutDecl out;
      if (Match(TokenKind::kLess)) {
        out.is_value = true;
        HIWAY_ASSIGN_OR_RETURN(out.name, ExpectIdent("output name"));
        HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kGreater, "'>'"));
      } else {
        HIWAY_ASSIGN_OR_RETURN(out.name, ExpectIdent("output name"));
      }
      def.outputs.push_back(std::move(out));
      if (Peek().kind == TokenKind::kColon) break;
    }
    HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
    while (Peek().kind != TokenKind::kRParen) {
      ParamDecl param;
      if (Match(TokenKind::kLBracket)) {
        param.is_list = true;
        HIWAY_ASSIGN_OR_RETURN(param.name, ExpectIdent("parameter name"));
        HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
      } else if (Match(TokenKind::kTilde)) {
        param.is_string = true;
        HIWAY_ASSIGN_OR_RETURN(param.name, ExpectIdent("parameter name"));
      } else {
        HIWAY_ASSIGN_OR_RETURN(param.name, ExpectIdent("parameter name"));
      }
      def.inputs.push_back(std::move(param));
    }
    HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    HIWAY_ASSIGN_OR_RETURN(std::string in_kw, ExpectIdent("'in'"));
    if (in_kw != "in") return Error("expected 'in' after task signature");
    if (Peek().kind != TokenKind::kString) {
      return Error("expected tool name string after 'in'");
    }
    def.tool = Advance().text;
    if (Match(TokenKind::kLBrace)) {
      while (Peek().kind != TokenKind::kRBrace) {
        HIWAY_ASSIGN_OR_RETURN(std::string key, ExpectIdent("property name"));
        HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'"));
        if (Peek().kind != TokenKind::kString &&
            Peek().kind != TokenKind::kNumber) {
          return Error("property value must be a string or number");
        }
        def.props[key] = Advance().text;
        if (!Match(TokenKind::kComma)) break;
      }
      HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'"));
    }
    Match(TokenKind::kSemicolon);
    if (def.outputs.empty()) {
      return Error("task '" + def.name + "' declares no outputs");
    }
    if (program->tasks.count(def.name) > 0 ||
        program->funs.count(def.name) > 0) {
      return Error("duplicate definition of '" + def.name + "'");
    }
    program->tasks.emplace(def.name, std::move(def));
    return Status::OK();
  }

  // defun NAME ( NAME (, NAME)* ) { expr }
  Status ParseDefun(Program* program) {
    Advance();  // defun
    FunDef def;
    def.line = Peek().line;
    HIWAY_ASSIGN_OR_RETURN(def.name, ExpectIdent("function name"));
    HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        HIWAY_ASSIGN_OR_RETURN(std::string p, ExpectIdent("parameter name"));
        def.params.push_back(std::move(p));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    HIWAY_ASSIGN_OR_RETURN(def.body, ParseExpr(0));
    HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'"));
    if (program->tasks.count(def.name) > 0 ||
        program->funs.count(def.name) > 0) {
      return Error("duplicate definition of '" + def.name + "'");
    }
    program->funs.emplace(def.name, std::move(def));
    return Status::OK();
  }

  // let NAME = expr ;
  Status ParseLet(Program* program) {
    Advance();  // let
    HIWAY_ASSIGN_OR_RETURN(std::string name, ExpectIdent("binding name"));
    HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kEquals, "'='"));
    HIWAY_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr(0));
    Match(TokenKind::kSemicolon);
    program->lets.emplace_back(std::move(name), std::move(value));
    return Status::OK();
  }

  Status ParseTarget(Program* program) {
    Advance();  // target
    while (true) {
      HIWAY_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr(0));
      program->targets.push_back(std::move(e));
      if (!Match(TokenKind::kComma)) break;
    }
    Match(TokenKind::kSemicolon);
    return Status::OK();
  }

  Result<ExprPtr> ParseExpr(int depth) {
    if (depth > kMaxExprDepth) {
      return Error(StrFormat(
          "expression nesting depth %d exceeds the limit of %d (kMaxExprDepth)",
          depth, kMaxExprDepth));
    }
    HIWAY_ASSIGN_OR_RETURN(ExprPtr first, ParsePrimary(depth));
    if (Peek().kind != TokenKind::kPlus) return first;
    auto concat = std::make_shared<Expr>();
    concat->kind = Expr::Kind::kConcat;
    concat->line = first->line;
    concat->items.push_back(std::move(first));
    while (Match(TokenKind::kPlus)) {
      HIWAY_ASSIGN_OR_RETURN(ExprPtr part, ParsePrimary(depth));
      concat->items.push_back(std::move(part));
    }
    return concat;
  }

  Result<ExprPtr> ParsePrimary(int depth) {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kString) {
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kString;
      e->line = tok.line;
      e->str = Advance().text;
      return e;
    }
    if (tok.kind == TokenKind::kLBracket) {
      Advance();
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kList;
      e->line = tok.line;
      if (Peek().kind != TokenKind::kRBracket) {
        while (true) {
          HIWAY_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr(depth + 1));
          e->items.push_back(std::move(item));
          if (!Match(TokenKind::kComma)) break;
        }
      }
      HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
      return e;
    }
    if (tok.kind == TokenKind::kLParen) {
      Advance();
      HIWAY_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr(depth + 1));
      HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    if (tok.kind == TokenKind::kIdent && tok.text == "if") {
      Advance();
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kIf;
      e->line = tok.line;
      HIWAY_ASSIGN_OR_RETURN(e->cond, ParseExpr(depth + 1));
      HIWAY_ASSIGN_OR_RETURN(std::string kw1, ExpectIdent("'then'"));
      if (kw1 != "then") return Error("expected 'then'");
      HIWAY_ASSIGN_OR_RETURN(e->then_branch, ParseExpr(depth + 1));
      HIWAY_ASSIGN_OR_RETURN(std::string kw2, ExpectIdent("'else'"));
      if (kw2 != "else") return Error("expected 'else'");
      HIWAY_ASSIGN_OR_RETURN(e->else_branch, ParseExpr(depth + 1));
      HIWAY_ASSIGN_OR_RETURN(std::string kw3, ExpectIdent("'end'"));
      if (kw3 != "end") return Error("expected 'end'");
      return e;
    }
    if (tok.kind == TokenKind::kIdent) {
      std::string name = Advance().text;
      if (Peek().kind == TokenKind::kLParen) {
        Advance();
        auto e = std::make_shared<Expr>();
        e->kind = Expr::Kind::kApply;
        e->line = tok.line;
        e->str = std::move(name);
        if (Peek().kind != TokenKind::kRParen) {
          while (true) {
            std::string arg_name;
            if (Peek().kind == TokenKind::kIdent &&
                Peek(1).kind == TokenKind::kColon) {
              arg_name = Advance().text;
              Advance();  // ':'
            }
            HIWAY_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr(depth + 1));
            e->args.emplace_back(std::move(arg_name), std::move(value));
            if (!Match(TokenKind::kComma)) break;
          }
        }
        HIWAY_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        return e;
      }
      auto e = std::make_shared<Expr>();
      e->kind = Expr::Kind::kVar;
      e->line = tok.line;
      e->str = std::move(name);
      return e;
    }
    return Error("expression expected");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseCuneiform(std::string_view source) {
  if (source.size() > kCuneiformMaxInputBytes) {
    return Status::ParseError(StrFormat(
        "cuneiform source of %zu bytes exceeds the %zu-byte limit "
        "(kCuneiformMaxInputBytes)",
        source.size(), kCuneiformMaxInputBytes));
  }
  HIWAY_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace cuneiform
}  // namespace hiway
