// Lexer and recursive-descent parser for Cuneiform-lite (see the grammar
// in cuneiform_ast.h).

#ifndef HIWAY_LANG_CUNEIFORM_PARSER_H_
#define HIWAY_LANG_CUNEIFORM_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/lang/cuneiform_ast.h"

namespace hiway {
namespace cuneiform {

enum class TokenKind {
  kIdent,
  kString,
  kNumber,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kColon,
  kEquals,
  kComma,
  kSemicolon,
  kPlus,
  kTilde,
  kLess,
  kGreater,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int line = 1;
};

/// Hard limits enforced by ParseCuneiform: maximum source size in bytes and
/// maximum expression-nesting depth. Exceeding either yields a ParseError
/// naming the limit.
inline constexpr size_t kCuneiformMaxInputBytes = 16u << 20;
inline constexpr int kCuneiformMaxExprDepth = 128;

/// Tokenises a Cuneiform-lite program; '%' comments are stripped.
Result<std::vector<Token>> Lex(std::string_view source);

/// Parses a complete program.
Result<Program> ParseCuneiform(std::string_view source);

}  // namespace cuneiform
}  // namespace hiway

#endif  // HIWAY_LANG_CUNEIFORM_PARSER_H_
