#include "src/lang/cwl_source.h"

#include <map>
#include <set>

#include "src/common/json.h"
#include "src/common/strings.h"
#include "src/lang/workflow_validate.h"

namespace hiway {

namespace {

/// CWL lets `inputs`/`outputs`/`steps` be either an array of objects with
/// an `id` field or an object keyed by id. Normalises both spellings to
/// (id, entry) pairs in document order.
Result<std::vector<std::pair<std::string, const Json*>>> IdEntries(
    const Json& node, const char* section) {
  std::vector<std::pair<std::string, const Json*>> entries;
  if (node.is_array()) {
    for (const Json& entry : node.as_array()) {
      if (!entry.is_object()) {
        return Status::ParseError(
            StrFormat("CWL %s entry is not an object", section));
      }
      std::string id = entry.GetString("id");
      if (id.empty()) {
        return Status::ParseError(
            StrFormat("CWL %s entry has no id", section));
      }
      entries.emplace_back(std::move(id), &entry);
    }
  } else if (node.is_object()) {
    for (const auto& [id, entry] : node.as_object()) {
      if (!entry.is_object()) {
        return Status::ParseError(StrFormat(
            "CWL %s entry '%s' is not an object", section, id.c_str()));
      }
      entries.emplace_back(id, &entry);
    }
  } else {
    return Status::ParseError(StrFormat(
        "CWL %s section must be an array or an id-keyed object", section));
  }
  std::set<std::string> seen;
  for (const auto& [id, entry] : entries) {
    if (!seen.insert(id).second) {
      return Status::ParseError(
          StrFormat("duplicate CWL %s id '%s'", section, id.c_str()));
    }
  }
  return entries;
}

/// Reads the `hiway:size_bytes` extension; absent -> 0.
Result<int64_t> SizeExtension(const Json& entry, const std::string& id) {
  const Json* size = entry.Find("hiway:size_bytes");
  if (size == nullptr) return int64_t{0};
  if (!size->is_number()) {
    return Status::ParseError(StrFormat(
        "CWL '%s': hiway:size_bytes must be a number", id.c_str()));
  }
  int64_t bytes = size->as_int();
  if (bytes < 0) {
    return Status::ParseError(StrFormat(
        "CWL '%s': negative hiway:size_bytes %lld", id.c_str(),
        static_cast<long long>(bytes)));
  }
  return bytes;
}

std::string CommandOf(const Json& run) {
  const Json* base = run.Find("baseCommand");
  std::string command;
  if (base != nullptr && base->is_array()) {
    for (const Json& part : base->as_array()) {
      if (!part.is_string()) continue;
      if (!command.empty()) command += ' ';
      command += part.as_string();
    }
  } else if (base != nullptr && base->is_string()) {
    command = base->as_string();
  }
  const Json* arguments = run.Find("arguments");
  if (arguments != nullptr && arguments->is_array()) {
    for (const Json& arg : arguments->as_array()) {
      if (!arg.is_string()) continue;
      if (!command.empty()) command += ' ';
      command += arg.as_string();
    }
  }
  return command;
}

}  // namespace

Result<std::unique_ptr<CwlSource>> CwlSource::Parse(
    std::string_view json_text, const std::string& output_dir) {
  HIWAY_ASSIGN_OR_RETURN(Json doc, Json::Parse(json_text));
  if (!doc.is_object()) {
    return Status::ParseError("CWL document must be a JSON object");
  }
  std::string doc_class = doc.GetString("class");
  if (doc_class != "Workflow") {
    return Status::ParseError(StrFormat(
        "CWL document class must be 'Workflow', got '%s' (the front-end "
        "runs CommandLineTools only as inline step processes)",
        doc_class.c_str()));
  }
  auto source = std::unique_ptr<CwlSource>(new CwlSource());
  source->name_ = doc.GetString("id", "cwl-workflow");

  // Workflow inputs: id -> staged DFS path.
  std::map<std::string, std::string> path_of_ref;
  const Json* inputs = doc.Find("inputs");
  if (inputs != nullptr) {
    HIWAY_ASSIGN_OR_RETURN(auto input_entries, IdEntries(*inputs, "inputs"));
    for (const auto& [id, entry] : input_entries) {
      std::string type = entry->GetString("type", "File");
      if (type != "File") {
        return Status::ParseError(StrFormat(
            "CWL input '%s' has unsupported type '%s' (subset: File)",
            id.c_str(), type.c_str()));
      }
      const Json* def = entry->Find("default");
      if (def == nullptr || !def->is_object()) {
        return Status::ParseError(StrFormat(
            "CWL input '%s' needs a default File object carrying the DFS "
            "location",
            id.c_str()));
      }
      std::string location = def->GetString("location");
      if (location.empty()) location = def->GetString("path");
      if (location.empty()) {
        return Status::ParseError(StrFormat(
            "CWL input '%s' default File has no location/path", id.c_str()));
      }
      HIWAY_ASSIGN_OR_RETURN(int64_t bytes, SizeExtension(*def, id));
      path_of_ref[id] = location;
      source->required_inputs_.emplace_back(location, bytes);
    }
  }

  const Json* steps = doc.Find("steps");
  if (steps == nullptr) {
    return Status::ParseError("CWL workflow has no steps section");
  }
  HIWAY_ASSIGN_OR_RETURN(auto step_entries, IdEntries(*steps, "steps"));
  if (step_entries.empty()) {
    return Status::ParseError("CWL workflow contains no steps");
  }

  // Pass 1: resolve every step output to a DFS path so `in` sources can
  // reference steps in any order.
  for (const auto& [step_id, step] : step_entries) {
    const Json* run = step->Find("run");
    if (run == nullptr || !run->is_object()) {
      if (run != nullptr && run->is_string()) {
        return Status::ParseError(StrFormat(
            "CWL step '%s' references external process '%s'; the subset "
            "requires an inline run",
            step_id.c_str(), run->as_string().c_str()));
      }
      return Status::ParseError(StrFormat(
          "CWL step '%s' has no inline run process", step_id.c_str()));
    }
    std::string run_class = run->GetString("class");
    if (run_class != "CommandLineTool") {
      return Status::ParseError(StrFormat(
          "CWL step '%s' run class must be 'CommandLineTool', got '%s'",
          step_id.c_str(), run_class.c_str()));
    }
    const Json* outputs = run->Find("outputs");
    if (outputs == nullptr) {
      return Status::ParseError(StrFormat(
          "CWL step '%s' tool declares no outputs", step_id.c_str()));
    }
    HIWAY_ASSIGN_OR_RETURN(auto out_entries, IdEntries(*outputs, "outputs"));
    for (const auto& [out_id, out] : out_entries) {
      std::string path = out->GetString("hiway:location");
      if (path.empty()) {
        std::string base = out_id;
        const Json* binding = out->Find("outputBinding");
        if (binding != nullptr) {
          std::string glob = binding->GetString("glob");
          if (!glob.empty()) base = glob;
        }
        path = StrFormat("%s/%s/%s", output_dir.c_str(), step_id.c_str(),
                         base.c_str());
      }
      std::string ref = step_id + "/" + out_id;
      if (path_of_ref.count(ref) > 0) {
        return Status::ParseError(
            StrFormat("duplicate CWL output reference '%s'", ref.c_str()));
      }
      path_of_ref[ref] = path;
    }
  }

  // Pass 2: build one task per step.
  std::set<std::string> consumed;
  TaskId next_id = 1;
  for (const auto& [step_id, step] : step_entries) {
    const Json& run = *step->Find("run");
    TaskSpec task;
    task.id = next_id++;
    std::string base_command = CommandOf(run);
    task.signature = StrSplit(base_command, ' ')[0];
    if (task.signature.empty()) {
      return Status::ParseError(StrFormat(
          "CWL step '%s' tool has no baseCommand", step_id.c_str()));
    }
    task.tool = task.signature;
    task.command = base_command;

    const Json* in = step->Find("in");
    if (in != nullptr) {
      HIWAY_ASSIGN_OR_RETURN(auto in_entries, IdEntries(*in, "in"));
      for (const auto& [in_id, binding] : in_entries) {
        std::string ref = binding->GetString("source");
        if (ref.empty()) {
          return Status::ParseError(StrFormat(
              "CWL step '%s' in '%s' has no source", step_id.c_str(),
              in_id.c_str()));
        }
        auto it = path_of_ref.find(ref);
        if (it == path_of_ref.end()) {
          return Status::ParseError(StrFormat(
              "CWL step '%s' in '%s' references unknown source '%s'",
              step_id.c_str(), in_id.c_str(), ref.c_str()));
        }
        task.input_files.push_back(it->second);
        consumed.insert(it->second);
      }
    }

    const Json* out = step->Find("out");
    if (out == nullptr || !out->is_array() || out->as_array().empty()) {
      return Status::ParseError(StrFormat(
          "CWL step '%s' must list its published outputs in out",
          step_id.c_str()));
    }
    HIWAY_ASSIGN_OR_RETURN(auto out_entries,
                           IdEntries(*run.Find("outputs"), "outputs"));
    std::map<std::string, const Json*> tool_outputs(out_entries.begin(),
                                                    out_entries.end());
    for (const Json& published : out->as_array()) {
      if (!published.is_string()) {
        return Status::ParseError(StrFormat(
            "CWL step '%s' out entries must be output-id strings",
            step_id.c_str()));
      }
      const std::string& out_id = published.as_string();
      auto oit = tool_outputs.find(out_id);
      if (oit == tool_outputs.end()) {
        return Status::ParseError(StrFormat(
            "CWL step '%s' publishes unknown tool output '%s'",
            step_id.c_str(), out_id.c_str()));
      }
      OutputSpec spec;
      spec.param = out_id;
      spec.path = path_of_ref.at(step_id + "/" + out_id);
      HIWAY_ASSIGN_OR_RETURN(int64_t bytes,
                             SizeExtension(*oit->second,
                                           step_id + "/" + out_id));
      if (bytes > 0) spec.size_bytes = bytes;
      task.outputs.push_back(std::move(spec));
    }
    source->tasks_.push_back(std::move(task));
  }
  HIWAY_RETURN_IF_ERROR(ValidateWorkflowTasks(source->tasks_)
                            .WithContext("invalid CWL task graph"));

  // Targets: declared workflow outputs when present, else every produced
  // path nothing consumes.
  const Json* wf_outputs = doc.Find("outputs");
  if (wf_outputs != nullptr &&
      !(wf_outputs->is_array() && wf_outputs->as_array().empty()) &&
      !(wf_outputs->is_object() && wf_outputs->as_object().empty())) {
    HIWAY_ASSIGN_OR_RETURN(auto out_entries,
                           IdEntries(*wf_outputs, "outputs"));
    for (const auto& [out_id, out] : out_entries) {
      std::string ref = out->GetString("outputSource");
      if (ref.empty()) {
        return Status::ParseError(StrFormat(
            "CWL workflow output '%s' has no outputSource", out_id.c_str()));
      }
      auto it = path_of_ref.find(ref);
      if (it == path_of_ref.end()) {
        return Status::ParseError(StrFormat(
            "CWL workflow output '%s' references unknown source '%s'",
            out_id.c_str(), ref.c_str()));
      }
      source->targets_.push_back(it->second);
    }
  } else {
    for (const TaskSpec& t : source->tasks_) {
      for (const OutputSpec& o : t.outputs) {
        if (consumed.find(o.path) == consumed.end()) {
          source->targets_.push_back(o.path);
        }
      }
    }
  }
  return source;
}

Result<std::vector<TaskSpec>> CwlSource::Init() { return tasks_; }

Result<std::vector<TaskSpec>> CwlSource::OnTaskCompleted(const TaskResult&) {
  ++completed_;
  return std::vector<TaskSpec>{};
}

}  // namespace hiway
