// CWL-subset front-end: proof that the driver's WorkflowSource abstraction
// is language-agnostic (the paper's Sec. 3.3 claim). The subset covers a
// `class: Workflow` document (JSON rendition of CWL) whose steps inline
// `class: CommandLineTool` processes and wire them with in/out/source
// references — enough to express the static DAG workloads (e.g. the
// Montage mosaic) and execute them byte-identically to their native
// front-end (tests/cwl_test.cc).
//
// Supported subset:
//   - top level: cwlVersion, id, class: Workflow, inputs, outputs, steps;
//   - inputs/outputs/steps either as arrays of {id: ...} objects or as
//     id-keyed objects (both spellings are legal CWL);
//   - workflow inputs of type File with a `default` File carrying the DFS
//     location and the `hiway:size_bytes` extension (staged sizes);
//   - steps with inline `run` CommandLineTool, `in` source references
//     ("<input>" or "<step>/<output>"), and `out` listing tool outputs;
//   - tool outputs of type File with `hiway:location` (explicit DFS path;
//     falls back to <output_dir>/<step>/<glob or id>) and optional
//     `hiway:size_bytes`.
// Everything outside the subset fails loudly with a Status naming the
// offending id/reference, never silently degrades.

#ifndef HIWAY_LANG_CWL_SOURCE_H_
#define HIWAY_LANG_CWL_SOURCE_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/lang/workflow.h"

namespace hiway {

class CwlSource : public WorkflowSource {
 public:
  /// Parses the JSON rendition of a CWL Workflow document. `output_dir`
  /// is the DFS directory for tool outputs that carry no explicit
  /// `hiway:location`.
  static Result<std::unique_ptr<CwlSource>> Parse(
      std::string_view json_text, const std::string& output_dir = "/cwl-out");

  std::string name() const override { return name_; }
  bool IsStatic() const override { return true; }
  Result<std::vector<TaskSpec>> Init() override;
  Result<std::vector<TaskSpec>> OnTaskCompleted(
      const TaskResult& result) override;
  bool IsDone() const override { return completed_ >= tasks_.size(); }
  std::vector<std::string> Targets() const override { return targets_; }

  /// Workflow input files (from the `inputs` section): the caller must
  /// stage these into DFS before submitting.
  const std::vector<std::pair<std::string, int64_t>>& required_inputs()
      const {
    return required_inputs_;
  }

  size_t task_count() const { return tasks_.size(); }

 private:
  CwlSource() = default;

  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::string> targets_;
  std::vector<std::pair<std::string, int64_t>> required_inputs_;
  size_t completed_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_LANG_CWL_SOURCE_H_
