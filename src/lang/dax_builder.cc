#include "src/lang/dax_builder.h"

#include <map>
#include <set>

#include "src/common/strings.h"
#include "src/common/xml.h"

namespace hiway {

DaxJobBuilder& DaxJobBuilder::Argument(std::string argument_text) {
  argument = std::move(argument_text);
  return *this;
}

DaxJobBuilder& DaxJobBuilder::Input(std::string file,
                                    std::optional<int64_t> size_bytes) {
  uses.push_back(Uses{std::move(file), true, size_bytes});
  return *this;
}

DaxJobBuilder& DaxJobBuilder::Output(std::string file,
                                     std::optional<int64_t> size_bytes) {
  uses.push_back(Uses{std::move(file), false, size_bytes});
  return *this;
}

DaxJobBuilder& DaxBuilder::AddJob(const std::string& transformation) {
  auto job = std::make_unique<DaxJobBuilder>();
  job->id = StrFormat("ID%05d", next_id_++);
  job->name = transformation;
  jobs_.push_back(std::move(job));
  return *jobs_.back();
}

Result<std::string> DaxBuilder::ToXml() const {
  // Validate: a file has at most one producer; no job both reads and
  // writes the same file.
  std::map<std::string, std::string> producer;  // file -> job id
  for (const auto& job : jobs_) {
    std::set<std::string> inputs, outputs;
    for (const DaxJobBuilder::Uses& u : job->uses) {
      (u.is_input ? inputs : outputs).insert(u.file);
    }
    for (const std::string& file : outputs) {
      if (inputs.count(file) > 0) {
        return Status::InvalidArgument(StrFormat(
            "job %s both reads and writes '%s'", job->id.c_str(),
            file.c_str()));
      }
      auto [it, inserted] = producer.emplace(file, job->id);
      if (!inserted) {
        return Status::InvalidArgument(StrFormat(
            "file '%s' produced by both %s and %s", file.c_str(),
            it->second.c_str(), job->id.c_str()));
      }
    }
  }

  std::string xml = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  xml += StrFormat("<adag name=\"%s\">\n", XmlEscape(name_).c_str());
  for (const auto& job : jobs_) {
    xml += StrFormat("  <job id=\"%s\" name=\"%s\">\n", job->id.c_str(),
                     XmlEscape(job->name).c_str());
    if (!job->argument.empty()) {
      xml += StrFormat("    <argument>%s</argument>\n",
                       XmlEscape(job->argument).c_str());
    }
    for (const DaxJobBuilder::Uses& u : job->uses) {
      xml += StrFormat("    <uses file=\"%s\" link=\"%s\"",
                       XmlEscape(u.file).c_str(),
                       u.is_input ? "input" : "output");
      if (u.size_bytes.has_value()) {
        xml += StrFormat(" size=\"%lld\"",
                         static_cast<long long>(*u.size_bytes));
      }
      xml += "/>\n";
    }
    xml += "  </job>\n";
  }
  // Explicit dependency edges implied by the file graph (Pegasus emits
  // them; DaxSource validates them).
  for (const auto& job : jobs_) {
    std::set<std::string> parents;
    for (const DaxJobBuilder::Uses& u : job->uses) {
      if (!u.is_input) continue;
      auto it = producer.find(u.file);
      if (it != producer.end() && it->second != job->id) {
        parents.insert(it->second);
      }
    }
    if (parents.empty()) continue;
    xml += StrFormat("  <child ref=\"%s\">\n", job->id.c_str());
    for (const std::string& parent : parents) {
      xml += StrFormat("    <parent ref=\"%s\"/>\n", parent.c_str());
    }
    xml += "  </child>\n";
  }
  xml += "</adag>\n";
  return xml;
}

}  // namespace hiway
