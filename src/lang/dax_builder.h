// Programmatic DAX generation (Sec. 3.2: DAX workflows "are not intended
// to be read or written by workflow developers directly. Instead, APIs
// enabling the generation of DAX workflows are provided" — Pegasus ships
// Java/Python/Perl builders; this is the C++ one).
//
//   DaxBuilder dax("mosaic");
//   DaxJobBuilder& project = dax.AddJob("mProjectPP")
//       .Argument("-X raw.fits proj.fits")
//       .Input("raw.fits", 4 << 20)
//       .Output("proj.fits");
//   dax.AddJob("mAdd").Input("proj.fits").Output("mosaic.fits");
//   std::string xml = dax.ToXml();          // parses with DaxSource
//
// File-implied dependencies are automatic; explicit <child>/<parent>
// edges are emitted for them as well, matching Pegasus output.

#ifndef HIWAY_LANG_DAX_BUILDER_H_
#define HIWAY_LANG_DAX_BUILDER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace hiway {

class DaxBuilder;

/// Fluent handle for one <job>.
class DaxJobBuilder {
 public:
  DaxJobBuilder& Argument(std::string argument);
  DaxJobBuilder& Input(std::string file,
                       std::optional<int64_t> size_bytes = std::nullopt);
  DaxJobBuilder& Output(std::string file,
                        std::optional<int64_t> size_bytes = std::nullopt);

 private:
  friend class DaxBuilder;
  struct Uses {
    std::string file;
    bool is_input;
    std::optional<int64_t> size_bytes;
  };
  std::string id;
  std::string name;
  std::string argument;
  std::vector<Uses> uses;
};

class DaxBuilder {
 public:
  explicit DaxBuilder(std::string workflow_name)
      : name_(std::move(workflow_name)) {}

  /// Adds a job invoking `transformation` (the executable name; becomes
  /// the task signature). The returned reference remains valid for the
  /// builder's lifetime (jobs are heap-allocated).
  DaxJobBuilder& AddJob(const std::string& transformation);

  size_t job_count() const { return jobs_.size(); }

  /// Serialises the workflow; fails if a file has two producers or a job
  /// lists the same file as both input and output.
  Result<std::string> ToXml() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<DaxJobBuilder>> jobs_;
  int next_id_ = 1;
};

}  // namespace hiway

#endif  // HIWAY_LANG_DAX_BUILDER_H_
