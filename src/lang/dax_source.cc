#include "src/lang/dax_source.h"

#include <map>
#include <set>

#include "src/common/strings.h"
#include "src/common/xml.h"
#include "src/lang/workflow_validate.h"

namespace hiway {

Result<std::unique_ptr<DaxSource>> DaxSource::Parse(
    std::string_view xml_text, const std::string& file_prefix) {
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<XmlElement> root,
                         ParseXml(xml_text));
  if (root->name != "adag") {
    return Status::ParseError("DAX root element must be <adag>, got <" +
                              root->name + ">");
  }
  auto source = std::unique_ptr<DaxSource>(new DaxSource());
  source->name_ = root->Attr("name", "dax-workflow");

  std::map<std::string, TaskId> id_by_job;
  std::set<std::string> produced;
  std::map<std::string, int64_t> consumed;  // path -> declared size
  TaskId next_id = 1;

  for (const XmlElement* job : root->Children("job")) {
    if (!job->HasAttr("id")) {
      return Status::ParseError("DAX <job> without id attribute");
    }
    TaskSpec task;
    task.id = next_id++;
    std::string job_id = job->Attr("id");
    if (id_by_job.count(job_id) > 0) {
      return Status::ParseError("duplicate DAX job id: " + job_id);
    }
    id_by_job[job_id] = task.id;
    task.signature = job->Attr("name");
    if (task.signature.empty()) {
      return Status::ParseError("DAX job " + job_id + " has no name");
    }
    task.tool = task.signature;
    const XmlElement* argument = job->FirstChild("argument");
    task.command = task.signature;
    if (argument != nullptr && !argument->text.empty()) {
      task.command += " " + std::string(StrTrim(argument->text));
    }
    int out_index = 0;
    for (const XmlElement* uses : job->Children("uses")) {
      std::string file = uses->Attr("file");
      if (file.empty()) file = uses->Attr("name");
      if (file.empty()) {
        return Status::ParseError("DAX <uses> without file in job " + job_id);
      }
      std::string path = file_prefix + file;
      std::string link = uses->Attr("link", "input");
      int64_t size = 0;
      if (uses->HasAttr("size")) {
        auto parsed = ParseInt64(uses->Attr("size"));
        if (!parsed.ok()) {
          return Status::ParseError("bad size attribute '" +
                                    uses->Attr("size") + "' in job " + job_id);
        }
        if (*parsed < 0) {
          return Status::ParseError("negative size attribute '" +
                                    uses->Attr("size") + "' in job " + job_id);
        }
        size = *parsed;
      }
      if (link == "input") {
        task.input_files.push_back(path);
        auto it = consumed.find(path);
        if (it == consumed.end() || it->second == 0) consumed[path] = size;
      } else if (link == "output") {
        OutputSpec out;
        out.param = StrFormat("out%d", out_index++);
        out.path = path;
        if (size > 0) out.size_bytes = size;
        task.outputs.push_back(std::move(out));
        produced.insert(path);
      } else {
        return Status::ParseError("DAX <uses link=\"" + link +
                                  "\"> not supported");
      }
    }
    source->tasks_.push_back(std::move(task));
  }

  // Validate explicit dependency edges against the file-derived ones.
  std::map<std::string, const TaskSpec*> producer_of;
  for (const TaskSpec& t : source->tasks_) {
    for (const OutputSpec& o : t.outputs) producer_of[o.path] = &t;
  }
  for (const XmlElement* child : root->Children("child")) {
    std::string child_ref = child->Attr("ref");
    auto cit = id_by_job.find(child_ref);
    if (cit == id_by_job.end()) {
      return Status::ParseError("DAX <child ref> to unknown job: " +
                                child_ref);
    }
    for (const XmlElement* parent : child->Children("parent")) {
      std::string parent_ref = parent->Attr("ref");
      if (id_by_job.find(parent_ref) == id_by_job.end()) {
        return Status::ParseError("DAX <parent ref> to unknown job: " +
                                  parent_ref);
      }
    }
  }

  // Workflow-level inputs and targets.
  for (const auto& [path, size] : consumed) {
    if (produced.find(path) == produced.end()) {
      source->required_inputs_.emplace_back(path, size);
    }
  }
  std::set<std::string> consumed_paths;
  for (const auto& [path, size] : consumed) consumed_paths.insert(path);
  for (const std::string& path : produced) {
    if (consumed_paths.find(path) == consumed_paths.end()) {
      source->targets_.push_back(path);
    }
  }
  if (source->tasks_.empty()) {
    return Status::ParseError("DAX workflow contains no jobs");
  }
  HIWAY_RETURN_IF_ERROR(ValidateWorkflowTasks(source->tasks_)
                            .WithContext("invalid DAX task graph"));
  return source;
}

Result<std::vector<TaskSpec>> DaxSource::Init() { return tasks_; }

Result<std::vector<TaskSpec>> DaxSource::OnTaskCompleted(const TaskResult&) {
  ++completed_;
  return std::vector<TaskSpec>{};
}

}  // namespace hiway
