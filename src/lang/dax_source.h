// Pegasus DAX front-end (Sec. 3.2): the XML workflow description language
// of the Pegasus SWfMS. DAX workflows are fully static — every job and
// file is explicit — which makes them eligible for the static scheduling
// policies (round-robin, HEFT).
//
// Recognised structure:
//   <adag name="...">
//     <job id="ID0001" name="mProjectPP" [namespace=... version=...]>
//       <argument>...</argument>                 (recorded as the command)
//       <uses file="in.fits"  link="input"  [size="4194304"]/>
//       <uses file="out.fits" link="output" [size="6291456"]/>
//     </job>
//     <child ref="ID0002"><parent ref="ID0001"/></child>*
//   </adag>
//
// Data dependencies are derived from the file sets (the driver's readiness
// rule); explicit <child>/<parent> edges are validated for consistency.

#ifndef HIWAY_LANG_DAX_SOURCE_H_
#define HIWAY_LANG_DAX_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/lang/workflow.h"

namespace hiway {

class DaxSource : public WorkflowSource {
 public:
  /// Parses a DAX document. `file_prefix` is prepended to every file name
  /// to form DFS paths (DAX uses bare logical file names).
  static Result<std::unique_ptr<DaxSource>> Parse(
      std::string_view xml_text, const std::string& file_prefix = "/dax/");

  std::string name() const override { return name_; }
  bool IsStatic() const override { return true; }
  Result<std::vector<TaskSpec>> Init() override;
  Result<std::vector<TaskSpec>> OnTaskCompleted(
      const TaskResult& result) override;
  bool IsDone() const override { return completed_ >= tasks_.size(); }
  std::vector<std::string> Targets() const override { return targets_; }

  /// Workflow input files (consumed but never produced): the caller must
  /// stage these into DFS before submitting.
  const std::vector<std::pair<std::string, int64_t>>& required_inputs()
      const {
    return required_inputs_;
  }

  size_t task_count() const { return tasks_.size(); }

 private:
  DaxSource() = default;

  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::string> targets_;
  /// (path, declared size or 0).
  std::vector<std::pair<std::string, int64_t>> required_inputs_;
  size_t completed_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_LANG_DAX_SOURCE_H_
