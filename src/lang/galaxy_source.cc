#include "src/lang/galaxy_source.h"

#include <algorithm>
#include <set>

#include "src/common/json.h"
#include "src/common/strings.h"
#include "src/lang/workflow_validate.h"

namespace hiway {

namespace {

/// Galaxy tool ids look like
/// "toolshed.g2.bx.psu.edu/repos/devteam/tophat2/tophat2/2.1.0" or plain
/// "tophat2"; the profile name is the second-to-last segment (the tool
/// name) when versioned, else the id itself.
std::string ToolNameFromId(const std::string& tool_id) {
  std::vector<std::string> parts = StrSplit(tool_id, '/');
  if (parts.size() >= 2) {
    return parts[parts.size() - 2];
  }
  return tool_id;
}

}  // namespace

Result<std::unique_ptr<GalaxySource>> GalaxySource::Parse(
    std::string_view json_text,
    const std::map<std::string, std::string>& inputs,
    const std::string& output_dir) {
  HIWAY_ASSIGN_OR_RETURN(Json doc, Json::Parse(json_text));
  if (!doc.is_object()) {
    return Status::ParseError("Galaxy workflow must be a JSON object");
  }
  auto source = std::unique_ptr<GalaxySource>(new GalaxySource());
  source->name_ = doc.GetString("name", "galaxy-workflow");
  const Json* steps = doc.Find("steps");
  if (steps == nullptr || !steps->is_object()) {
    return Status::ParseError("Galaxy workflow has no \"steps\" object");
  }

  // Pass 1: resolve every step's outputs to DFS paths.
  //   data_input steps -> the user-provided path;
  //   tool steps       -> generated paths under output_dir.
  // step_outputs[step_id][output_name] = path.
  std::map<int64_t, std::map<std::string, std::string>> step_outputs;
  struct RawStep {
    int64_t id;
    std::string type;
    std::string tool_id;
    const Json* json;
  };
  std::vector<RawStep> raw_steps;
  for (const auto& [key, step] : steps->as_object()) {
    if (!step.is_object()) {
      return Status::ParseError("Galaxy step " + key + " is not an object");
    }
    RawStep raw;
    raw.id = step.GetInt("id", -1);
    if (raw.id < 0) {
      auto parsed = ParseInt64(key);
      if (!parsed.ok()) {
        return Status::ParseError("Galaxy step without id: " + key);
      }
      raw.id = *parsed;
    }
    // Bound ids so task.id = id + 1 cannot overflow and generated paths stay
    // sane; fuzz-found via "id": 1e300 (saturates to INT64_MAX) and huge keys.
    constexpr int64_t kMaxStepId = int64_t{1} << 31;
    if (raw.id < 0 || raw.id > kMaxStepId) {
      return Status::ParseError(
          StrFormat("Galaxy step %s has out-of-range id %lld (allowed 0..%lld)",
                    key.c_str(), static_cast<long long>(raw.id),
                    static_cast<long long>(kMaxStepId)));
    }
    raw.type = step.GetString("type", "tool");
    raw.tool_id = step.GetString("tool_id");
    raw.json = &step;
    raw_steps.push_back(raw);
  }
  std::sort(raw_steps.begin(), raw_steps.end(),
            [](const RawStep& a, const RawStep& b) { return a.id < b.id; });
  for (size_t i = 1; i < raw_steps.size(); ++i) {
    if (raw_steps[i].id == raw_steps[i - 1].id) {
      return Status::ParseError(StrFormat(
          "duplicate Galaxy step id %lld (two steps would collide on the "
          "same task id and output paths)",
          static_cast<long long>(raw_steps[i].id)));
    }
  }

  for (const RawStep& raw : raw_steps) {
    if (raw.type == "data_input" || raw.type == "data_collection_input") {
      // Placeholder: resolve against the provided input map by the input
      // name, the label, or "input_<id>".
      std::string input_name;
      const Json* step_inputs = raw.json->Find("inputs");
      if (step_inputs != nullptr && step_inputs->is_array() &&
          !step_inputs->as_array().empty()) {
        input_name = step_inputs->as_array()[0].GetString("name");
      }
      if (input_name.empty()) input_name = raw.json->GetString("label");
      std::string path;
      auto it = inputs.find(input_name);
      if (it != inputs.end()) {
        path = it->second;
      } else {
        auto fallback =
            inputs.find(StrFormat("input_%lld",
                                  static_cast<long long>(raw.id)));
        if (fallback != inputs.end()) {
          path = fallback->second;
        }
      }
      if (path.empty()) {
        return Status::InvalidArgument(
            StrFormat("Galaxy input placeholder '%s' (step %lld) was not "
                      "resolved; pass it in the inputs map",
                      input_name.c_str(), static_cast<long long>(raw.id)));
      }
      step_outputs[raw.id]["output"] = path;
      continue;
    }
    // Tool step: one generated path per declared output.
    const Json* outputs = raw.json->Find("outputs");
    auto& out_map = step_outputs[raw.id];
    if (outputs != nullptr && outputs->is_array()) {
      for (const Json& out : outputs->as_array()) {
        std::string out_name = out.GetString("name", "output");
        std::string ext = out.GetString("type", "dat");
        out_map[out_name] = StrFormat(
            "%s/step%lld/%s.%s", output_dir.c_str(),
            static_cast<long long>(raw.id), out_name.c_str(), ext.c_str());
      }
    }
    if (out_map.empty()) {
      out_map["output"] = StrFormat("%s/step%lld/output.dat",
                                    output_dir.c_str(),
                                    static_cast<long long>(raw.id));
    }
  }

  // Pass 2: build TaskSpecs for tool steps.
  std::set<std::string> consumed;
  for (const RawStep& raw : raw_steps) {
    if (raw.type == "data_input" || raw.type == "data_collection_input") {
      continue;
    }
    if (raw.tool_id.empty()) {
      return Status::ParseError(StrFormat(
          "Galaxy tool step %lld has no tool_id",
          static_cast<long long>(raw.id)));
    }
    TaskSpec task;
    task.id = raw.id + 1;  // step ids are 0-based; task ids must be >= 1
    task.signature = ToolNameFromId(raw.tool_id);
    task.tool = task.signature;
    task.command = raw.tool_id;
    const Json* connections = raw.json->Find("input_connections");
    if (connections != nullptr && connections->is_object()) {
      for (const auto& [input_name, conn] : connections->as_object()) {
        // A connection is {"id": N, "output_name": "..."} or a list of
        // such objects (multi-input tools).
        std::vector<const Json*> conns;
        if (conn.is_array()) {
          for (const Json& c : conn.as_array()) conns.push_back(&c);
        } else {
          conns.push_back(&conn);
        }
        for (const Json* c : conns) {
          int64_t src_step = c->GetInt("id", -1);
          std::string out_name = c->GetString("output_name", "output");
          auto sit = step_outputs.find(src_step);
          if (sit == step_outputs.end()) {
            return Status::ParseError(StrFormat(
                "step %lld connects to unknown step %lld",
                static_cast<long long>(raw.id),
                static_cast<long long>(src_step)));
          }
          auto oit = sit->second.find(out_name);
          if (oit == sit->second.end()) {
            return Status::ParseError(StrFormat(
                "step %lld connects to unknown output '%s' of step %lld",
                static_cast<long long>(raw.id), out_name.c_str(),
                static_cast<long long>(src_step)));
          }
          task.input_files.push_back(oit->second);
          consumed.insert(oit->second);
        }
      }
    }
    for (const auto& [out_name, path] : step_outputs[raw.id]) {
      OutputSpec out;
      out.param = out_name;
      out.path = path;
      task.outputs.push_back(std::move(out));
    }
    source->tasks_.push_back(std::move(task));
  }
  if (source->tasks_.empty()) {
    return Status::ParseError("Galaxy workflow contains no tool steps");
  }
  HIWAY_RETURN_IF_ERROR(ValidateWorkflowTasks(source->tasks_)
                            .WithContext("invalid Galaxy task graph"));

  // Targets: tool outputs nothing consumes.
  for (const TaskSpec& t : source->tasks_) {
    for (const OutputSpec& o : t.outputs) {
      if (consumed.find(o.path) == consumed.end()) {
        source->targets_.push_back(o.path);
      }
    }
  }
  return source;
}

Result<std::vector<TaskSpec>> GalaxySource::Init() { return tasks_; }

Result<std::vector<TaskSpec>> GalaxySource::OnTaskCompleted(
    const TaskResult&) {
  ++completed_;
  return std::vector<TaskSpec>{};
}

}  // namespace hiway
