// Galaxy front-end (Sec. 3.2): executes workflows exported from the Galaxy
// SWfMS as JSON (".ga" files).
//
// In a Galaxy export the workflow inputs are placeholders ("data_input"
// steps); the paper resolves them interactively when the workflow is
// committed — here the caller provides an input-name -> DFS-path map at
// parse time. Tool steps connect to upstream step outputs via
// "input_connections". The resulting task graph is static.

#ifndef HIWAY_LANG_GALAXY_SOURCE_H_
#define HIWAY_LANG_GALAXY_SOURCE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/workflow.h"

namespace hiway {

class GalaxySource : public WorkflowSource {
 public:
  /// Parses an exported Galaxy workflow. `inputs` maps each data_input
  /// step's name (or label) to a DFS path; all placeholders must resolve.
  /// Generated outputs are placed under `output_dir`.
  static Result<std::unique_ptr<GalaxySource>> Parse(
      std::string_view json_text,
      const std::map<std::string, std::string>& inputs,
      const std::string& output_dir = "/galaxy");

  std::string name() const override { return name_; }
  bool IsStatic() const override { return true; }
  Result<std::vector<TaskSpec>> Init() override;
  Result<std::vector<TaskSpec>> OnTaskCompleted(
      const TaskResult& result) override;
  bool IsDone() const override { return completed_ >= tasks_.size(); }
  std::vector<std::string> Targets() const override { return targets_; }

  size_t task_count() const { return tasks_.size(); }

 private:
  GalaxySource() = default;

  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::string> targets_;
  size_t completed_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_LANG_GALAXY_SOURCE_H_
