#include "src/lang/trace_source.h"

#include <map>
#include <set>

#include "src/common/strings.h"
#include "src/lang/workflow_validate.h"

namespace hiway {

namespace {

/// Task-scoped events must carry a usable task id and, for stage events, a
/// non-negative size and non-empty path; corrupt values would otherwise
/// flow straight into TaskSpec/OutputSpec fields.
Status CheckTaskEvent(const ProvenanceEvent& ev) {
  if (ev.task_id <= 0) {
    return Status::ParseError(StrFormat(
        "trace event for run '%s' has non-positive task id %lld",
        ev.run_id.c_str(), static_cast<long long>(ev.task_id)));
  }
  if (ev.type == ProvenanceEventType::kFileStageIn ||
      ev.type == ProvenanceEventType::kFileStageOut) {
    if (ev.file_path.empty()) {
      return Status::ParseError(
          StrFormat("trace stage event for task %lld has an empty file path",
                    static_cast<long long>(ev.task_id)));
    }
    if (ev.size_bytes < 0) {
      return Status::ParseError(StrFormat(
          "trace stage event for task %lld file '%s' has negative size %lld",
          static_cast<long long>(ev.task_id), ev.file_path.c_str(),
          static_cast<long long>(ev.size_bytes)));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<TraceSource>> TraceSource::Parse(
    std::string_view trace_text, const std::string& run_id,
    bool allow_incomplete) {
  HIWAY_ASSIGN_OR_RETURN(std::vector<ProvenanceEvent> events,
                         ParseTrace(trace_text));
  return FromEvents(events, run_id, allow_incomplete);
}

Result<std::unique_ptr<TraceSource>> TraceSource::FromView(
    const ProvenanceView& view, const std::string& run_id,
    bool allow_incomplete) {
  return FromEvents(view.Events(), run_id, allow_incomplete);
}

Result<std::unique_ptr<TraceSource>> TraceSource::FromEvents(
    const std::vector<ProvenanceEvent>& events, const std::string& run_id,
    bool allow_incomplete) {
  // Choose the run to replay.
  std::string selected = run_id;
  if (selected.empty()) {
    for (const ProvenanceEvent& ev : events) {
      if (ev.type == ProvenanceEventType::kWorkflowStart) {
        selected = ev.run_id;
        break;
      }
    }
  }
  if (selected.empty()) {
    return Status::InvalidArgument("trace contains no workflow run");
  }

  auto source = std::unique_ptr<TraceSource>(new TraceSource());
  source->name_ = selected + "-replay";

  // Assemble per-task specs from start/end/file events. A task may have
  // several attempts; the successful end event wins and stage events of
  // failed attempts are superseded by set semantics on paths.
  struct Rebuilt {
    TaskSpec spec;
    bool has_start = false;
    bool succeeded = false;
    std::set<std::string> inputs;
    std::map<std::string, int64_t> outputs;  // path -> size
    std::map<std::string, int64_t> staged_inputs;  // path -> size
  };
  std::map<TaskId, Rebuilt> by_task;
  for (const ProvenanceEvent& ev : events) {
    if (ev.run_id != selected) continue;
    switch (ev.type) {
      case ProvenanceEventType::kWorkflowStart:
        if (!ev.workflow_name.empty()) {
          source->name_ = ev.workflow_name + "-replay";
        }
        break;
      case ProvenanceEventType::kTaskStart: {
        HIWAY_RETURN_IF_ERROR(CheckTaskEvent(ev));
        Rebuilt& r = by_task[ev.task_id];
        r.has_start = true;
        r.spec.id = ev.task_id;
        r.spec.signature = ev.signature;
        r.spec.command = ev.command;
        r.spec.tool = ev.tool;
        break;
      }
      case ProvenanceEventType::kTaskEnd:
        HIWAY_RETURN_IF_ERROR(CheckTaskEvent(ev));
        if (ev.success) by_task[ev.task_id].succeeded = true;
        break;
      case ProvenanceEventType::kFileStageIn: {
        HIWAY_RETURN_IF_ERROR(CheckTaskEvent(ev));
        Rebuilt& r = by_task[ev.task_id];
        r.inputs.insert(ev.file_path);
        r.staged_inputs[ev.file_path] = ev.size_bytes;
        break;
      }
      case ProvenanceEventType::kFileStageOut:
        HIWAY_RETURN_IF_ERROR(CheckTaskEvent(ev));
        by_task[ev.task_id].outputs[ev.file_path] = ev.size_bytes;
        break;
      case ProvenanceEventType::kWorkflowEnd:
        break;
      case ProvenanceEventType::kTaskCacheHit:
        // A cache hit is not an execution: replay re-resolves it against
        // the live cache instead of memoising a task that never ran here.
        break;
    }
  }
  if (by_task.empty()) {
    return Status::InvalidArgument("run '" + selected +
                                   "' has no task events in the trace");
  }

  std::set<std::string> produced;
  std::set<std::string> consumed;
  std::map<std::string, int64_t> consumed_sizes;
  for (auto& [id, r] : by_task) {
    if (!r.has_start) {
      if (allow_incomplete) continue;  // crash prefix: drop the fragment
      return Status::ParseError(StrFormat(
          "trace has events for task %lld but no task-start record",
          static_cast<long long>(id)));
    }
    if (!r.succeeded) {
      if (allow_incomplete) continue;  // crash prefix: task was in flight
      return Status::InvalidArgument(StrFormat(
          "task %lld never succeeded in the recorded run; the trace is "
          "not re-executable",
          static_cast<long long>(id)));
    }
    r.spec.input_files.assign(r.inputs.begin(), r.inputs.end());
    int out_index = 0;
    for (const auto& [path, size] : r.outputs) {
      OutputSpec out;
      out.param = StrFormat("out%d", out_index++);
      out.path = path;
      // Replay the recorded size exactly: re-execution reproduces the
      // run's data volumes independent of tool-model defaults.
      out.size_bytes = size;
      source->targets_.push_back(path);  // pruned below
      produced.insert(path);
      r.spec.outputs.push_back(std::move(out));
    }
    for (const std::string& in : r.spec.input_files) {
      consumed.insert(in);
      consumed_sizes[in] = r.staged_inputs[in];
    }
    source->tasks_.push_back(r.spec);
  }

  if (source->tasks_.empty()) {
    return Status::InvalidArgument(
        "run '" + selected +
        "' has no completed tasks; nothing to replay from the prefix");
  }

  // Required inputs: consumed but never produced in this run.
  for (const std::string& path : consumed) {
    if (produced.find(path) == produced.end()) {
      source->required_inputs_.emplace_back(path, consumed_sizes[path]);
    }
  }
  // Targets: produced but never consumed.
  std::vector<std::string> targets;
  for (const std::string& path : source->targets_) {
    if (consumed.find(path) == consumed.end()) targets.push_back(path);
  }
  source->targets_ = std::move(targets);
  HIWAY_RETURN_IF_ERROR(ValidateWorkflowTasks(source->tasks_)
                            .WithContext("invalid trace task graph"));
  return source;
}

Result<std::vector<TaskSpec>> TraceSource::Init() { return tasks_; }

Result<std::vector<TaskSpec>> TraceSource::OnTaskCompleted(
    const TaskResult&) {
  ++completed_;
  return std::vector<TaskSpec>{};
}

}  // namespace hiway
