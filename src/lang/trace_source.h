// Provenance-trace front-end (Sec. 3.5): a Hi-WAY trace file "holds
// information about all of a workflow's tasks and data dependencies" and
// "can be interpreted as a workflow itself" — the fourth supported
// language. Re-executing a trace replays the exact task invocations
// (signatures, tools, input files, output files) of the recorded run,
// though not necessarily on the same compute nodes.

#ifndef HIWAY_LANG_TRACE_SOURCE_H_
#define HIWAY_LANG_TRACE_SOURCE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/provenance.h"
#include "src/lang/workflow.h"

namespace hiway {

class TraceSource : public WorkflowSource {
 public:
  /// Reconstructs a workflow from a JSON-lines trace. When `run_id` is
  /// empty the first recorded run in the trace is replayed. By default
  /// every recorded task must have completed successfully; with
  /// `allow_incomplete` the trace may be a crash prefix — tasks that
  /// never started or never succeeded are dropped and the remaining
  /// completed prefix is replayed (AM-failover traces are exactly such
  /// prefixes; see docs/failure-model.md).
  static Result<std::unique_ptr<TraceSource>> Parse(
      std::string_view trace_text, const std::string& run_id = "",
      bool allow_incomplete = false);

  /// Same, from already-parsed events.
  static Result<std::unique_ptr<TraceSource>> FromEvents(
      const std::vector<ProvenanceEvent>& events,
      const std::string& run_id = "", bool allow_incomplete = false);

  /// Same, from a merged view over provenance shards — e.g. all prior
  /// attempts of one submission for failover memoisation, where each
  /// attempt's crash prefix lives in its own shard.
  static Result<std::unique_ptr<TraceSource>> FromView(
      const ProvenanceView& view, const std::string& run_id = "",
      bool allow_incomplete = false);

  std::string name() const override { return name_; }
  bool IsStatic() const override { return true; }
  Result<std::vector<TaskSpec>> Init() override;
  Result<std::vector<TaskSpec>> OnTaskCompleted(
      const TaskResult& result) override;
  bool IsDone() const override { return completed_ >= tasks_.size(); }
  std::vector<std::string> Targets() const override { return targets_; }

  /// Input files of the recorded run that no recorded task produced; they
  /// must exist in DFS before re-execution (the paper: trace re-execution
  /// "requires input data to be located ... just like during the workflow
  /// run from which the trace file was derived").
  const std::vector<std::pair<std::string, int64_t>>& required_inputs()
      const {
    return required_inputs_;
  }

  size_t task_count() const { return tasks_.size(); }

 private:
  TraceSource() = default;

  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::string> targets_;
  std::vector<std::pair<std::string, int64_t>> required_inputs_;
  size_t completed_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_LANG_TRACE_SOURCE_H_
