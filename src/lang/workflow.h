// Workflow intermediate representation shared by every language front-end
// and consumed by the Hi-WAY application master.
//
// A workflow is a stream of black-box *tasks*: each names a tool, a set of
// input files (DFS paths), and a set of outputs (files, plus optional
// string "stdout" values used by iterative languages for control flow).
// Static languages (DAX, Galaxy, provenance traces) emit every task up
// front; iterative languages (Cuneiform) emit more tasks as results arrive
// (Sec. 3.3 of the paper).

#ifndef HIWAY_LANG_WORKFLOW_H_
#define HIWAY_LANG_WORKFLOW_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace hiway {

using TaskId = int64_t;
constexpr TaskId kInvalidTask = -1;

/// One declared output of a task.
struct OutputSpec {
  /// Output parameter name (unique within the task).
  std::string param;
  /// DFS path the output will be written to.
  std::string path;
  /// Known size (e.g. from a DAX <uses size=...>); if absent the tool
  /// model derives the size from the inputs at runtime.
  std::optional<int64_t> size_bytes;
  /// Value outputs carry a string (the task's stdout) instead of file
  /// contents; used for data-dependent control flow.
  bool is_value = false;
};

/// A ready-to-schedule black-box task invocation.
struct TaskSpec {
  TaskId id = kInvalidTask;
  /// Task signature: "invoking the same tools" in the paper's terms; the
  /// runtime estimator keys observations by this.
  std::string signature;
  /// Human-readable command line, recorded in provenance.
  std::string command;
  /// Tool profile to execute (defaults to `signature` when empty).
  std::string tool;
  /// DFS paths staged in before invocation.
  std::vector<std::string> input_files;
  std::vector<OutputSpec> outputs;
  /// Free-form parameters forwarded to the tool model.
  std::map<std::string, std::string> params;
  /// Container sizing overrides; <= 0 means "use the AM default".
  int vcores = 0;
  double memory_mb = 0.0;

  const std::string& ToolName() const { return tool.empty() ? signature : tool; }
};

/// Outcome of one (successful or failed) task attempt, reported back to
/// the language front-end and the provenance manager.
struct TaskResult {
  TaskId id = kInvalidTask;
  std::string signature;
  Status status;
  /// Node the attempt ran on.
  int32_t node = -1;
  /// Wall-clock (virtual) timings.
  double started_at = 0.0;
  double finished_at = 0.0;
  /// Seconds spent moving inputs from DFS / outputs to DFS.
  double stage_in_seconds = 0.0;
  double stage_out_seconds = 0.0;
  /// The task's stdout (consumed by value outputs).
  std::string stdout_value;
  /// Files produced: (path, size in bytes).
  std::vector<std::pair<std::string, int64_t>> produced_files;

  double Makespan() const { return finished_at - started_at; }
};

/// A language front-end: parses a workflow and feeds tasks to the driver.
///
/// Contract: the driver calls Init() exactly once, then OnTaskCompleted()
/// once per *successful* task (retries are internal to the driver). The
/// source returns newly discovered tasks from either call. The workflow is
/// finished when every emitted task completed and IsDone() is true.
class WorkflowSource {
 public:
  virtual ~WorkflowSource() = default;

  virtual std::string name() const = 0;

  /// True when the complete task graph is known after Init(); required for
  /// static scheduling policies (round-robin, HEFT). Iterative languages
  /// return false, and the driver rejects static schedulers for them, as
  /// the paper does for Cuneiform (Sec. 3.4).
  virtual bool IsStatic() const = 0;

  /// Parses the workflow and returns the initially inferable tasks.
  virtual Result<std::vector<TaskSpec>> Init() = 0;

  /// Digests a completed task; may discover new tasks (iterative model).
  virtual Result<std::vector<TaskSpec>> OnTaskCompleted(
      const TaskResult& result) = 0;

  /// True once the source will not emit further tasks and all control-flow
  /// targets are resolved.
  virtual bool IsDone() const = 0;

  /// The workflow's final products (DFS paths), for reporting.
  virtual std::vector<std::string> Targets() const = 0;
};

/// Trivial WorkflowSource over a fixed task list; used by tests and by the
/// static front-ends (DAX/Galaxy/trace) which parse into a task vector.
class StaticWorkflowSource : public WorkflowSource {
 public:
  StaticWorkflowSource(std::string name, std::vector<TaskSpec> tasks,
                       std::vector<std::string> targets = {})
      : name_(std::move(name)),
        tasks_(std::move(tasks)),
        targets_(std::move(targets)) {}

  std::string name() const override { return name_; }
  bool IsStatic() const override { return true; }

  Result<std::vector<TaskSpec>> Init() override {
    emitted_ = tasks_.size();
    return tasks_;
  }

  Result<std::vector<TaskSpec>> OnTaskCompleted(const TaskResult&) override {
    ++completed_;
    return std::vector<TaskSpec>{};
  }

  bool IsDone() const override { return completed_ >= emitted_; }

  std::vector<std::string> Targets() const override { return targets_; }

 private:
  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<std::string> targets_;
  size_t emitted_ = 0;
  size_t completed_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_LANG_WORKFLOW_H_
