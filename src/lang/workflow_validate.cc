#include "src/lang/workflow_validate.h"

#include <map>
#include <set>
#include <string>

#include "src/common/strings.h"

namespace hiway {

Status ValidateWorkflowTasks(const std::vector<TaskSpec>& tasks) {
  std::set<TaskId> ids;
  std::map<std::string, TaskId> producer_of;
  for (const TaskSpec& task : tasks) {
    if (task.id <= 0) {
      return Status::InvalidArgument(
          StrFormat("task '%s' has non-positive id %lld",
                    task.signature.c_str(), static_cast<long long>(task.id)));
    }
    if (!ids.insert(task.id).second) {
      return Status::InvalidArgument(StrFormat(
          "duplicate task id %lld", static_cast<long long>(task.id)));
    }
    if (task.signature.empty()) {
      return Status::InvalidArgument(StrFormat(
          "task %lld has an empty signature", static_cast<long long>(task.id)));
    }
    std::set<std::string> inputs(task.input_files.begin(),
                                 task.input_files.end());
    for (const std::string& in : task.input_files) {
      if (in.empty()) {
        return Status::InvalidArgument(
            StrFormat("task %lld lists an empty input path",
                      static_cast<long long>(task.id)));
      }
    }
    for (const OutputSpec& out : task.outputs) {
      if (out.path.empty()) {
        return Status::InvalidArgument(
            StrFormat("task %lld declares an output with an empty path",
                      static_cast<long long>(task.id)));
      }
      if (out.size_bytes.has_value() && *out.size_bytes < 0) {
        return Status::InvalidArgument(StrFormat(
            "task %lld output '%s' declares negative size %lld",
            static_cast<long long>(task.id), out.path.c_str(),
            static_cast<long long>(*out.size_bytes)));
      }
      if (inputs.count(out.path) > 0) {
        return Status::InvalidArgument(StrFormat(
            "task %lld uses '%s' as both input and output (self-dependency)",
            static_cast<long long>(task.id), out.path.c_str()));
      }
      auto [it, inserted] = producer_of.emplace(out.path, task.id);
      if (!inserted && it->second != task.id) {
        return Status::InvalidArgument(StrFormat(
            "output '%s' is produced by both task %lld and task %lld",
            out.path.c_str(), static_cast<long long>(it->second),
            static_cast<long long>(task.id)));
      }
    }
  }
  // Cycle check over the file-induced dependency graph (Kahn's algorithm):
  // an edge producer(task) -> consumer(task) exists when the consumer reads
  // a path the producer writes. A cycle would deadlock the driver.
  std::map<TaskId, std::set<TaskId>> consumers;
  std::map<TaskId, int> indegree;
  for (const TaskSpec& task : tasks) indegree[task.id] = 0;
  for (const TaskSpec& task : tasks) {
    for (const std::string& in : task.input_files) {
      auto it = producer_of.find(in);
      if (it == producer_of.end() || it->second == task.id) continue;
      if (consumers[it->second].insert(task.id).second) ++indegree[task.id];
    }
  }
  std::vector<TaskId> ready;
  for (const auto& [id, deg] : indegree) {
    if (deg == 0) ready.push_back(id);
  }
  size_t visited = 0;
  while (!ready.empty()) {
    TaskId id = ready.back();
    ready.pop_back();
    ++visited;
    auto it = consumers.find(id);
    if (it == consumers.end()) continue;
    for (TaskId next : it->second) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  if (visited != tasks.size()) {
    for (const auto& [id, deg] : indegree) {
      if (deg > 0) {
        return Status::InvalidArgument(StrFormat(
            "task dependency cycle through task %lld (workflow would "
            "deadlock)",
            static_cast<long long>(id)));
      }
    }
  }
  return Status::OK();
}

}  // namespace hiway
