// Structural validity checks for front-end task graphs.
//
// Every static front-end (DAX, Galaxy, trace, CWL) runs its parsed task
// vector through ValidateWorkflowTasks before handing it to the driver, and
// the fuzz harness uses the same predicate as its "parser returned a valid
// Workflow" invariant: a source must either reject hostile input with a
// Status error or emit a graph that satisfies these rules.

#ifndef HIWAY_LANG_WORKFLOW_VALIDATE_H_
#define HIWAY_LANG_WORKFLOW_VALIDATE_H_

#include <vector>

#include "src/common/result.h"
#include "src/lang/workflow.h"

namespace hiway {

/// Checks that `tasks` form a well-formed static task graph:
///  - task ids are positive and unique,
///  - signatures and file paths are non-empty,
///  - declared output sizes are non-negative,
///  - no task lists the same path as both input and output (self-dependency),
///  - no two tasks produce the same output path (ambiguous producer),
///  - the file-induced dependency graph is acyclic.
/// Returns OK or an InvalidArgument naming the offending task/path.
Status ValidateWorkflowTasks(const std::vector<TaskSpec>& tasks);

}  // namespace hiway

#endif  // HIWAY_LANG_WORKFLOW_VALIDATE_H_
