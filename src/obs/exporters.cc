#include "src/obs/exporters.h"

#include <cstring>
#include <map>
#include <tuple>

#include "src/common/json.h"
#include "src/common/strings.h"

namespace hiway {

namespace {

int64_t TidOf(const TraceEvent& ev) {
  if (ev.task >= 0) return ev.task;
  if (ev.container >= 0) return ev.container;
  if (ev.node >= 0) return ev.node;
  return 0;
}

Json EventJson(const char* ph, const TraceEvent& ev, double dur_us) {
  Json j = Json::MakeObject();
  j.Set("name", Json(std::string(ev.name)));
  j.Set("cat", Json(std::string(ToString(ev.category))));
  j.Set("ph", Json(std::string(ph)));
  j.Set("ts", Json(ev.timestamp * 1e6));
  if (std::strcmp(ph, "X") == 0) j.Set("dur", Json(dur_us));
  j.Set("pid", Json(static_cast<double>(ev.app >= 0 ? ev.app : 0)));
  j.Set("tid", Json(static_cast<double>(TidOf(ev))));
  Json args = Json::MakeObject();
  if (ev.container >= 0) {
    args.Set("container", Json(static_cast<double>(ev.container)));
  }
  if (ev.node >= 0) args.Set("node", Json(static_cast<double>(ev.node)));
  if (ev.value != 0.0) args.Set("value", Json(ev.value));
  if (ev.aux >= 0) args.Set("aux", Json(static_cast<double>(ev.aux)));
  j.Set("args", args);
  return j;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<TraceEvent>& events) {
  Json list = Json::MakeArray();
  // Open Begin events keyed by (category, name, app, tid): matched with
  // the next End of the same key into one complete "X" event.
  using SpanKey = std::tuple<int, std::string, int64_t, int64_t>;
  std::map<SpanKey, std::vector<TraceEvent>> open;
  auto key_of = [](const TraceEvent& ev) {
    return SpanKey{static_cast<int>(ev.category), std::string(ev.name), ev.app,
                   TidOf(ev)};
  };
  for (const TraceEvent& ev : events) {
    switch (ev.phase) {
      case SpanPhase::kInstant:
        list.Append(EventJson("i", ev, 0.0));
        break;
      case SpanPhase::kBegin:
        open[key_of(ev)].push_back(ev);
        break;
      case SpanPhase::kEnd: {
        auto it = open.find(key_of(ev));
        if (it != open.end() && !it->second.empty()) {
          TraceEvent begin = it->second.back();
          it->second.pop_back();
          double dur_us = (ev.timestamp - begin.timestamp) * 1e6;
          if (dur_us < 0.0) dur_us = 0.0;
          begin.value = ev.value;  // End carries the payload
          if (begin.node < 0) begin.node = ev.node;
          list.Append(EventJson("X", begin, dur_us));
        } else {
          list.Append(EventJson("i", ev, 0.0));
        }
        break;
      }
    }
  }
  // Unmatched Begins degrade to instants so the file stays loadable.
  for (const auto& [key, begins] : open) {
    for (const TraceEvent& ev : begins) list.Append(EventJson("i", ev, 0.0));
  }
  Json root = Json::MakeObject();
  root.Set("traceEvents", list);
  root.Set("displayTimeUnit", Json(std::string("ms")));
  return root.Dump();
}

std::string ExportPrometheusText(const std::vector<TraceEvent>& events) {
  struct Agg {
    int64_t count = 0;
    double seconds = 0.0;
  };
  std::map<std::pair<std::string, std::string>, Agg> by_span;
  for (const TraceEvent& ev : events) {
    Agg& a = by_span[{ToString(ev.category), ev.name}];
    ++a.count;
    if (ev.phase == SpanPhase::kEnd || ev.phase == SpanPhase::kInstant) {
      a.seconds += ev.value;
    }
  }
  std::string out;
  out += "# HELP hiway_trace_events_total Trace events drained.\n";
  out += "# TYPE hiway_trace_events_total counter\n";
  out += StrFormat("hiway_trace_events_total %lld\n",
                   static_cast<long long>(events.size()));
  out += "# HELP hiway_span_total Events per span category and name.\n";
  out += "# TYPE hiway_span_total counter\n";
  for (const auto& [key, agg] : by_span) {
    out += StrFormat("hiway_span_total{category=\"%s\",name=\"%s\"} %lld\n",
                     key.first.c_str(), key.second.c_str(),
                     static_cast<long long>(agg.count));
  }
  out += "# HELP hiway_span_seconds_total Summed span value payloads "
         "(durations, transfer seconds) per category and name.\n";
  out += "# TYPE hiway_span_seconds_total counter\n";
  for (const auto& [key, agg] : by_span) {
    out += StrFormat(
        "hiway_span_seconds_total{category=\"%s\",name=\"%s\"} %.6f\n",
        key.first.c_str(), key.second.c_str(), agg.seconds);
  }
  return out;
}

}  // namespace hiway
