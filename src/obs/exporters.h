// Trace exporters: a drained event list (Tracer::Drain()) rendered for
// external tools. ExportChromeTrace emits Chrome trace_event JSON —
// load the file at https://ui.perfetto.dev or chrome://tracing to see
// the container/task timelines the paper's Fig. 6 draws by hand.
// ExportPrometheusText renders a Prometheus text-exposition snapshot of
// per-span counters for scrape-style consumption. Formats are detailed
// in docs/observability.md.

#ifndef HIWAY_OBS_EXPORTERS_H_
#define HIWAY_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "src/obs/tracer.h"

namespace hiway {

/// Chrome trace_event JSON ({"traceEvents": [...]}). Begin/End pairs
/// are matched by (category, name, app, task-or-container id) into
/// complete ("ph":"X") events with microsecond timestamps; instants
/// become "ph":"i". pid = app id, tid = task id (falling back to
/// container, then node). Always structurally valid JSON, even for a
/// trace with unmatched Begins (they are emitted as instants).
std::string ExportChromeTrace(const std::vector<TraceEvent>& events);

/// Prometheus text exposition: hiway_span_total{category,name} event
/// counts and hiway_span_seconds_total{category,name} duration sums
/// (from End/instant `value` payloads), plus hiway_trace_events_total.
std::string ExportPrometheusText(const std::vector<TraceEvent>& events);

}  // namespace hiway

#endif  // HIWAY_OBS_EXPORTERS_H_
