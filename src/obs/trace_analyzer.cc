#include "src/obs/trace_analyzer.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <set>

#include "src/common/strings.h"

namespace hiway {

namespace {
bool NameIs(const TraceEvent& ev, const char* name) {
  return std::strcmp(ev.name, name) == 0;
}
}  // namespace

double TaskTimeline::WaitSeconds() const {
  if (ready_at < 0.0 || allocated_at < 0.0) return 0.0;
  return std::max(0.0, allocated_at - ready_at);
}

double TaskTimeline::LocalizeSeconds() const {
  if (allocated_at < 0.0 || exec_start_at < 0.0) return 0.0;
  return std::max(0.0, exec_start_at - allocated_at);
}

double TaskTimeline::ComputeSeconds() const {
  if (exec_start_at < 0.0 || finished_at < 0.0) return 0.0;
  return std::max(0.0, finished_at - exec_start_at - stage_seconds);
}

double TaskTimeline::TotalSeconds() const {
  return WaitSeconds() + DataSeconds() + ComputeSeconds();
}

std::string CriticalPathReport::Summary() const {
  return StrFormat(
      "critical path: %zu task(s), %.1fs total = %.1fs wait (%.0f%%) + "
      "%.1fs data (%.0f%%) + %.1fs compute (%.0f%%); makespan %.1fs",
      steps.size(), total_s, wait_s, WaitShare() * 100.0, data_s,
      DataShare() * 100.0, compute_s, ComputeShare() * 100.0, makespan_s);
}

TraceAnalyzer::TraceAnalyzer(std::vector<TraceEvent> events)
    : events_(std::move(events)) {
  Build();
}

void TraceAnalyzer::Build() {
  // Per-task attempt state while scanning in global order. A retry
  // re-marks the task ready, so "last writer wins": the timeline that
  // survives is the attempt that actually completed.
  struct Open {
    double ready_at = -1.0;
    double allocated_at = -1.0;
    double exec_start_at = -1.0;
    double stage_seconds = 0.0;
    int attempts = 0;
  };
  std::map<int64_t, Open> open;
  std::map<int64_t, std::set<int64_t>> deps;
  double wf_start = -1.0;
  for (const TraceEvent& ev : events_) {
    if (ev.category == SpanCategory::kWorkflow) {
      if (ev.phase == SpanPhase::kBegin && wf_start < 0.0) {
        wf_start = ev.timestamp;
      } else if (ev.phase == SpanPhase::kEnd && wf_start >= 0.0) {
        makespan_ = std::max(makespan_, ev.timestamp - wf_start);
      }
      continue;
    }
    if (ev.category != SpanCategory::kTask || ev.task < 0) continue;
    Open& o = open[ev.task];
    if (NameIs(ev, "task_ready") && ev.phase == SpanPhase::kInstant) {
      o.ready_at = ev.timestamp;
      // A fresh attempt invalidates the previous one's progress.
      o.allocated_at = -1.0;
      o.exec_start_at = -1.0;
      o.stage_seconds = 0.0;
    } else if (NameIs(ev, "localize")) {
      if (ev.phase == SpanPhase::kBegin) {
        o.allocated_at = ev.timestamp;
        ++o.attempts;
      } else if (ev.phase == SpanPhase::kEnd) {
        o.exec_start_at = ev.timestamp;
      }
    } else if (NameIs(ev, "execute")) {
      if (ev.phase == SpanPhase::kBegin) {
        if (o.exec_start_at < 0.0) o.exec_start_at = ev.timestamp;
      } else if (ev.phase == SpanPhase::kEnd) {
        TaskTimeline t;
        t.task = ev.task;
        t.app = ev.app;
        t.node = ev.node;
        t.ready_at = o.ready_at;
        t.allocated_at = o.allocated_at;
        t.exec_start_at = o.exec_start_at;
        t.finished_at = ev.timestamp;
        t.stage_seconds = o.stage_seconds;
        t.attempts = std::max(1, o.attempts);
        tasks_[ev.task] = std::move(t);
      }
    } else if (NameIs(ev, "stage_in") || NameIs(ev, "stage_out")) {
      o.stage_seconds += ev.value;
      // Stage instants are recorded at attempt completion — after the
      // execute-end event of the same attempt. Patch the completed
      // timeline too.
      auto it = tasks_.find(ev.task);
      if (it != tasks_.end() && it->second.finished_at <= ev.timestamp) {
        it->second.stage_seconds += ev.value;
      }
    } else if (NameIs(ev, "task_dep") && ev.aux >= 0) {
      deps[ev.task].insert(ev.aux);
    }
  }
  for (auto& [id, t] : tasks_) {
    auto it = deps.find(id);
    if (it == deps.end()) continue;
    for (int64_t d : it->second) {
      if (tasks_.count(d) != 0 && d != id) t.deps.push_back(d);
    }
  }
}

CriticalPathReport TraceAnalyzer::CriticalPath() const {
  CriticalPathReport report;
  report.makespan_s = makespan_;
  // Longest chain by total segment weight: cp(t) = weight(t) +
  // max over deps cp(d). Memoised DFS; a visiting set breaks cycles
  // (impossible in a well-formed trace, cheap to guard against).
  std::map<int64_t, double> best;
  std::map<int64_t, int64_t> via;  // argmax predecessor, -1 = none
  std::set<int64_t> visiting;
  std::function<double(int64_t)> cp = [&](int64_t id) -> double {
    auto memo = best.find(id);
    if (memo != best.end()) return memo->second;
    if (!visiting.insert(id).second) return 0.0;  // cycle guard
    const TaskTimeline& t = tasks_.at(id);
    double longest = 0.0;
    int64_t argmax = -1;
    for (int64_t d : t.deps) {
      double c = cp(d);
      if (c > longest) {
        longest = c;
        argmax = d;
      }
    }
    visiting.erase(id);
    double total = t.TotalSeconds() + longest;
    best[id] = total;
    via[id] = argmax;
    return total;
  };
  int64_t tail = -1;
  double tail_cp = -1.0;
  for (const auto& [id, t] : tasks_) {
    double c = cp(id);
    if (c > tail_cp) {
      tail_cp = c;
      tail = id;
    }
  }
  if (tail < 0) return report;
  std::vector<int64_t> chain;
  for (int64_t id = tail; id >= 0; id = via[id]) chain.push_back(id);
  std::reverse(chain.begin(), chain.end());
  for (int64_t id : chain) {
    const TaskTimeline& t = tasks_.at(id);
    CriticalPathStep step;
    step.task = id;
    step.wait_s = t.WaitSeconds();
    step.data_s = t.DataSeconds();
    step.compute_s = t.ComputeSeconds();
    report.steps.push_back(step);
    report.wait_s += step.wait_s;
    report.data_s += step.data_s;
    report.compute_s += step.compute_s;
  }
  report.total_s = report.wait_s + report.data_s + report.compute_s;
  return report;
}

std::string CacheSavingsReport::Summary() const {
  return StrFormat(
      "cache savings: %lld result hit(s) skipping %.1fs of compute "
      "(%lld bytes reused), %lld staging hit(s) serving %lld bytes "
      "locally, %lld verify mismatch(es)",
      static_cast<long long>(result_hits), compute_saved_s,
      static_cast<long long>(output_bytes_reused),
      static_cast<long long>(staging_hits),
      static_cast<long long>(staging_bytes_served),
      static_cast<long long>(verify_mismatches));
}

CacheSavingsReport TraceAnalyzer::CacheSavings() const {
  CacheSavingsReport report;
  for (const TraceEvent& ev : events_) {
    if (ev.category != SpanCategory::kCache ||
        ev.phase != SpanPhase::kInstant) {
      continue;
    }
    if (NameIs(ev, "cache_hit")) {
      ++report.result_hits;
      report.compute_saved_s += ev.value;
      if (ev.aux > 0) report.output_bytes_reused += ev.aux;
    } else if (NameIs(ev, "staging_hit")) {
      ++report.staging_hits;
      if (ev.aux > 0) report.staging_bytes_served += ev.aux;
    } else if (NameIs(ev, "cache_verify_mismatch")) {
      ++report.verify_mismatches;
    }
  }
  return report;
}

std::map<std::string, SpanStat> TraceAnalyzer::SpanStats() const {
  std::map<std::string, SpanStat> stats;
  for (const TraceEvent& ev : events_) {
    std::string key = std::string(ToString(ev.category)) + "/" + ev.name;
    SpanStat& s = stats[key];
    ++s.count;
    if (ev.phase == SpanPhase::kEnd || ev.phase == SpanPhase::kInstant) {
      s.total_seconds += ev.value;
    }
  }
  return stats;
}

TraceAnalyzer TraceAnalyzer::ForApp(int64_t app) const {
  std::vector<TraceEvent> filtered;
  for (const TraceEvent& ev : events_) {
    if (ev.app == app || ev.app < 0) filtered.push_back(ev);
  }
  return TraceAnalyzer(std::move(filtered));
}

}  // namespace hiway
