// Offline analysis over a drained execution trace (src/obs/tracer.h):
// reconstructs per-task-attempt timelines, derives the task dependency
// graph recorded by the AM, and extracts the critical path — the
// longest dependency-ordered chain of wait + localize/data + compute
// segments — attributing the workflow makespan to scheduler-queue
// delay vs. data movement vs. compute. This is what turns a bench
// number ("HEFT is 1.3x faster") into an explanation ("it cut
// queue-wait on the chain through mProject by 80 s").
//
// See docs/observability.md for the span taxonomy the analyzer
// consumes and a worked example.

#ifndef HIWAY_OBS_TRACE_ANALYZER_H_
#define HIWAY_OBS_TRACE_ANALYZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/tracer.h"

namespace hiway {

/// The reconstructed timeline of one task (its final/successful
/// attempt): the four timestamps bounding the wait, localize, and
/// execute segments, plus the data-movement seconds reported by the
/// executor's stage transfers.
struct TaskTimeline {
  int64_t task = -1;
  int64_t app = -1;
  int64_t node = -1;
  double ready_at = -1.0;      // task became ready (request submitted)
  double allocated_at = -1.0;  // container allocated (localize begins)
  double exec_start_at = -1.0; // tool invocation begins
  double finished_at = -1.0;   // attempt completed
  /// Stage-in/out transfer seconds recorded for the attempt.
  double stage_seconds = 0.0;
  int attempts = 1;
  /// Upstream tasks whose outputs this task consumed (trace-recorded).
  std::vector<int64_t> deps;

  // Segment durations (clamped at 0 when a timestamp is missing).
  double WaitSeconds() const;      // ready -> allocated (queue delay)
  double LocalizeSeconds() const;  // allocated -> exec start
  /// Data movement: container localisation plus stage transfers.
  double DataSeconds() const { return LocalizeSeconds() + stage_seconds; }
  /// Pure compute: execution window minus the stage transfers in it.
  double ComputeSeconds() const;
  /// Total weight of the task on a chain: wait + data + compute.
  double TotalSeconds() const;
};

/// One hop of the critical path, with its per-category attribution.
struct CriticalPathStep {
  int64_t task = -1;
  double wait_s = 0.0;
  double data_s = 0.0;
  double compute_s = 0.0;
};

/// The longest dependency chain and its time breakdown.
struct CriticalPathReport {
  std::vector<CriticalPathStep> steps;  // dependency order, root first
  double total_s = 0.0;
  double wait_s = 0.0;     // scheduler-queue delay on the path
  double data_s = 0.0;     // localisation + stage transfers on the path
  double compute_s = 0.0;  // tool execution on the path
  /// Workflow makespan from the trace's workflow span (0 when absent).
  double makespan_s = 0.0;
  /// wait/data/compute as fractions of total_s (0 when total is 0).
  double WaitShare() const { return total_s > 0 ? wait_s / total_s : 0; }
  double DataShare() const { return total_s > 0 ? data_s / total_s : 0; }
  double ComputeShare() const {
    return total_s > 0 ? compute_s / total_s : 0;
  }
  std::string Summary() const;
};

/// Aggregate per-(category, name) statistics across the whole trace.
struct SpanStat {
  int64_t count = 0;
  double total_seconds = 0.0;  // sum of End/complete `value` durations
};

/// What the caches saved in the traced window, from kCache instants
/// (docs/data-cache.md): "cache_hit" carries the original attempt's
/// duration (compute eliminated) and its output bytes; "staging_hit"
/// carries the stage-in bytes that never crossed the network.
struct CacheSavingsReport {
  int64_t result_hits = 0;
  double compute_saved_s = 0.0;     // original durations of all hits
  int64_t output_bytes_reused = 0;  // bytes produced without running
  int64_t staging_hits = 0;
  int64_t staging_bytes_served = 0; // stage-in bytes served locally
  int64_t verify_mismatches = 0;    // hits voided by --cache-verify
  std::string Summary() const;
};

class TraceAnalyzer {
 public:
  /// Consumes a drained trace (Tracer::Drain() order). Events of
  /// several apps may be mixed; `ForApp` filters, task ids are assumed
  /// unique within an app.
  explicit TraceAnalyzer(std::vector<TraceEvent> events);

  /// Timelines of every completed task attempt, keyed by task id.
  const std::map<int64_t, TaskTimeline>& tasks() const { return tasks_; }

  /// Longest chain through the recorded dependency graph by total
  /// segment weight (dynamic programming over the DAG; cycles — which
  /// a well-formed trace cannot contain — are broken defensively).
  CriticalPathReport CriticalPath() const;

  /// Per-(category, name) event counts and duration sums.
  std::map<std::string, SpanStat> SpanStats() const;

  /// Aggregates the kCache events into reuse savings: compute seconds
  /// the result cache skipped and transfer bytes the staging cache kept
  /// off the wire. The saved seconds explain a warm run's vanished
  /// execute/localize spans against a cold run's critical path.
  CacheSavingsReport CacheSavings() const;

  /// Analyzer restricted to one application's events.
  TraceAnalyzer ForApp(int64_t app) const;

  const std::vector<TraceEvent>& events() const { return events_; }
  double makespan() const { return makespan_; }

 private:
  void Build();

  std::vector<TraceEvent> events_;
  std::map<int64_t, TaskTimeline> tasks_;
  double makespan_ = 0.0;
};

}  // namespace hiway

#endif  // HIWAY_OBS_TRACE_ANALYZER_H_
