#include "src/obs/tracer.h"

#include <algorithm>

namespace hiway {

const char* ToString(SpanCategory category) {
  switch (category) {
    case SpanCategory::kWorkflow: return "workflow";
    case SpanCategory::kTask: return "task";
    case SpanCategory::kContainer: return "container";
    case SpanCategory::kScheduler: return "scheduler";
    case SpanCategory::kPreemption: return "preemption";
    case SpanCategory::kFailover: return "failover";
    case SpanCategory::kProvenance: return "provenance";
    case SpanCategory::kCache: return "cache";
    case SpanCategory::kMembership: return "membership";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity)
    : slots_(std::max<size_t>(capacity, 1)) {}

void TraceRing::Push(const TraceEvent& event) {
  uint64_t h = head_.load(std::memory_order_relaxed);
  slots_[static_cast<size_t>(h % slots_.size())] = event;
  // Publish: readers only trust slots strictly behind the head.
  head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  uint64_t h = head_.load(std::memory_order_acquire);
  size_t cap = slots_.size();
  uint64_t first = h > cap ? h - cap : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(h - first));
  for (uint64_t i = first; i < h; ++i) {
    out.push_back(slots_[static_cast<size_t>(i % cap)]);
  }
  return out;
}

namespace {
std::atomic<uint64_t> g_next_tracer_id{1};
}  // namespace

Tracer::Tracer(const SimEngine* clock, size_t ring_capacity)
    : clock_(clock),
      ring_capacity_(ring_capacity),
      tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

TraceRing* Tracer::RingForThisThread() {
  // Per-thread cache keyed by the tracer's unique id (never reused, so
  // a stale cache entry of a destroyed tracer can never be returned for
  // a new one that landed at the same address).
  struct CacheEntry {
    uint64_t tracer_id;
    TraceRing* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.tracer_id == tracer_id_) return e.ring;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<TraceRing>(ring_capacity_));
  TraceRing* ring = rings_.back().get();
  cache.push_back(CacheEntry{tracer_id_, ring});
  return ring;
}

void Tracer::Record(TraceEvent event) {
  if (!enabled()) return;
  if (event.timestamp == 0.0 && clock_ != nullptr) {
    event.timestamp = clock_->Now();
  }
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  RingForThisThread()->Push(event);
}

void Tracer::Instant(SpanCategory category, const char* name, int64_t app,
                     int64_t container, int64_t task, int64_t node,
                     double value, int64_t aux) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.category = category;
  ev.phase = SpanPhase::kInstant;
  ev.name = name;
  ev.app = app;
  ev.container = container;
  ev.task = task;
  ev.node = node;
  ev.value = value;
  ev.aux = aux;
  Record(ev);
}

void Tracer::Begin(SpanCategory category, const char* name, int64_t app,
                   int64_t container, int64_t task, int64_t node) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.category = category;
  ev.phase = SpanPhase::kBegin;
  ev.name = name;
  ev.app = app;
  ev.container = container;
  ev.task = task;
  ev.node = node;
  Record(ev);
}

void Tracer::End(SpanCategory category, const char* name, int64_t app,
                 int64_t container, int64_t task, int64_t node, double value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.category = category;
  ev.phase = SpanPhase::kEnd;
  ev.name = name;
  ev.app = app;
  ev.container = container;
  ev.task = task;
  ev.node = node;
  ev.value = value;
  Record(ev);
}

std::vector<TraceEvent> Tracer::Drain() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::vector<TraceEvent> part = ring->Snapshot();
      all.insert(all.end(), part.begin(), part.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              return a.seq < b.seq;
            });
  return all;
}

TracerStats Tracer::Stats() const {
  TracerStats stats;
  std::lock_guard<std::mutex> lock(mu_);
  stats.rings = static_cast<int>(rings_.size());
  for (const auto& ring : rings_) {
    stats.recorded += ring->pushed();
    stats.dropped += ring->dropped();
  }
  return stats;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Reset every ring in place: thread-local caches keep their ring
  // pointers, so the rings themselves must survive.
  for (auto& ring : rings_) {
    ring->Reset();
  }
  seq_.store(0, std::memory_order_relaxed);
}

}  // namespace hiway
