// Execution tracing (the observability layer the paper's evaluation
// implies: Figs. 4-9 reason about makespans through container timelines
// and per-task runtimes, but aggregate counters cannot explain *why* a
// number is what it is).
//
// A Tracer records typed span events — workflow → task attempt →
// container lifecycle (requested / allocated / localized / running /
// completed), plus RM scheduling passes, preemption kills, AM failover
// and provenance appends — timestamped with the simulated clock. The
// write path is designed to disappear: each thread appends to its own
// fixed-capacity ring buffer (single producer, no locks, no allocation;
// only a relaxed global sequence counter is shared), and a disabled
// tracer costs one relaxed atomic load per call site. Analysis is
// offline: Drain() merges the rings into global order for the
// TraceAnalyzer (src/obs/trace_analyzer.h) and the exporters
// (src/obs/exporters.h). See docs/observability.md.

#ifndef HIWAY_OBS_TRACER_H_
#define HIWAY_OBS_TRACER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/sim/engine.h"

namespace hiway {

/// What subsystem a span belongs to (the Chrome-trace "cat" field).
enum class SpanCategory : uint8_t {
  kWorkflow,    // one workflow run (AM attempt), submit -> terminal
  kTask,        // task-attempt lifecycle: ready/localize/execute/...
  kContainer,   // RM container lifecycle: requested/allocated/released
  kScheduler,   // RM allocation passes, AM scheduling decisions
  kPreemption,  // guarantee-restoring container kills
  kFailover,    // AM death, node loss, recovery attempts
  kProvenance,  // shard appends
  kCache,       // result-cache hits/seals, staging-cache hits/evictions
  kMembership,  // node join/drain/decommission, autoscaling, spot revokes
};

const char* ToString(SpanCategory category);

/// Span phase. Begin/End pairs (matched by category, name, and the
/// task/container id) form durations; kInstant marks a point in time.
enum class SpanPhase : uint8_t { kBegin, kEnd, kInstant };

/// One trace record. Plain data, fixed size, no heap: a producer writes
/// a slot with ordinary stores, so recording never allocates or locks.
/// `name` MUST point to a string with static storage duration (a
/// literal) — the ring stores the pointer, not the bytes.
struct TraceEvent {
  SpanCategory category = SpanCategory::kWorkflow;
  SpanPhase phase = SpanPhase::kInstant;
  const char* name = "";
  /// Simulated-clock timestamp, seconds.
  double timestamp = 0.0;
  /// Global record order (stamped by the tracer; ties in `timestamp`
  /// resolve by this, keeping drains deterministic).
  uint64_t seq = 0;
  // Identity of the thing the event is about; -1 = not applicable.
  int64_t app = -1;
  int64_t container = -1;
  int64_t task = -1;
  int64_t node = -1;
  /// Numeric payload: a duration in seconds, a count, a byte volume,
  /// or a peer task id — the event name says which.
  double value = 0.0;
  /// Secondary integer payload (bytes, dependency source, attempt no).
  int64_t aux = -1;
};

/// Fixed-capacity single-producer ring. The owning thread appends with
/// plain stores plus one release publish; once writers are quiescent
/// (or for slots safely behind the head) readers see whole events —
/// never torn ones. When more than `capacity` events are pushed the
/// oldest are overwritten and counted in dropped().
class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  /// Single-producer append (the owning thread only).
  void Push(const TraceEvent& event);

  /// Events still held (the most recent min(pushed, capacity)), oldest
  /// first. Safe concurrently with the producer: a slot being written
  /// while read is skipped via the published head, so no torn reads.
  std::vector<TraceEvent> Snapshot() const;

  /// Forgets all events (producer must be quiescent).
  void Reset() { head_.store(0, std::memory_order_release); }

  size_t capacity() const { return slots_.size(); }
  uint64_t pushed() const { return head_.load(std::memory_order_acquire); }
  /// Events lost to overwrite (pushed beyond capacity).
  uint64_t dropped() const {
    uint64_t p = pushed();
    return p > slots_.size() ? p - slots_.size() : 0;
  }

 private:
  std::vector<TraceEvent> slots_;
  /// Number of completed pushes; slot i of push n is n % capacity.
  std::atomic<uint64_t> head_{0};
};

struct TracerStats {
  uint64_t recorded = 0;  // events accepted across all rings
  uint64_t dropped = 0;   // events overwritten (ring capacity exceeded)
  int rings = 0;          // per-thread rings created
};

/// The recording front door. One Tracer per Deployment; disabled by
/// default (a disabled tracer's Record is one relaxed load and a
/// branch, so call sites need no guards). Thread-safe: every thread
/// writes to its own ring, created on first use.
class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 18;

  /// `clock` stamps events that carry no explicit timestamp; nullptr
  /// leaves them at 0 (callers then pass timestamps themselves).
  explicit Tracer(const SimEngine* clock = nullptr,
                  size_t ring_capacity = kDefaultRingCapacity);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one event (no-op while disabled). Stamps the sequence
  /// number, and the clock time when `event.timestamp` is unset (0) and
  /// a clock exists. `event.name` must be a static string.
  void Record(TraceEvent event);

  // Convenience builders for the common shapes.
  void Instant(SpanCategory category, const char* name, int64_t app = -1,
               int64_t container = -1, int64_t task = -1, int64_t node = -1,
               double value = 0.0, int64_t aux = -1);
  void Begin(SpanCategory category, const char* name, int64_t app = -1,
             int64_t container = -1, int64_t task = -1, int64_t node = -1);
  void End(SpanCategory category, const char* name, int64_t app = -1,
           int64_t container = -1, int64_t task = -1, int64_t node = -1,
           double value = 0.0);

  /// Merges every ring's surviving events into one list ordered by
  /// (timestamp, seq) — the global record order. Call when producers
  /// are quiescent (between runs); events stay in the rings, so
  /// repeated drains return the same (growing) history.
  std::vector<TraceEvent> Drain() const;

  TracerStats Stats() const;

  /// Forgets all recorded events (new rings start empty; existing
  /// per-thread rings are reset). Producers must be quiescent.
  void Clear();

 private:
  TraceRing* RingForThisThread();

  const SimEngine* clock_;
  const size_t ring_capacity_;
  const uint64_t tracer_id_;  // keys the thread-local ring cache
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> seq_{0};
  mutable std::mutex mu_;  // guards ring creation/list, never Push
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

}  // namespace hiway

#endif  // HIWAY_OBS_TRACER_H_
