#include "src/provdb/provdb.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace hiway {

namespace {

constexpr uint8_t kRecordPut = 0;
constexpr uint8_t kRecordDelete = 1;

/// Record layout: u32 payload_len | u32 crc | payload, where payload is
/// u8 type | u32 klen | key | u32 vlen | value. All integers little-endian.

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static uint32_t table[256];
  static bool initialized = false;
  if (!initialized) {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    initialized = true;
  }
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Result<std::unique_ptr<ProvDb>> ProvDb::Open(const std::string& path) {
  auto db = std::unique_ptr<ProvDb>(new ProvDb(path));
  HIWAY_RETURN_IF_ERROR(db->ReplayLog());
  db->log_ = std::fopen(path.c_str(), "ab");
  if (db->log_ == nullptr) {
    return Status::IoError("cannot open provdb log for append: " + path +
                           ": " + std::strerror(errno));
  }
  return db;
}

ProvDb::~ProvDb() {
  if (log_ != nullptr) std::fclose(log_);
}

Status ProvDb::ReplayLog() {
  FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    log_bytes_ = 0;
    return Status::OK();  // fresh database
  }
  std::string payload;
  int64_t valid_bytes = 0;
  while (true) {
    unsigned char header[8];
    size_t n = std::fread(header, 1, sizeof(header), f);
    if (n == 0) break;
    if (n < sizeof(header)) {
      ++corrupt_dropped_;
      break;
    }
    uint32_t payload_len = GetU32(header);
    uint32_t crc = GetU32(header + 4);
    if (payload_len > (64u << 20)) {  // sanity: no 64MB+ records
      ++corrupt_dropped_;
      break;
    }
    payload.resize(payload_len);
    if (std::fread(payload.data(), 1, payload_len, f) != payload_len) {
      ++corrupt_dropped_;
      break;
    }
    if (Crc32(payload.data(), payload.size()) != crc) {
      ++corrupt_dropped_;
      break;
    }
    // Decode payload.
    if (payload.size() < 5) {
      ++corrupt_dropped_;
      break;
    }
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(payload.data());
    uint8_t type = p[0];
    uint32_t klen = GetU32(p + 1);
    if (5 + klen + 4 > payload.size()) {
      ++corrupt_dropped_;
      break;
    }
    std::string key(payload.data() + 5, klen);
    uint32_t vlen = GetU32(p + 5 + klen);
    if (5 + klen + 4 + vlen != payload.size()) {
      ++corrupt_dropped_;
      break;
    }
    if (type == kRecordPut) {
      index_[key] = std::string(payload.data() + 5 + klen + 4, vlen);
    } else if (type == kRecordDelete) {
      index_.erase(key);
    } else {
      ++corrupt_dropped_;
      break;
    }
    valid_bytes += 8 + payload_len;
  }
  std::fclose(f);
  if (corrupt_dropped_ > 0) {
    HIWAY_LOG_WARN << "provdb " << path_ << ": dropped corrupt log tail ("
                   << corrupt_dropped_ << " record(s))";
    // Truncate to the last valid record (by rewriting, which is portable)
    // so that future appends produce a readable log.
    FILE* out = std::fopen((path_ + ".tmp").c_str(), "wb");
    FILE* in = std::fopen(path_.c_str(), "rb");
    if (out != nullptr && in != nullptr) {
      std::string buf(64 << 10, '\0');
      int64_t remaining = valid_bytes;
      while (remaining > 0) {
        size_t chunk = static_cast<size_t>(
            std::min<int64_t>(remaining, static_cast<int64_t>(buf.size())));
        if (std::fread(buf.data(), 1, chunk, in) != chunk) break;
        std::fwrite(buf.data(), 1, chunk, out);
        remaining -= static_cast<int64_t>(chunk);
      }
    }
    if (in != nullptr) std::fclose(in);
    if (out != nullptr) {
      std::fclose(out);
      std::rename((path_ + ".tmp").c_str(), path_.c_str());
    }
  }
  log_bytes_ = valid_bytes;
  return Status::OK();
}

Status ProvDb::AppendRecord(uint8_t type, const std::string& key,
                            const std::string& value) {
  if (log_ == nullptr) return Status::FailedPrecondition("provdb not open");
  std::string payload;
  payload.reserve(9 + key.size() + value.size());
  payload.push_back(static_cast<char>(type));
  PutU32(&payload, static_cast<uint32_t>(key.size()));
  payload += key;
  PutU32(&payload, static_cast<uint32_t>(value.size()));
  payload += value;
  std::string record;
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Crc32(payload.data(), payload.size()));
  record += payload;
  if (std::fwrite(record.data(), 1, record.size(), log_) != record.size()) {
    return Status::IoError("provdb append failed: " +
                           std::string(std::strerror(errno)));
  }
  std::fflush(log_);
  log_bytes_ += static_cast<int64_t>(record.size());
  return Status::OK();
}

Status ProvDb::Put(const std::string& key, const std::string& value) {
  HIWAY_RETURN_IF_ERROR(AppendRecord(kRecordPut, key, value));
  index_[key] = value;
  return Status::OK();
}

Status ProvDb::Delete(const std::string& key) {
  if (index_.find(key) == index_.end()) {
    return Status::NotFound("no such key: " + key);
  }
  HIWAY_RETURN_IF_ERROR(AppendRecord(kRecordDelete, key, ""));
  index_.erase(key);
  return Status::OK();
}

Result<std::string> ProvDb::Get(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return Status::NotFound("no such key: " + key);
  return it->second;
}

bool ProvDb::Contains(const std::string& key) const {
  return index_.find(key) != index_.end();
}

std::vector<std::pair<std::string, std::string>> ProvDb::Scan(
    const std::string& prefix) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = index_.lower_bound(prefix); it != index_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

Result<int64_t> ProvDb::Compact() {
  if (log_ == nullptr) return Status::FailedPrecondition("provdb not open");
  int64_t before = log_bytes_;
  std::string tmp_path = path_ + ".compact";
  FILE* old_log = log_;
  log_ = std::fopen(tmp_path.c_str(), "wb");
  if (log_ == nullptr) {
    log_ = old_log;
    return Status::IoError("cannot create compaction file: " + tmp_path);
  }
  log_bytes_ = 0;
  for (const auto& [key, value] : index_) {
    Status st = AppendRecord(kRecordPut, key, value);
    if (!st.ok()) {
      std::fclose(log_);
      std::remove(tmp_path.c_str());
      log_ = old_log;
      return st;
    }
  }
  std::fclose(old_log);
  std::fclose(log_);
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    return Status::IoError("compaction rename failed: " +
                           std::string(std::strerror(errno)));
  }
  log_ = std::fopen(path_.c_str(), "ab");
  if (log_ == nullptr) {
    return Status::IoError("cannot reopen compacted log");
  }
  return before - log_bytes_;
}

// ------------------------------------------------ ProvDbProvenanceStore --

ProvDbProvenanceStore::ProvDbProvenanceStore(ProvDb* db) : db_(db) {
  // Resume the sequence after the highest existing key.
  auto existing = db_->Scan("ev/");
  if (!existing.empty()) {
    auto parsed = ParseInt64(existing.back().first.substr(3));
    if (parsed.ok()) next_seq_ = *parsed + 1;
  }
}

void ProvDbProvenanceStore::Append(const ProvenanceEvent& event) {
  std::string key = StrFormat("ev/%016lld",
                              static_cast<long long>(next_seq_++));
  Status st = db_->Put(key, event.ToJson().Dump());
  if (!st.ok()) {
    HIWAY_LOG_ERROR << "provdb append failed: " << st;
  }
}

std::vector<ProvenanceEvent> ProvDbProvenanceStore::Events() const {
  std::vector<ProvenanceEvent> out;
  for (const auto& [key, value] : db_->Scan("ev/")) {
    auto json = Json::Parse(value);
    if (!json.ok()) continue;
    auto ev = ProvenanceEvent::FromJson(*json);
    if (ev.ok()) out.push_back(std::move(ev).value());
  }
  return out;
}

size_t ProvDbProvenanceStore::size() const { return db_->Scan("ev/").size(); }

void ProvDbProvenanceStore::Clear() {
  for (const auto& [key, value] : db_->Scan("ev/")) {
    (void)db_->Delete(key);
  }
  next_seq_ = 0;
}

// ------------------------------------------------------- ProvDbDirectory --

constexpr std::string_view kSegmentSuffix = ".provlog";

std::string ProvDbDirectory::SanitizeShardId(std::string_view shard_id) {
  std::string out(shard_id);
  for (char& c : out) {
    bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!safe) c = '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string ProvDbDirectory::SegmentPath(
    const std::string& sanitized_id) const {
  return dir_ + "/" + sanitized_id + std::string(kSegmentSuffix);
}

Result<std::shared_ptr<ProvDbDirectory>> ProvDbDirectory::Open(
    const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create provdb directory " + dir + ": " +
                           ec.message());
  }
  auto out = std::shared_ptr<ProvDbDirectory>(new ProvDbDirectory(dir));
  // Each segment replays (and crash-recovers) independently: a torn
  // tail in one shard's log never affects the others.
  std::vector<std::string> ids;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (name.size() <= kSegmentSuffix.size() ||
        name.compare(name.size() - kSegmentSuffix.size(),
                     kSegmentSuffix.size(), kSegmentSuffix) != 0) {
      continue;
    }
    ids.push_back(name.substr(0, name.size() - kSegmentSuffix.size()));
  }
  if (ec) {
    return Status::IoError("cannot list provdb directory " + dir + ": " +
                           ec.message());
  }
  std::sort(ids.begin(), ids.end());
  for (const std::string& id : ids) {
    HIWAY_ASSIGN_OR_RETURN(auto db, ProvDb::Open(out->SegmentPath(id)));
    out->segments_[id] = std::move(db);
  }
  return out;
}

Result<ProvDb*> ProvDbDirectory::OpenSegment(const std::string& shard_id) {
  std::string id = SanitizeShardId(shard_id);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(id);
  if (it != segments_.end()) return it->second.get();
  HIWAY_ASSIGN_OR_RETURN(auto db, ProvDb::Open(SegmentPath(id)));
  ProvDb* raw = db.get();
  segments_[id] = std::move(db);
  return raw;
}

ProvDb* ProvDbDirectory::segment(const std::string& shard_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = segments_.find(SanitizeShardId(shard_id));
  return it == segments_.end() ? nullptr : it->second.get();
}

std::vector<std::string> ProvDbDirectory::segment_ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(segments_.size());
  for (const auto& [id, db] : segments_) out.push_back(id);
  return out;
}

Result<int64_t> ProvDbDirectory::CompactSegment(const std::string& shard_id) {
  ProvDb* db = segment(shard_id);
  if (db == nullptr) {
    return Status::NotFound("no provdb segment for shard: " + shard_id);
  }
  // Compaction rewrites only this segment's file; other shards' logs
  // (and their appenders) are untouched.
  return db->Compact();
}

ShardStoreFactory ProvDbShardStoreFactory(
    std::shared_ptr<ProvDbDirectory> dir) {
  return [dir](const std::string& run_id)
             -> Result<std::unique_ptr<ProvenanceStore>> {
    HIWAY_ASSIGN_OR_RETURN(ProvDb * db, dir->OpenSegment(run_id));
    return std::unique_ptr<ProvenanceStore>(
        std::make_unique<ProvDbProvenanceStore>(db));
  };
}

Result<ShardedProvenance> OpenShardedProvenance(const std::string& dir) {
  ShardedProvenance out;
  HIWAY_ASSIGN_OR_RETURN(out.dir, ProvDbDirectory::Open(dir));
  out.manager =
      std::make_unique<ProvenanceManager>(ProvDbShardStoreFactory(out.dir));
  // Adopt surviving history as sealed shards: failover replay and the
  // runtime estimator see prior attempts across restarts, and new run
  // ids / sequence numbers advance past everything on disk.
  for (const std::string& id : out.dir->segment_ids()) {
    auto store =
        std::make_unique<ProvDbProvenanceStore>(out.dir->segment(id));
    if (store->size() == 0) continue;  // empty leftover segment
    Status st = out.manager->AdoptShard(id, std::move(store));
    if (!st.ok()) {
      return st.WithContext("adopting provenance segment " + id);
    }
  }
  return out;
}

}  // namespace hiway
