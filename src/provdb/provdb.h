// ProvDb: a small embedded log-structured key-value store used as the
// durable provenance backend (the paper offers MySQL or Couchbase for
// "heavily-used installations ... with thousands of trace files"; this is
// the same role without an external server).
//
// Design (RocksDB-inspired, radically simplified):
//   * one append-only log file; every Put/Delete is a checksummed record;
//   * a full in-memory index (key -> value) rebuilt on Open by replaying
//     the log — torn or corrupt tails are detected via CRC32 and dropped;
//   * Compact() rewrites only live records and atomically swaps the log.
//
// Keys are ordered (std::map), so prefix scans are cheap — the runtime
// estimator's "latest runtime of (signature, node)" query is a prefix scan
// over task-end records.

#ifndef HIWAY_PROVDB_PROVDB_H_
#define HIWAY_PROVDB_PROVDB_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/provenance.h"

namespace hiway {

/// CRC-32 (IEEE 802.3) over a byte buffer.
uint32_t Crc32(const void* data, size_t size);

class ProvDb {
 public:
  /// Opens (creating if necessary) the database at `path`, replaying the
  /// log into memory. A corrupt tail (e.g. from a crash mid-append) is
  /// truncated away with a warning rather than failing the open.
  static Result<std::unique_ptr<ProvDb>> Open(const std::string& path);

  ~ProvDb();
  ProvDb(const ProvDb&) = delete;
  ProvDb& operator=(const ProvDb&) = delete;

  Status Put(const std::string& key, const std::string& value);
  Status Delete(const std::string& key);
  Result<std::string> Get(const std::string& key) const;
  bool Contains(const std::string& key) const;

  /// All live (key, value) pairs whose key starts with `prefix`, in key
  /// order.
  std::vector<std::pair<std::string, std::string>> Scan(
      const std::string& prefix) const;

  size_t size() const { return index_.size(); }

  /// Rewrites the log with only live records; reclaims space left by
  /// overwrites and deletes. Returns bytes reclaimed.
  Result<int64_t> Compact();

  /// Bytes currently occupied by the log file.
  int64_t log_bytes() const { return log_bytes_; }

  /// Records dropped during Open because of checksum/format errors.
  int corrupt_records_dropped() const { return corrupt_dropped_; }

 private:
  explicit ProvDb(std::string path) : path_(std::move(path)) {}

  Status AppendRecord(uint8_t type, const std::string& key,
                      const std::string& value);
  Status ReplayLog();

  std::string path_;
  FILE* log_ = nullptr;
  int64_t log_bytes_ = 0;
  int corrupt_dropped_ = 0;
  std::map<std::string, std::string> index_;
};

/// ProvenanceStore backed by a ProvDb: events are stored under
/// zero-padded sequence keys so append order is key order.
class ProvDbProvenanceStore : public ProvenanceStore {
 public:
  explicit ProvDbProvenanceStore(ProvDb* db);
  void Append(const ProvenanceEvent& event) override;
  std::vector<ProvenanceEvent> Events() const override;
  size_t size() const override;
  void Clear() override;

 private:
  ProvDb* db_;
  int64_t next_seq_ = 0;
};

/// A directory of ProvDb segments, one per provenance shard: shard
/// `<id>` lives in `<dir>/<sanitized-id>.provlog`. Each segment is an
/// independent log — a torn tail in one shard's log truncates only that
/// shard on reopen, and compacting a sealed segment never touches the
/// segments other shards are appending to. Segment creation/lookup is
/// mutex-guarded so concurrent AMs can open their shards; the ProvDb
/// instances themselves are single-writer (each owned by one shard).
class ProvDbDirectory {
 public:
  /// Opens (creating if necessary) the directory and every existing
  /// `*.provlog` segment in it, each with its own crash recovery.
  static Result<std::shared_ptr<ProvDbDirectory>> Open(
      const std::string& dir);

  /// The segment for a shard, creating its log file on first use.
  /// Stable pointer for the directory's lifetime.
  Result<ProvDb*> OpenSegment(const std::string& shard_id);

  /// The already-open segment for a shard, or nullptr.
  ProvDb* segment(const std::string& shard_id) const;

  /// Sanitised ids of every open segment, sorted.
  std::vector<std::string> segment_ids() const;

  /// Compacts one shard's segment. Safe to call on a sealed shard's
  /// segment while other shards append to theirs — only `shard_id`'s
  /// log file is rewritten. Returns bytes reclaimed.
  Result<int64_t> CompactSegment(const std::string& shard_id);

  const std::string& dir() const { return dir_; }

  /// Maps a shard id onto a filesystem-safe file stem: characters
  /// outside [A-Za-z0-9._-] become '_'. Run ids produced by
  /// ProvenanceManager are already safe, so this is normally identity.
  static std::string SanitizeShardId(std::string_view shard_id);

 private:
  explicit ProvDbDirectory(std::string dir) : dir_(std::move(dir)) {}

  std::string SegmentPath(const std::string& sanitized_id) const;

  const std::string dir_;
  mutable std::mutex mu_;  // guards the segment registry
  std::map<std::string, std::unique_ptr<ProvDb>> segments_;  // by sanitised id
};

/// ShardStoreFactory giving every shard its own log segment under `dir`
/// (which must outlive the manager using the factory — keep the
/// shared_ptr alongside it, as OpenShardedProvenance does).
ShardStoreFactory ProvDbShardStoreFactory(
    std::shared_ptr<ProvDbDirectory> dir);

/// A durable sharded provenance setup: the segment directory plus a
/// manager whose new shards each get their own segment. Existing
/// segments found on open are adopted as sealed shards, so history
/// survives restarts and failover replay sees prior attempts.
struct ShardedProvenance {
  std::shared_ptr<ProvDbDirectory> dir;
  std::unique_ptr<ProvenanceManager> manager;
};

Result<ShardedProvenance> OpenShardedProvenance(const std::string& dir);

}  // namespace hiway

#endif  // HIWAY_PROVDB_PROVDB_H_
