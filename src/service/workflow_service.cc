#include "src/service/workflow_service.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/yarn/rm_scheduler.h"

namespace hiway {

const char* ToString(SubmissionState state) {
  switch (state) {
    case SubmissionState::kQueued: return "queued";
    case SubmissionState::kRunning: return "running";
    case SubmissionState::kSucceeded: return "succeeded";
    case SubmissionState::kFailed: return "failed";
    case SubmissionState::kExpired: return "expired";
  }
  return "unknown";
}

Result<std::unique_ptr<WorkflowService>> WorkflowService::Create(
    Deployment* deployment, WorkflowServiceOptions options) {
  if (deployment == nullptr || deployment->rm == nullptr) {
    return Status::InvalidArgument("service needs a converged deployment");
  }
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<RmScheduler> rm_scheduler,
                         MakeRmScheduler(options.rm_scheduler));
  if (options.queues.empty()) {
    options.queues.push_back(ServiceQueueOptions{});
  }
  std::unique_ptr<WorkflowService> service(
      new WorkflowService(deployment, std::move(options)));
  for (const ServiceQueueOptions& q : service->options_.queues) {
    if (q.rm.name.empty()) {
      return Status::InvalidArgument("service queue without a name");
    }
    if (!service->queues_.emplace(q.rm.name, q).second) {
      return Status::InvalidArgument("duplicate service queue '" +
                                     q.rm.name + "'");
    }
    if (q.max_concurrent_ams < 1) {
      return Status::InvalidArgument(
          "queue '" + q.rm.name + "': max_concurrent_ams must be >= 1");
    }
    deployment->rm->ConfigureQueue(q.rm);
    service->backlog_[q.rm.name];
    service->running_[q.rm.name] = 0;
    service->counters_[q.rm.name];
  }
  deployment->rm->SetRmScheduler(std::move(rm_scheduler));
  return service;
}

WorkflowService::WorkflowService(Deployment* deployment,
                                 WorkflowServiceOptions options)
    : deployment_(deployment), options_(std::move(options)) {}

uint64_t WorkflowService::SeedFor(SubmissionId id) const {
  // SplitMix64 step over (base_seed, id): deterministic replay without
  // correlated task-runtime noise between submissions.
  uint64_t z = options_.base_seed +
               0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Result<SubmissionId> WorkflowService::Submit(
    std::string name, std::unique_ptr<WorkflowSource> source,
    SubmissionOptions options) {
  if (source == nullptr) {
    return Status::InvalidArgument("null workflow source");
  }
  auto queue_it = queues_.find(options.queue);
  if (queue_it == queues_.end()) {
    return Status::InvalidArgument("unknown service queue '" +
                                   options.queue + "'");
  }
  ServiceQueueCounters& counters = counters_[options.queue];
  std::deque<SubmissionId>& backlog = backlog_[options.queue];
  // The backlog bound applies to submissions that would wait; one that a
  // free concurrency slot starts immediately never enters the backlog.
  bool would_wait = !backlog.empty() ||
                    running_[options.queue] >=
                        queue_it->second.max_concurrent_ams;
  if (would_wait &&
      static_cast<int>(backlog.size()) >= queue_it->second.max_backlog) {
    ++counters.rejected;
    return Status::ResourceExhausted(
        "queue '" + options.queue + "' backlog is full (" +
        std::to_string(queue_it->second.max_backlog) +
        " submissions); retry later");
  }
  ++counters.submitted;
  SubmissionId id = next_id_++;
  if (options.policy.empty()) options.policy = options_.default_policy;

  SubmissionRecord record;
  record.id = id;
  record.name = std::move(name);
  record.queue = options.queue;
  record.policy = options.policy;
  record.submitted_at = deployment_->engine.Now();
  record.deadline_s = options.deadline_s;
  records_[id] = std::move(record);

  Submission sub;
  sub.source = std::move(source);
  sub.options = std::move(options);
  subs_[id] = std::move(sub);
  backlog.push_back(id);

  if (records_[id].deadline_s > 0.0) {
    deployment_->engine.ScheduleAfter(records_[id].deadline_s,
                                      [this, id] { OnDeadline(id); });
  }
  Pump();
  return id;
}

Result<SubmissionId> WorkflowService::SubmitStaged(
    const std::string& staged_name, SubmissionOptions options) {
  auto it = deployment_->workflows.find(staged_name);
  if (it == deployment_->workflows.end()) {
    return Status::NotFound("no staged workflow named '" + staged_name +
                            "'; converge its recipe first");
  }
  HiWayClient client(deployment_);
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                         client.MakeSource(it->second));
  return Submit(staged_name, std::move(source), std::move(options));
}

void WorkflowService::Pump() {
  for (auto& [queue, backlog] : backlog_) {
    const ServiceQueueOptions& limits = queues_.at(queue);
    while (running_[queue] < limits.max_concurrent_ams && !backlog.empty()) {
      SubmissionId id = backlog.front();
      backlog.pop_front();
      if (TryStart(id)) continue;
      // The cluster cannot host this AM container right now.
      if (running_ams() == 0) {
        // No service-run AM will ever release capacity: the cluster is
        // statically too full. Fail instead of spinning forever.
        SubmissionRecord& rec = records_[id];
        rec.state = SubmissionState::kFailed;
        rec.finished_at = deployment_->engine.Now();
        rec.report.status = Status::ResourceExhausted(
            "no node can host the AM container of '" + rec.name + "'");
        ++counters_[queue].failed;
        continue;
      }
      backlog.push_front(id);
      if (!retry_scheduled_) {
        retry_scheduled_ = true;
        deployment_->engine.ScheduleAfter(options_.start_retry_s, [this] {
          retry_scheduled_ = false;
          Pump();
        });
      }
      break;
    }
  }
}

bool WorkflowService::TryStart(SubmissionId id) {
  SubmissionRecord& rec = records_[id];
  Submission& sub = subs_[id];
  auto scheduler = MakeScheduler(rec.policy, deployment_->dfs.get(),
                                 &deployment_->estimator);
  if (!scheduler.ok()) {
    rec.state = SubmissionState::kFailed;
    rec.finished_at = deployment_->engine.Now();
    rec.report.status = scheduler.status();
    ++counters_[rec.queue].failed;
    return true;  // consumed: a bad policy never becomes startable
  }
  sub.scheduler = std::move(*scheduler);
  HiWayOptions hiway = sub.options.hiway;
  hiway.seed = SeedFor(id);
  hiway.rm_queue = rec.queue;
  sub.am = std::make_unique<HiWayAm>(
      deployment_->cluster.get(), deployment_->rm.get(),
      deployment_->dfs.get(), &deployment_->tools,
      deployment_->provenance.get(), &deployment_->estimator, hiway);
  sub.am->set_finish_listener(
      [this, id](const WorkflowReport& report) { OnFinished(id, report); });
  rec.state = SubmissionState::kRunning;
  rec.started_at = deployment_->engine.Now();
  ++running_[rec.queue];
  Status st = sub.am->Submit(sub.source.get(), sub.scheduler.get());
  if (st.ok()) return true;
  if (records_[id].Terminal()) {
    // The AM registered, then failed (e.g. the workflow does not parse);
    // the finish listener already recorded the outcome.
    return true;
  }
  --running_[rec.queue];
  if (st.IsResourceExhausted()) {
    // AM container placement failed; the AM never registered and owns no
    // engine events, so it is safe to discard synchronously. Re-queue.
    rec.state = SubmissionState::kQueued;
    rec.started_at = -1.0;
    sub.am.reset();
    sub.scheduler.reset();
    return false;
  }
  // Pre-registration validation failure (e.g. a static policy on an
  // iterative language): terminal.
  rec.state = SubmissionState::kFailed;
  rec.finished_at = deployment_->engine.Now();
  rec.report.status = st;
  rec.report.workflow_name = rec.name;
  ++counters_[rec.queue].failed;
  sub.am.reset();
  sub.scheduler.reset();
  return true;
}

void WorkflowService::OnFinished(SubmissionId id,
                                 const WorkflowReport& report) {
  SubmissionRecord& rec = records_[id];
  rec.state = report.status.ok() ? SubmissionState::kSucceeded
                                 : SubmissionState::kFailed;
  rec.report = report;
  rec.finished_at = deployment_->engine.Now();
  if (rec.deadline_s > 0.0 &&
      rec.finished_at > rec.submitted_at + rec.deadline_s) {
    rec.deadline_missed = true;
  }
  --running_[rec.queue];
  ServiceQueueCounters& counters = counters_[rec.queue];
  if (report.status.ok()) {
    ++counters.succeeded;
  } else {
    ++counters.failed;
  }
  // The listener runs inside AM code: defer teardown and the next launch.
  if (!reap_scheduled_) {
    reap_scheduled_ = true;
    deployment_->engine.ScheduleAfter(0.0, [this] {
      reap_scheduled_ = false;
      Reap();
      Pump();
    });
  }
}

void WorkflowService::OnDeadline(SubmissionId id) {
  SubmissionRecord& rec = records_[id];
  if (rec.state != SubmissionState::kQueued) return;
  std::deque<SubmissionId>& backlog = backlog_[rec.queue];
  auto it = std::find(backlog.begin(), backlog.end(), id);
  if (it != backlog.end()) backlog.erase(it);
  rec.state = SubmissionState::kExpired;
  rec.finished_at = deployment_->engine.Now();
  rec.report.status = Status::FailedPrecondition(
      "submission expired after " + std::to_string(rec.deadline_s) +
      "s in the admission queue");
  rec.report.workflow_name = rec.name;
  ++counters_[rec.queue].expired;
}

void WorkflowService::Reap() {
  for (auto it = subs_.begin(); it != subs_.end();) {
    if (records_[it->first].Terminal()) {
      it = subs_.erase(it);
    } else {
      ++it;
    }
  }
}

Status WorkflowService::RunToCompletion() {
  auto all_terminal = [this] {
    for (const auto& [id, rec] : records_) {
      if (!rec.Terminal()) return false;
    }
    return true;
  };
  deployment_->engine.RunUntilPredicate(all_terminal);
  if (!all_terminal()) {
    return Status::RuntimeError(
        "engine ran out of events before all submissions finished");
  }
  return Status::OK();
}

bool WorkflowService::Idle() const {
  for (const auto& [id, rec] : records_) {
    if (!rec.Terminal()) return false;
  }
  return true;
}

int WorkflowService::running_ams() const {
  int total = 0;
  for (const auto& [queue, count] : running_) total += count;
  return total;
}

int WorkflowService::running_ams(const std::string& queue) const {
  auto it = running_.find(queue);
  return it == running_.end() ? 0 : it->second;
}

int WorkflowService::backlog(const std::string& queue) const {
  auto it = backlog_.find(queue);
  return it == backlog_.end() ? 0 : static_cast<int>(it->second.size());
}

const SubmissionRecord* WorkflowService::record(SubmissionId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<SubmissionRecord> WorkflowService::Records() const {
  std::vector<SubmissionRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec);
  return out;
}

const ServiceQueueCounters* WorkflowService::queue_counters(
    const std::string& queue) const {
  auto it = counters_.find(queue);
  return it == counters_.end() ? nullptr : &it->second;
}

std::vector<std::string> WorkflowService::QueueNames() const {
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, q] : queues_) names.push_back(name);
  return names;
}

}  // namespace hiway
