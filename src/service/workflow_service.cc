#include "src/service/workflow_service.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/gc/footprint.h"
#include "src/sim/fault_injector.h"
#include "src/yarn/rm_scheduler.h"

namespace hiway {

const char* ToString(SubmissionState state) {
  switch (state) {
    case SubmissionState::kQueued: return "queued";
    case SubmissionState::kRunning: return "running";
    case SubmissionState::kRecovering: return "recovering";
    case SubmissionState::kSucceeded: return "succeeded";
    case SubmissionState::kFailed: return "failed";
    case SubmissionState::kExpired: return "expired";
  }
  return "unknown";
}

Result<std::unique_ptr<WorkflowService>> WorkflowService::Create(
    Deployment* deployment, WorkflowServiceOptions options) {
  if (deployment == nullptr || deployment->rm == nullptr) {
    return Status::InvalidArgument("service needs a converged deployment");
  }
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<RmScheduler> rm_scheduler,
                         MakeRmScheduler(options.rm_scheduler));
  if (options.queues.empty()) {
    options.queues.push_back(ServiceQueueOptions{});
  }
  std::unique_ptr<WorkflowService> service(
      new WorkflowService(deployment, std::move(options)));
  for (const ServiceQueueOptions& q : service->options_.queues) {
    if (q.rm.name.empty()) {
      return Status::InvalidArgument("service queue without a name");
    }
    if (!service->queues_.emplace(q.rm.name, q).second) {
      return Status::InvalidArgument("duplicate service queue '" +
                                     q.rm.name + "'");
    }
    if (q.max_concurrent_ams < 1) {
      return Status::InvalidArgument(
          "queue '" + q.rm.name + "': max_concurrent_ams must be >= 1");
    }
    deployment->rm->ConfigureQueue(q.rm);
    service->backlog_[q.rm.name];
    service->running_[q.rm.name] = 0;
    service->counters_[q.rm.name];
  }
  deployment->rm->SetRmScheduler(std::move(rm_scheduler));
  // AM failover: the RM tells the service whenever it declares an
  // application failed (node loss under the AM, heartbeat timeout,
  // injected kill) so a replacement attempt can be launched.
  WorkflowService* svc = service.get();
  deployment->rm->SetAppFailureListener(
      [svc](ApplicationId app, const std::string& /*name*/,
            const std::string& reason) { svc->OnAppFailure(app, reason); });
  // Elastic membership: the autoscaler's poll loop quiesces alongside
  // the workload (same contract as FaultInjector::Recur). Start() is a
  // no-op for disabled policies.
  if (deployment->elastic != nullptr) {
    deployment->elastic->SetActiveCheck([svc] { return !svc->Idle(); });
    deployment->elastic->Start();
  }
  // Footprint admission budgets against the capacity left after whatever
  // is already stored (staged inputs, prior runs' outputs) — stage inputs
  // before creating the service so the baseline includes them.
  if (service->options_.footprint_admission && deployment->dfs != nullptr &&
      deployment->dfs->options().capacity_bytes > 0) {
    service->footprint_budget_bytes_ =
        deployment->dfs->options().capacity_bytes -
        deployment->dfs->TotalStoredBytes();
  }
  return service;
}

WorkflowService::WorkflowService(Deployment* deployment,
                                 WorkflowServiceOptions options)
    : deployment_(deployment), options_(std::move(options)) {}

WorkflowService::~WorkflowService() {
  // The RM's failure listener captures `this`.
  deployment_->rm->SetAppFailureListener(nullptr);
}

uint64_t WorkflowService::SeedFor(SubmissionId id) const {
  // SplitMix64 step over (base_seed, id): deterministic replay without
  // correlated task-runtime noise between submissions.
  uint64_t z = options_.base_seed +
               0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(id + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Result<SubmissionId> WorkflowService::Submit(
    std::string name, std::unique_ptr<WorkflowSource> source,
    SubmissionOptions options) {
  if (source == nullptr) {
    return Status::InvalidArgument("null workflow source");
  }
  auto queue_it = queues_.find(options.queue);
  if (queue_it == queues_.end()) {
    return Status::InvalidArgument("unknown service queue '" +
                                   options.queue + "'");
  }
  ServiceQueueCounters& counters = counters_[options.queue];
  std::deque<SubmissionId>& backlog = backlog_[options.queue];
  // The backlog bound applies to submissions that would wait; one that a
  // free concurrency slot starts immediately never enters the backlog.
  bool would_wait = !backlog.empty() ||
                    running_[options.queue] >=
                        queue_it->second.max_concurrent_ams;
  if (would_wait &&
      static_cast<int>(backlog.size()) >= queue_it->second.max_backlog) {
    ++counters.rejected;
    return Status::ResourceExhausted(
        "queue '" + options.queue + "' backlog is full (" +
        std::to_string(queue_it->second.max_backlog) +
        " submissions); retry later");
  }
  ++counters.submitted;
  SubmissionId id = next_id_++;
  if (options.policy.empty()) options.policy = options_.default_policy;

  SubmissionRecord record;
  record.id = id;
  record.name = std::move(name);
  record.queue = options.queue;
  record.policy = options.policy;
  record.submitted_at = deployment_->engine.Now();
  record.deadline_s = options.deadline_s;
  records_[id] = std::move(record);

  Submission sub;
  sub.source = std::move(source);
  sub.options = std::move(options);
  subs_[id] = std::move(sub);
  if (options_.footprint_admission && footprint_budget_bytes_ > 0) {
    EstimateSubmissionFootprint(id);
  }
  backlog.push_back(id);
  ++live_submissions_;
  MarkPumpable(records_[id].queue);

  if (records_[id].deadline_s > 0.0) {
    deployment_->engine.ScheduleAfter(records_[id].deadline_s,
                                      [this, id] { OnDeadline(id); });
  }
  Pump();
  return id;
}

Result<SubmissionId> WorkflowService::SubmitStaged(
    const std::string& staged_name, SubmissionOptions options) {
  auto it = deployment_->workflows.find(staged_name);
  if (it == deployment_->workflows.end()) {
    return Status::NotFound("no staged workflow named '" + staged_name +
                            "'; converge its recipe first");
  }
  HiWayClient client(deployment_);
  HIWAY_ASSIGN_OR_RETURN(std::unique_ptr<WorkflowSource> source,
                         client.MakeSource(it->second));
  if (!options.source_factory) {
    // Staged workflows are rebuildable from their recipe, which makes
    // them recoverable after an AM failure.
    options.source_factory = [dep = deployment_, staged = it->second] {
      return HiWayClient(dep).MakeSource(staged);
    };
  }
  return Submit(staged_name, std::move(source), std::move(options));
}

void WorkflowService::EstimateSubmissionFootprint(SubmissionId id) {
  Submission& sub = subs_[id];
  SubmissionRecord& rec = records_[id];
  if (sub.options.footprint_bytes == 0) return;  // explicit bypass
  int64_t logical = 0;  // additional logical bytes beyond staged inputs
  if (sub.options.footprint_bytes > 0) {
    logical = sub.options.footprint_bytes;
  } else {
    // Auto-estimate: build a throwaway source (the submission's own must
    // reach its AM unconsumed) and walk its static task graph. Iterative
    // sources and factory failures leave the gate bypassed — their peak
    // is unknowable up front.
    if (!sub.options.source_factory) return;
    auto probe = sub.options.source_factory();
    if (!probe.ok() || !(*probe)->IsStatic()) return;
    auto tasks = (*probe)->Init();
    if (!tasks.ok()) return;
    FootprintEstimate est = EstimateFootprint(*tasks, (*probe)->Targets(),
                                              deployment_->dfs.get());
    rec.footprint_estimate_bytes = est.peak_bytes;
    // Staged inputs already sit inside the baseline the budget was carved
    // from at Create(); only bytes beyond them are a new demand.
    logical = std::max<int64_t>(0, est.peak_bytes - est.input_bytes);
  }
  sub.admission_bytes =
      logical * static_cast<int64_t>(deployment_->dfs->options().replication);
}

void WorkflowService::CommitFootprint(SubmissionId id, int sign) {
  auto it = subs_.find(id);
  if (it == subs_.end() || it->second.admission_bytes <= 0) return;
  committed_footprint_bytes_ += sign * it->second.admission_bytes;
}

void WorkflowService::AttachCaches(Submission* sub) {
  if (deployment_->result_cache != nullptr) {
    // Tenant defaults to the RM queue so queue isolation extends to
    // cached results unless the submitter chose a namespace explicitly.
    std::string tenant = sub->options.tenant.empty() ? sub->options.queue
                                                     : sub->options.tenant;
    sub->am->SetResultCache(deployment_->result_cache.get(),
                            std::move(tenant));
  }
  if (deployment_->staging_cache != nullptr) {
    sub->am->SetStagingCache(deployment_->staging_cache.get());
  }
  if (deployment_->gc != nullptr) {
    sub->am->SetGc(deployment_->gc.get());
  }
}

void WorkflowService::Pump() {
  // Snapshot-and-clear: PumpQueue may re-mark its queue (placement
  // retry), which must wait for the retry timer, not loop here. The
  // snapshot is sorted (std::set), matching the former full iteration
  // over backlog_ restricted to queues where anything changed.
  std::vector<std::string> dirty(pumpable_.begin(), pumpable_.end());
  pumpable_.clear();
  for (const std::string& queue : dirty) PumpQueue(queue);
}

void WorkflowService::PumpQueue(const std::string& queue) {
  std::deque<SubmissionId>& backlog = backlog_[queue];
  const ServiceQueueOptions& limits = queues_.at(queue);
  while (running_[queue] < limits.max_concurrent_ams && !backlog.empty()) {
    SubmissionId id = backlog.front();
    backlog.pop_front();
    if (TryStart(id)) continue;
    // The cluster cannot host this AM container right now.
    if (running_ams() == 0) {
      // No service-run AM will ever release capacity: the cluster is
      // statically too full. Fail instead of spinning forever.
      SubmissionRecord& rec = records_[id];
      rec.state = SubmissionState::kFailed;
      rec.finished_at = deployment_->engine.Now();
      rec.report.status = Status::ResourceExhausted(
          "no node can host the AM container of '" + rec.name + "'");
      ++counters_[queue].failed;
      --live_submissions_;
      continue;
    }
    backlog.push_front(id);
    MarkPumpable(queue);
    if (!retry_scheduled_) {
      retry_scheduled_ = true;
      deployment_->engine.ScheduleAfter(options_.start_retry_s, [this] {
        retry_scheduled_ = false;
        Pump();
      });
    }
    break;
  }
}

bool WorkflowService::TryStart(SubmissionId id) {
  SubmissionRecord& rec = records_[id];
  Submission& sub = subs_[id];
  if (options_.footprint_admission && footprint_budget_bytes_ > 0 &&
      sub.admission_bytes > 0) {
    if (sub.admission_bytes > footprint_budget_bytes_) {
      // Can never fit, even alone on an empty cluster: terminal.
      rec.state = SubmissionState::kFailed;
      rec.finished_at = deployment_->engine.Now();
      rec.report.status = Status::ResourceExhausted(StrFormat(
          "'%s' needs %lld footprint bytes but the DFS budget is %lld",
          rec.name.c_str(), static_cast<long long>(sub.admission_bytes),
          static_cast<long long>(footprint_budget_bytes_)));
      rec.report.workflow_name = rec.name;
      ++counters_[rec.queue].failed;
      --live_submissions_;
      return true;
    }
    if (committed_footprint_bytes_ + sub.admission_bytes >
        footprint_budget_bytes_) {
      // Will fit once a running workflow releases its share: wait. A
      // positive committed ledger implies at least one running AM, so the
      // caller's no-AM terminal check cannot misfire on this path.
      return false;
    }
  }
  auto scheduler = MakeScheduler(rec.policy, deployment_->dfs.get(),
                                 &deployment_->estimator,
                                 deployment_->staging_cache.get());
  if (!scheduler.ok()) {
    rec.state = SubmissionState::kFailed;
    rec.finished_at = deployment_->engine.Now();
    rec.report.status = scheduler.status();
    ++counters_[rec.queue].failed;
    --live_submissions_;
    return true;  // consumed: a bad policy never becomes startable
  }
  sub.scheduler = std::move(*scheduler);
  HiWayOptions hiway = sub.options.hiway;
  hiway.seed = SeedFor(id);
  hiway.rm_queue = rec.queue;
  if (options_.heartbeat_batch > 0.0) hiway.am_heartbeat_s = 0.0;
  sub.am = std::make_unique<HiWayAm>(
      deployment_->cluster.get(), deployment_->rm.get(),
      deployment_->dfs.get(), &deployment_->tools,
      deployment_->provenance.get(), &deployment_->estimator, hiway);
  sub.am->SetTracer(&deployment_->tracer);
  AttachCaches(&sub);
  sub.am->set_finish_listener(
      [this, id](const WorkflowReport& report) { OnFinished(id, report); });
  rec.state = SubmissionState::kRunning;
  rec.started_at = deployment_->engine.Now();
  ++running_[rec.queue];
  CommitFootprint(id, +1);
  Status st = sub.am->Submit(sub.source.get(), sub.scheduler.get());
  if (st.ok()) {
    rec.am_attempts = 1;
    if (!rec.Terminal()) {
      app_of_[sub.am->app()] = id;
      if (sub.admission_bytes > 0) {
        deployment_->rm->RegisterAppFootprint(sub.am->app(),
                                              sub.admission_bytes);
      }
      ScheduleHeartbeatBatch();
    }
    return true;
  }
  if (records_[id].Terminal()) {
    // The AM registered, then failed (e.g. the workflow does not parse);
    // the finish listener already recorded the outcome.
    return true;
  }
  --running_[rec.queue];
  CommitFootprint(id, -1);
  if (st.IsResourceExhausted()) {
    // AM container placement failed; the AM never registered and owns no
    // engine events, so it is safe to discard synchronously. Re-queue.
    rec.state = SubmissionState::kQueued;
    rec.started_at = -1.0;
    sub.am.reset();
    sub.scheduler.reset();
    return false;
  }
  // Pre-registration validation failure (e.g. a static policy on an
  // iterative language): terminal.
  rec.state = SubmissionState::kFailed;
  rec.finished_at = deployment_->engine.Now();
  rec.report.status = st;
  rec.report.workflow_name = rec.name;
  ++counters_[rec.queue].failed;
  --live_submissions_;
  sub.am.reset();
  sub.scheduler.reset();
  return true;
}

void WorkflowService::OnFinished(SubmissionId id,
                                 const WorkflowReport& report) {
  SubmissionRecord& rec = records_[id];
  if (auto it = subs_.find(id); it != subs_.end() && it->second.am) {
    app_of_.erase(it->second.am->app());
  }
  rec.state = report.status.ok() ? SubmissionState::kSucceeded
                                 : SubmissionState::kFailed;
  rec.report = report;
  rec.finished_at = deployment_->engine.Now();
  if (rec.deadline_s > 0.0 &&
      rec.finished_at > rec.submitted_at + rec.deadline_s) {
    rec.deadline_missed = true;
  }
  --running_[rec.queue];
  CommitFootprint(id, -1);
  --live_submissions_;
  MarkPumpable(rec.queue);
  reap_list_.push_back(id);
  ServiceQueueCounters& counters = counters_[rec.queue];
  if (report.status.ok()) {
    ++counters.succeeded;
  } else {
    ++counters.failed;
  }
  // The listener runs inside AM code: defer teardown and the next launch.
  if (!reap_scheduled_) {
    reap_scheduled_ = true;
    deployment_->engine.ScheduleAfter(0.0, [this] {
      reap_scheduled_ = false;
      Reap();
      Pump();
    });
  }
}

void WorkflowService::OnDeadline(SubmissionId id) {
  SubmissionRecord& rec = records_[id];
  if (rec.state != SubmissionState::kQueued) return;
  std::deque<SubmissionId>& backlog = backlog_[rec.queue];
  auto it = std::find(backlog.begin(), backlog.end(), id);
  if (it != backlog.end()) backlog.erase(it);
  rec.state = SubmissionState::kExpired;
  rec.finished_at = deployment_->engine.Now();
  --live_submissions_;
  rec.report.status = Status::FailedPrecondition(
      "submission expired after " + std::to_string(rec.deadline_s) +
      "s in the admission queue");
  rec.report.workflow_name = rec.name;
  ++counters_[rec.queue].expired;
}

void WorkflowService::OnAppFailure(ApplicationId app,
                                   const std::string& reason) {
  auto map_it = app_of_.find(app);
  if (map_it == app_of_.end()) return;  // not a service-run AM
  SubmissionId id = map_it->second;
  app_of_.erase(map_it);
  SubmissionRecord& rec = records_[id];
  Submission& sub = subs_[id];
  if (rec.Terminal() || sub.am == nullptr) return;

  // The master process is dead: silence the object (its pending engine
  // events and executor completions become no-ops) and remember what the
  // attempt accomplished before retiring it.
  sub.am->Crash();
  deployment_->tracer.Instant(SpanCategory::kFailover, "am_failure", app,
                              /*container=*/-1, /*task=*/-1, /*node=*/-1,
                              /*value=*/static_cast<double>(rec.am_attempts),
                              /*aux=*/id);
  const WorkflowReport& partial = sub.am->report();
  if (!partial.run_id.empty()) sub.run_ids.push_back(partial.run_id);
  rec.completed_at_last_failure = partial.tasks_completed;
  ++rec.am_failures;
  sub.failed_at = deployment_->engine.Now();
  retired_.push_back(RetiredAttempt{std::move(sub.source),
                                    std::move(sub.scheduler),
                                    std::move(sub.am)});

  if (!sub.options.source_factory) {
    FailRecovering(id, Status::RuntimeError(StrFormat(
                           "AM attempt %d failed (%s); submission has no "
                           "source factory and is not recoverable",
                           rec.am_attempts, reason.c_str())));
    return;
  }
  if (options_.am_retry.Exhausted(rec.am_attempts)) {
    FailRecovering(id, Status::RuntimeError(StrFormat(
                           "AM attempt %d failed (%s); attempts exhausted",
                           rec.am_attempts, reason.c_str())));
    return;
  }
  rec.state = SubmissionState::kRecovering;
  double delay = options_.am_retry.BackoffBefore(rec.am_attempts + 1);
  deployment_->engine.ScheduleAfter(delay, [this, id] { TryRecover(id); });
}

void WorkflowService::TryRecover(SubmissionId id) {
  auto rec_it = records_.find(id);
  if (rec_it == records_.end()) return;
  SubmissionRecord& rec = rec_it->second;
  if (rec.state != SubmissionState::kRecovering) return;
  Submission& sub = subs_[id];

  auto source = sub.options.source_factory();
  if (!source.ok()) {
    FailRecovering(id, source.status().WithContext(
                           "rebuilding the source for AM failover"));
    return;
  }
  auto scheduler = MakeScheduler(rec.policy, deployment_->dfs.get(),
                                 &deployment_->estimator,
                                 deployment_->staging_cache.get());
  if (!scheduler.ok()) {
    FailRecovering(id, scheduler.status());
    return;
  }
  sub.source = std::move(*source);
  sub.scheduler = std::move(*scheduler);

  HiWayOptions hiway = sub.options.hiway;
  hiway.seed = SeedFor(id);
  hiway.rm_queue = rec.queue;
  hiway.am_attempt = rec.am_attempts + 1;
  if (options_.heartbeat_batch > 0.0) hiway.am_heartbeat_s = 0.0;
  sub.am = std::make_unique<HiWayAm>(
      deployment_->cluster.get(), deployment_->rm.get(),
      deployment_->dfs.get(), &deployment_->tools,
      deployment_->provenance.get(), &deployment_->estimator, hiway);
  sub.am->SetTracer(&deployment_->tracer);
  AttachCaches(&sub);
  sub.am->set_finish_listener(
      [this, id](const WorkflowReport& report) { OnFinished(id, report); });
  deployment_->tracer.Instant(SpanCategory::kFailover, "am_recovery",
                              /*app=*/-1, /*container=*/-1,
                              /*task=*/-1, /*node=*/-1,
                              /*value=*/static_cast<double>(hiway.am_attempt),
                              /*aux=*/id);

  // Provenance replay: the new attempt memoises every task the prior
  // attempts completed (when its recorded outputs survive in DFS). The
  // merged view covers exactly this submission's prior-attempt shards —
  // other tenants' runs are invisible by construction.
  sub.am->SetRecoveryTrace(
      deployment_->provenance->ViewOf(sub.run_ids).Events());

  double failed_at = sub.failed_at;
  Status st = sub.am->Submit(sub.source.get(), sub.scheduler.get());
  if (st.ok()) {
    if (deployment_->gc != nullptr) {
      // The replacement attempt's scope has re-registered pins on every
      // file it still needs (consumer registration precedes memoisation),
      // so the dead attempts' dormant scopes can dissolve: files only
      // they referenced are collected, shared ones keep the new pin.
      for (const std::string& rid : sub.run_ids) {
        if (deployment_->gc->HasScope(rid)) deployment_->gc->EndScope(rid);
      }
    }
    ++rec.am_attempts;
    sub.placement_retries = 0;
    rec.recovery_latency_s.push_back(deployment_->engine.Now() - failed_at);
    // A fully-memoised recovery can finish inside Submit(); only a
    // still-running attempt keeps the running state and app mapping.
    if (!rec.Terminal()) {
      rec.state = SubmissionState::kRunning;
      app_of_[sub.am->app()] = id;
      if (sub.admission_bytes > 0) {
        deployment_->rm->RegisterAppFootprint(sub.am->app(),
                                              sub.admission_bytes);
      }
      ScheduleHeartbeatBatch();
    }
    return;
  }
  if (rec.Terminal()) {
    // Registered, then failed; the finish listener recorded the outcome.
    return;
  }
  if (st.IsResourceExhausted()) {
    // AM container placement failed (capacity shrank with the dead
    // node). The AM never registered and owns no engine events, so it is
    // safe to discard. Retry once another AM frees capacity — if no
    // other AM is running, nothing ever will, so fail now.
    sub.am.reset();
    sub.scheduler.reset();
    sub.source.reset();
    bool any_running_am = false;
    for (const auto& [other_id, other_rec] : records_) {
      if (other_id != id && other_rec.state == SubmissionState::kRunning) {
        any_running_am = true;
        break;
      }
    }
    if (!any_running_am) {
      FailRecovering(id,
                     Status::ResourceExhausted(
                         "no node can host the replacement AM container of '" +
                         rec.name + "'"));
      return;
    }
    ++sub.placement_retries;
    deployment_->engine.ScheduleAfter(options_.start_retry_s,
                                      [this, id] { TryRecover(id); });
    return;
  }
  FailRecovering(id, st);
}

void WorkflowService::FailRecovering(SubmissionId id, Status status) {
  SubmissionRecord& rec = records_[id];
  rec.state = SubmissionState::kFailed;
  rec.finished_at = deployment_->engine.Now();
  rec.report.status = std::move(status);
  rec.report.workflow_name = rec.name;
  rec.report.am_attempt = rec.am_attempts;
  --running_[rec.queue];
  CommitFootprint(id, -1);
  if (deployment_->gc != nullptr) {
    // Dead attempts' dormant GC scopes hold pins on files the memoising
    // replacement would have needed; with the submission terminal, no
    // further attempt will, so dissolve them.
    for (const std::string& rid : subs_[id].run_ids) {
      if (deployment_->gc->HasScope(rid)) deployment_->gc->EndScope(rid);
    }
  }
  --live_submissions_;
  MarkPumpable(rec.queue);
  reap_list_.push_back(id);
  ++counters_[rec.queue].failed;
  if (!reap_scheduled_) {
    reap_scheduled_ = true;
    deployment_->engine.ScheduleAfter(0.0, [this] {
      reap_scheduled_ = false;
      Reap();
      Pump();
    });
  }
}

Result<NodeId> WorkflowService::AmNode(SubmissionId id) const {
  auto it = subs_.find(id);
  if (it == subs_.end() || it->second.am == nullptr ||
      it->second.am->crashed() || it->second.am->finished()) {
    return Status::NotFound("submission " + std::to_string(id) +
                            " has no live AM");
  }
  return deployment_->rm->AmNode(it->second.am->app());
}

Status WorkflowService::InjectAmCrash(SubmissionId id) {
  auto it = subs_.find(id);
  if (it == subs_.end() || it->second.am == nullptr ||
      it->second.am->crashed() || it->second.am->finished()) {
    return Status::NotFound("submission " + std::to_string(id) +
                            " has no live AM");
  }
  // The process dies silently; the RM's heartbeat timeout notices and
  // drives the failover path.
  it->second.am->Crash();
  return Status::OK();
}

void WorkflowService::InstallFaultHandlers(FaultInjector* injector) {
  Deployment* dep = deployment_;
  FaultHandlers h;
  h.list_nodes = [dep] {
    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < dep->cluster->num_nodes(); ++n) {
      if (dep->rm->IsNodeAlive(n)) nodes.push_back(n);
    }
    return nodes;
  };
  h.kill_node = [dep](NodeId node) {
    // NodeManager and DataNode die together; re-replication restores the
    // redundancy of surviving blocks (including recorded task outputs the
    // failover memoiser will want to read).
    dep->rm->KillNode(node);
    dep->dfs->KillNode(node);
    dep->dfs->ReReplicate();
    if (dep->staging_cache != nullptr) {
      // The node's scratch disk is gone with it.
      dep->staging_cache->InvalidateNode(node);
    }
  };
  h.list_am_nodes = [this] {
    std::vector<NodeId> nodes;
    for (const auto& [id, rec] : records_) {
      if (rec.state != SubmissionState::kRunning) continue;
      auto node = AmNode(id);
      if (node.ok()) nodes.push_back(*node);
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    return nodes;
  };
  h.am_node_of = [this](int64_t id) {
    auto node = AmNode(id);
    return node.ok() ? *node : kInvalidNode;
  };
  h.list_submissions = [this] {
    std::vector<int64_t> running;
    for (const auto& [id, rec] : records_) {
      if (rec.state == SubmissionState::kRunning) running.push_back(id);
    }
    return running;
  };
  h.crash_am = [this](int64_t id) { (void)InjectAmCrash(id); };
  h.list_containers = [dep] {
    std::vector<int64_t> ids;
    for (const Container& c : dep->rm->RunningContainers()) {
      if (!c.is_am) ids.push_back(c.id);
    }
    return ids;
  };
  h.fail_container = [dep](int64_t id) { dep->rm->KillContainer(id); };
  h.revoke_node = [dep](NodeId node, double warn_s) {
    if (dep->elastic != nullptr) {
      dep->elastic->RevokeNode(node, warn_s);
      return;
    }
    // No elastic control plane: a revocation degrades to the unwarned
    // kill (same consequences, no drain window).
    dep->rm->KillNode(node);
    dep->dfs->KillNode(node);
    dep->dfs->ReReplicate();
    if (dep->staging_cache != nullptr) dep->staging_cache->InvalidateNode(node);
  };
  if (spot_fraction_ > 0.0) {
    double f = spot_fraction_;
    h.list_spot_nodes = [dep, f] {
      // The highest ⌈f·workers⌉ worker ids are the spot slice — the same
      // end of the fleet the autoscaler grows and shrinks, so elastic
      // joiners are spot too.
      NodeId first = dep->dfs->options().first_datanode;
      int workers = dep->cluster->num_nodes() - first;
      int spot = static_cast<int>(
          std::ceil(f * static_cast<double>(std::max(workers, 0))));
      std::vector<NodeId> nodes;
      for (NodeId n = dep->cluster->num_nodes() - 1;
           n >= first && static_cast<int>(nodes.size()) < spot; --n) {
        if (dep->rm->IsNodeAlive(n) && !dep->rm->IsNodeDraining(n)) {
          nodes.push_back(n);
        }
      }
      return nodes;
    };
  }
  h.active = [this] { return !Idle(); };
  injector->SetHandlers(std::move(h));
  // Transient-read faults (hdfs-error clauses) flow through the DFS hook.
  dep->dfs->SetReadFaultHook([injector](const std::string& path, NodeId node) {
    return injector->ShouldFailRead(path, node);
  });
  if (dep->result_cache != nullptr) {
    // --cache-verify spot-checks re-read hit outputs; hdfs-error faults
    // make those reads fail too (counted as verify transients, the hit
    // downgrades to a miss).
    dep->result_cache->SetVerifyReadHook(
        [injector](const std::string& path, NodeId node) {
          return injector->ShouldFailRead(path, node);
        });
  }
}

void WorkflowService::Reap() {
  for (SubmissionId id : reap_list_) {
    auto rec_it = records_.find(id);
    if (rec_it == records_.end() || !rec_it->second.Terminal()) continue;
    subs_.erase(id);
  }
  reap_list_.clear();
}

void WorkflowService::ScheduleHeartbeatBatch() {
  if (options_.heartbeat_batch <= 0.0 || heartbeat_scheduled_) return;
  if (app_of_.empty()) return;
  heartbeat_scheduled_ = true;
  deployment_->engine.ScheduleAfter(options_.heartbeat_batch, [this] {
    heartbeat_scheduled_ = false;
    // One sweep over the live AMs, ascending application id. Crashed
    // attempts stay mapped until the RM declares them failed, and a
    // crashed AM's process is exactly what must NOT heartbeat — skip it
    // so the RM's liveness timeout still fires.
    for (const auto& [app, id] : app_of_) {
      auto it = subs_.find(id);
      if (it == subs_.end() || it->second.am == nullptr ||
          it->second.am->crashed()) {
        continue;
      }
      deployment_->rm->AmHeartbeat(app);
    }
    ScheduleHeartbeatBatch();
  });
}

Status WorkflowService::RunToCompletion() {
  deployment_->engine.RunUntilPredicate(
      [this] { return live_submissions_ == 0; });
  if (live_submissions_ != 0) {
    return Status::RuntimeError(
        "engine ran out of events before all submissions finished");
  }
  return Status::OK();
}

bool WorkflowService::Idle() const { return live_submissions_ == 0; }

int WorkflowService::running_ams() const {
  int total = 0;
  for (const auto& [queue, count] : running_) total += count;
  return total;
}

int WorkflowService::running_ams(const std::string& queue) const {
  auto it = running_.find(queue);
  return it == running_.end() ? 0 : it->second;
}

int WorkflowService::backlog(const std::string& queue) const {
  auto it = backlog_.find(queue);
  return it == backlog_.end() ? 0 : static_cast<int>(it->second.size());
}

const SubmissionRecord* WorkflowService::record(SubmissionId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<SubmissionRecord> WorkflowService::Records() const {
  std::vector<SubmissionRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, rec] : records_) out.push_back(rec);
  return out;
}

const ServiceQueueCounters* WorkflowService::queue_counters(
    const std::string& queue) const {
  auto it = counters_.find(queue);
  return it == counters_.end() ? nullptr : &it->second;
}

std::vector<std::string> WorkflowService::QueueNames() const {
  std::vector<std::string> names;
  names.reserve(queues_.size());
  for (const auto& [name, q] : queues_) names.push_back(name);
  return names;
}

}  // namespace hiway
