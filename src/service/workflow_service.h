// Multi-tenant workflow submission gateway (the serving-stack layer the
// paper's "one AM per workflow" scalability pillar implies but leaves to
// YARN): many workflow submissions — any language, any policy — run as
// concurrent Hi-WAY AMs inside one shared deployment, with admission
// control in front of the RM:
//
//  * per-queue concurrency caps (max running AMs per queue),
//  * bounded backlogs with reject backpressure (a full queue refuses
//    further submissions instead of growing without bound),
//  * per-submission deadlines (a submission still queued past its
//    deadline expires and never launches; one that finishes late is
//    flagged),
//  * deterministic replay (per-submission seeds derive from the service
//    base seed and the submission id, so the same burst under the same
//    configuration yields bit-identical per-workflow reports).
//
// Underneath, the service configures the ResourceManager's pluggable
// scheduler (fifo | capacity | fair DRF, src/yarn/rm_scheduler.h) and
// its queues, so resource sharing between the admitted AMs follows the
// selected multi-tenancy policy.

#ifndef HIWAY_SERVICE_WORKFLOW_SERVICE_H_
#define HIWAY_SERVICE_WORKFLOW_SERVICE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/retry_policy.h"
#include "src/core/client.h"
#include "src/core/hiway_am.h"
#include "src/infra/karamel.h"

namespace hiway {

class FaultInjector;

using SubmissionId = int64_t;

/// One service queue: RM share configuration plus admission limits.
struct ServiceQueueOptions {
  RmQueueConfig rm;
  /// Maximum workflows of this queue running concurrently (each running
  /// workflow is one AM). Further submissions wait in the backlog.
  int max_concurrent_ams = 4;
  /// Maximum submissions waiting in the backlog; beyond this, Submit()
  /// rejects with ResourceExhausted (backpressure).
  int max_backlog = 64;
};

struct WorkflowServiceOptions {
  /// RM scheduling strategy: "fifo" | "capacity" | "fair".
  std::string rm_scheduler = "fifo";
  /// Queues; empty means one "default" queue with the defaults above.
  std::vector<ServiceQueueOptions> queues;
  /// Base seed; per-submission seeds are derived from it and the
  /// submission id (deterministic replay).
  uint64_t base_seed = 42;
  /// Workflow scheduling policy when a submission names none.
  std::string default_policy = "data-aware";
  /// Delay before re-trying a submission whose AM container could not be
  /// placed (cluster momentarily full).
  double start_retry_s = 5.0;
  /// AM failover policy: when the RM declares a submission's AM failed
  /// (node loss, heartbeat timeout, injected crash), the service launches
  /// a fresh AM attempt — up to max_attempts total, with exponential
  /// backoff between attempts — that recovers from the submission's
  /// provenance trace (completed tasks are memoised, not re-executed).
  /// Only submissions with a source_factory are recoverable.
  RetryPolicy am_retry{.max_attempts = 3, .backoff_base_s = 2.0};
  /// > 0: batched AM liveness heartbeats (docs/scaling.md). Per-AM
  /// heartbeat timers are disabled (am_heartbeat_s forced to 0 on every
  /// AM the service launches) and one periodic service event this many
  /// seconds apart forwards AmHeartbeat for every live AM — thousands of
  /// re-arming engine events collapse into one O(live AMs) sweep. Off
  /// (0) by default: batching shifts heartbeat timestamps, so seed-scale
  /// runs stay byte-identical only without it.
  double heartbeat_batch = 0.0;
  /// Footprint-aware admission (docs/storage-model.md): before starting a
  /// submission's AM, check that its projected raw storage footprint fits
  /// into the DFS capacity left over after the baseline captured at
  /// service creation and the footprints of already-running workflows. A
  /// submission that can never fit fails ResourceExhausted; one that will
  /// fit once a running workflow finishes waits in its backlog. No-op
  /// when the DFS has no capacity limit.
  bool footprint_admission = false;
};

enum class SubmissionState {
  kQueued,      // admitted, waiting for a concurrency slot
  kRunning,     // AM is live
  kRecovering,  // AM died; a failover attempt is pending (non-terminal)
  kSucceeded,   // terminal: workflow completed
  kFailed,      // terminal: workflow or launch failed
  kExpired,     // terminal: deadline passed while still queued
};

const char* ToString(SubmissionState state);

struct SubmissionOptions {
  std::string queue = "default";
  /// Workflow scheduling policy ("fcfs" | "data-aware" | ...); empty =
  /// service default.
  std::string policy;
  /// Result-cache tenant namespace: hits only ever come from runs of the
  /// same tenant (docs/data-cache.md). Empty = the submission's queue
  /// name, so queue isolation extends to cached results by default.
  std::string tenant;
  /// Wall-clock (virtual) deadline relative to submission; 0 = none.
  double deadline_s = 0.0;
  /// Container sizing etc. The seed is always overridden by the service
  /// (see WorkflowServiceOptions::base_seed); rm_queue by `queue`.
  HiWayOptions hiway;
  /// Builds a fresh WorkflowSource for an AM failover attempt (a source
  /// consumed by a crashed attempt cannot be reused — iterative sources
  /// carry state). SubmitStaged() installs one automatically; without a
  /// factory an AM failure is terminal for the submission.
  std::function<Result<std::unique_ptr<WorkflowSource>>()> source_factory;
  /// Projected *additional* logical bytes the workflow materialises
  /// beyond its already-staged inputs, for footprint admission. -1 (the
  /// default) auto-estimates via src/gc/footprint.h when a source factory
  /// yields a static source; 0 bypasses the gate for this submission.
  int64_t footprint_bytes = -1;
};

struct SubmissionRecord {
  SubmissionId id = -1;
  std::string name;
  std::string queue;
  std::string policy;
  SubmissionState state = SubmissionState::kQueued;
  double submitted_at = 0.0;
  double started_at = -1.0;
  double finished_at = -1.0;
  double deadline_s = 0.0;
  /// Finished after its deadline (deadlines never kill running AMs).
  bool deadline_missed = false;
  /// AM attempts launched so far (1 after the first start).
  int am_attempts = 0;
  /// AM failures the RM reported for this submission.
  int am_failures = 0;
  /// Per-failover recovery latency: AM declared dead -> replacement AM
  /// registered (includes the retry backoff).
  std::vector<double> recovery_latency_s;
  /// Tasks the dead attempt had completed when it failed (re-execution
  /// waste accounting: completed_at_last_failure - tasks_memoised of the
  /// final report = work redone).
  int completed_at_last_failure = 0;
  /// Estimated peak logical footprint (staged inputs + live
  /// intermediates) from src/gc/footprint.h; 0 when not estimated.
  /// Compare with report.peak_footprint_bytes (the traced actual).
  int64_t footprint_estimate_bytes = 0;
  /// Valid once the state is kSucceeded or kFailed.
  WorkflowReport report;

  bool Terminal() const {
    return state == SubmissionState::kSucceeded ||
           state == SubmissionState::kFailed ||
           state == SubmissionState::kExpired;
  }
  /// Admission-queue wait: submission to AM launch (terminal-but-never-
  /// started submissions waited until their terminal time).
  double QueueWait() const {
    if (started_at >= 0.0) return started_at - submitted_at;
    if (finished_at >= 0.0) return finished_at - submitted_at;
    return 0.0;
  }
};

/// Per-queue admission counters.
struct ServiceQueueCounters {
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t expired = 0;
  int64_t succeeded = 0;
  int64_t failed = 0;
};

class WorkflowService {
 public:
  /// Configures the deployment's RM (scheduler strategy + queues) and
  /// readies the service. Fails on an unknown scheduler name or
  /// duplicate queue names. Does not take ownership of the deployment.
  static Result<std::unique_ptr<WorkflowService>> Create(
      Deployment* deployment, WorkflowServiceOptions options);

  ~WorkflowService();

  /// Admits a workflow for execution, or rejects it (ResourceExhausted)
  /// when the target queue's backlog is full; unknown queues are
  /// InvalidArgument. Takes ownership of the source.
  Result<SubmissionId> Submit(std::string name,
                              std::unique_ptr<WorkflowSource> source,
                              SubmissionOptions options = {});

  /// Convenience: submit a workflow staged in the deployment (by its
  /// recipe name), building the source via HiWayClient.
  Result<SubmissionId> SubmitStaged(const std::string& staged_name,
                                    SubmissionOptions options = {});

  /// Drives the engine until every submission is terminal.
  Status RunToCompletion();

  /// Node currently hosting the submission's AM container (fault
  /// injection: pick the node to kill). NotFound while not running.
  Result<NodeId> AmNode(SubmissionId id) const;

  /// Simulates the AM process of a running submission crashing (the node
  /// stays healthy); the RM's heartbeat timeout detects the death and
  /// the failover path takes over.
  Status InjectAmCrash(SubmissionId id);

  /// Wires a FaultInjector's handlers to this service's deployment:
  /// node kills hit the RM and the DFS (followed by re-replication),
  /// am-crash targets running submissions, fail-container targets
  /// running task (non-AM) containers, spot-revoke drains through the
  /// elastic control plane (falling back to an unwarned kill when the
  /// deployment has none). Call once after Create().
  void InstallFaultHandlers(FaultInjector* injector);

  /// Marks the highest ⌈f·workers⌉ worker nodes as spot instances:
  /// spot-revoke faults then only ever target those. Unset (or f <= 0)
  /// leaves the injector's fallback — any alive node is fair game.
  void SetSpotFraction(double f) { spot_fraction_ = f; }

  bool Idle() const;
  int running_ams() const;
  int running_ams(const std::string& queue) const;
  int backlog(const std::string& queue) const;

  /// Raw bytes currently committed to running workflows by footprint
  /// admission, and the budget they are admitted against (DFS capacity
  /// minus the baseline stored at service creation). Both 0 when
  /// footprint admission is off or the DFS is uncapped.
  int64_t committed_footprint_bytes() const {
    return committed_footprint_bytes_;
  }
  int64_t footprint_budget_bytes() const { return footprint_budget_bytes_; }

  const SubmissionRecord* record(SubmissionId id) const;
  /// All records, ascending submission id.
  std::vector<SubmissionRecord> Records() const;
  const ServiceQueueCounters* queue_counters(const std::string& queue) const;
  std::vector<std::string> QueueNames() const;

  const WorkflowServiceOptions& options() const { return options_; }
  Deployment* deployment() const { return deployment_; }

 private:
  struct Submission {
    std::unique_ptr<WorkflowSource> source;
    std::unique_ptr<WorkflowScheduler> scheduler;
    std::unique_ptr<HiWayAm> am;
    SubmissionOptions options;
    /// Provenance run ids of every AM attempt so far (dead attempts'
    /// runs feed the next attempt's recovery trace).
    std::vector<std::string> run_ids;
    /// When the RM declared the current attempt's AM dead.
    double failed_at = -1.0;
    /// Consecutive AM-container placement failures during recovery.
    int placement_retries = 0;
    /// Raw (replica-weighted) bytes charged to the footprint ledger while
    /// this submission runs; mirrors the running_ counter exactly.
    int64_t admission_bytes = 0;
  };

  /// A crashed attempt's objects. Kept until service destruction: the
  /// engine may still hold events capturing the dead AM (all guarded by
  /// its crashed_ flag), so freeing it early would be use-after-free.
  struct RetiredAttempt {
    std::unique_ptr<WorkflowSource> source;
    std::unique_ptr<WorkflowScheduler> scheduler;
    std::unique_ptr<HiWayAm> am;
  };

  WorkflowService(Deployment* deployment, WorkflowServiceOptions options);

  /// Launches backlogged submissions while concurrency slots are free.
  /// Only queues marked dirty since the last pump are visited (a queue
  /// is marked when its backlog grows or a concurrency slot frees), so
  /// a pump is O(affected queues), not O(all queues).
  void Pump();
  void PumpQueue(const std::string& queue);
  /// Marks `queue` so the next Pump() visits it.
  void MarkPumpable(const std::string& queue) { pumpable_.insert(queue); }
  /// Attempts to start one submission; returns false when the cluster
  /// currently cannot host its AM container (submission re-queued).
  bool TryStart(SubmissionId id);
  /// Wires the deployment's result/staging caches into a fresh AM.
  void AttachCaches(Submission* sub);
  void OnFinished(SubmissionId id, const WorkflowReport& report);
  void OnDeadline(SubmissionId id);
  /// RM app-failure listener: retires the dead attempt and either
  /// schedules a failover attempt or fails the submission terminally.
  void OnAppFailure(ApplicationId app, const std::string& reason);
  /// Launches the next AM attempt of a recovering submission, seeding it
  /// with the provenance trace of all prior attempts.
  void TryRecover(SubmissionId id);
  /// Terminal failure of a recovering submission.
  void FailRecovering(SubmissionId id, Status status);
  /// Destroys AMs of submissions queued for reaping (deferred, never
  /// from inside AM code). Targeted: only ids on the reap list are
  /// visited, not the whole submission table.
  void Reap();
  /// Re-arms the batched-heartbeat sweep while any AM is live (no-op
  /// when heartbeat_batch is off or a sweep is already scheduled).
  void ScheduleHeartbeatBatch();
  uint64_t SeedFor(SubmissionId id) const;
  /// Fills the submission's footprint estimate and admission charge
  /// (called once at Submit when footprint admission is active).
  void EstimateSubmissionFootprint(SubmissionId id);
  /// Charges / releases a started submission's footprint against the
  /// ledger, mirroring the running_ counter. (The RM-side per-application
  /// mirror is registered separately, once the AM's application id is
  /// known, and the RM drops it itself on app unregister/failure.)
  void CommitFootprint(SubmissionId id, int sign);

  Deployment* deployment_;
  WorkflowServiceOptions options_;
  std::map<std::string, ServiceQueueOptions> queues_;
  std::map<std::string, std::deque<SubmissionId>> backlog_;
  std::map<std::string, int> running_;
  std::map<std::string, ServiceQueueCounters> counters_;
  std::map<SubmissionId, SubmissionRecord> records_;
  std::map<SubmissionId, Submission> subs_;
  /// Live AM application -> submission (app-failure attribution).
  std::map<ApplicationId, SubmissionId> app_of_;
  /// Graveyard of crashed attempts (see RetiredAttempt).
  std::vector<RetiredAttempt> retired_;
  SubmissionId next_id_ = 1;
  bool retry_scheduled_ = false;
  bool reap_scheduled_ = false;
  bool heartbeat_scheduled_ = false;
  /// Queues with new backlog or freed slots since the last Pump().
  std::set<std::string> pumpable_;
  /// Terminal submissions awaiting their deferred Reap().
  std::vector<SubmissionId> reap_list_;
  /// Non-terminal submissions. Idle() and the RunToCompletion predicate
  /// are O(1) checks of this counter instead of scans over records_ —
  /// at thousands of submissions the per-event predicate scan dominated
  /// the run (docs/scaling.md).
  int live_submissions_ = 0;
  /// Fraction of the worker fleet that is spot capacity; < 0 = unset.
  double spot_fraction_ = -1.0;
  /// Footprint-admission ledger (docs/storage-model.md): budget = DFS
  /// capacity minus the baseline stored at service creation; committed =
  /// sum of running submissions' admission_bytes.
  int64_t footprint_budget_bytes_ = 0;
  int64_t committed_footprint_bytes_ = 0;
};

}  // namespace hiway

#endif  // HIWAY_SERVICE_WORKFLOW_SERVICE_H_
