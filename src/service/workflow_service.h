// Multi-tenant workflow submission gateway (the serving-stack layer the
// paper's "one AM per workflow" scalability pillar implies but leaves to
// YARN): many workflow submissions — any language, any policy — run as
// concurrent Hi-WAY AMs inside one shared deployment, with admission
// control in front of the RM:
//
//  * per-queue concurrency caps (max running AMs per queue),
//  * bounded backlogs with reject backpressure (a full queue refuses
//    further submissions instead of growing without bound),
//  * per-submission deadlines (a submission still queued past its
//    deadline expires and never launches; one that finishes late is
//    flagged),
//  * deterministic replay (per-submission seeds derive from the service
//    base seed and the submission id, so the same burst under the same
//    configuration yields bit-identical per-workflow reports).
//
// Underneath, the service configures the ResourceManager's pluggable
// scheduler (fifo | capacity | fair DRF, src/yarn/rm_scheduler.h) and
// its queues, so resource sharing between the admitted AMs follows the
// selected multi-tenancy policy.

#ifndef HIWAY_SERVICE_WORKFLOW_SERVICE_H_
#define HIWAY_SERVICE_WORKFLOW_SERVICE_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/client.h"
#include "src/core/hiway_am.h"
#include "src/infra/karamel.h"

namespace hiway {

using SubmissionId = int64_t;

/// One service queue: RM share configuration plus admission limits.
struct ServiceQueueOptions {
  RmQueueConfig rm;
  /// Maximum workflows of this queue running concurrently (each running
  /// workflow is one AM). Further submissions wait in the backlog.
  int max_concurrent_ams = 4;
  /// Maximum submissions waiting in the backlog; beyond this, Submit()
  /// rejects with ResourceExhausted (backpressure).
  int max_backlog = 64;
};

struct WorkflowServiceOptions {
  /// RM scheduling strategy: "fifo" | "capacity" | "fair".
  std::string rm_scheduler = "fifo";
  /// Queues; empty means one "default" queue with the defaults above.
  std::vector<ServiceQueueOptions> queues;
  /// Base seed; per-submission seeds are derived from it and the
  /// submission id (deterministic replay).
  uint64_t base_seed = 42;
  /// Workflow scheduling policy when a submission names none.
  std::string default_policy = "data-aware";
  /// Delay before re-trying a submission whose AM container could not be
  /// placed (cluster momentarily full).
  double start_retry_s = 5.0;
};

enum class SubmissionState {
  kQueued,     // admitted, waiting for a concurrency slot
  kRunning,    // AM is live
  kSucceeded,  // terminal: workflow completed
  kFailed,     // terminal: workflow or launch failed
  kExpired,    // terminal: deadline passed while still queued
};

const char* ToString(SubmissionState state);

struct SubmissionOptions {
  std::string queue = "default";
  /// Workflow scheduling policy ("fcfs" | "data-aware" | ...); empty =
  /// service default.
  std::string policy;
  /// Wall-clock (virtual) deadline relative to submission; 0 = none.
  double deadline_s = 0.0;
  /// Container sizing etc. The seed is always overridden by the service
  /// (see WorkflowServiceOptions::base_seed); rm_queue by `queue`.
  HiWayOptions hiway;
};

struct SubmissionRecord {
  SubmissionId id = -1;
  std::string name;
  std::string queue;
  std::string policy;
  SubmissionState state = SubmissionState::kQueued;
  double submitted_at = 0.0;
  double started_at = -1.0;
  double finished_at = -1.0;
  double deadline_s = 0.0;
  /// Finished after its deadline (deadlines never kill running AMs).
  bool deadline_missed = false;
  /// Valid once the state is kSucceeded or kFailed.
  WorkflowReport report;

  bool Terminal() const {
    return state == SubmissionState::kSucceeded ||
           state == SubmissionState::kFailed ||
           state == SubmissionState::kExpired;
  }
  /// Admission-queue wait: submission to AM launch (terminal-but-never-
  /// started submissions waited until their terminal time).
  double QueueWait() const {
    if (started_at >= 0.0) return started_at - submitted_at;
    if (finished_at >= 0.0) return finished_at - submitted_at;
    return 0.0;
  }
};

/// Per-queue admission counters.
struct ServiceQueueCounters {
  int64_t submitted = 0;
  int64_t rejected = 0;
  int64_t expired = 0;
  int64_t succeeded = 0;
  int64_t failed = 0;
};

class WorkflowService {
 public:
  /// Configures the deployment's RM (scheduler strategy + queues) and
  /// readies the service. Fails on an unknown scheduler name or
  /// duplicate queue names. Does not take ownership of the deployment.
  static Result<std::unique_ptr<WorkflowService>> Create(
      Deployment* deployment, WorkflowServiceOptions options);

  /// Admits a workflow for execution, or rejects it (ResourceExhausted)
  /// when the target queue's backlog is full; unknown queues are
  /// InvalidArgument. Takes ownership of the source.
  Result<SubmissionId> Submit(std::string name,
                              std::unique_ptr<WorkflowSource> source,
                              SubmissionOptions options = {});

  /// Convenience: submit a workflow staged in the deployment (by its
  /// recipe name), building the source via HiWayClient.
  Result<SubmissionId> SubmitStaged(const std::string& staged_name,
                                    SubmissionOptions options = {});

  /// Drives the engine until every submission is terminal.
  Status RunToCompletion();

  bool Idle() const;
  int running_ams() const;
  int running_ams(const std::string& queue) const;
  int backlog(const std::string& queue) const;

  const SubmissionRecord* record(SubmissionId id) const;
  /// All records, ascending submission id.
  std::vector<SubmissionRecord> Records() const;
  const ServiceQueueCounters* queue_counters(const std::string& queue) const;
  std::vector<std::string> QueueNames() const;

  const WorkflowServiceOptions& options() const { return options_; }
  Deployment* deployment() const { return deployment_; }

 private:
  struct Submission {
    std::unique_ptr<WorkflowSource> source;
    std::unique_ptr<WorkflowScheduler> scheduler;
    std::unique_ptr<HiWayAm> am;
    SubmissionOptions options;
  };

  WorkflowService(Deployment* deployment, WorkflowServiceOptions options);

  /// Launches backlogged submissions while concurrency slots are free.
  void Pump();
  /// Attempts to start one submission; returns false when the cluster
  /// currently cannot host its AM container (submission re-queued).
  bool TryStart(SubmissionId id);
  void OnFinished(SubmissionId id, const WorkflowReport& report);
  void OnDeadline(SubmissionId id);
  /// Destroys AMs of terminal submissions (deferred, never from inside
  /// AM code).
  void Reap();
  uint64_t SeedFor(SubmissionId id) const;

  Deployment* deployment_;
  WorkflowServiceOptions options_;
  std::map<std::string, ServiceQueueOptions> queues_;
  std::map<std::string, std::deque<SubmissionId>> backlog_;
  std::map<std::string, int> running_;
  std::map<std::string, ServiceQueueCounters> counters_;
  std::map<SubmissionId, SubmissionRecord> records_;
  std::map<SubmissionId, Submission> subs_;
  SubmissionId next_id_ = 1;
  bool retry_scheduled_ = false;
  bool reap_scheduled_ = false;
};

}  // namespace hiway

#endif  // HIWAY_SERVICE_WORKFLOW_SERVICE_H_
