#include "src/sim/cluster.h"

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace hiway {

ClusterSpec ClusterSpec::Uniform(int n, const NodeSpec& node,
                                 double switch_bw) {
  ClusterSpec spec;
  spec.switch_bw_mbps = switch_bw;
  spec.nodes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    NodeSpec ns = node;
    ns.name = StrFormat("node-%03d", i);
    spec.nodes.push_back(std::move(ns));
  }
  return spec;
}

Cluster::Cluster(SimEngine* engine, FlowNetwork* net, ClusterSpec spec)
    : engine_(engine), net_(net), spec_(std::move(spec)) {
  HIWAY_CHECK(!spec_.nodes.empty());
  for (const NodeSpec& node : spec_.nodes) {
    cpu_.push_back(
        net_->AddResource(node.name + "/cpu", static_cast<double>(node.cores)));
    disk_.push_back(net_->AddResource(node.name + "/disk", node.disk_bw_mbps));
    nic_.push_back(net_->AddResource(node.name + "/nic", node.nic_bw_mbps));
  }
  switch_ = net_->AddResource("switch", spec_.switch_bw_mbps);
  if (spec_.ebs_bw_mbps > 0.0) {
    ebs_ = net_->AddResource("ebs", spec_.ebs_bw_mbps);
  }
  if (spec_.s3_bw_mbps > 0.0) {
    s3_ = net_->AddResource("s3", spec_.s3_bw_mbps);
  }
}

NodeId Cluster::AddNode(NodeSpec node) {
  NodeId id = static_cast<NodeId>(spec_.nodes.size());
  if (node.name.empty()) node.name = StrFormat("node-%03d", id);
  cpu_.push_back(
      net_->AddResource(node.name + "/cpu", static_cast<double>(node.cores)));
  disk_.push_back(net_->AddResource(node.name + "/disk", node.disk_bw_mbps));
  nic_.push_back(net_->AddResource(node.name + "/nic", node.nic_bw_mbps));
  spec_.nodes.push_back(std::move(node));
  return id;
}

std::vector<ResourceId> Cluster::RemoteTransferPath(NodeId src,
                                                    NodeId dst) const {
  HIWAY_CHECK(src != dst);
  return {disk(src), nic(src), switch_, nic(dst), disk(dst)};
}

std::vector<ResourceId> Cluster::LocalDiskPath(NodeId node) const {
  return {disk(node)};
}

std::vector<ResourceId> Cluster::S3ReadPath(NodeId node) const {
  HIWAY_CHECK(has_s3());
  return {s3_, nic(node), disk(node)};
}

std::vector<ResourceId> Cluster::EbsPath(NodeId node) const {
  HIWAY_CHECK(has_ebs());
  return {ebs_, nic(node)};
}

}  // namespace hiway
