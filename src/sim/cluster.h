// Simulated datacenter: nodes (CPU cores, local disk, NIC), a shared
// top-of-rack switch, and optional external storage systems (an
// EBS-like network volume and an S3-like object store uplink).
//
// The Cluster owns only the resource topology; data placement lives in
// src/hdfs/ and task execution in src/yarn/ + src/core/.

#ifndef HIWAY_SIM_CLUSTER_H_
#define HIWAY_SIM_CLUSTER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/sim/engine.h"
#include "src/sim/flow.h"

namespace hiway {

using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

/// Hardware description of one compute node.
struct NodeSpec {
  std::string name;
  int cores = 2;
  double memory_mb = 7680;      // m3.large default
  double disk_bw_mbps = 150.0;  // local SSD sequential bandwidth, MB/s
  double nic_bw_mbps = 125.0;   // 1 GbE
  /// Relative CPU speed (1.0 = reference). Task compute time divides by
  /// this, modelling heterogeneous hardware.
  double speed_factor = 1.0;
};

/// Description of the whole cluster.
struct ClusterSpec {
  std::vector<NodeSpec> nodes;
  /// Aggregate switch bandwidth shared by all inter-node traffic, MB/s.
  double switch_bw_mbps = 1250.0;
  /// Shared network-attached volume bandwidth (Galaxy CloudMan's EBS),
  /// MB/s; 0 disables the volume.
  double ebs_bw_mbps = 0.0;
  /// Aggregate external object-store bandwidth (Amazon S3), MB/s; 0
  /// disables it.
  double s3_bw_mbps = 0.0;

  /// Convenience: n identical nodes.
  static ClusterSpec Uniform(int n, const NodeSpec& node,
                             double switch_bw_mbps);
};

/// Instantiates the resource topology of a ClusterSpec in a FlowNetwork.
class Cluster {
 public:
  Cluster(SimEngine* engine, FlowNetwork* net, ClusterSpec spec);

  int num_nodes() const { return static_cast<int>(spec_.nodes.size()); }

  /// Appends a node to the topology at runtime (elastic scale-out): the
  /// node's cpu/disk/nic resources are created in the FlowNetwork and its
  /// id — always the next consecutive NodeId — is returned. Node ids are
  /// stable for the lifetime of the cluster; departed nodes keep their id
  /// (the RM marks them dead rather than compacting).
  NodeId AddNode(NodeSpec node);

  const ClusterSpec& spec() const { return spec_; }
  const NodeSpec& node(NodeId id) const {
    return spec_.nodes[static_cast<size_t>(id)];
  }

  SimEngine* engine() const { return engine_; }
  FlowNetwork* net() const { return net_; }

  ResourceId cpu(NodeId id) const { return cpu_[static_cast<size_t>(id)]; }
  ResourceId disk(NodeId id) const { return disk_[static_cast<size_t>(id)]; }
  ResourceId nic(NodeId id) const { return nic_[static_cast<size_t>(id)]; }
  ResourceId switch_resource() const { return switch_; }

  bool has_ebs() const { return ebs_ >= 0; }
  ResourceId ebs() const { return ebs_; }
  bool has_s3() const { return s3_ >= 0; }
  ResourceId s3() const { return s3_; }

  /// Resource path for moving `bytes` from `src` to `dst` over the network
  /// (disk read at src, both NICs, the switch, disk write at dst).
  std::vector<ResourceId> RemoteTransferPath(NodeId src, NodeId dst) const;

  /// Resource path for a purely local disk access on `node`.
  std::vector<ResourceId> LocalDiskPath(NodeId node) const;

  /// Path for reading from the S3-like store onto `node`'s disk.
  std::vector<ResourceId> S3ReadPath(NodeId node) const;

  /// Path for reading/writing the EBS-like shared volume from `node`.
  std::vector<ResourceId> EbsPath(NodeId node) const;

 private:
  SimEngine* engine_;
  FlowNetwork* net_;
  ClusterSpec spec_;
  std::vector<ResourceId> cpu_;
  std::vector<ResourceId> disk_;
  std::vector<ResourceId> nic_;
  ResourceId switch_ = -1;
  ResourceId ebs_ = -1;
  ResourceId s3_ = -1;
};

}  // namespace hiway

#endif  // HIWAY_SIM_CLUSTER_H_
