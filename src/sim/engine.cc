#include "src/sim/engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace hiway {

namespace {
// Compact only when the cancel set is both large in absolute terms and
// makes up at least half the heap: the sweep is O(heap), so amortising
// it against the cancels keeps total work linear in events scheduled.
constexpr size_t kCompactMinCancelled = 1024;
}  // namespace

EventId SimEngine::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) at = now_;
  EventId id = next_id_++;
  heap_.push_back(Event{at, next_seq_++, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  if (heap_.size() > peak_pending_) peak_pending_ = heap_.size();
  return id;
}

void SimEngine::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  cancelled_.insert(id);
  if (cancelled_.size() >= kCompactMinCancelled &&
      cancelled_.size() * 2 >= heap_.size()) {
    Compact();
  }
}

void SimEngine::Compact() {
  auto dead = [this](const Event& e) { return cancelled_.count(e.id) > 0; };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  // Every live event sits in the heap, so any id still in the cancel set
  // after the sweep referred to an already-fired event; drop them all.
  cancelled_.clear();
  ++compactions_;
}

bool SimEngine::PopAndRunNext(SimTime limit) {
  while (!heap_.empty()) {
    if (heap_.front().time > limit) return false;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (!cancelled_.empty() && cancelled_.erase(ev.id) > 0) continue;
    HIWAY_CHECK(ev.time >= now_);
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void SimEngine::Run() {
  while (PopAndRunNext(std::numeric_limits<SimTime>::infinity())) {
  }
}

void SimEngine::RunUntil(SimTime until) {
  while (PopAndRunNext(until)) {
  }
  if (until > now_) now_ = until;
}

bool SimEngine::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (PopAndRunNext(std::numeric_limits<SimTime>::infinity())) {
    if (pred()) return true;
  }
  return pred();
}

}  // namespace hiway
