#include "src/sim/engine.h"

#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace hiway {

EventId SimEngine::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) at = now_;
  EventId id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  return id;
}

void SimEngine::Cancel(EventId id) { cancelled_.insert(id); }

bool SimEngine::PopAndRunNext(SimTime limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > limit) return false;
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    // Move out before popping; fn may schedule more events.
    Event ev{top.time, top.seq, top.id,
             std::move(const_cast<Event&>(top).fn)};
    queue_.pop();
    HIWAY_CHECK(ev.time >= now_);
    now_ = ev.time;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void SimEngine::Run() {
  while (PopAndRunNext(std::numeric_limits<SimTime>::infinity())) {
  }
}

void SimEngine::RunUntil(SimTime until) {
  while (PopAndRunNext(until)) {
  }
  if (until > now_) now_ = until;
}

bool SimEngine::RunUntilPredicate(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (PopAndRunNext(std::numeric_limits<SimTime>::infinity())) {
    if (pred()) return true;
  }
  return pred();
}

}  // namespace hiway
