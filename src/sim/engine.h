// Discrete-event simulation engine.
//
// All of hiway's "distributed" components (YARN, HDFS, the AM, tasks) run
// inside one SimEngine: they schedule callbacks at virtual timestamps and
// the engine executes them in time order. Ties are broken by insertion
// order, which makes runs fully deterministic.

#ifndef HIWAY_SIM_ENGINE_H_
#define HIWAY_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"

namespace hiway {

/// Virtual time in seconds since simulation start.
using SimTime = double;

/// Handle used to cancel a scheduled event.
using EventId = uint64_t;

class SimEngine {
 public:
  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (clamped to Now()).
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op.
  void Cancel(EventId id);

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with timestamps <= `until`, then sets Now() to `until`.
  void RunUntil(SimTime until);

  /// Runs until `pred()` becomes true (checked after each event) or the
  /// queue empties. Returns true if the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  /// Number of events executed so far (for diagnostics / benchmarks).
  uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending.
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO within a timestamp
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool PopAndRunNext(SimTime limit);

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hiway

#endif  // HIWAY_SIM_ENGINE_H_
