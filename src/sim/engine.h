// Discrete-event simulation engine.
//
// All of hiway's "distributed" components (YARN, HDFS, the AM, tasks) run
// inside one SimEngine: they schedule callbacks at virtual timestamps and
// the engine executes them in time order. Ties are broken by insertion
// order, which makes runs fully deterministic.
//
// The pending-event store is an explicit binary heap over a contiguous
// vector (O(log n) push/pop, no per-event allocation beyond the closure),
// sized for millions of pending events. Cancellation is lazy: Cancel()
// only records the id, and a cancelled event is discarded when it
// surfaces at the heap top — except that once cancelled entries make up
// a large fraction of the heap, the engine compacts: it filters them out
// in one O(n) sweep and re-heapifies, so a cancel-heavy workload (e.g.
// thousands of AMs re-arming heartbeat timers) cannot grow the heap
// without bound. docs/scaling.md describes the scale model.

#ifndef HIWAY_SIM_ENGINE_H_
#define HIWAY_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"

namespace hiway {

/// Virtual time in seconds since simulation start.
using SimTime = double;

/// Handle used to cancel a scheduled event.
using EventId = uint64_t;

class SimEngine {
 public:
  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Current virtual time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (clamped to Now()).
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` seconds from now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown event
  /// is a no-op.
  void Cancel(EventId id);

  /// Pre-sizes the heap for `n` pending events (avoids growth reallocs in
  /// large sweeps; purely an optimisation).
  void Reserve(size_t n) { heap_.reserve(n); }

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with timestamps <= `until`, then sets Now() to `until`.
  void RunUntil(SimTime until);

  /// Runs until `pred()` becomes true (checked after each event) or the
  /// queue empties. Returns true if the predicate was satisfied.
  bool RunUntilPredicate(const std::function<bool()>& pred);

  /// Number of events executed so far (for diagnostics / benchmarks).
  uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending (cancelled-but-not-yet-discarded
  /// events excluded).
  size_t pending_events() const {
    size_t dead = cancelled_.size() < heap_.size() ? cancelled_.size()
                                                   : heap_.size();
    return heap_.size() - dead;
  }

  /// Lazy-cancellation compactions performed so far (diagnostics).
  uint64_t compactions() const { return compactions_; }

  /// High-water mark of the pending-event heap (diagnostics).
  size_t peak_pending() const { return peak_pending_; }

 private:
  struct Event {
    SimTime time;
    uint64_t seq;  // tie-break: FIFO within a timestamp
    EventId id;
    std::function<void()> fn;
  };
  /// Max-heap comparator that surfaces the *earliest* (time, seq).
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool PopAndRunNext(SimTime limit);

  /// Filters cancelled entries out of the heap in one sweep and
  /// re-heapifies. Every cancelled id is either discarded here or was
  /// never pending (already fired), so the cancel set is cleared too.
  void Compact();

  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t events_executed_ = 0;
  uint64_t compactions_ = 0;
  size_t peak_pending_ = 0;
  std::vector<Event> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace hiway

#endif  // HIWAY_SIM_ENGINE_H_
