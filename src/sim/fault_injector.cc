#include "src/sim/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/strings.h"
#include "src/sim/engine.h"

namespace hiway {
namespace {

Result<FaultType> FaultTypeFromString(std::string_view token) {
  if (token == "kill-node") return FaultType::kKillNode;
  if (token == "kill-am-node") return FaultType::kKillAmNode;
  if (token == "am-crash") return FaultType::kAmCrash;
  if (token == "fail-container") return FaultType::kFailContainer;
  if (token == "hdfs-error") return FaultType::kHdfsError;
  if (token == "spot-revoke") return FaultType::kSpotRevoke;
  return Status::InvalidArgument(
      StrFormat("unknown fault type '%.*s' (expected kill-node, "
                "kill-am-node, am-crash, fail-container, hdfs-error, or "
                "spot-revoke)",
                static_cast<int>(token.size()), token.data()));
}

Result<FaultSpec> ParseClause(std::string_view clause) {
  FaultSpec spec;
  bool has_warn = false;
  std::vector<std::string> parts = StrSplit(clause, ':');
  std::string_view head = StrTrim(parts[0]);
  std::string_view type_token = head;
  if (size_t at_pos = head.find('@'); at_pos != std::string_view::npos) {
    type_token = StrTrim(head.substr(0, at_pos));
    auto at = ParseDouble(StrTrim(head.substr(at_pos + 1)));
    if (!at.ok()) {
      return at.status().WithContext(
          StrFormat("bad @time in fault clause '%.*s'",
                    static_cast<int>(clause.size()), clause.data()));
    }
    if (!std::isfinite(*at)) {
      return Status::InvalidArgument(
          StrFormat("@time in fault clause '%.*s' must be finite",
                    static_cast<int>(clause.size()), clause.data()));
    }
    spec.at = *at;
  }
  auto type = FaultTypeFromString(type_token);
  if (!type.ok()) return type.status();
  spec.type = *type;

  for (size_t i = 1; i < parts.size(); ++i) {
    std::string_view kv = StrTrim(parts[i]);
    size_t eq = kv.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("fault param '%.*s' is not key=value",
                    static_cast<int>(kv.size()), kv.data()));
    }
    std::string_view key = StrTrim(kv.substr(0, eq));
    std::string_view value = StrTrim(kv.substr(eq + 1));
    auto number = ParseDouble(value);
    if (!number.ok()) {
      return number.status().WithContext(
          StrFormat("bad value for fault param '%.*s'",
                    static_cast<int>(key.size()), key.data()));
    }
    if (!std::isfinite(*number)) {
      return Status::InvalidArgument(
          StrFormat("fault param %.*s=%.*s must be finite",
                    static_cast<int>(key.size()), key.data(),
                    static_cast<int>(value.size()), value.data()));
    }
    // node= / sub= are ids: require integral values in range before casting
    // (a bare static_cast from e.g. node=1e300 is undefined behaviour).
    auto as_id = [&](double limit) -> Result<int64_t> {
      if (*number < 0 || *number > limit ||
          *number != std::floor(*number)) {
        return Status::InvalidArgument(StrFormat(
            "fault param %.*s=%.*s is not an integer id in [0, %.0f]",
            static_cast<int>(key.size()), key.data(),
            static_cast<int>(value.size()), value.data(), limit));
      }
      return static_cast<int64_t>(*number);
    };
    if (key == "at") {
      spec.at = *number;
    } else if (key == "rate") {
      spec.rate = *number;
    } else if (key == "every") {
      spec.every = *number;
    } else if (key == "until") {
      spec.until = *number;
    } else if (key == "node") {
      HIWAY_ASSIGN_OR_RETURN(int64_t id, as_id(2147483647.0));
      spec.node = static_cast<NodeId>(id);
    } else if (key == "sub") {
      HIWAY_ASSIGN_OR_RETURN(int64_t id, as_id(9e15));
      spec.submission = id;
    } else if (key == "warn") {
      spec.warn = *number;
      has_warn = true;
    } else {
      return Status::InvalidArgument(
          StrFormat("unknown fault param '%.*s' (expected at, node, sub, "
                    "rate, every, until, or warn)",
                    static_cast<int>(key.size()), key.data()));
    }
  }

  if (has_warn && spec.type != FaultType::kSpotRevoke) {
    return Status::InvalidArgument(StrFormat(
        "fault param warn= only applies to spot-revoke, not '%s'",
        ToString(spec.type)));
  }
  if (has_warn && spec.warn < 0.0) {
    return Status::InvalidArgument("fault param warn= must be >= 0");
  }
  if (spec.type == FaultType::kHdfsError) {
    if (spec.rate <= 0.0) {
      return Status::InvalidArgument(
          "hdfs-error requires rate=<probability per read>");
    }
  } else if (spec.at < 0.0 && spec.rate <= 0.0) {
    return Status::InvalidArgument(
        StrFormat("fault clause '%s' needs @time/at= (one-shot) or rate= "
                  "(recurring)",
                  ToString(spec.type)));
  }
  if (spec.rate > 1.0) {
    return Status::InvalidArgument(
        StrFormat("fault param rate=%g is not a probability (must be <= 1)",
                  spec.rate));
  }
  if (spec.rate > 0.0 && spec.every <= 0.0) {
    return Status::InvalidArgument("fault param every= must be > 0");
  }
  return spec;
}

}  // namespace

const char* ToString(FaultType type) {
  switch (type) {
    case FaultType::kKillNode:
      return "kill-node";
    case FaultType::kKillAmNode:
      return "kill-am-node";
    case FaultType::kAmCrash:
      return "am-crash";
    case FaultType::kFailContainer:
      return "fail-container";
    case FaultType::kHdfsError:
      return "hdfs-error";
    case FaultType::kSpotRevoke:
      return "spot-revoke";
  }
  return "unknown";
}

Result<std::vector<FaultSpec>> ParseFaultSpecs(std::string_view text) {
  std::vector<FaultSpec> specs;
  for (const std::string& clause : StrSplit(text, ',')) {
    if (StrTrim(clause).empty()) continue;
    auto spec = ParseClause(clause);
    if (!spec.ok()) return spec.status();
    specs.push_back(*spec);
  }
  if (specs.empty()) {
    return Status::InvalidArgument("empty fault spec");
  }
  return specs;
}

FaultInjector::FaultInjector(SimEngine* engine, uint64_t seed)
    : engine_(engine), rng_(seed) {}

Status FaultInjector::Arm(std::vector<FaultSpec> specs) {
  for (const FaultSpec& spec : specs) {
    armed_.push_back(spec);
    if (spec.type == FaultType::kHdfsError) {
      read_fault_specs_.push_back(spec);
      continue;
    }
    if (spec.at >= 0.0) {
      engine_->ScheduleAt(spec.at, [this, spec] { Fire(spec); });
    }
    if (spec.rate > 0.0) {
      Recur(spec, /*seen_activity=*/false);
    }
  }
  return Status::OK();
}

Status FaultInjector::ArmSpec(std::string_view text) {
  auto specs = ParseFaultSpecs(text);
  if (!specs.ok()) return specs.status();
  return Arm(*std::move(specs));
}

bool FaultInjector::ShouldFailRead(const std::string& path, NodeId node) {
  (void)path;
  (void)node;
  double now = engine_->Now();
  for (const FaultSpec& spec : read_fault_specs_) {
    if (spec.at >= 0.0 && now < spec.at) continue;
    if (spec.until >= 0.0 && now > spec.until) continue;
    if (rng_.NextDouble() < spec.rate) {
      ++counters_.read_faults;
      return true;
    }
  }
  return false;
}

void FaultInjector::Fire(const FaultSpec& spec) {
  switch (spec.type) {
    case FaultType::kKillNode: {
      if (!handlers_.kill_node) return;
      NodeId target = spec.node;
      if (target == kInvalidNode) {
        if (!handlers_.list_nodes) return;
        std::vector<NodeId> nodes = handlers_.list_nodes();
        if (nodes.empty()) return;
        target = nodes[rng_.UniformInt(nodes.size())];
      }
      handlers_.kill_node(target);
      ++counters_.node_kills;
      return;
    }
    case FaultType::kKillAmNode: {
      if (!handlers_.kill_node) return;
      NodeId target = kInvalidNode;
      if (spec.submission >= 0) {
        if (!handlers_.am_node_of) return;
        target = handlers_.am_node_of(spec.submission);
      } else {
        if (!handlers_.list_am_nodes) return;
        std::vector<NodeId> nodes = handlers_.list_am_nodes();
        if (nodes.empty()) return;
        target = nodes[rng_.UniformInt(nodes.size())];
      }
      if (target == kInvalidNode) return;
      handlers_.kill_node(target);
      ++counters_.node_kills;
      return;
    }
    case FaultType::kAmCrash: {
      if (!handlers_.crash_am) return;
      int64_t target = spec.submission;
      if (target < 0) {
        if (!handlers_.list_submissions) return;
        std::vector<int64_t> subs = handlers_.list_submissions();
        if (subs.empty()) return;
        target = subs[rng_.UniformInt(subs.size())];
      }
      handlers_.crash_am(target);
      ++counters_.am_crashes;
      return;
    }
    case FaultType::kFailContainer: {
      if (!handlers_.fail_container || !handlers_.list_containers) return;
      std::vector<int64_t> containers = handlers_.list_containers();
      if (containers.empty()) return;
      handlers_.fail_container(containers[rng_.UniformInt(containers.size())]);
      ++counters_.container_kills;
      return;
    }
    case FaultType::kSpotRevoke: {
      if (!handlers_.revoke_node) return;
      NodeId target = spec.node;
      if (target == kInvalidNode) {
        // Prefer the fleet's spot partition; any worker is revocable
        // when no partition is declared.
        std::vector<NodeId> nodes = handlers_.list_spot_nodes
                                        ? handlers_.list_spot_nodes()
                                        : std::vector<NodeId>{};
        if (nodes.empty() && handlers_.list_nodes) {
          nodes = handlers_.list_nodes();
        }
        if (nodes.empty()) return;
        target = nodes[rng_.UniformInt(nodes.size())];
      }
      double warn = spec.warn >= 0.0 ? spec.warn : default_revoke_warning_s_;
      handlers_.revoke_node(target, warn);
      ++counters_.spot_revocations;
      return;
    }
    case FaultType::kHdfsError:
      return;  // consulted per-read via ShouldFailRead, never fired
  }
}

void FaultInjector::Recur(FaultSpec spec, bool seen_activity) {
  engine_->ScheduleAfter(spec.every, [this, spec, seen_activity] {
    if (spec.until >= 0.0 && engine_->Now() > spec.until) return;
    bool active = handlers_.active ? handlers_.active() : true;
    if (!active) {
      // Quiesced after having run: the workload is done, stop the chain.
      // Not yet started: keep polling without firing.
      if (seen_activity) return;
      Recur(spec, /*seen_activity=*/false);
      return;
    }
    if (spec.rate >= 1.0 || rng_.NextDouble() < spec.rate) Fire(spec);
    Recur(spec, /*seen_activity=*/true);
  });
}

}  // namespace hiway
