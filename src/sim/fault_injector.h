// Deterministic fault-injection harness: scripted and seeded-random
// node kills, AM crashes, container failures, and transient HDFS read
// errors, driven from the simulation clock. The injector is
// deliberately layer-agnostic — it fires through std::function handlers
// installed by whoever wires it (WorkflowService::InstallFaultHandlers,
// tests, the CLI's --faults flag), so src/sim stays free of yarn/service
// dependencies.
//
// Fault-spec grammar (also documented in docs/failure-model.md):
//
//   spec    := clause (',' clause)*
//   clause  := type ('@' time)? (':' key '=' value)*
//   type    := kill-node | kill-am-node | am-crash | fail-container
//            | hdfs-error | spot-revoke
//   key     := at | node | sub | rate | every | until | warn
//
// A clause with `at` (or `@time`) fires once at that virtual time; a
// clause with `rate` recurs every `every` seconds (default 10), firing
// with probability `rate` per period while the workload is active, until
// `until` (if given). `hdfs-error` is always rate-based: each DFS read
// between `at` and `until` fails with probability `rate`. `spot-revoke`
// announces a node's revocation with a `warn`-second warning window
// (default 120, the EC2 spot notice): the node drains, then dies at the
// deadline. `warn` is only valid on spot-revoke clauses. Targets
// (`node`, `sub`) are optional; omitted targets are drawn from the
// injector's seeded RNG, so a fixed seed replays the same fault
// sequence. Malformed specs fail loudly at parse time with the
// offending token — never silently ignored.
//
// Examples:
//   kill-node@120                  one node, picked at random, dies at t=120
//   kill-am-node@60:sub=2          the node hosting submission 2's AM dies
//   am-crash@45                    a random running AM process crashes
//   fail-container:rate=0.2:every=30:until=600
//   hdfs-error:rate=0.05:until=300
//   spot-revoke@300:warn=120       a spot node is warned at t=300, gone at 420

#ifndef HIWAY_SIM_FAULT_INJECTOR_H_
#define HIWAY_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/sim/cluster.h"

namespace hiway {

enum class FaultType {
  kKillNode,       // NodeManager + DataNode crash on one node
  kKillAmNode,     // like kKillNode, but targets a node hosting an AM
  kAmCrash,        // the AM process dies; its node stays healthy
  kFailContainer,  // one running task container is killed
  kHdfsError,      // transient DFS read errors at a configurable rate
  kSpotRevoke,     // spot-instance revocation: warn, drain, then kill
};

const char* ToString(FaultType type);

struct FaultSpec {
  FaultType type = FaultType::kKillNode;
  /// One-shot virtual fire time; < 0 means not scheduled (recurring).
  /// For hdfs-error: the time the error window opens (default 0).
  double at = -1.0;
  /// Recurring probability per period (or per read for hdfs-error);
  /// < 0 means one-shot only.
  double rate = -1.0;
  /// Period of recurring faults, seconds.
  double every = 10.0;
  /// Recurring faults stop after this virtual time; < 0 = while the
  /// workload stays active.
  double until = -1.0;
  /// Explicit node target (kill-node); -1 = seeded-random alive node.
  NodeId node = kInvalidNode;
  /// Explicit submission target (am-crash, kill-am-node); -1 = random.
  int64_t submission = -1;
  /// Warning window of a spot-revoke, seconds between the revocation
  /// notice and the node's death; < 0 = the injector's default (120).
  double warn = -1.0;
};

/// Parses the grammar above. Returns every clause or the first error.
Result<std::vector<FaultSpec>> ParseFaultSpecs(std::string_view text);

/// Wiring points the injector fires through. Unset handlers disable the
/// corresponding fault type (the injector no-ops).
struct FaultHandlers {
  /// Nodes eligible for kill-node (alive workers).
  std::function<std::vector<NodeId>()> list_nodes;
  std::function<void(NodeId)> kill_node;
  /// Nodes currently hosting at least one AM container.
  std::function<std::vector<NodeId>()> list_am_nodes;
  /// Node hosting a specific submission's AM; < 0 when unknown.
  std::function<NodeId(int64_t submission)> am_node_of;
  /// Running submissions eligible for am-crash.
  std::function<std::vector<int64_t>()> list_submissions;
  std::function<void(int64_t submission)> crash_am;
  /// Running non-AM task containers.
  std::function<std::vector<int64_t>()> list_containers;
  std::function<void(int64_t container)> fail_container;
  /// Nodes eligible for spot-revoke (the spot partition of the fleet);
  /// unset falls back to list_nodes — every worker is then revocable.
  std::function<std::vector<NodeId>()> list_spot_nodes;
  /// Announces a revocation: `node` drains for `warn_s` seconds, then
  /// dies (the handler owns the drain + deferred kill sequence).
  std::function<void(NodeId node, double warn_s)> revoke_node;
  /// True while the workload is still running; recurring faults stop
  /// once this turns false after having been true.
  std::function<bool()> active;
};

struct FaultCounters {
  int node_kills = 0;
  int am_crashes = 0;
  int container_kills = 0;
  int64_t read_faults = 0;
  int spot_revocations = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(SimEngine* engine, uint64_t seed = 20170321);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void SetHandlers(FaultHandlers handlers) { handlers_ = std::move(handlers); }

  /// Warning window applied to spot-revoke clauses that carry no warn=
  /// of their own (CLI --revoke-warning-s). Must be >= 0.
  void SetDefaultRevokeWarning(double seconds) {
    default_revoke_warning_s_ = seconds;
  }
  double default_revoke_warning_s() const { return default_revoke_warning_s_; }

  /// Schedules the given faults on the engine. May be called repeatedly;
  /// each call adds to the armed set.
  Status Arm(std::vector<FaultSpec> specs);
  /// Parses `text` with ParseFaultSpecs, then Arm()s the result.
  Status ArmSpec(std::string_view text);

  /// DFS read-fault hook (wire via Dfs::SetReadFaultHook): true when an
  /// armed hdfs-error clause decides this read fails.
  bool ShouldFailRead(const std::string& path, NodeId node);

  const FaultCounters& counters() const { return counters_; }
  const std::vector<FaultSpec>& armed() const { return armed_; }

 private:
  void Fire(const FaultSpec& spec);
  /// Schedules the next tick of a recurring fault. `seen_activity`
  /// remembers whether the workload was ever observed running, so the
  /// chain neither stops before the workload starts nor outlives it.
  void Recur(FaultSpec spec, bool seen_activity);

  SimEngine* engine_;
  Rng rng_;
  FaultHandlers handlers_;
  /// EC2-style two-minute spot notice (docs/elastic-cluster.md).
  double default_revoke_warning_s_ = 120.0;
  FaultCounters counters_;
  std::vector<FaultSpec> armed_;
  std::vector<FaultSpec> read_fault_specs_;
};

}  // namespace hiway

#endif  // HIWAY_SIM_FAULT_INJECTOR_H_
