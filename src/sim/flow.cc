#include "src/sim/flow.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace hiway {

namespace {
// Demand below this is considered delivered (guards float drift).
constexpr double kDemandEpsilon = 1e-7;
// Rates below this are treated as starvation (no completion scheduled).
constexpr double kRateEpsilon = 1e-12;
}  // namespace

ResourceId FlowNetwork::AddResource(std::string name, double capacity) {
  HIWAY_CHECK(capacity >= 0.0);
  Resource r;
  r.name = std::move(name);
  r.capacity = capacity;
  resources_.push_back(std::move(r));
  return static_cast<ResourceId>(resources_.size() - 1);
}

void FlowNetwork::SetCapacity(ResourceId id, double capacity) {
  HIWAY_CHECK(id >= 0 && static_cast<size_t>(id) < resources_.size());
  Settle();
  resources_[static_cast<size_t>(id)].capacity = capacity;
  Rebalance();
}

double FlowNetwork::Capacity(ResourceId id) const {
  HIWAY_CHECK(id >= 0 && static_cast<size_t>(id) < resources_.size());
  return resources_[static_cast<size_t>(id)].capacity;
}

const std::string& FlowNetwork::ResourceName(ResourceId id) const {
  HIWAY_CHECK(id >= 0 && static_cast<size_t>(id) < resources_.size());
  return resources_[static_cast<size_t>(id)].name;
}

FlowId FlowNetwork::StartFlow(FlowSpec spec) {
  HIWAY_CHECK(!spec.resources.empty());
  HIWAY_CHECK(spec.demand >= 0.0);
  Settle();
  HIWAY_CHECK(spec.weight > 0.0);
  FlowId id = next_flow_id_++;
  Flow flow;
  flow.resources = std::move(spec.resources);
  for (ResourceId r : flow.resources) {
    HIWAY_CHECK(r >= 0 && static_cast<size_t>(r) < resources_.size());
  }
  flow.remaining = spec.demand;
  flow.rate_cap = spec.rate_cap;
  flow.weight = spec.weight;
  flow.on_complete = std::move(spec.on_complete);
  flows_.emplace(id, std::move(flow));
  Rebalance();
  return id;
}

void FlowNetwork::CancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Settle();
  flows_.erase(it);
  Rebalance();
}

bool FlowNetwork::IsActive(FlowId id) const {
  return flows_.find(id) != flows_.end();
}

double FlowNetwork::RemainingDemand(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  // Account for progress since the last settle without mutating state.
  double dt = engine_->Now() - last_update_;
  double progressed = it->second.remaining - it->second.rate * dt;
  return std::max(progressed, 0.0);
}

double FlowNetwork::CurrentRate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::Settle() {
  SimTime now = engine_->Now();
  double dt = now - last_update_;
  if (dt < 0.0) dt = 0.0;
  if (dt > 0.0) {
    for (auto& [id, flow] : flows_) {
      if (std::isfinite(flow.remaining)) {
        flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
      }
    }
    for (auto& res : resources_) {
      res.rate_integral += res.current_rate * dt;
      if (res.active_count > 0) res.busy_integral += dt;
    }
  }
  last_update_ = now;
}

void FlowNetwork::Rebalance() {
  // --- Weighted progressive-filling max-min fairness with rate caps. ---
  // All unfrozen flows rise together at rate `level * weight` until either
  // (a) some resource saturates — its flows freeze at the current level —
  // or (b) a flow reaches its cap (normalised level cap/weight) and
  // freezes there. Repeats until every flow is frozen.
  struct ResState {
    double remaining_capacity;
    double unfrozen_weight;
    int unfrozen_count;
  };
  std::vector<ResState> rs(resources_.size());
  for (size_t i = 0; i < resources_.size(); ++i) {
    rs[i] = {resources_[i].capacity, 0.0, 0};
  }
  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    flow.rate = 0.0;
    unfrozen.push_back(&flow);
    for (ResourceId r : flow.resources) {
      rs[static_cast<size_t>(r)].unfrozen_weight += flow.weight;
      ++rs[static_cast<size_t>(r)].unfrozen_count;
    }
  }

  while (!unfrozen.empty()) {
    // Normalised level at which the tightest resource saturates.
    double min_res_level = std::numeric_limits<double>::infinity();
    for (const auto& r : rs) {
      if (r.unfrozen_count > 0) {
        min_res_level =
            std::min(min_res_level,
                     std::max(0.0, r.remaining_capacity) / r.unfrozen_weight);
      }
    }
    // Normalised level at which the most constrained flow caps out.
    double min_cap_level = std::numeric_limits<double>::infinity();
    for (const Flow* f : unfrozen) {
      min_cap_level = std::min(min_cap_level, f->rate_cap / f->weight);
    }
    double level = std::min(min_res_level, min_cap_level);
    if (!std::isfinite(level)) level = 0.0;

    std::vector<size_t> to_freeze;
    for (size_t i = 0; i < unfrozen.size(); ++i) {
      Flow* f = unfrozen[i];
      bool freeze = f->rate_cap / f->weight <= level + kRateEpsilon;
      if (!freeze) {
        for (ResourceId r : f->resources) {
          const auto& st = rs[static_cast<size_t>(r)];
          double res_level =
              std::max(0.0, st.remaining_capacity) / st.unfrozen_weight;
          if (res_level <= level + kRateEpsilon) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) to_freeze.push_back(i);
    }
    if (to_freeze.empty()) {
      // Numerical corner: force progress by freezing everything at level.
      for (size_t i = 0; i < unfrozen.size(); ++i) to_freeze.push_back(i);
    }

    // Apply freezes (reverse order keeps indices valid on erase).
    for (auto it = to_freeze.rbegin(); it != to_freeze.rend(); ++it) {
      Flow* f = unfrozen[*it];
      double rate = std::min(level * f->weight, f->rate_cap);
      f->rate = rate;
      for (ResourceId r : f->resources) {
        auto& st = rs[static_cast<size_t>(r)];
        st.remaining_capacity -= rate;
        st.unfrozen_weight -= f->weight;
        --st.unfrozen_count;
      }
      unfrozen.erase(unfrozen.begin() + static_cast<ptrdiff_t>(*it));
    }
  }

  // Refresh per-resource instantaneous accounting.
  for (auto& res : resources_) {
    res.current_rate = 0.0;
    res.active_count = 0;
  }
  for (const auto& [id, flow] : flows_) {
    for (ResourceId r : flow.resources) {
      auto& res = resources_[static_cast<size_t>(r)];
      res.current_rate += flow.rate;
      ++res.active_count;
    }
  }
  for (auto& res : resources_) {
    res.peak_rate = std::max(res.peak_rate, res.current_rate);
  }

  // (Re)schedule the next completion event.
  if (has_pending_event_) {
    engine_->Cancel(pending_event_);
    has_pending_event_ = false;
  }
  double next_dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (!std::isfinite(flow.remaining)) continue;
    if (flow.remaining <= kDemandEpsilon) {
      next_dt = 0.0;
      break;
    }
    if (flow.rate > kRateEpsilon) {
      next_dt = std::min(next_dt, flow.remaining / flow.rate);
    }
  }
  if (std::isfinite(next_dt)) {
    pending_event_ =
        engine_->ScheduleAfter(next_dt, [this] { OnCompletionEvent(); });
    has_pending_event_ = true;
  }
}

void FlowNetwork::OnCompletionEvent() {
  has_pending_event_ = false;
  Settle();
  // Collect finished flows first so that callbacks observe a consistent
  // network (they frequently start follow-up flows).
  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (std::isfinite(it->second.remaining) &&
        it->second.remaining <= kDemandEpsilon) {
      if (it->second.on_complete) {
        callbacks.push_back(std::move(it->second.on_complete));
      }
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  Rebalance();
  for (auto& cb : callbacks) cb();
}

ResourceStats FlowNetwork::Stats(ResourceId id) const {
  HIWAY_CHECK(id >= 0 && static_cast<size_t>(id) < resources_.size());
  const Resource& res = resources_[static_cast<size_t>(id)];
  ResourceStats out;
  out.capacity = res.capacity;
  out.peak_rate = res.peak_rate;
  double window = engine_->Now() - stats_start_;
  // Include un-settled progress since last_update_.
  double extra = engine_->Now() - last_update_;
  double rate_integral = res.rate_integral + res.current_rate * extra;
  double busy_integral =
      res.busy_integral + (res.active_count > 0 ? extra : 0.0);
  if (window > 0.0) {
    out.mean_rate = rate_integral / window;
    out.busy_fraction = busy_integral / window;
  }
  return out;
}

void FlowNetwork::ResetStats() {
  Settle();
  stats_start_ = engine_->Now();
  for (auto& res : resources_) {
    res.rate_integral = 0.0;
    res.busy_integral = 0.0;
    res.peak_rate = res.current_rate;
  }
}

}  // namespace hiway
