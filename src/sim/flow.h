// Max-min fair flow network: the performance model of the simulator.
//
// Every concurrent activity (a CPU burst, a disk read, a network transfer)
// is a *flow* that must cross one or more *shared resources* (a node's CPU
// cores, its disk bandwidth, its NIC, the cluster switch, an EBS volume, an
// S3 uplink). At any instant, rates are assigned by progressive-filling
// max-min fairness with optional per-flow rate caps (e.g. a task that can
// only use 8 threads). A flow completes once its total demand has been
// delivered; completions are discrete events on the SimEngine.
//
// This model reproduces the contention phenomena the Hi-WAY paper's
// evaluation rests on: a saturated 1 GbE switch (Fig. 4), a shared EBS
// volume (Fig. 8), and stress-process interference (Fig. 9).

#ifndef HIWAY_SIM_FLOW_H_
#define HIWAY_SIM_FLOW_H_

#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/sim/engine.h"

namespace hiway {

using ResourceId = int32_t;
using FlowId = int64_t;

constexpr double kInfiniteDemand = std::numeric_limits<double>::infinity();
constexpr double kNoRateCap = std::numeric_limits<double>::infinity();

/// Time-averaged usage statistics for one resource.
struct ResourceStats {
  double capacity = 0.0;
  /// Mean allocated rate over the observation window (same unit as
  /// capacity, e.g. cores or MB/s). Comparable to Linux load average for
  /// CPU resources.
  double mean_rate = 0.0;
  /// Fraction of the window during which at least one flow was active
  /// (i.e. `iostat`-style device utilisation).
  double busy_fraction = 0.0;
  /// Peak instantaneous allocated rate observed.
  double peak_rate = 0.0;
};

/// Parameters for starting a flow.
struct FlowSpec {
  /// Resources the flow crosses; its rate is bounded by its fair share on
  /// each. Must be non-empty.
  std::vector<ResourceId> resources;
  /// Total units (e.g. MB, core-seconds) to deliver. kInfiniteDemand makes
  /// a permanent background flow (never completes; cancel explicitly).
  double demand = 0.0;
  /// Upper bound on the instantaneous rate (e.g. thread count for a CPU
  /// flow). kNoRateCap disables the bound.
  double rate_cap = kNoRateCap;
  /// Fair-share weight: a flow of weight w receives w times the share of a
  /// weight-1 flow on contended resources. Lets N identical background
  /// processes (`stress --cpu N`) be modelled as one flow of weight N.
  double weight = 1.0;
  /// Invoked (via the engine, at completion time) once the demand has been
  /// fully delivered.
  std::function<void()> on_complete;
};

class FlowNetwork {
 public:
  explicit FlowNetwork(SimEngine* engine) : engine_(engine) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Registers a resource with the given capacity (units/second).
  ResourceId AddResource(std::string name, double capacity);

  /// Adjusts capacity at the current virtual time (e.g. node slowdown).
  void SetCapacity(ResourceId id, double capacity);

  double Capacity(ResourceId id) const;
  const std::string& ResourceName(ResourceId id) const;

  /// Starts a flow; rates of all flows are re-balanced immediately.
  FlowId StartFlow(FlowSpec spec);

  /// Cancels an in-flight flow without invoking its completion callback.
  /// Unknown / already-completed ids are ignored.
  void CancelFlow(FlowId id);

  /// True if the flow is still in flight.
  bool IsActive(FlowId id) const;

  /// Remaining demand of an active flow (infinity for permanent flows).
  double RemainingDemand(FlowId id) const;

  /// Current assigned rate of an active flow.
  double CurrentRate(FlowId id) const;

  /// Number of flows currently in flight.
  size_t active_flows() const { return flows_.size(); }

  /// Usage statistics since the last ResetStats (or construction).
  ResourceStats Stats(ResourceId id) const;

  /// Clears accumulated statistics for all resources; the observation
  /// window restarts at the current virtual time.
  void ResetStats();

 private:
  struct Resource {
    std::string name;
    double capacity = 0.0;
    // Accounting.
    double rate_integral = 0.0;   // sum of rate * dt
    double busy_integral = 0.0;   // sum of (any flow active) * dt
    double peak_rate = 0.0;
    double current_rate = 0.0;    // sum of flow rates at `last_update`
    int active_count = 0;         // flows crossing this resource
  };

  struct Flow {
    std::vector<ResourceId> resources;
    double remaining = 0.0;
    double rate_cap = kNoRateCap;
    double weight = 1.0;
    double rate = 0.0;
    std::function<void()> on_complete;
  };

  /// Advances all flow progress / statistics to engine_->Now().
  void Settle();

  /// Recomputes max-min fair rates and (re)schedules the next completion.
  void Rebalance();

  /// Event handler: completes every flow whose demand has been delivered.
  void OnCompletionEvent();

  SimEngine* engine_;
  std::vector<Resource> resources_;
  std::map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
  SimTime last_update_ = 0.0;
  SimTime stats_start_ = 0.0;
  EventId pending_event_ = 0;
  bool has_pending_event_ = false;
};

}  // namespace hiway

#endif  // HIWAY_SIM_FLOW_H_
