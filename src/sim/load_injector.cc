#include <cmath>

#include "src/sim/load_injector.h"

namespace hiway {

namespace {

// Aggregate fair-share weight of N stress processes. On the paper's EC2
// VMs the interference of `stress` grows clearly but *sub-linearly* with
// the process count (Fig. 9's runtimes stay within one order of magnitude
// across 1..256 processes): Linux CFS groups a session's spinners under a
// shared weight, leaving residual per-process pressure. 1 + log2(N)
// reproduces that observed envelope (weights 1,3,5,7,9 for the paper's
// 1/4/16/64/256 levels).
double StressWeight(int count) {
  return 1.0 + std::log2(static_cast<double>(count));
}

}  // namespace

void LoadInjector::StressCpu(NodeId node, int count) {
  if (count <= 0) return;
  FlowSpec spec;
  spec.resources = {cluster_->cpu(node)};
  spec.demand = kInfiniteDemand;
  spec.weight = StressWeight(count);
  spec.rate_cap = static_cast<double>(count);  // N procs use <= N cores
  flows_[node].push_back(cluster_->net()->StartFlow(std::move(spec)));
}

void LoadInjector::StressDisk(NodeId node, int count, double per_proc_mbps) {
  if (count <= 0) return;
  FlowSpec spec;
  spec.resources = {cluster_->disk(node)};
  spec.demand = kInfiniteDemand;
  spec.weight = StressWeight(count);
  spec.rate_cap = static_cast<double>(count) * per_proc_mbps;
  flows_[node].push_back(cluster_->net()->StartFlow(std::move(spec)));
}

void LoadInjector::StopNode(NodeId node) {
  auto it = flows_.find(node);
  if (it == flows_.end()) return;
  for (FlowId id : it->second) {
    cluster_->net()->CancelFlow(id);
  }
  flows_.erase(it);
}

void LoadInjector::StopAll() {
  for (auto& [node, ids] : flows_) {
    for (FlowId id : ids) {
      cluster_->net()->CancelFlow(id);
    }
  }
  flows_.clear();
}

int LoadInjector::ActiveCount(NodeId node) const {
  auto it = flows_.find(node);
  return it == flows_.end() ? 0 : static_cast<int>(it->second.size());
}

}  // namespace hiway
