// Synthetic background load, mirroring the Linux `stress` tool used in the
// paper's Fig. 9 experiment: N CPU-bound spinner processes and/or N
// processes writing to the local disk, per node.

#ifndef HIWAY_SIM_LOAD_INJECTOR_H_
#define HIWAY_SIM_LOAD_INJECTOR_H_

#include <map>
#include <vector>

#include "src/sim/cluster.h"

namespace hiway {

/// Injects and removes permanent background flows on cluster nodes.
class LoadInjector {
 public:
  explicit LoadInjector(Cluster* cluster) : cluster_(cluster) {}
  ~LoadInjector() { StopAll(); }
  LoadInjector(const LoadInjector&) = delete;
  LoadInjector& operator=(const LoadInjector&) = delete;

  /// Starts `count` CPU hog processes on `node` (each demands one core,
  /// like `stress --cpu count`).
  void StressCpu(NodeId node, int count);

  /// Starts `count` disk writer processes on `node` (together they contend
  /// for the node's disk bandwidth, like `stress --hdd count`). Each
  /// writer's streaming rate is capped at `per_proc_mbps`.
  void StressDisk(NodeId node, int count, double per_proc_mbps = 40.0);

  /// Stops every injected flow on `node`.
  void StopNode(NodeId node);

  /// Stops all injected flows.
  void StopAll();

  /// Number of injected flows currently running on `node`.
  int ActiveCount(NodeId node) const;

 private:
  Cluster* cluster_;
  std::map<NodeId, std::vector<FlowId>> flows_;
};

}  // namespace hiway

#endif  // HIWAY_SIM_LOAD_INJECTOR_H_
