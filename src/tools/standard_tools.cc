#include "src/tools/standard_tools.h"

#include <cstdlib>

namespace hiway {

void RegisterGenomicsTools(ToolRegistry* registry) {
  {
    // Bowtie 2: CPU-bound, multithreaded short-read aligner. Reference
    // index is pre-installed on every node by the Chef recipes (Sec. 3.6),
    // so only the read chunk is staged.
    ToolProfile p;
    p.name = "bowtie2";
    p.cpu_seconds_per_mb = 3.0;
    p.fixed_cpu_seconds = 20.0;
    p.max_threads = 16;
    p.output_ratio = 1.15;  // SAM is slightly larger than FASTQ
    p.runtime_noise_sigma = 0.04;
    registry->Register(std::move(p));
  }
  {
    // SAMtools sort: moderate CPU, compresses SAM to BAM. When the task
    // carries the parameter cram=1 it emits CRAM referential compression
    // (the Sec. 4.1 weak-scaling experiment), shrinking the output.
    ToolProfile p;
    p.name = "samtools-sort";
    p.cpu_seconds_per_mb = 0.5;
    p.fixed_cpu_seconds = 5.0;
    p.max_threads = 4;
    p.output_ratio = 0.35;  // BAM; overridden to 0.12 via cram=1
    p.runtime_noise_sigma = 0.03;
    registry->Register(std::move(p));
  }
  {
    // VarScan: CPU-bound variant caller over sorted alignments.
    ToolProfile p;
    p.name = "varscan";
    p.cpu_seconds_per_mb = 2.2;
    p.fixed_cpu_seconds = 10.0;
    p.max_threads = 8;
    p.output_ratio = 0.02;  // VCF is small
    p.runtime_noise_sigma = 0.05;
    registry->Register(std::move(p));
  }
  {
    // ANNOVAR: annotates the (small) VCF against local databases.
    ToolProfile p;
    p.name = "annovar";
    p.cpu_seconds_per_mb = 3.0;
    p.fixed_cpu_seconds = 15.0;
    p.max_threads = 1;
    p.output_ratio = 1.5;
    p.runtime_noise_sigma = 0.03;
    registry->Register(std::move(p));
  }
}

void RegisterRnaSeqTools(ToolRegistry* registry) {
  {
    ToolProfile p;
    p.name = "fastqc";
    p.cpu_seconds_per_mb = 0.1;
    p.fixed_cpu_seconds = 10.0;
    p.max_threads = 2;
    p.output_ratio = 0.01;
    registry->Register(std::move(p));
  }
  {
    ToolProfile p;
    p.name = "trimmomatic";
    p.cpu_seconds_per_mb = 0.3;
    p.fixed_cpu_seconds = 10.0;
    p.max_threads = 4;
    p.output_ratio = 0.9;
    registry->Register(std::move(p));
  }
  {
    // TopHat 2: the dominant step — heavy multithreaded compute plus
    // "large amounts of intermediate files" (Sec. 4.2), which is exactly
    // where local SSD beats CloudMan's network EBS volume.
    ToolProfile p;
    p.name = "tophat2";
    p.cpu_seconds_per_mb = 6.0;
    p.fixed_cpu_seconds = 60.0;
    p.max_threads = 8;
    p.scratch_mb_per_input_mb = 12.0;
    p.output_ratio = 1.5;  // accepted_hits.bam
    p.runtime_noise_sigma = 0.04;
    registry->Register(std::move(p));
  }
  {
    ToolProfile p;
    p.name = "cufflinks";
    p.cpu_seconds_per_mb = 1.5;
    p.fixed_cpu_seconds = 30.0;
    p.max_threads = 8;
    p.scratch_mb_per_input_mb = 0.5;
    p.output_ratio = 0.1;
    p.runtime_noise_sigma = 0.04;
    registry->Register(std::move(p));
  }
  {
    ToolProfile p;
    p.name = "cuffmerge";
    p.cpu_seconds_per_mb = 0.2;
    p.fixed_cpu_seconds = 120.0;
    p.max_threads = 4;
    p.output_ratio = 0.8;
    registry->Register(std::move(p));
  }
  {
    // Cuffdiff: reads every sample's alignments; serial tail of TRAPLINE.
    ToolProfile p;
    p.name = "cuffdiff";
    p.cpu_seconds_per_mb = 0.5;
    p.fixed_cpu_seconds = 60.0;
    p.max_threads = 8;
    p.output_ratio = 0.01;
    p.runtime_noise_sigma = 0.04;
    registry->Register(std::move(p));
  }
}

void RegisterMontageTools(ToolRegistry* registry) {
  auto simple = [registry](const char* name, double per_mb, double fixed,
                           double out_ratio) {
    ToolProfile p;
    p.name = name;
    p.cpu_seconds_per_mb = per_mb;
    p.fixed_cpu_seconds = fixed;
    p.max_threads = 1;  // Montage binaries are single-threaded
    p.output_ratio = out_ratio;
    p.runtime_noise_sigma = 0.05;
    registry->Register(std::move(p));
  };
  // The per-image projection / correction fan-outs dominate a 0.25-degree
  // mosaic; the serial tail tasks (mConcatFit .. mJPEG) are light.
  simple("mProjectPP", 6.0, 5.0, 1.5);    // re-project one FITS image
  simple("mDiffFit", 1.0, 2.0, 0.001);    // fit plane between two overlaps
  simple("mConcatFit", 0.2, 1.5, 0.01);   // concatenate fit results
  simple("mBgModel", 0.5, 3.0, 0.01);     // global background model
  simple("mBackground", 1.5, 3.0, 1.0);   // apply background correction
  simple("mImgtbl", 0.1, 1.0, 0.001);     // build image metadata table
  simple("mAdd", 0.3, 4.0, 1.2);          // co-add into the mosaic
  simple("mShrink", 0.1, 1.5, 0.25);      // shrink the mosaic
  simple("mJPEG", 0.1, 1.0, 0.1);         // render JPEG preview
}

void RegisterKmeansTools(ToolRegistry* registry, int converge_after) {
  {
    ToolProfile p;
    p.name = "kmeans-init";
    p.cpu_seconds_per_mb = 0.05;
    p.fixed_cpu_seconds = 5.0;
    p.output_ratio = 0.001;
    p.min_output_bytes = 4096;
    registry->Register(std::move(p));
  }
  {
    ToolProfile p;
    p.name = "kmeans-assign";
    p.cpu_seconds_per_mb = 0.5;
    p.fixed_cpu_seconds = 2.0;
    p.max_threads = 4;
    p.output_ratio = 0.05;
    registry->Register(std::move(p));
  }
  {
    // Fused assign+update iteration step (the Cuneiform k-means example
    // expresses one refinement per recursion).
    ToolProfile p;
    p.name = "kmeans-step";
    p.cpu_seconds_per_mb = 0.6;
    p.fixed_cpu_seconds = 4.0;
    p.max_threads = 4;
    p.output_ratio = 0.01;
    p.min_output_bytes = 4096;
    registry->Register(std::move(p));
  }
  {
    ToolProfile p;
    p.name = "kmeans-update";
    p.cpu_seconds_per_mb = 0.2;
    p.fixed_cpu_seconds = 5.0;
    p.output_ratio = 0.5;
    p.min_output_bytes = 4096;
    registry->Register(std::move(p));
  }
  {
    // Convergence check: a data-dependent control-flow decision. The
    // synthetic criterion declares convergence on the N-th invocation
    // (N = task param "converge_after", else the registration default),
    // standing in for the residual-threshold test of real k-means.
    ToolProfile p;
    p.name = "kmeans-check";
    p.cpu_seconds_per_mb = 0.05;
    p.fixed_cpu_seconds = 2.0;
    p.output_ratio = 0.0;
    p.min_output_bytes = 16;
    p.stdout_fn = [converge_after](const ToolInvocation& inv) -> std::string {
      int threshold = converge_after;
      if (inv.task != nullptr) {
        auto it = inv.task->params.find("converge_after");
        if (it != inv.task->params.end()) {
          threshold = std::atoi(it->second.c_str());
        }
      }
      return (inv.prior_invocations + 1 >= threshold) ? "true" : "";
    };
    registry->Register(std::move(p));
  }
}

void RegisterStandardTools(ToolRegistry* registry) {
  RegisterGenomicsTools(registry);
  RegisterRnaSeqTools(registry);
  RegisterMontageTools(registry);
  RegisterKmeansTools(registry);
}

}  // namespace hiway
