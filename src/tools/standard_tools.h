// Synthetic profiles for every external tool appearing in the paper's
// evaluation (Sec. 4): the SNV-calling pipeline (Bowtie 2, SAMtools,
// VarScan, ANNOVAR), the TRAPLINE RNA-seq pipeline (FastQC, Trimmomatic,
// TopHat 2, Cufflinks, Cuffmerge, Cuffdiff), the Montage astronomy toolkit
// (mProjectPP, mDiffFit, mConcatFit, mBgModel, mBackground, mImgtbl, mAdd,
// mShrink, mJPEG), and the k-means helpers used by the iterative-workflow
// example.
//
// Profiles are calibrated so that the simulated experiments land in the
// paper's runtime ballpark (e.g. ~5.5 h for one 8 GB sample on an
// m3.large, Sec. 4.1) — absolute values are ours, shapes are the claim.

#ifndef HIWAY_TOOLS_STANDARD_TOOLS_H_
#define HIWAY_TOOLS_STANDARD_TOOLS_H_

#include "src/tools/tool_registry.h"

namespace hiway {

/// Registers the genomics (SNV calling) tool profiles.
void RegisterGenomicsTools(ToolRegistry* registry);

/// Registers the RNA-seq (TRAPLINE) tool profiles.
void RegisterRnaSeqTools(ToolRegistry* registry);

/// Registers the Montage astronomy tool profiles.
void RegisterMontageTools(ToolRegistry* registry);

/// Registers the k-means helper tools. `converge_after` bounds the
/// iteration count of the synthetic convergence check (the check's stdout
/// becomes "true" on its converge_after-th invocation), unless the task
/// itself carries a "converge_after" parameter.
void RegisterKmeansTools(ToolRegistry* registry, int converge_after = 5);

/// Registers everything above.
void RegisterStandardTools(ToolRegistry* registry);

}  // namespace hiway

#endif  // HIWAY_TOOLS_STANDARD_TOOLS_H_
