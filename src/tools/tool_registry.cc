#include "src/tools/tool_registry.h"

namespace hiway {

void ToolRegistry::Register(ToolProfile profile) {
  std::string name = profile.name;
  profiles_[name] = std::move(profile);
}

bool ToolRegistry::Contains(const std::string& name) const {
  return profiles_.find(name) != profiles_.end();
}

Result<const ToolProfile*> ToolRegistry::Find(const std::string& name) const {
  auto it = profiles_.find(name);
  if (it == profiles_.end()) {
    return Status::NotFound("no tool profile registered for: " + name);
  }
  return &it->second;
}

Result<const ToolProfile*> ToolRegistry::FindForInvocation(
    const std::string& name, int* prior_invocations) {
  auto it = profiles_.find(name);
  if (it == profiles_.end()) {
    return Status::NotFound("no tool profile registered for: " + name);
  }
  int& count = invocations_[name];
  if (prior_invocations != nullptr) *prior_invocations = count;
  ++count;
  return &it->second;
}

std::vector<std::string> ToolRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [name, profile] : profiles_) out.push_back(name);
  return out;
}

void ToolRegistry::ResetInvocationCounts() { invocations_.clear(); }

}  // namespace hiway
