// Black-box tool model.
//
// Hi-WAY never inspects what a task does — it only observes resource
// consumption (Sec. 1: "strict black-box view on tools"). A ToolProfile
// captures exactly that observable signature: CPU work per input byte,
// thread scalability, scratch I/O, output volume, and an optional stdout
// function (used by iterative workflows for convergence checks).
//
// Profiles for the tools appearing in the paper's experiments (Bowtie 2,
// SAMtools, VarScan, ANNOVAR, TopHat 2, Cufflinks, the Montage binaries,
// the k-means helpers) live in standard_tools.h.

#ifndef HIWAY_TOOLS_TOOL_REGISTRY_H_
#define HIWAY_TOOLS_TOOL_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/lang/workflow.h"

namespace hiway {

/// Context handed to a tool's stdout function.
struct ToolInvocation {
  const TaskSpec* task = nullptr;
  /// How many times this tool has been invoked before in this registry
  /// (lets synthetic convergence checks terminate deterministically).
  int prior_invocations = 0;
  /// Total input bytes staged in.
  int64_t input_bytes = 0;
};

/// Resource signature of one black-box tool.
struct ToolProfile {
  std::string name;

  /// Core-seconds of compute per MiB of input (at reference speed 1.0).
  double cpu_seconds_per_mb = 0.0;
  /// Fixed startup compute cost in core-seconds (JVM warmup, index load).
  double fixed_cpu_seconds = 1.0;
  /// Maximum useful parallelism; the effective rate cap is
  /// min(max_threads, container vcores).
  int max_threads = 1;

  /// Scratch I/O written to the local disk per MiB of input, concurrent
  /// with the compute phase (TopHat-style intermediate spill).
  double scratch_mb_per_input_mb = 0.0;

  /// Total output bytes per input byte, split evenly across file outputs
  /// unless `output_ratio_by_param` names them individually.
  double output_ratio = 1.0;
  std::map<std::string, double> output_ratio_by_param;
  /// Minimum size of any produced file, bytes (log files etc. are never
  /// truly empty).
  int64_t min_output_bytes = 1024;

  /// Multiplicative log-normal noise applied to the compute work; 0
  /// disables noise (fully deterministic tools).
  double runtime_noise_sigma = 0.0;

  /// Probability that an invocation fails (transient tool error); the AM
  /// retries failed tasks on other nodes.
  double failure_probability = 0.0;

  /// Synthesises the task's stdout; default empty.
  std::function<std::string(const ToolInvocation&)> stdout_fn;
};

/// Per-run registry of tool profiles; also tracks invocation counts so
/// synthetic convergence checks behave deterministically.
class ToolRegistry {
 public:
  ToolRegistry() = default;

  /// Registers (or replaces) a profile.
  void Register(ToolProfile profile);

  bool Contains(const std::string& name) const;

  Result<const ToolProfile*> Find(const std::string& name) const;

  /// Returns the profile and bumps its invocation counter.
  Result<const ToolProfile*> FindForInvocation(const std::string& name,
                                               int* prior_invocations);

  std::vector<std::string> Names() const;

  /// Resets per-run invocation counters (between consecutive workflow
  /// executions of the Fig. 9 experiment).
  void ResetInvocationCounts();

 private:
  std::map<std::string, ToolProfile> profiles_;
  std::map<std::string, int> invocations_;
};

}  // namespace hiway

#endif  // HIWAY_TOOLS_TOOL_REGISTRY_H_
