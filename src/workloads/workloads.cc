#include "src/workloads/workloads.h"

#include "src/common/json.h"
#include "src/common/strings.h"

namespace hiway {

// ------------------------------------------------------------ SNV calling -

GeneratedWorkload MakeSnvCallingWorkflow(const SnvWorkloadOptions& options) {
  GeneratedWorkload out;
  std::string reads_list = "[";
  for (int i = 0; i < options.num_chunks; ++i) {
    std::string path =
        StrFormat("%s/chunk%04d.fq.gz", options.input_dir.c_str(), i);
    out.inputs.emplace_back(path, options.chunk_bytes);
    if (i > 0) reads_list += ", ";
    reads_list += "'" + path + "'";
  }
  reads_list += "]";

  // The sort step's output ratio models BAM (0.35) vs CRAM referential
  // compression (0.12); the property is forwarded to the tool model.
  const char* sort_ratio = options.cram_compression ? "0.12" : "0.35";

  out.document = StrFormat(
      "%% Single nucleotide variant calling [Pabinger et al. 2014],\n"
      "%% as evaluated in Sec. 4.1 of the Hi-WAY paper.\n"
      "deftask align( sam : reads ) in 'bowtie2';\n"
      "deftask sort( bam : sam ) in 'samtools-sort' { output_ratio: '%s' };\n"
      "deftask call( vcf : bam ) in 'varscan';\n"
      "deftask annotate( csv : vcf ) in 'annovar';\n"
      "let reads = %s;\n"
      "let sams = align( reads: reads );\n"
      "let bams = sort( sam: sams );\n"
      "let vcfs = call( bam: bams );\n"
      "let csvs = annotate( vcf: vcfs );\n"
      "target csvs;\n",
      sort_ratio, reads_list.c_str());
  return out;
}

// ---------------------------------------------------------------- RNA-seq -

namespace {

std::string SampleName(int condition, int replicate) {
  return StrFormat("%s_rep%d", condition == 0 ? "young" : "aged",
                   replicate + 1);
}

Json Connection(int64_t step, const std::string& output = "output") {
  Json c = Json::MakeObject();
  c.Set("id", step);
  c.Set("output_name", output);
  return c;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> TraplineInputBindings(
    const RnaSeqWorkloadOptions& options) {
  std::vector<std::pair<std::string, std::string>> out;
  for (int c = 0; c < 2; ++c) {
    for (int r = 0; r < options.replicates_per_condition; ++r) {
      std::string name = SampleName(c, r);
      out.emplace_back(name, StrFormat("%s/%s.fastq.gz",
                                       options.input_dir.c_str(),
                                       name.c_str()));
    }
  }
  return out;
}

GeneratedWorkload MakeTraplineWorkflow(const RnaSeqWorkloadOptions& options) {
  GeneratedWorkload out;
  const int reps = options.replicates_per_condition;
  const int samples = 2 * reps;

  Json steps = Json::MakeObject();
  int64_t next_id = 0;
  std::vector<int64_t> input_ids;
  std::vector<int64_t> cufflinks_ids;
  std::vector<int64_t> tophat_ids;

  // Data inputs (placeholders resolved at submission).
  for (int c = 0; c < 2; ++c) {
    for (int r = 0; r < reps; ++r) {
      std::string name = SampleName(c, r);
      out.inputs.emplace_back(StrFormat("%s/%s.fastq.gz",
                                        options.input_dir.c_str(),
                                        name.c_str()),
                              options.sample_bytes);
      Json step = Json::MakeObject();
      step.Set("id", next_id);
      step.Set("type", "data_input");
      Json inputs = Json::MakeArray();
      Json input = Json::MakeObject();
      input.Set("name", name);
      inputs.Append(std::move(input));
      step.Set("inputs", std::move(inputs));
      steps.Set(StrFormat("%lld", static_cast<long long>(next_id)),
                std::move(step));
      input_ids.push_back(next_id);
      ++next_id;
    }
  }

  auto add_tool_step = [&](const std::string& tool_id,
                           std::vector<std::pair<std::string, Json>> conns,
                           std::vector<std::pair<std::string, std::string>>
                               outputs) -> int64_t {
    Json step = Json::MakeObject();
    step.Set("id", next_id);
    step.Set("type", "tool");
    step.Set("tool_id", tool_id);
    Json connections = Json::MakeObject();
    for (auto& [name, conn] : conns) {
      connections.Set(name, std::move(conn));
    }
    step.Set("input_connections", std::move(connections));
    Json outs = Json::MakeArray();
    for (auto& [name, type] : outputs) {
      Json o = Json::MakeObject();
      o.Set("name", name);
      o.Set("type", type);
      outs.Append(std::move(o));
    }
    step.Set("outputs", std::move(outs));
    steps.Set(StrFormat("%lld", static_cast<long long>(next_id)),
              std::move(step));
    return next_id++;
  };

  // Per-sample chains.
  for (int s = 0; s < samples; ++s) {
    int64_t in = input_ids[static_cast<size_t>(s)];
    add_tool_step("toolshed/repos/devteam/fastqc/fastqc/0.11",
                  {{"input", Connection(in)}}, {{"report", "html"}});
    int64_t trimmed = add_tool_step(
        "toolshed/repos/pjbriggs/trimmomatic/trimmomatic/0.36",
        {{"input", Connection(in)}}, {{"output", "fastq"}});
    int64_t aligned = add_tool_step(
        "toolshed/repos/devteam/tophat2/tophat2/2.1.0",
        {{"input", Connection(trimmed)}}, {{"output", "bam"}});
    tophat_ids.push_back(aligned);
    int64_t quantified = add_tool_step(
        "toolshed/repos/devteam/cufflinks/cufflinks/2.2.1",
        {{"input", Connection(aligned)}}, {{"output", "gtf"}});
    cufflinks_ids.push_back(quantified);
  }

  // Cuffmerge over all assembled transcripts.
  Json merge_conns = Json::MakeArray();
  for (int64_t id : cufflinks_ids) merge_conns.Append(Connection(id));
  int64_t merged = add_tool_step(
      "toolshed/repos/devteam/cuffmerge/cuffmerge/2.2.1",
      {{"inputs", std::move(merge_conns)}}, {{"output", "gtf"}});

  // Cuffdiff: merged annotation + every sample's alignments.
  Json diff_bams = Json::MakeArray();
  for (int64_t id : tophat_ids) diff_bams.Append(Connection(id));
  add_tool_step("toolshed/repos/devteam/cuffdiff/cuffdiff/2.2.1",
                {{"annotation", Connection(merged)},
                 {"alignments", std::move(diff_bams)}},
                {{"output", "tabular"}});

  Json doc = Json::MakeObject();
  doc.Set("a_galaxy_workflow", "true");
  doc.Set("name", "TRAPLINE");
  doc.Set("annotation",
          "Standardized RNA-seq analysis pipeline [Wolfien et al. 2016]");
  doc.Set("format-version", "0.1");
  doc.Set("steps", std::move(steps));
  out.document = doc.Dump(2);
  return out;
}

// ---------------------------------------------------------------- Montage -

GeneratedWorkload MakeMontageWorkflow(const MontageWorkloadOptions& options) {
  GeneratedWorkload out;
  const int n = options.num_images;
  std::string xml =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<!-- Montage 0.25 degree mosaic of the Omega Nebula (Sec. 4.3) -->\n"
      "<adag name=\"montage-0.25\">\n";
  int job_seq = 1;
  auto job_id = [&]() { return StrFormat("ID%05d", job_seq++); };

  const int64_t img = options.image_bytes;
  const int64_t projected = static_cast<int64_t>(img * 1.5);

  // Raw input images. DAX files use *logical* file names; the DaxSource
  // front-end maps every name under its file prefix (default "/dax/"), so
  // the staged input paths carry the same prefix.
  (void)options.input_dir;  // logical names are bare in the DAX document
  for (int i = 0; i < n; ++i) {
    out.inputs.emplace_back(StrFormat("/dax/raw_%02d.fits", i), img);
  }

  // mProjectPP per image.
  for (int i = 0; i < n; ++i) {
    xml += StrFormat(
        "  <job id=\"%s\" name=\"mProjectPP\">\n"
        "    <argument>-X raw_%02d.fits proj_%02d.fits "
        "region.hdr</argument>\n"
        "    <uses file=\"raw_%02d.fits\" link=\"input\" size=\"%lld\"/>\n"
        "    <uses file=\"proj_%02d.fits\" link=\"output\" size=\"%lld\"/>\n"
        "  </job>\n",
        job_id().c_str(), i, i, i, static_cast<long long>(img), i,
        static_cast<long long>(projected));
  }
  // Overlap pairs: adjacent and next-adjacent images overlap on the sky.
  struct Pair {
    int a, b;
  };
  std::vector<Pair> overlaps;
  for (int i = 0; i + 1 < n; ++i) overlaps.push_back({i, i + 1});
  for (int i = 0; i + 2 < n; ++i) overlaps.push_back({i, i + 2});

  // mDiffFit per overlap.
  for (size_t k = 0; k < overlaps.size(); ++k) {
    xml += StrFormat(
        "  <job id=\"%s\" name=\"mDiffFit\">\n"
        "    <argument>proj_%02d.fits proj_%02d.fits fit_%03zu.txt</argument>\n"
        "    <uses file=\"proj_%02d.fits\" link=\"input\"/>\n"
        "    <uses file=\"proj_%02d.fits\" link=\"input\"/>\n"
        "    <uses file=\"fit_%03zu.txt\" link=\"output\" size=\"2048\"/>\n"
        "  </job>\n",
        job_id().c_str(), overlaps[k].a, overlaps[k].b, k, overlaps[k].a,
        overlaps[k].b, k);
  }
  // mConcatFit over all fit results.
  xml += StrFormat("  <job id=\"%s\" name=\"mConcatFit\">\n",
                   job_id().c_str());
  xml += "    <argument>fits.tbl</argument>\n";
  for (size_t k = 0; k < overlaps.size(); ++k) {
    xml += StrFormat("    <uses file=\"fit_%03zu.txt\" link=\"input\"/>\n", k);
  }
  xml += "    <uses file=\"fits.tbl\" link=\"output\" size=\"8192\"/>\n";
  xml += "  </job>\n";
  // mBgModel.
  xml += StrFormat(
      "  <job id=\"%s\" name=\"mBgModel\">\n"
      "    <argument>fits.tbl corrections.tbl</argument>\n"
      "    <uses file=\"fits.tbl\" link=\"input\"/>\n"
      "    <uses file=\"corrections.tbl\" link=\"output\" size=\"4096\"/>\n"
      "  </job>\n",
      job_id().c_str());
  // mBackground per image.
  for (int i = 0; i < n; ++i) {
    xml += StrFormat(
        "  <job id=\"%s\" name=\"mBackground\">\n"
        "    <argument>proj_%02d.fits corr_%02d.fits</argument>\n"
        "    <uses file=\"proj_%02d.fits\" link=\"input\"/>\n"
        "    <uses file=\"corrections.tbl\" link=\"input\"/>\n"
        "    <uses file=\"corr_%02d.fits\" link=\"output\" size=\"%lld\"/>\n"
        "  </job>\n",
        job_id().c_str(), i, i, i, i, static_cast<long long>(projected));
  }
  // mImgtbl.
  xml += StrFormat("  <job id=\"%s\" name=\"mImgtbl\">\n", job_id().c_str());
  xml += "    <argument>images.tbl</argument>\n";
  for (int i = 0; i < n; ++i) {
    xml += StrFormat("    <uses file=\"corr_%02d.fits\" link=\"input\"/>\n",
                     i);
  }
  xml += "    <uses file=\"images.tbl\" link=\"output\" size=\"4096\"/>\n";
  xml += "  </job>\n";
  // mAdd.
  xml += StrFormat("  <job id=\"%s\" name=\"mAdd\">\n", job_id().c_str());
  xml += "    <argument>images.tbl mosaic.fits</argument>\n";
  xml += "    <uses file=\"images.tbl\" link=\"input\"/>\n";
  for (int i = 0; i < n; ++i) {
    xml += StrFormat("    <uses file=\"corr_%02d.fits\" link=\"input\"/>\n",
                     i);
  }
  xml += StrFormat(
      "    <uses file=\"mosaic.fits\" link=\"output\" size=\"%lld\"/>\n",
      static_cast<long long>(projected * n));
  xml += "  </job>\n";
  // mShrink + mJPEG.
  xml += StrFormat(
      "  <job id=\"%s\" name=\"mShrink\">\n"
      "    <argument>mosaic.fits shrunken.fits</argument>\n"
      "    <uses file=\"mosaic.fits\" link=\"input\"/>\n"
      "    <uses file=\"shrunken.fits\" link=\"output\" size=\"%lld\"/>\n"
      "  </job>\n",
      job_id().c_str(), static_cast<long long>(projected * n / 4));
  xml += StrFormat(
      "  <job id=\"%s\" name=\"mJPEG\">\n"
      "    <argument>shrunken.fits mosaic.jpg</argument>\n"
      "    <uses file=\"shrunken.fits\" link=\"input\"/>\n"
      "    <uses file=\"mosaic.jpg\" link=\"output\" size=\"%lld\"/>\n"
      "  </job>\n",
      job_id().c_str(), static_cast<long long>(projected * n / 40));
  xml += "</adag>\n";
  out.document = std::move(xml);
  return out;
}

// ---------------------------------------------------------------- k-means -

GeneratedWorkload MakeKmeansWorkflow(const KmeansWorkloadOptions& options) {
  GeneratedWorkload out;
  out.inputs.emplace_back(options.input_path, options.points_bytes);
  out.document = StrFormat(
      "%% Iterative k-means clustering (Sec. 3.3): refine centroids until\n"
      "%% the convergence check's stdout is truthy.\n"
      "deftask init( c : points ) in 'kmeans-init';\n"
      "deftask step( next : points centroids ) in 'kmeans-step';\n"
      "deftask check( <ok> : old new ) in 'kmeans-check'\n"
      "  { converge_after: '%d' };\n"
      "defun iterate(points, centroids) {\n"
      "  if check( old: centroids,\n"
      "            new: step( points: points, centroids: centroids ) )\n"
      "  then step( points: points, centroids: centroids )\n"
      "  else iterate( points,\n"
      "                step( points: points, centroids: centroids ) )\n"
      "  end\n"
      "}\n"
      "target iterate( '%s', init( points: '%s' ) );\n",
      options.converge_after, options.input_path.c_str(),
      options.input_path.c_str());
  return out;
}

}  // namespace hiway
