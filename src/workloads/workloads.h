// Generators for the four workloads of the paper's evaluation (Table 1):
//
//  * SNV calling (genomics, Cuneiform)     — Sec. 4.1, Fig. 4/5, Table 2
//  * TRAPLINE RNA-seq (Galaxy JSON)        — Sec. 4.2, Fig. 8
//  * Montage mosaic (Pegasus DAX)          — Sec. 4.3, Fig. 9
//  * k-means clustering (iterative Cuneiform) — Sec. 3.3 example
//
// Each generator returns the workflow document in its native language plus
// the input files that must be staged before execution, mirroring how the
// paper's Chef recipes provision inputs (Sec. 3.6).

#ifndef HIWAY_WORKLOADS_WORKLOADS_H_
#define HIWAY_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hiway {

/// A generated workflow document plus its required input files.
struct GeneratedWorkload {
  /// Workflow text in the native language (Cuneiform / DAX XML / Galaxy
  /// JSON).
  std::string document;
  /// Files to stage into storage before submission: (path, size bytes).
  std::vector<std::pair<std::string, int64_t>> inputs;
};

// ------------------------------------------------------------ SNV calling -

struct SnvWorkloadOptions {
  /// Number of read chunks ("eight files, each about one gigabyte" per
  /// sample in the weak-scaling experiment).
  int num_chunks = 8;
  int64_t chunk_bytes = 1LL << 30;
  /// CRAM referential compression of intermediate alignments (Sec. 4.1,
  /// second experiment).
  bool cram_compression = false;
  std::string input_dir = "/in/1000genomes";
  std::string output_dir = "/out/snv";
};

/// Single-nucleotide-variant calling: align (Bowtie 2) -> sort (SAMtools)
/// -> call (VarScan) -> annotate (ANNOVAR), mapped over read chunks.
GeneratedWorkload MakeSnvCallingWorkflow(const SnvWorkloadOptions& options);

// ---------------------------------------------------------------- RNA-seq -

struct RnaSeqWorkloadOptions {
  /// Samples per condition ("each of these two samples is expected to be
  /// available in triplicates" -> 2 x 3 = 6, degree of parallelism 6).
  int replicates_per_condition = 3;
  int64_t sample_bytes = 1740LL << 20;  // ~1.7 GB per replicate, 10+ GB total
  std::string input_dir = "/in/geo";
};

/// The TRAPLINE Galaxy workflow: per-sample FastQC / Trimmomatic /
/// TopHat 2 / Cufflinks chains feeding Cuffmerge and a final Cuffdiff
/// comparing the two conditions. Returns the Galaxy JSON export.
GeneratedWorkload MakeTraplineWorkflow(const RnaSeqWorkloadOptions& options);

/// Input-name -> DFS path map for resolving the workflow's data_input
/// placeholders (what the paper resolves interactively on submission).
std::vector<std::pair<std::string, std::string>> TraplineInputBindings(
    const RnaSeqWorkloadOptions& options);

// ---------------------------------------------------------------- Montage -

struct MontageWorkloadOptions {
  /// Number of raw telescope images; degree 0.25 yields a "comparably
  /// small workflow with a maximum degree of parallelism of eleven".
  int num_images = 11;
  int64_t image_bytes = 4LL << 20;
  std::string input_dir = "/in/2mass";
};

/// Montage 0.25-degree mosaic as a Pegasus DAX document: mProjectPP per
/// image, mDiffFit per overlap, mConcatFit, mBgModel, mBackground per
/// image, mImgtbl, mAdd, mShrink, mJPEG.
GeneratedWorkload MakeMontageWorkflow(const MontageWorkloadOptions& options);

// ---------------------------------------------------------------- k-means -

struct KmeansWorkloadOptions {
  int64_t points_bytes = 64LL << 20;
  /// Iterations until the synthetic convergence check fires (forwarded to
  /// the kmeans-check tool as a task parameter).
  int converge_after = 5;
  std::string input_path = "/in/kmeans/points.csv";
};

/// Iterative k-means as a recursive Cuneiform workflow (the paper's
/// flagship example of data-dependent control flow).
GeneratedWorkload MakeKmeansWorkflow(const KmeansWorkloadOptions& options);

}  // namespace hiway

#endif  // HIWAY_WORKLOADS_WORKLOADS_H_
