#include "src/yarn/rm_scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace hiway {

double RmTenancyView::DominantShare(const ResourceUsage& u) const {
  double cores = total_vcores > 0
                     ? static_cast<double>(u.vcores) / total_vcores
                     : 0.0;
  double mem = total_memory_mb > 0.0 ? u.memory_mb / total_memory_mb : 0.0;
  return std::max(cores, mem);
}

bool RmTenancyView::WithinMaxShare(const std::string& queue,
                                   const ContainerRequest& r) const {
  auto cfg_it = queue_configs->find(queue);
  if (cfg_it == queue_configs->end()) return true;  // unknown: no cap
  const RmQueueConfig& cfg = cfg_it->second;
  ResourceUsage used;
  auto qs_it = queue_stats->find(queue);
  if (qs_it != queue_stats->end()) used = qs_it->second.usage;
  double cap_vcores = cfg.max_share * total_vcores;
  double cap_memory = cfg.max_share * total_memory_mb;
  return used.vcores + r.vcores <= cap_vcores + 1e-9 &&
         used.memory_mb + r.memory_mb <= cap_memory + 1e-9;
}

namespace {

/// Arrival order: byte-for-byte the original single-tenant RM behaviour.
class FifoRmScheduler : public RmScheduler {
 public:
  std::string name() const override { return "fifo"; }
  RmStrategyKind kind() const override { return RmStrategyKind::kFifo; }
  int SelectNext(const std::vector<RmCandidate>& eligible,
                 const RmTenancyView& view) override {
    (void)view;
    return eligible.empty() ? -1 : 0;
  }
};

/// Hierarchical queues with guaranteed and maximum shares: the queue
/// furthest below its guarantee goes first; requests that would push a
/// queue past its maximum share are not offered capacity this pass.
class CapacityRmScheduler : public RmScheduler {
 public:
  std::string name() const override { return "capacity"; }
  RmStrategyKind kind() const override { return RmStrategyKind::kCapacity; }
  int SelectNext(const std::vector<RmCandidate>& eligible,
                 const RmTenancyView& view) override {
    int best = -1;
    double best_pressure = std::numeric_limits<double>::infinity();
    const std::string* best_queue = nullptr;
    std::set<std::string> seen;
    for (size_t i = 0; i < eligible.size(); ++i) {
      const RmCandidate& c = eligible[i];
      if (!view.WithinMaxShare(*c.queue, *c.request)) continue;
      // Only each queue's first (oldest) candidate competes; later ones
      // inherit FIFO order within their queue.
      if (!seen.insert(*c.queue).second) continue;
      ResourceUsage used;
      auto qs_it = view.queue_stats->find(*c.queue);
      if (qs_it != view.queue_stats->end()) used = qs_it->second.usage;
      double guaranteed = 1.0;
      auto cfg_it = view.queue_configs->find(*c.queue);
      if (cfg_it != view.queue_configs->end()) {
        guaranteed = cfg_it->second.guaranteed_share;
      }
      if (guaranteed <= 0.0) guaranteed = 1e-9;
      double pressure = view.DominantShare(used) / guaranteed;
      if (pressure < best_pressure ||
          (pressure == best_pressure && best_queue != nullptr &&
           *c.queue < *best_queue)) {
        best_pressure = pressure;
        best = static_cast<int>(i);
        best_queue = c.queue;
      }
    }
    return best;
  }
};

/// Dominant-resource fairness across applications: the app with the
/// smallest weighted dominant share is served first (Ghodsi et al.,
/// NSDI'11). Queue maximum shares still cap aggregate usage.
class FairRmScheduler : public RmScheduler {
 public:
  std::string name() const override { return "fair"; }
  RmStrategyKind kind() const override { return RmStrategyKind::kFair; }
  int SelectNext(const std::vector<RmCandidate>& eligible,
                 const RmTenancyView& view) override {
    int best = -1;
    double best_share = std::numeric_limits<double>::infinity();
    ApplicationId best_app = -1;
    std::set<ApplicationId> seen;
    for (size_t i = 0; i < eligible.size(); ++i) {
      const RmCandidate& c = eligible[i];
      if (!view.WithinMaxShare(*c.queue, *c.request)) continue;
      // Only each app's oldest candidate competes (FIFO within app).
      if (!seen.insert(c.app).second) continue;
      ResourceUsage used;
      auto as_it = view.app_stats->find(c.app);
      if (as_it != view.app_stats->end()) used = as_it->second.usage;
      double weight = 1.0;
      auto cfg_it = view.queue_configs->find(*c.queue);
      if (cfg_it != view.queue_configs->end()) {
        weight = cfg_it->second.weight;
      }
      if (weight <= 0.0) weight = 1e-9;
      double share = view.DominantShare(used) / weight;
      if (share < best_share ||
          (share == best_share && c.app < best_app)) {
        best_share = share;
        best = static_cast<int>(i);
        best_app = c.app;
      }
    }
    return best;
  }
};

}  // namespace

Result<std::unique_ptr<RmScheduler>> MakeRmScheduler(
    const std::string& name) {
  if (name == "fifo") return std::unique_ptr<RmScheduler>(
      std::make_unique<FifoRmScheduler>());
  if (name == "capacity") return std::unique_ptr<RmScheduler>(
      std::make_unique<CapacityRmScheduler>());
  if (name == "fair") return std::unique_ptr<RmScheduler>(
      std::make_unique<FairRmScheduler>());
  return Status::InvalidArgument(
      "unknown RM scheduler '" + name + "' (want fifo | capacity | fair)");
}

std::vector<ContainerId> SelectPreemptionVictims(
    const std::vector<PreemptionCandidate>& candidates,
    const RmTenancyView& view, const std::string& starved_queue,
    const ResourceUsage& needed, int max_victims) {
  std::vector<ContainerId> victims;
  if (max_victims <= 0) return victims;
  if (needed.vcores <= 0 && needed.memory_mb <= 0.0) return victims;

  // Working copy of per-queue usage, decremented as victims are picked so
  // donor surpluses stay honest within one round.
  std::map<std::string, ResourceUsage> usage;
  if (view.queue_stats != nullptr) {
    for (const auto& [q, qs] : *view.queue_stats) usage[q] = qs.usage;
  }
  auto guaranteed = [&](const std::string& q) {
    if (view.queue_configs == nullptr) return 1.0;
    auto it = view.queue_configs->find(q);
    return it == view.queue_configs->end() ? 1.0
                                           : it->second.guaranteed_share;
  };

  std::vector<const PreemptionCandidate*> pool;
  pool.reserve(candidates.size());
  for (const PreemptionCandidate& c : candidates) {
    if (c.container.is_am) continue;  // AM containers are never preempted
    if (c.queue == nullptr || *c.queue == starved_queue) continue;
    pool.push_back(&c);
  }

  ResourceUsage freed;
  auto satisfied = [&] {
    return freed.vcores >= needed.vcores &&
           freed.memory_mb + 1e-9 >= needed.memory_mb;
  };
  while (!satisfied() && static_cast<int>(victims.size()) < max_victims) {
    size_t best = pool.size();
    double best_surplus = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
      const PreemptionCandidate* c = pool[i];
      double surplus =
          view.DominantShare(usage[*c->queue]) - guaranteed(*c->queue);
      if (surplus <= 1e-9) continue;  // donor at/below guarantee: exempt
      if (best == pool.size()) {
        best = i;
        best_surplus = surplus;
        continue;
      }
      const Container& bc = pool[best]->container;
      const Container& cc = c->container;
      bool better;
      if (std::abs(surplus - best_surplus) > 1e-12) {
        better = surplus > best_surplus;  // most-over-guarantee donor first
      } else if (cc.priority != bc.priority) {
        better = cc.priority < bc.priority;  // lowest priority first
      } else if (cc.allocated_at != bc.allocated_at) {
        better = cc.allocated_at > bc.allocated_at;  // youngest: least work
      } else {
        better = cc.id > bc.id;
      }
      if (better) {
        best = i;
        best_surplus = surplus;
      }
    }
    if (best == pool.size()) break;  // no donor above guarantee remains
    const Container& v = pool[best]->container;
    victims.push_back(v.id);
    freed.vcores += v.vcores;
    freed.memory_mb += v.memory_mb;
    ResourceUsage& qu = usage[*pool[best]->queue];
    qu.vcores -= v.vcores;
    qu.memory_mb -= v.memory_mb;
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(best));
  }
  return victims;
}

double JainFairnessIndex(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace hiway
