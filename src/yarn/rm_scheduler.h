// Pluggable ResourceManager scheduling strategies (the counterpart of
// YARN's FifoScheduler / CapacityScheduler / FairScheduler).
//
// The RM's allocation pass is a loop: the strategy picks which pending
// request to try next, the RM attempts the placement (locality preference,
// strict placement, blacklists — shared across all strategies), and the
// strategy is consulted again with the shrunken candidate set. Three
// implementations:
//
//  * fifo     — arrival order; byte-for-byte the seed RM behaviour.
//  * capacity — hierarchical queues with guaranteed and maximum shares:
//               the queue furthest below its guarantee is served first,
//               and no queue may exceed its maximum share.
//  * fair     — dominant-resource fairness (DRF, Ghodsi et al.) across
//               applications: the app with the smallest weighted dominant
//               share of (vcores, memory) is served first. Queue maximum
//               shares are still enforced.

#ifndef HIWAY_YARN_RM_SCHEDULER_H_
#define HIWAY_YARN_RM_SCHEDULER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/flat_hash.h"
#include "src/common/result.h"
#include "src/yarn/yarn.h"

namespace hiway {

/// One pending request offered to the strategy.
struct RmCandidate {
  /// Position in the allocation pass's slot table (opaque to strategies;
  /// returned by the RM untouched so it can find the slot again).
  size_t slot = 0;
  ApplicationId app = -1;
  const std::string* queue = nullptr;
  const ContainerRequest* request = nullptr;
  /// Virtual time the request entered the RM queue.
  double submitted_at = 0.0;
};

/// Read-only multi-tenancy state the RM exposes to strategies. All maps
/// are owned by the RM and live for the duration of the SelectNext call.
/// The per-tenant stats are flat-hash maps (unordered iteration, stable
/// references; see src/common/flat_hash.h) — strategies that need a
/// deterministic order over them must sort, as SelectPreemptionVictims
/// does via its std::map working copy.
struct RmTenancyView {
  int total_vcores = 0;
  double total_memory_mb = 0.0;
  const FlatHashMap<ApplicationId, TenantStats>* app_stats = nullptr;
  const FlatHashMap<std::string, TenantStats>* queue_stats = nullptr;
  const std::map<std::string, RmQueueConfig>* queue_configs = nullptr;

  /// Dominant share of `u` relative to live cluster capacity (DRF's
  /// "dominant resource": whichever of cores or memory is scarcer for
  /// this tenant).
  double DominantShare(const ResourceUsage& u) const;

  /// Would granting `r` keep `queue` within its maximum share?
  bool WithinMaxShare(const std::string& queue,
                      const ContainerRequest& r) const;
};

/// Which built-in policy a strategy implements. The RM's allocation pass
/// uses this to dispatch to an incremental engine that reproduces the
/// strategy's SelectNext order without materialising and re-scoring the
/// full candidate list per pick (docs/scaling.md). kCustom — the default
/// for out-of-tree strategies — falls back to the generic SelectNext
/// loop, which stays correct at any scale, just O(pending²) per pass.
enum class RmStrategyKind { kFifo, kCapacity, kFair, kCustom };

class RmScheduler {
 public:
  virtual ~RmScheduler() = default;
  virtual std::string name() const = 0;

  /// Declares which built-in policy this strategy implements so the RM
  /// may run its incremental equivalent. Only override when SelectNext
  /// is order-identical to that built-in.
  virtual RmStrategyKind kind() const { return RmStrategyKind::kCustom; }

  /// Returns the index into `eligible` of the request the RM should try
  /// to place next, or -1 to end the pass. The RM removes the chosen
  /// candidate from the eligible set whether or not placement succeeds,
  /// so every pass terminates.
  virtual int SelectNext(const std::vector<RmCandidate>& eligible,
                         const RmTenancyView& view) = 0;
};

/// Builds a strategy by name: "fifo" | "capacity" | "fair".
Result<std::unique_ptr<RmScheduler>> MakeRmScheduler(const std::string& name);

/// One running container offered as a potential preemption victim, with
/// the queue its application is charged to (resolved by the RM).
struct PreemptionCandidate {
  Container container;
  const std::string* queue = nullptr;
};

/// Victim selection for container preemption (docs/scheduling-model.md):
/// picks up to `max_victims` containers to kill so `starved_queue` can
/// reclaim `needed` (vcores and memory both). Rules, in order:
///
///  * AM containers and the starved queue's own containers are exempt.
///  * Only queues currently ABOVE their guaranteed share donate, and the
///    donor's bookkept usage shrinks with every pick, so one round never
///    preempts a queue meaningfully below its guarantee.
///  * Victims come from the most-over-guarantee donor first; within a
///    donor, lowest `Container::priority` first, then youngest container
///    (least work lost), ties broken by descending id.
///  * Selection stops as soon as the freed resources cover `needed`.
///
/// Returns container ids in kill order. Pure function of its inputs —
/// the RM applies the kills.
std::vector<ContainerId> SelectPreemptionVictims(
    const std::vector<PreemptionCandidate>& candidates,
    const RmTenancyView& view, const std::string& starved_queue,
    const ResourceUsage& needed, int max_victims);

/// Jain's fairness index over non-negative values: (Σx)² / (n·Σx²).
/// 1.0 = perfectly fair; 1/n = one tenant holds everything. Returns 1.0
/// for empty or all-zero input (no contention to be unfair about).
double JainFairnessIndex(const std::vector<double>& xs);

}  // namespace hiway

#endif  // HIWAY_YARN_RM_SCHEDULER_H_
